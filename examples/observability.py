"""Trace a Zipfian YCSB-C run and show the slowest-op waterfall.

The paper reports per-stage *means*; this example shows the per-op
view the observability layer adds.  A Zipfian YCSB-C read stream runs
against a loaded database with tracing on; afterwards we print:

* latency percentiles per op type (p50/p90/p99/p999 from the
  HDR-style histograms — every op is recorded, sampling or not);
* windowed throughput snapshots across the run;
* the stage waterfall of the single slowest traced operation — which
  stage the tail latency actually went to, and the counters (bloom
  probes, blocks read, cache hits) that op charged.

Run:  python examples/observability.py
"""

from repro.bench.report import percentile_table, render_waterfall
from repro.bench.runner import SCALES, loaded_testbed
from repro.indexes import IndexKind
from repro.obs.registry import MetricsRegistry
from repro.workloads import generate, workload

BOUNDARY = 32


def main() -> None:
    scale = SCALES["smoke"]
    keys = generate("random", scale.n_keys, seed=scale.seed)
    registry = MetricsRegistry()
    bed = loaded_testbed(scale.config(IndexKind.PGM, BOUNDARY), keys,
                         registry=registry, sample_every=64)
    mix = workload("C", keys, seed=9)  # 100% reads, Zipfian
    metrics = bed.run_ycsb(mix, scale.n_ops,
                           window_ops=max(1, scale.n_ops // 4))
    print(f"YCSB-C, {metrics.ops:,} Zipfian reads, "
          f"{metrics.avg_us:.2f} simulated us/op\n")

    print("Latency percentiles per op type:")
    print(percentile_table(registry).to_text())

    print("Windowed throughput (simulated time):")
    for row in metrics.windows or []:
        print(f"  window {int(row['window'])}: {int(row['ops'])} ops, "
              f"{row['ops_per_sim_sec']:,.0f} ops/sim-sec, "
              f"get p99 {row.get('get_p99_us', 0.0):.2f} us")
    print()

    slowest = registry.exemplars()[0]
    print("Slowest traced operation (stage waterfall):")
    print(render_waterfall(slowest, indent="  "))

    kept = len(registry.sampled)
    print(f"Kept {kept} sampled spans (1-in-64) and "
          f"{len(registry.exemplars())} slowest-op exemplars; histograms "
          f"recorded every operation regardless of sampling.")
    bed.close()


if __name__ == "__main__":
    main()
