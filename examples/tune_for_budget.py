"""Tuning advisor walkthrough: pick an index for a memory budget.

Scenario: you operate a read-heavy store over Facebook-like ids (a
hard, heavy-tailed key distribution) and can spare 4 KiB of memory per
100k keys for indexing.  Which index type and position boundary should
you deploy?  This example runs the paper's Section 6.1 guidelines
(implemented in :class:`repro.core.tuning.TuningAdvisor`) over a key
sample, then validates the recommendation on a live testbed against
the classic fence-pointer default.

Run:  python examples/tune_for_budget.py
"""

from repro.bench.runner import SCALES, loaded_testbed, sample_queries
from repro.core.tuning import TuningAdvisor
from repro.indexes import IndexKind
from repro.workloads import generate

DATASET = "fb"
BUDGET_BYTES = 120 * 1024
N_KEYS = 40_000


def main() -> None:
    scale = SCALES["smoke"]
    keys = generate(DATASET, N_KEYS, seed=1)
    sample = keys[:: max(1, len(keys) // 4000)]

    advisor = TuningAdvisor()
    recommendation = advisor.recommend(
        memory_budget_bytes=BUDGET_BYTES,
        sample_keys=sample,
        total_keys=N_KEYS,
        entry_bytes=scale.entry_bytes,
    )
    print(f"dataset={DATASET}, budget={BUDGET_BYTES:,} B, "
          f"n={N_KEYS:,} keys")
    print("advisor recommends:", recommendation.summary())
    for note in recommendation.notes:
        print("  note:", note)

    # Validate the recommendation against the fence-pointer default.
    contenders = {
        "recommended": (recommendation.index_kind,
                        recommendation.position_boundary),
        "fp-default": (IndexKind.FP, 32),
    }
    print("\nvalidation on a live testbed:")
    queries = sample_queries(keys, 3000, seed=5)
    for label, (kind, boundary) in contenders.items():
        config = scale.config(kind, boundary, dataset=DATASET)
        config = config.__class__(**{**config.__dict__,
                                     "n_keys": N_KEYS})
        bed = loaded_testbed(config, keys)
        metrics = bed.run_point_lookups(queries)
        memory = bed.memory()
        print(f"  {label:<12s} {kind.value:>4s}@b={boundary:<4d} "
              f"latency={metrics.avg_us:6.2f} us/op  "
              f"index={memory.index_bytes:>9,} B")
        bed.close()


if __name__ == "__main__":
    main()
