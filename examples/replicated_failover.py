"""Replicated failover walkthrough: crash the primary, keep serving.

Builds one shard as a ReplicaGroup of three LSM-trees on separate
fault-injectable devices and marches it through the protocol:

1. quorum-acked writes, shipped inline to the followers;
2. a primary power cut — reads keep answering from a follower while
   the heartbeat detector counts down;
3. deterministic promotion of the most-caught-up follower (failover
   time = detection wait + the promoted replica's measured reopen);
4. the revived old primary rejoining via hinted-handoff replay.

Run:  python examples/replicated_failover.py
"""

from repro import IndexKind, Options
from repro.lsm.options import Granularity
from repro.service.replication import (
    FAILOVER_OP,
    AckPolicy,
    ReplicaGroup,
    ReplicationConfig,
)
from repro.storage.block_device import MemoryBlockDevice
from repro.storage.faults import FaultPlan, FaultyBlockDevice
from repro.storage.stats import (
    REPL_FRAMES_SHIPPED,
    REPL_HINTS_REPLAYED,
    REPL_PROMOTIONS,
)

N_KEYS = 4000
HEARTBEAT_US = 5_000.0
TIMEOUT_US = 15_000.0


def _options() -> Options:
    return Options(
        index_kind=IndexKind.PGM,
        position_boundary=32,
        granularity=Granularity.LEVEL,
        value_capacity=44,
        write_buffer_bytes=16 * 1024,
        sstable_bytes=64 * 1024,
    )


def main() -> None:
    options = _options()
    config = ReplicationConfig(
        replication_factor=3, ack=AckPolicy.QUORUM,
        heartbeat_interval_us=HEARTBEAT_US,
        heartbeat_timeout_us=TIMEOUT_US)
    devices = [
        FaultyBlockDevice(MemoryBlockDevice(block_size=options.block_size),
                          FaultPlan(seed=11 + r))
        for r in range(3)]
    group = ReplicaGroup(0, options, config, devices=devices)

    # 1. Quorum writes: each put is one frame, applied on the primary
    #    and shipped inline until a majority has it durably.
    for key in range(N_KEYS):
        group.put(key, b"v%x" % key)
    stats = group.stats
    print("== quorum writes ==")
    print(f"primary: replica {group.primary_index}, "
          f"frames shipped: {stats.get(REPL_FRAMES_SHIPPED):.0f}")

    # 2. Power-cut the primary. Nothing has noticed yet — but a read
    #    that touches the dead device fails over to a follower
    #    immediately (bounded staleness), so serving never pauses.
    group.flush()
    devices[0].cut_power()
    print("\n== primary power cut ==")
    print(f"get(42) while headless: {group.get(42)!r}")
    summary = group.replication_summary()
    print(f"roles: {summary['roles']}, alive: {summary['alive']}")

    # 3. Tick the failure detector: the read above already observed
    #    the death (a serving-path power cut is unambiguous), so the
    #    next tick promotes the most-caught-up follower via a
    #    manifest-driven reopen (model reload measured).  Had nothing
    #    touched the dead device, detection would have waited the full
    #    heartbeat timeout instead.
    now = 0.0
    while stats.get(REPL_PROMOTIONS) == 0:
        now += HEARTBEAT_US
        group.tick(now)
    hist = group.registry.histograms[FAILOVER_OP]
    print("\n== failover ==")
    print(f"new primary: replica {group.primary_index} "
          f"(promotions: {stats.get(REPL_PROMOTIONS):.0f})")
    print(f"failover time: {hist.percentiles()['mean']:.0f}us "
          f"(observed failure -> promotion, + measured reopen)")
    group.put(N_KEYS, b"post-failover")
    print(f"write through the new primary: {group.get(N_KEYS)!r}")

    # 4. Revive the old primary: it rejoins as a follower and replays
    #    the hinted frames it missed while dead.
    devices[0].revive()
    now += TIMEOUT_US
    group.tick(now)
    summary = group.replication_summary()
    print("\n== old primary rejoins ==")
    print(f"roles: {summary['roles']}, alive: {summary['alive']}, "
          f"max lag: {summary['max_lag_frames']} frames")
    print(f"hints replayed: {stats.get(REPL_HINTS_REPLAYED):.0f}")
    print(f"old primary's copy of key {N_KEYS}: "
          f"{group.replicas[0].tree.get(N_KEYS)!r}")
    group.close()


if __name__ == "__main__":
    main()
