"""Quickstart: an LSM-tree with a learned index in ten lines.

Opens a database whose SSTables are indexed by PGM models instead of
fence pointers, writes a batch of keys, reads some back, scans a range
and prints what the learned indexes cost and saved.

Run:  python examples/quickstart.py
"""

import random

from repro import IndexKind, LSMTree, Options
from repro.storage.stats import Stage


def main() -> None:
    options = Options(
        index_kind=IndexKind.PGM,      # the paper's best all-rounder
        position_boundary=32,          # final on-disk search range
        value_capacity=236,            # 256-byte entries
        write_buffer_bytes=256 * 1024,
        sstable_bytes=1024 * 1024,
    )
    db = LSMTree(options)

    rng = random.Random(42)
    keys = rng.sample(range(1, 1 << 62), 50_000)
    print(f"loading {len(keys):,} keys ...")
    for i, key in enumerate(keys):
        db.put(key, b"payload-%d" % i)
    db.flush()

    # Point lookups.
    hits = sum(db.get(key) is not None for key in keys[:1000])
    print(f"point lookups: {hits}/1000 found")

    # A range scan.
    start = sorted(keys)[25_000]
    window = db.scan(start, 5)
    print(f"scan from {start}: {[key for key, _ in window]}")

    # What did the learned indexes cost and save?
    memory = db.memory_breakdown()
    print("\nmemory by component:")
    for component, nbytes in memory.items():
        print(f"  {component:<8s} {nbytes:>12,} B")

    print("\nsimulated read-path time (us):")
    for stage in (Stage.TABLE_LOOKUP, Stage.PREDICTION, Stage.IO,
                  Stage.SEARCH):
        print(f"  {stage.value:<14s} {db.stats.stage_time(stage):>12.1f}")

    print("\nlevel shape:")
    for row in db.describe_levels():
        print(f"  L{row['level']}: {row['files']:>3} files, "
              f"{row['entries']:>8,} entries, "
              f"index {row['index_bytes']:>8,} B")
    db.close()


if __name__ == "__main__":
    main()
