"""Record a workload trace once, replay it against several configurations.

Fair comparisons need identical operation streams.  This example
records 2,000 YCSB-A operations to a trace file, then replays that
exact stream against three databases — fence pointers, PGM at the same
boundary, and PGM on a simulated SATA SSD — and prints the per-stage
simulated cost of each replay.  Because the stream is identical, every
difference is attributable to the configuration.

Run:  python examples/trace_replay.py
"""

import io

from repro.bench.report import ResultTable
from repro.indexes import IndexKind
from repro.lsm.db import LSMTree
from repro.lsm.options import Options
from repro.storage.profiles import SATA_SSD
from repro.storage.stats import Stage
from repro.workloads import generate, read_trace, record_ycsb, replay, workload


def build_db(kind: IndexKind, keys, cost_model=None) -> LSMTree:
    options = Options(index_kind=kind, position_boundary=32,
                      value_capacity=108, write_buffer_bytes=64 * 1024,
                      sstable_bytes=256 * 1024, size_ratio=6)
    if cost_model is not None:
        options = options.with_changes(cost_model=cost_model)
    db = LSMTree(options)
    db.bulk_ingest(keys)
    return db


def main() -> None:
    keys = generate("random", 30_000, seed=11)

    # Record once.
    trace_file = io.StringIO()
    count = record_ycsb(workload("A", keys, seed=5), 2_000, trace_file)
    print(f"recorded {count} YCSB-A operations "
          f"({len(trace_file.getvalue()):,} bytes of trace)\n")

    configurations = {
        "FP / paper NVMe": (IndexKind.FP, None),
        "PGM / paper NVMe": (IndexKind.PGM, None),
        "PGM / SATA SSD": (IndexKind.PGM, SATA_SSD),
    }
    table = ResultTable(columns=["configuration", "total_ms", "io_ms",
                                 "prediction_ms", "index_bytes"])
    for label, (kind, model) in configurations.items():
        db = build_db(kind, keys, model)
        before = db.stats.snapshot()
        trace_file.seek(0)
        replay(db, read_trace(trace_file))
        delta = before.delta(db.stats)
        table.add_row(label, delta.total_time() / 1000.0,
                      delta.stage_time(Stage.IO) / 1000.0,
                      delta.stage_time(Stage.PREDICTION) / 1000.0,
                      db.index_memory_bytes())
        db.close()
    print(table.to_text())
    print("Same operations, different configurations: the index choice")
    print("moves memory, the hardware profile moves the I/O column.")


if __name__ == "__main__":
    main()
