"""Run the YCSB core workloads against two index configurations.

The paper's Figure 12 scenario as a script: load a database, run YCSB
A-F, and compare a learned index (PGM) against classic fence pointers
at the same position boundary.  Under every mix the learned index
matches the latency at a fraction of the memory — the paper's headline
takeaway.

A second pass shows the serving-layer read knob: ``read_batch_size``
drains consecutive reads through one ``multi_get`` per batch, so
adjacent predicted segments coalesce into single preads and per-op
latency drops on the read-heavy mixes.

Run:  python examples/ycsb_benchmark.py
"""

from repro.bench.report import ResultTable, format_bytes
from repro.bench.runner import SCALES, loaded_testbed
from repro.indexes import IndexKind
from repro.workloads import generate, workload

WORKLOADS = ("A", "B", "C", "D", "E", "F")
BOUNDARY = 32


def main() -> None:
    scale = SCALES["smoke"]
    all_keys = generate("random", scale.n_keys + 2000, seed=scale.seed)
    loaded, reserve = all_keys[:scale.n_keys], all_keys[scale.n_keys:]
    n_ops = scale.n_ops

    table = ResultTable(columns=["workload", "index", "avg_op_us",
                                 "index_memory"])
    for name in WORKLOADS:
        for kind in (IndexKind.PGM, IndexKind.FP):
            bed = loaded_testbed(scale.config(kind, BOUNDARY), loaded)
            mix = workload(name, loaded, insert_reserve=reserve, seed=9)
            metrics = bed.run_ycsb(mix, n_ops)
            table.add_row(f"YCSB-{name}", kind.value, metrics.avg_us,
                          format_bytes(bed.memory().index_bytes))
            bed.close()
    print(f"{n_ops:,} operations per cell, boundary {BOUNDARY}\n")
    print(table.to_text())
    print("Note how PGM tracks FP's latency on every mix while using a")
    print("fraction of its index memory (Figure 12's conclusion).")

    # -- batched reads: the read_batch_size knob -----------------------
    batch_table = ResultTable(columns=["read_batch", "avg_op_us",
                                       "seeks_saved"])
    for read_batch in (1, 16, 64):
        bed = loaded_testbed(scale.config(IndexKind.PGM, BOUNDARY), loaded)
        mix = workload("C", loaded, seed=9)
        metrics = bed.run_ycsb(mix, n_ops, read_batch_size=read_batch)
        batch_table.add_row(read_batch, metrics.avg_us,
                            int(metrics.counter("multiget.seeks_saved")))
        bed.close()
    print("\nYCSB-C with batched reads (PGM): consecutive reads drain")
    print("through one multi_get, coalescing adjacent segment preads.\n")
    print(batch_table.to_text())


if __name__ == "__main__":
    main()
