"""Overload walkthrough: the knee, the shed, the split, the storm.

Puts a Gateway in front of a small two-shard ShardedDB and drives it
open-loop — arrivals come from a seeded Poisson process at a chosen
rate, not from a client that politely waits. Four acts:

1. calibrate per-shard capacity with a short closed-loop warmup;
2. sweep offered load through the saturation knee: goodput tracks
   offered load below capacity, then plateaus while shedding rises;
3. read the p99 split: past the knee the tail is queueing delay, not
   service time;
4. replay a transient-fault burst at 1.5x capacity with the retry
   budget on vs. off — unlimited retries turn expensive failures into
   a storm and end with strictly less goodput.

Everything runs in simulated microseconds on a virtual clock, so the
numbers are deterministic run to run.

Run:  python examples/overload_gateway.py
"""

import random

from repro.lsm.options import small_test_options
from repro.service.gateway import Gateway, GatewayConfig, Request
from repro.service.sharded import ShardedDB
from repro.storage.block_device import MemoryBlockDevice
from repro.storage.faults import FaultPlan, FaultyBlockDevice
from repro.storage.retry import RetryPolicy
from repro.workloads.arrivals import PoissonArrivals

N_KEYS = 8000
N_SHARDS = 2
N_REQUESTS = 1500


def build_fleet(plan=None):
    # Caches off: service time is then a stable function of the key,
    # which keeps runs comparable across arms.
    options = small_test_options(cache_bytes=0, data_cache_bytes=0,
                                 retry=RetryPolicy(max_attempts=1))
    devices = None
    if plan is not None:
        devices = [FaultyBlockDevice(
            MemoryBlockDevice(block_size=options.block_size),
            FaultPlan(seed=plan.seed + i,
                      transient_read_rate=plan.transient_read_rate,
                      transient_fail_count=plan.transient_fail_count,
                      transient_timeout_us=plan.transient_timeout_us))
            for i in range(N_SHARDS)]
    db = ShardedDB(num_shards=N_SHARDS, options=options, devices=devices,
                   observe=False)
    db.bulk_ingest(list(range(N_KEYS)), seed=1)
    return db


def plan_requests(rate_per_sec, deadline_us, seed=3):
    times = PoissonArrivals(rate_per_sec=rate_per_sec, seed=seed) \
        .times(N_REQUESTS)
    rng = random.Random(seed)
    return [Request("get", rng.randrange(N_KEYS), t, t + deadline_us)
            for t in times]


def run_arm(rate_per_sec, deadline_us, plan=None, **config):
    db = build_fleet(plan)
    gw = Gateway(db, GatewayConfig(queue_depth=32, **config))
    report = gw.run(plan_requests(rate_per_sec, deadline_us))
    db.close()
    return report


def main() -> None:
    # 1. Closed-loop calibration: mean service time -> fleet capacity.
    db = build_fleet()
    gw = Gateway(db)
    before = sum(t.stats.total_time() for t in db.shards)
    rng = random.Random(1)
    for _ in range(200):
        gw.get(rng.randrange(N_KEYS))
    mean_svc = (sum(t.stats.total_time() for t in db.shards) - before) \
        / 200 + 2.0  # + the gateway's per-request dispatch overhead
    db.close()
    capacity = N_SHARDS * 1e6 / mean_svc
    deadline_us = 20 * mean_svc
    print(f"calibration : {mean_svc:7.1f} us/get  ->  "
          f"capacity ~{capacity:8.0f} req/s")

    # 2+3. The knee: sweep offered load across calibrated capacity.
    print("\n     load      offered      goodput   shed%    "
          "queue p99   service p99")
    shed_fractions = []
    for load_x in (0.25, 0.6, 1.0, 1.6, 2.4):
        report = run_arm(load_x * capacity, deadline_us)
        offered = report.requests * 1e6 / report.horizon_us
        shed = report.fraction("shed")
        shed_fractions.append(shed)
        q99 = report.percentiles["gw.queue_delay"]["p99"]
        s99 = report.percentiles["gw.service"]["p99"]
        print(f"    {load_x:4.2f}x   {offered:8.0f}/s   "
              f"{report.goodput_per_sec:8.0f}/s   {shed:5.1%}   "
              f"{q99:8.1f}us   {s99:8.1f}us")
    assert shed_fractions == sorted(shed_fractions), \
        "shedding must rise monotonically with offered load"
    print("knee        : goodput plateaus past 1x; the p99 tail past "
          "the knee is queueing, not service")

    # 4. The storm: expensive transient faults at 1.5x capacity,
    # retry budget on vs. off. Without the budget every failure is
    # retried into a system with no spare capacity.
    plan = FaultPlan(seed=5, transient_read_rate=0.08,
                     transient_fail_count=3, transient_timeout_us=500.0)
    fault_svc = mean_svc + 0.08 * 500.0
    rate = 1.5 * N_SHARDS * 1e6 / fault_svc
    storm_deadline = max(4000.0, 40 * mean_svc)
    arms = {}
    for label, enabled in (("budget on", True), ("budget off", False)):
        report = run_arm(rate, storm_deadline, plan=plan,
                         breaker_enabled=False, max_client_retries=6,
                         retry_budget_enabled=enabled,
                         retry_budget_ratio=0.02, retry_budget_burst=3.0)
        arms[label] = report.goodput_per_sec
        resubmits = report.counters.get("retry.client_resubmits", 0)
        print(f"{label:12}: {report.goodput_per_sec:8.0f}/s goodput, "
              f"{resubmits:5.0f} client retries")
    assert arms["budget off"] < arms["budget on"], \
        "unlimited retries must lose goodput at saturation"
    gain = arms["budget on"] / arms["budget off"] - 1
    print(f"storm       : the retry budget is worth {gain:+.1%} goodput "
          f"under faults at 1.5x capacity")


if __name__ == "__main__":
    main()
