"""Per-level boundary allocation for skewed workloads (Section 5.4 / 6.2).

The paper's Figure 10 shows that under a read-latest workload the
shallow levels absorb most of the read time while a uniform position
boundary spends most index memory on the cold deepest level.  Its
suggested future direction — allocate per-level boundaries from the
observed query distribution — is implemented by
``TuningAdvisor.allocate_level_boundaries``.  This example measures a
skewed workload, feeds the observed per-level read shares to the
allocator and prints the boundary schedule it proposes.

Run:  python examples/per_level_boundaries.py
"""

from repro.bench.report import ResultTable
from repro.bench.runner import SCALES, loaded_testbed
from repro.core.tuning import TuningAdvisor
from repro.indexes import IndexKind
from repro.workloads import generate

import random

BOUNDARY = 128  # the uniform starting point


def main() -> None:
    scale = SCALES["smoke"]
    keys = generate("random", scale.n_keys, seed=scale.seed)
    config = scale.config(IndexKind.PGM, BOUNDARY, size_ratio=4)
    bed = loaded_testbed(config, keys)
    level_keys = bed.level_keys()
    levels = sorted(level_keys)

    # A read-latest-like mix: shallow levels hold the recent writes.
    rng = random.Random(3)
    bias = {level: 0.55 / (3 ** i) for i, level in enumerate(levels)}
    queries = []
    for _ in range(scale.n_ops):
        level = rng.choices(levels, weights=[bias[l] for l in levels])[0]
        bucket = level_keys[level]
        queries.append(bucket[rng.randrange(len(bucket))])
    bed.run_point_lookups(queries)

    read_stats = bed.db.level_read_stats()
    total_us = sum(us for us, _ in read_stats.values()) or 1.0
    read_shares = {level: read_stats.get(level, (0.0, 0))[0] / total_us
                   for level in levels}
    entries = {level: len(level_keys[level]) for level in levels}
    index_bytes = {level: bed.db.level_index_memory_bytes(level)
                   for level in levels}
    budget = sum(index_bytes.values())
    per_key_now = budget / sum(entries.values())
    bed.close()

    advisor = TuningAdvisor()
    schedule = advisor.allocate_level_boundaries(
        level_entries=entries,
        level_read_shares=read_shares,
        bytes_per_key_at={BOUNDARY: per_key_now},
        index_budget_bytes=budget * 2,  # same order of budget, doubled
        entry_bytes=scale.entry_bytes,
        start_boundary=BOUNDARY)

    table = ResultTable(columns=["level", "entries", "read_share",
                                 "uniform_boundary", "allocated_boundary"])
    for level in levels:
        table.add_row(f"L{level}", entries[level], read_shares[level],
                      BOUNDARY, schedule[level])
    print("observed skewed workload -> proposed per-level boundaries\n")
    print(table.to_text())
    print("Hot shallow levels get tight boundaries (cheap in absolute")
    print("bytes); the cold deepest level keeps a loose one - the")
    print("memory/read imbalance of Figure 10, repaired.")


if __name__ == "__main__":
    main()
