"""Compare all seven index types on a dataset of your choice.

A miniature of the paper's Figure 6: build the same database with each
index type at two position boundaries, run identical point lookups and
print the memory-latency frontier.  Change ``DATASET`` to any of the
seven SOSD-style families to see how distribution hardness moves the
frontier (heavy-tailed ``fb`` needs far more segments than ``random``).

Run:  python examples/compare_indexes.py [dataset]
"""

import sys

from repro.bench.report import ResultTable, format_bytes
from repro.bench.runner import SCALES, loaded_testbed, sample_queries
from repro.indexes import ALL_KINDS
from repro.workloads import DATASET_NAMES, generate, hardness_score

BOUNDARIES = (64, 16)


def main(dataset: str = "random") -> None:
    if dataset not in DATASET_NAMES:
        raise SystemExit(f"dataset must be one of {DATASET_NAMES}")
    scale = SCALES["smoke"]
    keys = generate(dataset, scale.n_keys, seed=scale.seed)
    queries = sample_queries(keys, scale.n_ops, seed=7)
    print(f"dataset={dataset} ({scale.n_keys:,} keys, "
          f"hardness={hardness_score(keys):.3f}), "
          f"{scale.n_ops:,} point lookups per configuration\n")

    table = ResultTable(columns=["index", "boundary", "latency_us",
                                 "index_memory", "B/key"])
    points = []
    for kind in ALL_KINDS:
        for boundary in BOUNDARIES:
            bed = loaded_testbed(scale.config(kind, boundary,
                                              dataset=dataset), keys)
            metrics = bed.run_point_lookups(queries)
            memory = bed.memory().index_bytes
            bed.close()
            table.add_row(kind.value, boundary, metrics.avg_us,
                          format_bytes(memory), memory / len(keys))
            points.append((metrics.avg_us, memory, kind, boundary))
    print(table.to_text())
    # Best trade-off: within 3% of the fastest configuration, take the
    # one with the smallest index (the paper's frontier reading).
    fastest = min(latency for latency, _, _, _ in points)
    _, memory, kind, boundary = min(
        (point for point in points if point[0] <= fastest * 1.03),
        key=lambda point: point[1])
    print(f"best memory-latency trade-off: {kind.value} at boundary "
          f"{boundary} ({format_bytes(memory)} within 3% of the fastest "
          f"lookup, {fastest:.2f} us)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "random")
