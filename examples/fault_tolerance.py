"""Fault tolerance walkthrough: inject, tolerate, degrade, repair.

Runs one small LSM-tree on a seeded FaultyBlockDevice and marches it
through the four robustness layers:

1. transient read errors, absorbed invisibly by the retry policy;
2. bit rot, contained to quarantined blocks (typed per-key errors,
   batch reads isolate exactly the poisoned keys);
3. a power cut mid-write, survived with every acknowledged batch
   intact after reopen;
4. medium replacement + scrub, which rewrites the damaged tables and
   restores clean health with zero loss.

Faults ride the same plan from the start because data blocks are
checksum-verified on first touch: rot planted *before* any read is
caught and quarantined; a disk that rots after a block was verified
needs the periodic scrub, which re-reads everything uncached.

Run:  python examples/fault_tolerance.py
"""

from repro import IndexKind, Options
from repro.errors import QuarantinedBlockError
from repro.lsm.db import LSMTree
from repro.lsm.options import Granularity
from repro.lsm.write_batch import WriteBatch
from repro.storage.block_device import MemoryBlockDevice
from repro.storage.faults import FaultPlan, FaultyBlockDevice
from repro.storage.stats import (
    QUARANTINED_BLOCKS,
    RETRY_ATTEMPTS,
    RETRY_SUCCESSES,
)

N_KEYS = 6000
PLAN = FaultPlan(seed=7, transient_read_rate=0.05, bit_rot_rate=0.01)


def _options() -> Options:
    return Options(
        index_kind=IndexKind.PGM,
        position_boundary=32,
        granularity=Granularity.LEVEL,
        value_capacity=44,
        write_buffer_bytes=16 * 1024,
        sstable_bytes=64 * 1024,
        block_size=512,
        data_block_bytes=512,
    )


def _value(key: int, options: Options) -> bytes:
    return (b"v%x" % key)[: options.value_capacity]


def main() -> None:
    options = _options()
    faulty = FaultyBlockDevice(
        MemoryBlockDevice(block_size=options.block_size), PLAN)
    db = LSMTree(options, device=faulty)
    keys = list(range(N_KEYS))
    db.bulk_ingest(keys)

    # 1+2. One batched read over a flaky, rotting disk: transients are
    # retried away, rot-poisoned keys come back as typed errors, and
    # every healthy key still returns its value.
    errors = {}
    values = db.multi_get(keys, errors=errors)
    served = sum(1 for v in values if isinstance(v, bytes))
    assert served + len(errors) == len(keys)
    assert all(isinstance(e, QuarantinedBlockError)
               for e in errors.values())
    print(f"transients : {db.stats.get(RETRY_ATTEMPTS):.0f} retries, "
          f"{db.stats.get(RETRY_SUCCESSES):.0f} reads saved")
    print(f"bit rot    : {len(errors)} keys poisoned, {served} served, "
          f"{db.stats.get(QUARANTINED_BLOCKS):.0f} blocks quarantined")
    print(f"health     : {db.health()['status']}")
    assert db.health()["status"] == "degraded"

    # 3. Power cut: a budgeted device dies mid-write; after revive and
    # reopen, every acknowledged batch is fully present.
    wal_options = options.with_changes(enable_wal=True,
                                       enable_manifest=True)
    cut = FaultyBlockDevice(
        MemoryBlockDevice(block_size=options.block_size),
        FaultPlan(seed=11, power_cut_after_bytes=48 * 1024))
    wal_db = LSMTree(wal_options, device=cut)
    acked = []
    try:
        for base in range(0, 10_000, 8):
            batch = WriteBatch()
            group = list(range(base, base + 8))
            for key in group:
                batch.put(key, b"p%d" % key)
            wal_db.write(batch)
            acked.append(group)
    except Exception:
        pass
    cut.revive()
    survivor = LSMTree.reopen(wal_options, cut)
    for group in acked:
        assert all(survivor.get(k) == b"p%d" % k for k in group)
    print(f"power cut  : {len(acked)} acknowledged batches, "
          f"all intact after reopen")

    # 4. Replace the medium (clean plan) and scrub: the quarantined
    # blocks re-read clean, so every entry is salvaged into rewritten
    # tables and the database returns to full health.
    faulty.plan = FaultPlan(seed=7)
    report = db.scrub()
    print(f"scrub      : {report.tables_checked} tables checked, "
          f"{report.tables_rewritten} rewritten, "
          f"{report.entries_lost} entries lost")
    assert report.entries_lost == 0
    assert db.scrub().clean
    assert db.health()["status"] == "ok"
    assert all(db.get(key) == _value(key, options) for key in keys)
    print("health     : ok — fully repaired, zero loss")


if __name__ == "__main__":
    main()
