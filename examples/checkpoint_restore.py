"""Checkpoint and retrain-free restore with the persistence layer.

Builds a sharded database with level-granularity learned indexes — the
configuration where restarts used to hurt most, because every level
model had to be retrained from a full key reload — then checkpoints it
(flush + manifest snapshot + model sidecars) and "crash"-restores every
shard from its device.  The restored fleet performs **zero** index
training: models come back by deserialization, and the version layout
by replaying one manifest record per shard.

Run:  python examples/checkpoint_restore.py
"""

import random

from repro import IndexKind, Options, ShardedDB
from repro.lsm.db import LSMTree
from repro.lsm.options import Granularity
from repro.storage.stats import (
    MANIFEST_EDITS,
    MODELS_LOADED,
    RECOVERY_MANIFEST_OPENS,
    TRAIN_KEY_VISITS,
    Stage,
)

NUM_SHARDS = 4


def main() -> None:
    options = Options(
        index_kind=IndexKind.PGM,
        position_boundary=32,
        granularity=Granularity.LEVEL,   # one model per level, persisted
        value_capacity=236,              # 256-byte entries
        write_buffer_bytes=128 * 1024,
        sstable_bytes=512 * 1024,
    )
    db = ShardedDB(num_shards=NUM_SHARDS, options=options)

    # -- load: every flush/compaction commits a manifest version edit --
    rng = random.Random(3)
    keys = sorted(rng.sample(range(1, 1 << 62), 30_000))
    for i, key in enumerate(keys):
        db.put(key, b"value-%d" % i)
    build_visits = db.stats.get(TRAIN_KEY_VISITS)
    edits = db.stats.get(MANIFEST_EDITS)
    print(f"loaded {len(keys):,} keys: {int(build_visits):,} training key "
          f"visits, {int(edits):,} manifest edits committed")

    # -- checkpoint: flush + snapshot the manifest + persist models ----
    summary = db.checkpoint()
    print(f"checkpoint: {int(summary['files'])} tables, "
          f"{int(summary['models_persisted'])} level models persisted, "
          f"{int(summary['manifest_bytes'])} manifest bytes total")

    # -- "crash" and restore every shard from its device ---------------
    devices = [shard.device for shard in db.shards]
    restored = ShardedDB.reopen(NUM_SHARDS, options, devices)
    stats = restored.stats
    print(f"\nrestore: {int(stats.get(RECOVERY_MANIFEST_OPENS))} manifest "
          f"opens, {int(stats.get(MODELS_LOADED))} models deserialized, "
          f"{int(stats.get(TRAIN_KEY_VISITS))} training key visits "
          f"(cold-open cost {stats.stage_time(Stage.RECOVERY):.0f} "
          "simulated us)")
    assert stats.get(TRAIN_KEY_VISITS) == 0, "restore must not retrain"

    # -- prove the restored tree serves identically --------------------
    sample = keys[:: len(keys) // 2000]
    assert all(restored.get(key) == db.get(key) for key in sample)
    print(f"verified {len(sample):,} lookups identical to the "
          "pre-crash database")

    # -- the old path, for contrast: scan + reload + retrain -----------
    single = LSMTree.reopen(options, devices[0], use_manifest=False)
    print(f"\nfor contrast, scan-reopening shard 0 the pre-manifest way "
          f"retrained {int(single.stats.get(TRAIN_KEY_VISITS)):,} key "
          "visits")
    restored.close()


if __name__ == "__main__":
    main()
