"""The serving layer: shards, write batches and the block cache together.

Builds a ShardedDB — four LSM-tree shards behind a hash router, each
with a write-ahead log and an LRU block cache — loads it through
group-committed WriteBatches, serves a skewed read workload that warms
the caches, scans across shard boundaries, and finally crash-recovers
every shard from its device.

Run:  python examples/sharded_service.py
"""

import random

from repro import IndexKind, Options, ShardedDB, WriteBatch
from repro.storage.stats import WAL_GROUP_COMMITS
from repro.workloads.distributions import make_picker


def main() -> None:
    options = Options(
        index_kind=IndexKind.PGM,
        position_boundary=32,
        value_capacity=236,            # 256-byte entries
        write_buffer_bytes=128 * 1024,
        sstable_bytes=512 * 1024,
        enable_wal=True,               # durable writes ...
        cache_bytes=2 * 1024 * 1024,   # ... and a 2 MiB cache per shard
    )
    db = ShardedDB(num_shards=4, options=options)

    # -- load through group-committed batches --------------------------
    rng = random.Random(7)
    keys = sorted(rng.sample(range(1, 1 << 62), 40_000))
    batch = WriteBatch()
    for i, key in enumerate(keys):
        batch.put(key, b"payload-%d" % i)
        if len(batch) == 256:
            db.write(batch)
            batch.clear()
    db.write(batch)
    commits = db.stats.get(WAL_GROUP_COMMITS)
    print(f"loaded {len(keys):,} keys via {int(commits):,} WAL group "
          f"commits (~{len(keys) / commits:.0f} records each)")
    db.flush()

    # -- skewed reads warm the block caches ----------------------------
    picker = make_picker("zipfian", len(keys), seed=11)
    for _ in range(20_000):
        db.get(keys[picker.pick()])
    print(f"zipfian reads: block cache hit rate "
          f"{db.cache_hit_rate():.0%}")

    # -- a scan that crosses shard boundaries --------------------------
    start = keys[20_000]
    window = db.scan(start, 8)
    owners = [db.shard_for(key) for key, _ in window]
    print(f"scan of 8 keys from {start} touches shards {owners}")

    # -- per-shard shape ------------------------------------------------
    print("\nshard shape (hash routing keeps it even):")
    for row in db.describe_shards():
        print(f"  shard {row['shard']}: {row['entries']:>7,} entries, "
              f"{row['files']:>3} files, {row['levels']} levels")
    print(f"  balance (max/mean entries): {db.shard_balance():.3f}")

    # -- crash recovery -------------------------------------------------
    extra = WriteBatch()
    for key in keys[:100]:
        extra.put(key, b"unflushed-update")
    db.write(extra)  # lives only in the WALs
    recovered = ShardedDB.reopen(4, options, [s.device for s in db.shards])
    survivors = sum(recovered.get(key) == b"unflushed-update"
                    for key in keys[:100])
    print(f"\ncrash recovery: {survivors}/100 unflushed batch records "
          "replayed from the shard WALs")
    recovered.close()


if __name__ == "__main__":
    main()
