"""Corruption-injection suite for the block SSTable format.

Every byte region of a v2 table file — header, each data block, sparse
block index, learned index, bloom filter, footer — is flipped and the
reader must fail with a *typed* error naming the file (and, for data
blocks, the block number).  The invariant under test: a corrupted table
never returns silently wrong results, and a corrupt data block poisons
only itself — every other block keeps serving reads.
"""

import struct

import pytest

from repro.errors import ChecksumError, CorruptionError
from repro.indexes.registry import IndexFactory, IndexKind
from repro.lsm.options import small_test_options
from repro.lsm.record import make_value
from repro.lsm.sstable import (
    FOOTER_BYTES,
    HEADER_BYTES,
    Table,
    TableBuilder,
)
from repro.storage.block_cache import CachedBlockDevice, DataBlockCache
from repro.storage.block_device import MemoryBlockDevice
from repro.storage.cost_model import CostModel
from repro.storage.stats import (CHECKSUM_FAILURES,
                                 QUARANTINED_BLOCKS, Stats)

NAME = "sst-000001"


def _build(n=200, data_cache=None, cache_bytes=0):
    options = small_test_options(index_kind=IndexKind.PGM,
                                 position_boundary=8)
    stats = Stats()
    device = MemoryBlockDevice(block_size=options.block_size, stats=stats)
    if cache_bytes:
        device = CachedBlockDevice(device, cache_bytes, stats=stats)
    cost = CostModel(block_size=options.block_size)
    builder = TableBuilder(device, NAME, options,
                           IndexFactory(IndexKind.PGM, 8), stats, cost,
                           data_cache=data_cache)
    keys = list(range(1000, 1000 + 7 * n, 7))
    for i, key in enumerate(keys):
        builder.add(make_value(key, i + 1, b"v%d" % key))
    table = builder.finish()
    return table, device, stats, options, cost, keys


def _flip(device, offset):
    raw = bytearray(device.pread(NAME, 0, device.size(NAME)))
    raw[offset] ^= 0xFF
    device.create(NAME)
    device.append(NAME, bytes(raw))


def _reopen(device, options, cost, data_cache=None):
    return Table.open(device, NAME, options, Stats(), cost,
                      data_cache=data_cache)


def _regions(table):
    """(region name, start, length) for every non-data byte region."""
    footer = table.footer
    size = table.device.size(NAME)
    return [
        ("header", 0, HEADER_BYTES),
        ("block_index", footer.block_index_offset, footer.block_index_len),
        ("index", footer.index_offset, footer.index_len),
        ("bloom", footer.bloom_offset, footer.bloom_len),
        ("footer", size - FOOTER_BYTES, FOOTER_BYTES),
    ]


# -- metadata regions: detected at open --------------------------------


@pytest.mark.parametrize("region", ["header", "block_index", "index",
                                    "bloom", "footer"])
def test_metadata_corruption_detected_at_open(region):
    table, device, _, options, cost, _ = _build()
    start, length = next((s, n) for r, s, n in _regions(table)
                         if r == region)
    assert length > 0
    # One flip near each edge and one in the middle of the region.
    for offset in (start, start + length // 2, start + length - 1):
        fresh_table, fresh_device, _, _, _, _ = _build()
        _flip(fresh_device, offset)
        with pytest.raises(CorruptionError) as excinfo:
            _reopen(fresh_device, options, cost)
        if isinstance(excinfo.value, ChecksumError):
            assert excinfo.value.file == NAME
            # The reported region is the flipped one, except that a
            # header flip may first surface as a footer/header
            # disagreement and a footer flip that hits the magic
            # falls back to (and fails) the legacy v1 path.
            assert excinfo.value.region in (region, "header")


def test_footer_crc_flip_names_the_footer():
    table, device, _, options, cost, _ = _build()
    size = device.size(NAME)
    # Flip inside the footer body but past the magic, so the v2 probe
    # still engages and the footer's own CRC must catch it.
    _flip(device, size - FOOTER_BYTES + 16)
    with pytest.raises(ChecksumError) as excinfo:
        _reopen(device, options, cost)
    assert excinfo.value.file == NAME
    assert excinfo.value.region == "footer"


# -- data blocks: detected at first read, named by number --------------


def test_every_data_block_flip_raises_typed_error():
    table, device, _, options, cost, keys = _build()
    per = table.footer.entries_per_block
    for block_no, (first_key, offset, stored_len, _raw) in \
            enumerate(table.handles):
        fresh_table, fresh_device, _, _, _, _ = _build()
        _flip(fresh_device, offset + stored_len // 2)
        reopened = _reopen(fresh_device, options, cost)
        victim = keys[min(block_no * per + per // 2, len(keys) - 1)]
        with pytest.raises(ChecksumError) as excinfo:
            reopened.get(victim)
        assert excinfo.value.file == NAME
        assert excinfo.value.region == "data"
        assert excinfo.value.block == block_no
        assert str(block_no) in str(excinfo.value)


def test_corrupt_block_poisons_only_itself():
    table, device, stats, options, cost, keys = _build()
    per = table.footer.entries_per_block
    victim_block = table.footer.block_count // 2
    _, offset, stored_len, _ = table.handles[victim_block]
    _flip(device, offset + stored_len - 1)
    reopened = _reopen(device, options, cost)
    hits = errors = 0
    for i, key in enumerate(keys):
        # A lookup fails iff its block-aligned search bound touches the
        # corrupt block — a neighbouring key whose prediction spills
        # into it fails too (better loud than silently narrowed).
        bound = reopened.block_bound(
            reopened.index.lookup(key).clamped(reopened.entry_count))
        touches = (bound.lo < (victim_block + 1) * per
                   and bound.hi > victim_block * per)
        if touches:
            with pytest.raises(ChecksumError):
                reopened.get(key)
            errors += 1
        else:
            record = reopened.get(key)
            assert record is not None and record.value == b"v%d" % key
            hits += 1
    # Every key stored in the victim block fails; most of the table
    # stays readable.
    assert errors >= per
    assert hits > len(keys) // 2
    assert hits + errors == len(keys)
    # The first failing fetch verifies (and fails) the CRC once; every
    # later lookup fails fast on the quarantine without re-reading.
    assert reopened.stats.get(CHECKSUM_FAILURES) == 1
    assert reopened.stats.get(QUARANTINED_BLOCKS) == 1
    assert reopened.quarantined_blocks == {victim_block}


def test_corrupt_block_fails_again_after_reopen():
    table, device, _, options, cost, keys = _build()
    _, offset, stored_len, _ = table.handles[0]
    _flip(device, offset)
    for _ in range(2):  # open -> fail -> open again -> fail again
        reopened = _reopen(device, options, cost)
        with pytest.raises(ChecksumError):
            reopened.get(keys[0])
        # Failed verification is never memoised: retrying the same
        # block through the same table object fails the same way.
        with pytest.raises(ChecksumError):
            reopened.get(keys[0])


def test_iterator_and_multiget_refuse_corrupt_blocks():
    table, device, _, options, cost, keys = _build()
    _, offset, stored_len, _ = table.handles[1]
    _flip(device, offset + 1)
    reopened = _reopen(device, options, cost)
    with pytest.raises(ChecksumError):
        iterator = reopened.iterator()
        iterator.seek_to_first()
        while iterator.valid():
            iterator.record()
            iterator.advance()
    with pytest.raises(ChecksumError):
        reopened.multi_get(keys)


def test_corruption_detected_through_block_cache():
    # A device-level LRU cache must not mask corruption: the flip
    # lands before any read, so the cache holds the corrupt bytes and
    # verification still catches them.
    table, device, _, options, cost, keys = _build(cache_bytes=1 << 20)
    _, offset, stored_len, _ = table.handles[0]
    _flip(device, offset)
    reopened = _reopen(device, options, cost)
    with pytest.raises(ChecksumError):
        reopened.get(keys[0])


def test_data_cache_hit_skips_reverification_but_not_detection():
    from repro.storage.stats import Stage

    data_cache = DataBlockCache(1 << 20)
    table, device, _, options, cost, keys = _build(data_cache=data_cache)
    reopened = _reopen(device, options, cost, data_cache=data_cache)
    per = table.footer.entries_per_block
    reopened.read_entries(0, per, Stage.IO)  # warms exactly block 0
    victim = table.footer.block_count - 1
    _, offset, stored_len, _ = table.handles[victim]
    _flip(device, offset)
    # Block 0 serves from the decompressed cache (verified pre-flip);
    # the victim block misses, hits the device, and fails verification.
    assert reopened.read_entries(0, per, Stage.IO)
    with pytest.raises(ChecksumError):
        reopened.read_entries(victim * per, victim * per + 1, Stage.IO)


def test_truncated_data_block_is_a_typed_error():
    table, device, _, options, cost, keys = _build()
    size = device.size(NAME)
    last_no = table.footer.block_count - 1
    _, offset, stored_len, _ = table.handles[last_no]
    raw = device.pread(NAME, 0, size)
    device.create(NAME)
    # Drop one byte out of the last data block, shifting everything
    # after it: the block's stored range now reads short or misframed.
    device.append(NAME, raw[:offset + stored_len - 1] + raw[offset + stored_len:])
    with pytest.raises(CorruptionError):
        reopened = _reopen(device, options, cost)
        reopened.get(keys[-1])


def test_header_magic_flip_is_detected():
    table, device, _, options, cost, _ = _build()
    _flip(device, 0)  # first magic byte
    with pytest.raises(ChecksumError) as excinfo:
        _reopen(device, options, cost)
    assert excinfo.value.file == NAME
    assert excinfo.value.region == "header"
