"""Smoke tests: every shipped example must run cleanly."""

import os
import subprocess
import sys

import pytest

_EXAMPLES = [
    "quickstart.py",
    "compare_indexes.py",
    "tune_for_budget.py",
    "ycsb_benchmark.py",
    "per_level_boundaries.py",
    "trace_replay.py",
    "sharded_service.py",
    "checkpoint_restore.py",
    "overload_gateway.py",
    "replicated_failover.py",
]

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.mark.parametrize("script", _EXAMPLES)
def test_example_runs(script):
    path = os.path.join(_ROOT, "examples", script)
    assert os.path.exists(path), f"missing example {script}"
    proc = subprocess.run([sys.executable, path], capture_output=True,
                          text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), f"{script} produced no output"
