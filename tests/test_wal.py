"""Tests for the write-ahead log: framing, replay, corruption handling."""

from repro.lsm.record import make_tombstone, make_value
from repro.lsm.wal import WriteAheadLog
from repro.storage.block_device import MemoryBlockDevice


def _wal():
    return WriteAheadLog(MemoryBlockDevice())


def test_append_replay_roundtrip():
    wal = _wal()
    records = [make_value(1, 1, b"a"), make_tombstone(2, 2),
               make_value(3, 3, b"ccc")]
    for record in records:
        wal.append(record)
    assert wal.replay_all() == records


def test_replay_empty_log():
    wal = _wal()
    assert wal.replay_all() == []


def test_reset_truncates():
    wal = _wal()
    wal.append(make_value(1, 1, b"x"))
    assert wal.size_bytes() > 0
    wal.reset()
    assert wal.size_bytes() == 0
    assert wal.replay_all() == []


def test_torn_tail_is_dropped():
    device = MemoryBlockDevice()
    wal = WriteAheadLog(device)
    wal.append(make_value(1, 1, b"keep"))
    wal.append(make_value(2, 2, b"torn"))
    # Chop bytes off the final frame.
    data = device.pread("wal", 0, device.size("wal"))
    device.create("wal")
    device.append("wal", data[:-3])
    survivors = WriteAheadLog(device).replay_all()
    assert [record.key for record in survivors] == [1]


def test_corrupt_crc_stops_replay():
    device = MemoryBlockDevice()
    wal = WriteAheadLog(device)
    wal.append(make_value(1, 1, b"keep"))
    wal.append(make_value(2, 2, b"flip"))
    data = bytearray(device.pread("wal", 0, device.size("wal")))
    data[-1] ^= 0xFF  # flip a bit in the last payload byte
    device.create("wal")
    device.append("wal", bytes(data))
    survivors = WriteAheadLog(device).replay_all()
    assert [record.key for record in survivors] == [1]


def test_reopen_preserves_contents():
    device = MemoryBlockDevice()
    WriteAheadLog(device).append(make_value(9, 1, b"p"))
    reopened = WriteAheadLog(device)
    assert [record.key for record in reopened.replay_all()] == [9]


def test_large_values_roundtrip():
    wal = _wal()
    big = bytes(range(256)) * 64
    wal.append(make_value(7, 1, big))
    assert wal.replay_all()[0].value == big
