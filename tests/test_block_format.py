"""Property tests for the block SSTable format.

Hypothesis drives random entry sets through random block sizes
(including one-entry blocks and blocks larger than the whole table) and
every registered codec, asserting:

* **round-trip fidelity** — every entry read back byte-identical
  through get, multi_get, read_entries and the iterator;
* **sparse-index invariants** — block first-keys and offsets strictly
  increase, raw lengths tile the entry array exactly;
* **flat-vs-block oracle equality** — a v1 flat table over the same
  records answers every probe identically (hits, misses, scans),
  with and without the cache tiers.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexes.registry import IndexFactory, IndexKind
from repro.lsm.options import small_test_options
from repro.lsm.record import make_value
from repro.lsm.sstable import (
    FORMAT_BLOCKED,
    FORMAT_FLAT,
    HEADER_BYTES,
    Table,
    TableBuilder,
    entries_per_block_for,
    write_legacy_table,
)
from repro.storage.block_cache import CachedBlockDevice, DataBlockCache
from repro.storage.block_device import MemoryBlockDevice
from repro.storage.compression import codec_names
from repro.storage.cost_model import CostModel
from repro.storage.stats import (
    BLOCKS_VERIFIED,
    CHECKSUM_FAILURES,
    Stage,
    Stats,
)

# Entry size is 64 B under small_test_options, so 64 gives one-entry
# blocks, 150 a ragged 2-entry block, and 1 << 20 one block spanning
# any table this suite builds.
BLOCK_BYTES = st.sampled_from([64, 150, 256, 1024, 1 << 20])
KEY_SETS = st.sets(st.integers(min_value=0, max_value=2**40),
                   min_size=1, max_size=120)


def _records(keys):
    return [make_value(key, i + 1, b"val-%x" % key)
            for i, key in enumerate(sorted(keys))]


def _build_blocked(records, data_block_bytes, codec, data_cache=None,
                   cache_bytes=0):
    options = small_test_options(index_kind=IndexKind.PGM,
                                 position_boundary=8,
                                 data_block_bytes=data_block_bytes,
                                 block_codec=codec)
    stats = Stats()
    device = MemoryBlockDevice(block_size=options.block_size, stats=stats)
    if cache_bytes:
        device = CachedBlockDevice(device, cache_bytes, stats=stats)
    cost = CostModel(block_size=options.block_size)
    builder = TableBuilder(device, "sst-000001", options,
                           IndexFactory(IndexKind.PGM, 8), stats, cost,
                           data_cache=data_cache)
    for record in records:
        builder.add(record)
    return builder.finish(), device, options, cost, stats


def _build_flat(records):
    options = small_test_options(index_kind=IndexKind.PGM,
                                 position_boundary=8)
    stats = Stats()
    device = MemoryBlockDevice(block_size=options.block_size, stats=stats)
    cost = CostModel(block_size=options.block_size)
    write_legacy_table(device, "sst-000001", options, records,
                       index_factory=IndexFactory(IndexKind.PGM, 8))
    return Table.open(device, "sst-000001", options, stats, cost)


def _probe_keys(keys):
    """Present keys plus misses between, below and above them."""
    probes = list(keys)
    probes += [key + 1 for key in keys[:20]]
    probes += [keys[0] - 1, keys[-1] + 1]
    return probes


@settings(max_examples=30, deadline=None)
@given(keys=KEY_SETS, block_bytes=BLOCK_BYTES,
       codec=st.sampled_from(codec_names()))
def test_roundtrip_and_oracle_equality(keys, block_bytes, codec):
    records = _records(keys)
    sorted_keys = [record.key for record in records]
    table, device, options, cost, stats = _build_blocked(
        records, block_bytes, codec)
    oracle = _build_flat(records)
    assert table.format_version == FORMAT_BLOCKED
    assert oracle.format_version == FORMAT_FLAT
    assert table.entry_count == oracle.entry_count == len(records)

    # Full-array read-back is byte-identical to the flat layout.
    assert (table.read_entries(0, len(records), Stage.IO)
            == oracle.read_entries(0, len(records), Stage.IO))

    probes = _probe_keys(sorted_keys)
    for key in probes:
        got = table.get(key)
        want = oracle.get(key)
        assert (got is None) == (want is None)
        if got is not None:
            assert got.key == want.key
            assert got.value == want.value
            assert got.seq == want.seq

    for coalesce in (True, False):
        batched = table.multi_get(probes, coalesce=coalesce)
        assert batched == oracle.multi_get(probes)

    # Iterator equality: full scan and a mid-table seek.
    for seek_key in (None, sorted_keys[len(sorted_keys) // 2]):
        a, b = table.iterator(), oracle.iterator()
        if seek_key is None:
            a.seek_to_first(), b.seek_to_first()
        else:
            a.seek(seek_key), b.seek(seek_key)
        while a.valid() or b.valid():
            assert a.valid() and b.valid()
            assert a.record() == b.record()
            a.advance(), b.advance()

    # Clean runs verify blocks and never count a failure.
    assert stats.get(CHECKSUM_FAILURES) == 0
    assert stats.get(BLOCKS_VERIFIED) == table.footer.block_count


@settings(max_examples=30, deadline=None)
@given(keys=KEY_SETS, block_bytes=BLOCK_BYTES,
       codec=st.sampled_from(codec_names()))
def test_sparse_index_invariants(keys, block_bytes, codec):
    records = _records(keys)
    table, device, options, cost, stats = _build_blocked(
        records, block_bytes, codec)
    per = entries_per_block_for(options)
    footer = table.footer
    handles = table.handles
    assert footer.entries_per_block == per
    assert footer.block_count == len(handles)
    assert footer.block_count == -(-len(records) // per)

    first_keys = [h[0] for h in handles]
    offsets = [h[1] for h in handles]
    assert first_keys == sorted(set(first_keys))  # strictly increasing
    assert offsets == sorted(set(offsets))
    assert offsets[0] == HEADER_BYTES
    # Stored blocks tile the data region exactly.
    for (_, offset, stored_len, _), nxt in zip(handles, handles[1:]):
        assert offset + stored_len == nxt[1]
    last = handles[-1]
    assert last[1] + last[2] == footer.block_index_offset
    # Raw lengths tile the entry array exactly.
    raw_lens = [h[3] for h in handles]
    assert sum(raw_lens) == len(records) * footer.entry_bytes
    assert all(length == per * footer.entry_bytes for length in raw_lens[:-1])
    assert footer.data_raw_bytes == sum(raw_lens)
    # Each handle's first key is the key stored first in that block.
    sorted_keys = [record.key for record in records]
    assert first_keys == sorted_keys[::per]

    # Reopening from the device reproduces the same sparse index.
    reopened = Table.open(device, "sst-000001", options, Stats(), cost)
    assert reopened.handles == handles
    assert reopened.footer == footer


@settings(max_examples=15, deadline=None)
@given(keys=KEY_SETS, block_bytes=BLOCK_BYTES,
       codec=st.sampled_from(codec_names()),
       raw_cache=st.booleans(), data_cache_on=st.booleans())
def test_cache_tiers_never_change_results(keys, block_bytes, codec,
                                          raw_cache, data_cache_on):
    records = _records(keys)
    sorted_keys = [record.key for record in records]
    data_cache = DataBlockCache(1 << 20) if data_cache_on else None
    table, device, options, cost, stats = _build_blocked(
        records, block_bytes, codec, data_cache=data_cache,
        cache_bytes=(1 << 20) if raw_cache else 0)
    oracle = _build_flat(records)
    probes = _probe_keys(sorted_keys)
    for repeat in range(2):  # second pass runs hot through the caches
        for key in probes:
            got = table.get(key)
            want = oracle.get(key)
            assert (got is None) == (want is None)
            if got is not None:
                assert (got.key, got.seq, got.value) == \
                    (want.key, want.seq, want.value)
    assert stats.get(CHECKSUM_FAILURES) == 0


def test_single_entry_table_single_block():
    records = _records({7})
    table, device, options, cost, stats = _build_blocked(records, 1 << 20,
                                                         "zlib-6")
    assert table.footer.block_count == 1
    assert table.get(7).value == b"val-7"
    assert table.get(8) is None
    reopened = Table.open(device, "sst-000001", options, Stats(), cost)
    assert reopened.get(7).value == b"val-7"


def test_compression_ratio_reported_per_table():
    # Zero-padded fixed slots compress; the footer carries the totals.
    records = _records(set(range(100, 400)))
    table, _, _, _, _ = _build_blocked(records, 1024, "zlib-1")
    assert table.compression_ratio() > 1.0
    flat_equivalent, _, _, _, _ = _build_blocked(records, 1024, "none")
    assert flat_equivalent.compression_ratio() == 1.0
