"""Tests for the CRC32C (Castagnoli) implementation and block codecs."""

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ChecksumError
from repro.storage import checksum
from repro.storage.checksum import crc32c
from repro.storage.compression import (
    by_id,
    by_name,
    codec_names,
    decode_block,
    encode_block,
)


# -- CRC32C --------------------------------------------------------------


def test_known_check_value():
    # The CRC-32C check value from the iSCSI spec (RFC 3720).
    assert crc32c(b"123456789") == 0xE3069283


def test_empty_and_trivial_inputs():
    assert crc32c(b"") == 0
    assert crc32c(b"\x00") != 0
    assert crc32c(b"a") != crc32c(b"b")


def test_chaining_equals_whole():
    data = bytes(range(256)) * 7
    split = 311
    assert crc32c(data[split:], crc32c(data[:split])) == crc32c(data)


def test_scalar_and_vector_backends_agree():
    # Bulk inputs take the numpy path (when present), short inputs the
    # scalar path; both must produce identical digests.
    for n in (0, 1, 255, 256, 257, 4096, 70000):
        data = bytes((i * 131 + 17) % 256 for i in range(n))
        scalar = checksum._crc_scalar(data, 0xFFFFFFFF) ^ 0xFFFFFFFF
        assert scalar == crc32c(data), n


@settings(max_examples=50, deadline=None)
@given(st.binary(max_size=2048), st.integers(0, 2047))
def test_single_bit_flip_always_detected(data, position):
    if not data:
        return
    position %= len(data)
    flipped = bytearray(data)
    flipped[position] ^= 0x01
    assert crc32c(bytes(flipped)) != crc32c(data)


def test_backend_reported():
    assert checksum.backend() in ("numpy", "scalar")


# -- block codecs --------------------------------------------------------


def test_codec_registry():
    names = codec_names()
    assert "none" in names and "zlib-1" in names
    assert by_name("none").codec_id == 0
    with pytest.raises(ChecksumError):
        by_id(250, file="f", block=3)


def test_encode_round_trips_through_decode():
    raw = (b"entry" * 100).ljust(1024, b"\x00")
    for name in codec_names():
        codec = by_name(name)
        codec_id, payload = encode_block(codec, raw)
        assert decode_block(codec_id, payload, len(raw),
                            file="f", block=0) == raw


def test_incompressible_blocks_stored_raw():
    import random
    rng = random.Random(7)
    raw = bytes(rng.getrandbits(8) for _ in range(512))
    codec_id, payload = encode_block(by_name("zlib-9"), raw)
    # Random bytes do not shrink: stored uncompressed under id 0.
    assert codec_id == 0
    assert payload == raw


def test_compressible_blocks_shrink():
    raw = b"\x00" * 4096
    codec_id, payload = encode_block(by_name("zlib-1"), raw)
    assert codec_id == by_name("zlib-1").codec_id
    assert len(payload) < len(raw)


def test_decode_failure_is_typed():
    with pytest.raises(ChecksumError) as excinfo:
        decode_block(by_name("zlib-1").codec_id, b"not deflate data", 100,
                     file="sst-000009", block=4)
    assert excinfo.value.file == "sst-000009"
    assert excinfo.value.block == 4


def test_decode_length_mismatch_is_typed():
    payload = zlib.compress(b"\x00" * 64)
    with pytest.raises(ChecksumError):
        decode_block(by_name("zlib-6").codec_id, payload, 65,
                     file="f", block=1)
