"""Degraded-mode behaviour: read-only entry, health, per-key errors."""

import pytest

from repro.errors import (
    QuarantinedBlockError,
    ReadOnlyModeError,
)
from repro.indexes.registry import IndexKind
from repro.lsm.db import LSMTree
from repro.lsm.options import small_test_options
from repro.lsm.write_batch import WriteBatch
from repro.service.sharded import ShardedDB
from repro.storage.block_device import MemoryBlockDevice
from repro.storage.faults import FaultPlan, FaultyBlockDevice
from repro.storage.stats import (
    DEGRADED_ENTRIES,
    DEGRADED_WRITES_REJECTED,
)


def _db_on_faulty(plan, **option_changes):
    options = small_test_options(index_kind=IndexKind.PGM,
                                 **option_changes)
    inner = MemoryBlockDevice(block_size=options.block_size)
    faulty = FaultyBlockDevice(inner, plan)
    return LSMTree(options, device=faulty), faulty, options


# -- WAL failure -> read-only ------------------------------------------


def test_wal_append_failure_enters_read_only():
    db, faulty, _ = _db_on_faulty(
        FaultPlan(seed=1, disk_full_after_bytes=600), enable_wal=True)
    written = []
    with pytest.raises(ReadOnlyModeError):
        for key in range(10_000):
            db.put(key, b"v%d" % key)
            written.append(key)
    assert db.read_only
    assert "WAL append failed" in db.read_only_reason
    # The failed record was never applied; every acknowledged one reads.
    for key in written:
        assert db.get(key) == b"v%d" % key
    assert db.get(written[-1] + 1) is None
    # Writes of every kind are rejected with the typed error...
    for attempt in (lambda: db.put(1, b"x"), lambda: db.delete(1),
                    lambda: db.write(WriteBatch().put(2, b"y")),
                    lambda: db.flush()):
        with pytest.raises(ReadOnlyModeError) as excinfo:
            attempt()
        assert "WAL append failed" in excinfo.value.reason
    # ...and counted; the mode was entered exactly once.
    assert db.stats.get(DEGRADED_ENTRIES) == 1
    assert db.stats.get(DEGRADED_WRITES_REJECTED) >= 4


def test_batch_write_failure_applies_nothing():
    db, faulty, _ = _db_on_faulty(
        FaultPlan(seed=1, disk_full_after_bytes=100), enable_wal=True)
    batch = WriteBatch()
    for key in range(50):
        batch.put(key, b"v")
    with pytest.raises(ReadOnlyModeError):
        db.write(batch)
    # Group commit failed -> no record of the batch is visible.
    assert all(db.get(key) is None for key in range(50))


def test_flush_disk_full_enters_read_only_but_keeps_reads():
    db, faulty, _ = _db_on_faulty(
        FaultPlan(seed=2, disk_full_after_bytes=4096))
    accepted = []
    with pytest.raises(ReadOnlyModeError):
        # Eventually a put fills the write buffer, the auto-flush hits
        # the full disk, and the engine degrades mid-stream.
        for key in range(10_000):
            db.put(key, b"v%d" % key)
            accepted.append(key)
    assert db.read_only
    assert "flush failed" in db.read_only_reason
    # The memtable still serves every write that was accepted.
    assert accepted
    assert all(db.get(key) == b"v%d" % key for key in accepted)
    health = db.health()
    assert health["status"] == "read_only"
    assert "flush failed" in health["reason"]


def test_health_reports_ok_when_nothing_is_wrong():
    db = LSMTree(small_test_options(index_kind=IndexKind.PGM))
    db.put(1, b"x")
    assert db.health() == {"status": "ok", "reason": None,
                           "quarantined_blocks": 0,
                           "quarantined_tables": 0}


def test_health_degraded_on_quarantined_blocks():
    db, faulty, _ = _db_on_faulty(FaultPlan(seed=3))
    db.bulk_ingest(list(range(2000)))
    level, meta = db.version.all_files()[0]
    _, offset, _, _ = meta.table.handles[0]
    faulty.inject_rot(meta.table.name, offset // faulty.block_size)
    with pytest.raises(QuarantinedBlockError):
        for key in range(2000):
            db.get(key)
    health = db.health()
    assert health["status"] == "degraded"
    assert health["quarantined_blocks"] == 1
    assert not db.read_only  # degraded reads-wise, still writable


# -- per-key multi_get errors ------------------------------------------


@pytest.mark.parametrize("granularity", ["file", "level"])
def test_multi_get_isolates_poisoned_keys(granularity):
    from repro.lsm.options import Granularity

    db, faulty, options = _db_on_faulty(
        FaultPlan(seed=4),
        granularity=(Granularity.LEVEL if granularity == "level"
                     else Granularity.FILE))
    keys = list(range(4000))
    db.bulk_ingest(keys)
    level, meta = next((l, m) for l, m in db.version.all_files())
    victim_block = meta.table.handles[len(meta.table.handles) // 2]
    faulty.inject_rot(meta.table.name,
                      victim_block[1] // faulty.block_size)
    failed = set()
    for key in keys:
        try:
            db.get(key)
        except QuarantinedBlockError:
            failed.add(key)
    assert failed  # the rotted block serves some keys
    errors = {}
    values = db.multi_get(keys, errors=errors)
    assert set(errors) == failed
    for key, value in zip(keys, values):
        if key in failed:
            assert isinstance(value, QuarantinedBlockError)
            assert value.file == meta.table.name
        else:
            assert value == (b"v%x" % key)[:options.value_capacity]


def test_multi_get_without_errors_dict_raises():
    db, faulty, _ = _db_on_faulty(FaultPlan(seed=4))
    keys = list(range(4000))
    db.bulk_ingest(keys)
    level, meta = db.version.all_files()[0]
    faulty.inject_rot(meta.table.name,
                      meta.table.handles[0][1] // faulty.block_size)
    with pytest.raises(QuarantinedBlockError):
        db.multi_get(keys)


# -- sharded fleet ------------------------------------------------------


def test_sharded_health_isolates_the_sick_shard():
    options = small_test_options(index_kind=IndexKind.PGM)
    plans = [FaultPlan(seed=i) for i in range(3)]
    devices = [FaultyBlockDevice(
        MemoryBlockDevice(block_size=options.block_size), plan)
        for plan in plans]
    sdb = ShardedDB(num_shards=3, options=options, devices=devices,
                    observe=False)
    keys = list(range(6000))
    sdb.bulk_ingest(keys)
    assert sdb.health()["status"] == "ok"
    # Poison one block on shard 1 and trip its quarantine.
    sick = sdb.shards[1]
    level, meta = sick.version.all_files()[0]
    devices[1].inject_rot(meta.table.name,
                          meta.table.handles[0][1] // devices[1].block_size)
    failed = []
    for key in keys:
        try:
            sdb.get(key)
        except QuarantinedBlockError:
            failed.append(key)
    assert failed
    assert all(sdb.router.shard_for(key) == 1 for key in failed)
    health = sdb.health()
    assert health["status"] == "degraded"
    by_shard = {entry["shard"]: entry["status"]
                for entry in health["shards"]}
    assert by_shard[1] == "degraded"
    assert by_shard[0] == by_shard[2] == "ok"
    # Batched reads across shards isolate exactly the poisoned keys.
    errors = {}
    sdb.multi_get(keys, errors=errors)
    assert set(errors) == set(failed)


def test_sharded_scrub_merges_reports():
    options = small_test_options(index_kind=IndexKind.PGM)
    devices = [FaultyBlockDevice(
        MemoryBlockDevice(block_size=options.block_size), FaultPlan(seed=i))
        for i in range(2)]
    sdb = ShardedDB(num_shards=2, options=options, devices=devices,
                    observe=False)
    sdb.bulk_ingest(list(range(4000)))
    report = sdb.scrub()
    assert report.clean
    assert report.tables_checked == sum(
        shard.version.file_count() for shard in sdb.shards)
