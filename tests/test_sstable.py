"""Tests for the LearnedIndexTable format: builder, reader, iterator."""

import pytest

from repro.errors import CorruptionError
from repro.indexes.registry import IndexFactory, IndexKind
from repro.lsm.options import small_test_options
from repro.lsm.record import make_value
from repro.lsm.sstable import FOOTER_BYTES, Table, TableBuilder, TableFooter
from repro.storage.block_device import MemoryBlockDevice
from repro.storage.cost_model import CostModel
from repro.storage.stats import SEGMENTS_FETCHED, Stage, Stats


def _build(keys, kind=IndexKind.PGM, boundary=8, options=None):
    options = options or small_test_options(index_kind=kind,
                                            position_boundary=boundary)
    stats = Stats()
    device = MemoryBlockDevice(block_size=options.block_size, stats=stats)
    cost = CostModel(block_size=options.block_size)
    builder = TableBuilder(device, "t1", options,
                           IndexFactory(kind, boundary), stats, cost)
    for i, key in enumerate(keys):
        builder.add(make_value(key, i + 1, b"v%d" % key))
    return builder.finish(), device, stats, options, cost


@pytest.fixture()
def sample_keys():
    return list(range(1000, 9000, 13))


def test_build_and_get(sample_keys):
    table, _, _, _, _ = _build(sample_keys)
    for key in sample_keys[::37]:
        record = table.get(key)
        assert record is not None
        assert record.value == b"v%d" % key
    assert table.get(sample_keys[0] + 1) is None
    assert table.entry_count == len(sample_keys)
    assert table.min_key == sample_keys[0]
    assert table.max_key == sample_keys[-1]


def test_builder_rejects_out_of_order(sample_keys):
    options = small_test_options()
    stats = Stats()
    device = MemoryBlockDevice(block_size=options.block_size, stats=stats)
    builder = TableBuilder(device, "t", options, None, stats,
                           CostModel(block_size=options.block_size))
    builder.add(make_value(10, 1, b"a"))
    with pytest.raises(CorruptionError):
        builder.add(make_value(10, 2, b"b"))
    with pytest.raises(CorruptionError):
        builder.add(make_value(5, 3, b"c"))


def test_builder_rejects_empty_finish():
    options = small_test_options()
    stats = Stats()
    device = MemoryBlockDevice(block_size=options.block_size, stats=stats)
    builder = TableBuilder(device, "t", options, None, stats,
                           CostModel(block_size=options.block_size))
    with pytest.raises(CorruptionError):
        builder.finish()


def test_reopen_from_device(sample_keys):
    table, device, stats, options, cost = _build(sample_keys)
    reopened = Table.open(device, "t1", options, stats, cost)
    assert reopened.entry_count == table.entry_count
    for key in sample_keys[::53]:
        assert reopened.get(key).value == b"v%d" % key
    assert reopened.index_bytes() == table.index_bytes()


def test_footer_roundtrip():
    footer = TableFooter(entry_count=10, entry_bytes=64, value_capacity=44,
                         index_offset=640, index_len=100, bloom_offset=740,
                         bloom_len=20, min_key=1, max_key=99)
    assert TableFooter.unpack(footer.pack()) == footer
    assert len(footer.pack()) == FOOTER_BYTES


def test_footer_rejects_bad_magic():
    footer = TableFooter(1, 64, 44, 0, 0, 0, 0, 0, 0)
    data = bytearray(footer.pack())
    data[0] ^= 0xFF
    with pytest.raises(CorruptionError):
        TableFooter.unpack(bytes(data))


def test_get_charges_stages(sample_keys):
    table, _, stats, _, _ = _build(sample_keys)
    before = stats.snapshot()
    table.get(sample_keys[5])
    delta = before.delta(stats)
    assert delta.stage_time(Stage.PREDICTION) > 0
    assert delta.stage_time(Stage.IO) > 0
    assert delta.stage_time(Stage.SEARCH) > 0
    assert delta.counter(SEGMENTS_FETCHED) == 1


def test_smaller_boundary_fetches_fewer_blocks(sample_keys):
    from repro.storage.stats import BLOCKS_READ
    results = {}
    for boundary in (64, 8):
        table, _, stats, _, _ = _build(sample_keys, boundary=boundary)
        before = stats.get(BLOCKS_READ)
        for key in sample_keys[::17]:
            table.get(key)
        results[boundary] = stats.get(BLOCKS_READ) - before
    assert results[8] < results[64]


def test_iterator_full_scan(sample_keys):
    table, _, _, _, _ = _build(sample_keys)
    it = table.iterator()
    it.seek_to_first()
    out = [record.key for record in it.drain()]
    assert out == sample_keys


def test_iterator_seek_exact_and_between(sample_keys):
    table, _, _, _, _ = _build(sample_keys)
    it = table.iterator()
    it.seek(sample_keys[100])
    assert it.key() == sample_keys[100]
    it = table.iterator()
    it.seek(sample_keys[100] + 1)  # between two keys
    assert it.key() == sample_keys[101]
    it = table.iterator()
    it.seek(sample_keys[-1] + 10)
    assert not it.valid()


def test_iterator_seek_before_first(sample_keys):
    table, _, _, _, _ = _build(sample_keys)
    it = table.iterator()
    it.seek(0)
    assert it.key() == sample_keys[0]


def test_iterator_across_all_kinds(sample_keys):
    for kind in (IndexKind.FP, IndexKind.PLR, IndexKind.RMI, IndexKind.PLEX):
        table, _, _, _, _ = _build(sample_keys, kind=kind)
        it = table.iterator()
        it.seek(sample_keys[200])
        got = []
        while it.valid() and len(got) < 20:
            got.append(it.key())
            it.advance()
        assert got == sample_keys[200:220]


def test_level_granularity_table_has_no_index(sample_keys):
    options = small_test_options()
    stats = Stats()
    device = MemoryBlockDevice(block_size=options.block_size, stats=stats)
    cost = CostModel(block_size=options.block_size)
    builder = TableBuilder(device, "t", options, None, stats, cost)
    for i, key in enumerate(sample_keys):
        builder.add(make_value(key, i + 1, b"x"))
    table = builder.finish()
    assert table.index is None
    assert table.index_bytes() == 0
    with pytest.raises(CorruptionError):
        table.get(sample_keys[0])
    # get_in_bound still works when the bound comes from a level model.
    from repro.indexes.base import SearchBound
    record = table.get_in_bound(sample_keys[3], SearchBound(0, 10))
    assert record.key == sample_keys[3]


def test_training_stats_recorded(sample_keys):
    table, _, stats, _, _ = _build(sample_keys, kind=IndexKind.PLEX)
    from repro.storage.stats import TRAIN_KEY_VISITS
    assert stats.get(TRAIN_KEY_VISITS) >= len(sample_keys)
    assert stats.stage_time(Stage.COMPACT_TRAIN) > 0
    assert stats.stage_time(Stage.COMPACT_WRITE_MODEL) > 0
