"""Tests for index introspection (describe())."""

import pytest

from repro.indexes.registry import ALL_KINDS, IndexFactory, IndexKind


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_describe_base_fields(kind, uniform_keys):
    keys = uniform_keys[:3000]
    index = IndexFactory(kind, 32).build(keys)
    info = index.describe()
    assert info["kind"] == kind.value
    assert info["n"] == len(keys)
    assert info["size_bytes"] == index.size_bytes()
    assert info["boundary"] == 32
    assert info["train_key_visits"] >= 1


def test_describe_specific_fields(uniform_keys):
    keys = uniform_keys[:3000]
    cases = {
        IndexKind.FP: "pointers",
        IndexKind.PLR: "segments",
        IndexKind.FT: "tree_height",
        IndexKind.PGM: "levels",
        IndexKind.RS: "spline_points",
        IndexKind.PLEX: "cht_bits",
        IndexKind.RMI: "leaves",
    }
    for kind, field in cases.items():
        info = IndexFactory(kind, 16).build(keys).describe()
        assert field in info, f"{kind.value} missing {field}"


def test_describe_tracks_precision(uniform_keys):
    keys = uniform_keys[:4000]
    loose = IndexFactory(IndexKind.PLR, 128).build(keys).describe()
    tight = IndexFactory(IndexKind.PLR, 8).build(keys).describe()
    assert tight["segments"] > loose["segments"]
    pgm = IndexFactory(IndexKind.PGM, 8).build(keys).describe()
    assert pgm["levels"][0] >= pgm["levels"][-1]
    assert pgm["levels"][-1] == 1  # single root
