"""WAL crash consistency: every truncation point yields a batch prefix.

The group-commit guarantee is all-or-nothing per frame: a crash that
tears the log mid-frame must recover exactly the acknowledged batches
before it — never a partial batch, never a reordering.  These tests
prove it exhaustively by truncating a multi-batch log at *every* byte
offset.
"""

import pytest

from repro.errors import PowerCutError
from repro.indexes.registry import IndexKind
from repro.lsm.db import LSMTree
from repro.lsm.options import small_test_options
from repro.lsm.record import make_value
from repro.lsm.wal import WriteAheadLog
from repro.lsm.write_batch import WriteBatch
from repro.storage.block_device import MemoryBlockDevice
from repro.storage.faults import FaultPlan, FaultyBlockDevice


def _batches(count=5, width=4):
    """`count` batches of `width` records with distinct keys/values."""
    out = []
    seq = 1
    for b in range(count):
        batch = []
        for i in range(width):
            key = b * width + i
            batch.append(make_value(key, seq, b"b%d-r%d" % (b, i)))
            seq += 1
        out.append(batch)
    return out


def _replay_truncated(raw, cut):
    device = MemoryBlockDevice(block_size=256)
    device.create("wal")
    device.append("wal", bytes(raw[:cut]))
    return WriteAheadLog(device).replay_all()


def test_every_truncation_offset_recovers_a_batch_prefix():
    device = MemoryBlockDevice(block_size=256)
    wal = WriteAheadLog(device)
    batches = _batches()
    for batch in batches:
        wal.append_batch(batch)
    raw = device.pread("wal", 0, device.size("wal"))

    # Frame boundaries: recovery at exactly a boundary keeps all prior
    # batches; anywhere inside a frame drops it entirely.
    prefixes = [[]]
    for batch in batches:
        prefixes.append(prefixes[-1] + batch)

    seen_lengths = set()
    for cut in range(len(raw) + 1):
        recovered = _replay_truncated(raw, cut)
        assert recovered in prefixes, (
            f"truncation at byte {cut} recovered a non-prefix: "
            f"{len(recovered)} records")
        seen_lengths.add(len(recovered))
    # Every prefix (including empty and complete) is reachable.
    assert seen_lengths == {len(p) for p in prefixes}


def test_truncated_wal_reopens_with_acknowledged_prefix():
    options = small_test_options(index_kind=IndexKind.PGM,
                                 enable_wal=True)
    device = MemoryBlockDevice(block_size=options.block_size)
    db = LSMTree(options, device=device)
    batches = _batches(count=4, width=3)
    for batch in batches:
        wb = WriteBatch()
        for record in batch:
            wb.put(record.key, record.value)
        db.write(wb)
    raw = device.pread("wal", 0, device.size("wal"))

    # Cut mid-way through the third frame: reopen must surface batches
    # one and two completely and nothing of batch three.
    frame_len = len(raw) // len(batches)
    cut = 2 * frame_len + frame_len // 2
    fresh = MemoryBlockDevice(block_size=options.block_size)
    fresh.create("wal")
    fresh.append("wal", raw[:cut])
    reopened = LSMTree.reopen(options, fresh, use_manifest=False)
    for record in batches[0] + batches[1]:
        assert reopened.get(record.key) == record.value
    for record in batches[2] + batches[3]:
        assert reopened.get(record.key) is None


@pytest.mark.faults
@pytest.mark.parametrize("budget", [64, 257, 800, 1501, 3000])
def test_power_cut_fuzz_never_loses_acknowledged_batches(budget):
    options = small_test_options(index_kind=IndexKind.PGM,
                                 enable_wal=True, enable_manifest=True)
    inner = MemoryBlockDevice(block_size=options.block_size)
    faulty = FaultyBlockDevice(
        inner, FaultPlan(seed=budget, power_cut_after_bytes=budget))
    db = LSMTree(options, device=faulty)
    acked, torn = [], None
    batch_no = 0
    while torn is None and batch_no < 400:
        keys = [batch_no * 7 + i for i in range(7)]
        wb = WriteBatch()
        for key in keys:
            wb.put(key, b"p%d" % key)
        try:
            db.write(wb)
            acked.append(keys)
        except Exception:
            torn = keys
        batch_no += 1
    assert torn is not None, "budget never tripped the cut"

    faulty.revive()
    reopened = LSMTree.reopen(options, db.device)
    for keys in acked:
        for key in keys:
            assert reopened.get(key) == b"p%d" % key, (
                f"acknowledged key {key} lost after power cut")
    # The torn batch is all-or-nothing.
    present = sum(1 for key in torn
                  if reopened.get(key) == b"p%d" % key)
    assert present in (0, len(torn))
