"""Tests for the LRU block cache and its device decorator."""

import random

import pytest

from repro.errors import StorageError
from repro.lsm.db import LSMTree
from repro.lsm.options import small_test_options
from repro.storage.block_cache import CachedBlockDevice, LRUBlockCache
from repro.storage.block_device import MemoryBlockDevice
from repro.storage.stats import (
    BLOCKS_READ,
    CACHE_EVICTIONS,
    CACHE_HITS,
    CACHE_MISSES,
    READ_CALLS,
    Stage,
    Stats,
)

BS = 64


def _device(capacity_blocks=4, nblocks=16):
    inner = MemoryBlockDevice(block_size=BS)
    inner.create("f")
    inner.append("f", bytes(range(256))[:BS] * nblocks)
    cached = CachedBlockDevice(inner, capacity_blocks * BS)
    cached.stats = Stats()  # fresh registry, ignore the fill traffic
    return cached, inner


# -- LRUBlockCache ------------------------------------------------------

def test_lru_eviction_order():
    cache = LRUBlockCache(3 * BS, BS)
    for index in range(3):
        cache.put("f", index, b"x" * BS)
    cache.get("f", 0)  # 0 becomes most recently used
    evicted = cache.put("f", 3, b"y" * BS)  # evicts 1, the LRU
    assert evicted == 1
    assert cache.get("f", 1) is None
    assert cache.get("f", 0) is not None
    assert cache.get("f", 3) is not None


def test_lru_invalidate_file():
    cache = LRUBlockCache(8 * BS, BS)
    cache.put("a", 0, b"x" * BS)
    cache.put("a", 1, b"x" * BS)
    cache.put("b", 0, b"x" * BS)
    assert cache.invalidate_file("a") == 2
    assert len(cache) == 1
    assert cache.get("b", 0) is not None


def test_lru_zero_capacity_drops_admissions():
    cache = LRUBlockCache(0, BS)
    assert cache.put("f", 0, b"x" * BS) == 0
    assert cache.get("f", 0) is None
    assert len(cache) == 0


def test_lru_rejects_negative_capacity():
    with pytest.raises(StorageError):
        LRUBlockCache(-1, BS)


# -- CachedBlockDevice --------------------------------------------------

def test_cached_pread_matches_inner():
    cached, inner = _device(capacity_blocks=4)
    rng = random.Random(11)
    size = inner.size("f")
    for _ in range(200):
        offset = rng.randrange(0, size + BS)
        length = rng.randrange(0, 3 * BS)
        assert cached.pread("f", offset, length) == \
            inner.pread("f", offset, length)


def test_repeated_reads_hit():
    cached, _ = _device()
    cached.pread("f", 0, BS)
    before = cached.stats.snapshot()
    cached.pread("f", 0, BS)
    delta = before.delta(cached.stats)
    assert delta.counter(CACHE_HITS) == 1
    assert delta.counter(CACHE_MISSES) == 0
    assert delta.counter(READ_CALLS) == 0  # served without touching disk


def test_miss_then_hit_accounting():
    cached, _ = _device()
    before = cached.stats.snapshot()
    cached.pread("f", 0, 2 * BS)  # two cold blocks
    cached.pread("f", 0, 2 * BS)  # both hot now
    delta = before.delta(cached.stats)
    assert delta.counter(CACHE_MISSES) == 2
    assert delta.counter(CACHE_HITS) == 2
    assert cached.stats.cache_hit_rate() == 0.5


def test_partial_hit_fetches_only_missing_run():
    cached, _ = _device(capacity_blocks=8)
    cached.pread("f", 0, BS)          # block 0 cached
    before = cached.stats.snapshot()
    data, hit_frac = cached.pread_cached("f", 0, 3 * BS)
    delta = before.delta(cached.stats)
    assert len(data) == 3 * BS
    assert hit_frac == pytest.approx(1 / 3)
    assert delta.counter(BLOCKS_READ) == 2  # only blocks 1-2 from disk


def test_eviction_counter_flows_to_stats():
    cached, _ = _device(capacity_blocks=2)
    cached.pread("f", 0, 6 * BS)
    assert cached.stats.get(CACHE_EVICTIONS) >= 4


def test_append_invalidates_partial_tail_block():
    inner = MemoryBlockDevice(block_size=BS)
    inner.create("g")
    inner.append("g", b"a" * (BS + 10))  # block 1 is partial
    cached = CachedBlockDevice(inner, 8 * BS)
    assert cached.pread("g", BS, 10) == b"a" * 10
    cached.append("g", b"b" * 10)
    assert cached.pread("g", BS, 20) == b"a" * 10 + b"b" * 10


def test_delete_invalidates_and_create_resets():
    cached, inner = _device()
    cached.pread("f", 0, BS)
    cached.delete("f")
    assert not cached.exists("f")
    cached.create("f")
    cached.append("f", b"z" * BS)
    assert cached.pread("f", 0, BS) == b"z" * BS


def test_stats_reassignment_propagates_to_inner():
    cached, inner = _device()
    fresh = Stats()
    cached.stats = fresh
    assert inner.stats is fresh


def test_read_past_eof_returns_available_suffix():
    cached, inner = _device(nblocks=1)
    assert cached.pread("f", BS - 8, 100) == inner.pread("f", BS - 8, 100)
    assert cached.pread("f", 10 * BS, 4) == b""


# -- LSMTree integration ------------------------------------------------

def _loaded_db(**overrides):
    db = LSMTree(small_test_options(**overrides))
    for i in range(400):
        db.put(i * 3 + 1, b"x%d" % i)
    db.flush()
    return db


def test_cached_db_equals_uncached_db():
    hot = _loaded_db(cache_bytes=64 * 1024)
    cold = _loaded_db()
    for i in range(400):
        assert hot.get(i * 3 + 1) == cold.get(i * 3 + 1)
    assert hot.get(2) is None
    assert hot.scan(0, 60) == cold.scan(0, 60)


def test_cache_cuts_device_blocks_and_io_time():
    hot = _loaded_db(cache_bytes=256 * 1024)
    cold = _loaded_db()
    queries = [i * 3 + 1 for i in range(0, 400, 4)] * 3

    def measure(db):
        before = db.stats.snapshot()
        for key in queries:
            db.get(key)
        delta = before.delta(db.stats)
        return delta.counter(BLOCKS_READ), delta.stage_time(Stage.IO)

    hot_blocks, hot_io = measure(hot)
    cold_blocks, cold_io = measure(cold)
    assert hot.stats.get(CACHE_HITS) > 0
    assert hot_blocks < cold_blocks
    assert hot_io < cold_io


def test_cache_survives_compaction():
    # Enough writes to force multi-level compactions; dead table files
    # must be invalidated, never served stale.
    db = LSMTree(small_test_options(cache_bytes=32 * 1024))
    for round_no in range(3):
        for i in range(500):
            db.put(i + 1, b"r%d-%d" % (round_no, i))
        db.flush()
        for i in range(0, 500, 7):
            assert db.get(i + 1) == b"r%d-%d" % (round_no, i)
    assert db.stats.get("op.compactions") >= 1
    assert db.stats.get(CACHE_MISSES) > 0


def test_reopen_honours_changed_cache_bytes():
    db = _loaded_db(cache_bytes=64 * 1024)
    db.get(1)
    # Cache disabled on reopen: the stale wrapper must be unwrapped.
    cold = LSMTree.reopen(small_test_options(), db.device)
    assert not isinstance(cold.device, CachedBlockDevice)
    # Unchanged capacity: the warm cache is kept.
    warm = LSMTree.reopen(small_test_options(cache_bytes=64 * 1024),
                          db.device)
    assert isinstance(warm.device, CachedBlockDevice)
    # Changed capacity: rewrapped with the configured size.
    resized = LSMTree.reopen(small_test_options(cache_bytes=8 * 1024),
                             db.device)
    assert isinstance(resized.device, CachedBlockDevice)
    assert resized.device.cache.capacity_bytes == 8 * 1024


def test_wal_replay_does_not_populate_cache():
    options = small_test_options(enable_wal=True, cache_bytes=64 * 1024)
    db = LSMTree(options)
    for i in range(20):
        db.put(i + 1, b"w")  # stays in the memtable + WAL (no flush)
    recovered = LSMTree.reopen(options, db.device)
    assert recovered.get(5) == b"w"
    # Replaying the log admitted nothing and counted no cache traffic.
    assert len(recovered.device.cache) == 0
    assert recovered.stats.get(CACHE_MISSES) == 0


def test_cache_bytes_option_validation():
    from repro.errors import InvalidOptionError
    with pytest.raises(InvalidOptionError):
        small_test_options(cache_bytes=-1)


# -- the decompressed data-block tier ------------------------------------


def test_data_block_cache_lru_and_byte_capacity():
    from repro.storage.block_cache import DataBlockCache
    cache = DataBlockCache(100)
    assert cache.put("f", 0, b"x" * 40) == 0
    assert cache.put("f", 1, b"y" * 40) == 0
    assert cache.get("f", 0) == b"x" * 40  # touch: 0 is now MRU
    assert cache.put("f", 2, b"z" * 40) == 1  # evicts block 1 (LRU)
    assert cache.get("f", 1) is None
    assert cache.get("f", 0) is not None
    assert cache.used_bytes() == 80
    assert len(cache) == 2


def test_data_block_cache_rejects_oversized_payloads():
    from repro.storage.block_cache import DataBlockCache
    cache = DataBlockCache(10)
    assert cache.put("f", 0, b"a" * 11) == 0  # dropped, not admitted
    assert cache.get("f", 0) is None
    assert len(cache) == 0


def test_data_block_cache_replacement_updates_bytes():
    from repro.storage.block_cache import DataBlockCache
    cache = DataBlockCache(100)
    cache.put("f", 0, b"a" * 60)
    cache.put("f", 0, b"b" * 20)  # same key, smaller payload
    assert cache.used_bytes() == 20
    assert cache.get("f", 0) == b"b" * 20


def test_data_block_cache_file_invalidation():
    from repro.storage.block_cache import DataBlockCache
    cache = DataBlockCache(1000)
    cache.put("f", 0, b"a" * 10)
    cache.put("f", 1, b"b" * 10)
    cache.put("g", 0, b"c" * 10)
    assert cache.invalidate_file("f") == 2
    assert cache.get("f", 0) is None
    assert cache.get("g", 0) == b"c" * 10
    assert cache.used_bytes() == 10
    assert cache.invalidate_file("missing") == 0
    cache.clear()
    assert len(cache) == 0 and cache.used_bytes() == 0


def test_data_block_cache_rejects_negative_capacity():
    from repro.storage.block_cache import DataBlockCache
    with pytest.raises(StorageError):
        DataBlockCache(-1)


# -- quarantine: the poisoned-block regression --------------------------


def test_lru_cache_quarantine_blocks_readmission():
    cache = LRUBlockCache(capacity_bytes=1024, block_size=BS)
    cache.put("f", 3, b"x" * BS)
    cache.quarantine("f", 3)
    # Eviction is immediate and re-admission is refused: a reader that
    # re-fetches the poisoned bytes must not repopulate the cache.
    assert cache.get("f", 3) is None
    assert cache.put("f", 3, b"x" * BS) == 0
    assert cache.get("f", 3) is None
    assert cache.is_quarantined("f", 3)
    # Other blocks of the same file are unaffected.
    cache.put("f", 4, b"y" * BS)
    assert cache.get("f", 4) == b"y" * BS
    # Whole-file invalidation changes the identity and lifts the bar.
    cache.invalidate_file("f")
    assert not cache.is_quarantined("f", 3)
    cache.put("f", 3, b"z" * BS)
    assert cache.get("f", 3) == b"z" * BS


def test_data_block_cache_quarantine_blocks_readmission():
    from repro.storage.block_cache import DataBlockCache
    cache = DataBlockCache(1024)
    cache.put("f", 0, b"decoded")
    cache.quarantine("f", 0)
    assert cache.get("f", 0) is None
    assert cache.put("f", 0, b"decoded") == 0
    assert cache.is_quarantined("f", 0)
    cache.invalidate_file("f")
    assert not cache.is_quarantined("f", 0)


def test_cached_device_quarantine_never_recaches_the_block():
    cached, inner = _device()
    stats = cached.stats
    cached.pread("f", 0, 4 * BS)  # warm blocks 0-3
    assert len(cached.cache) == 4
    cached.quarantine("f", 1)
    assert len(cached.cache) == 3
    before = stats.get(CACHE_MISSES)
    for _ in range(3):
        # The bytes still arrive (from the device), but block 1 misses
        # every time and is never re-admitted.
        assert cached.pread("f", BS, BS) == bytes(range(256))[:BS]
        assert not cached.cache.get("f", 1)
    assert stats.get(CACHE_MISSES) == before + 3
    assert len(cached.cache) == 3


def test_rename_lifts_quarantine_with_the_old_identity():
    cached, inner = _device()
    cached.pread("f", 0, BS)
    cached.quarantine("f", 0)
    cached.rename("f", "g")
    # The poison belonged to the *old* bytes under the old name; a new
    # file reusing either name starts clean.
    assert not cached.cache.is_quarantined("f", 0)
    assert not cached.cache.is_quarantined("g", 0)
    assert cached.pread("g", 0, BS) == bytes(range(256))[:BS]
    assert cached.cache.get("g", 0) is not None
