"""Fuzzed iterator semantics: interleaved seeks and advances vs reference."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.indexes.registry import IndexKind
from repro.lsm.db import LSMTree
from repro.lsm.options import CompactionPolicy, small_test_options


def _reference_scan(reference, start, count):
    return sorted((k, v) for k, v in reference.items() if k >= start)[:count]


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 1 << 16),
       cursor_ops=st.lists(
           st.one_of(st.tuples(st.just("seek"), st.integers(0, 3000)),
                     st.tuples(st.just("advance"), st.just(0))),
           min_size=1, max_size=40))
def test_cursor_interleavings_match_reference(seed, cursor_ops):
    db = LSMTree(small_test_options(index_kind=IndexKind.PGM,
                                    value_capacity=8))
    rng = random.Random(seed)
    reference = {}
    for _ in range(400):
        key = rng.randrange(3000)
        value = b"%d" % rng.randrange(100)
        db.put(key, value)
        reference[key] = value
    ordered = sorted(reference.items())
    cursor = db.iterator()
    cursor.seek_to_first()
    position = 0  # index into ordered

    for op, arg in cursor_ops:
        if op == "seek":
            cursor.seek(arg)
            position = next((i for i, (k, _) in enumerate(ordered)
                             if k >= arg), len(ordered))
        else:
            if position < len(ordered):
                cursor.advance()
                position += 1
        if position < len(ordered):
            assert cursor.valid()
            assert (cursor.key(), cursor.value()) == ordered[position]
        else:
            assert not cursor.valid()
    db.close()


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 1 << 16))
def test_cursor_full_walk_all_policies(seed):
    for policy in (CompactionPolicy.LEVELING, CompactionPolicy.TIERING):
        db = LSMTree(small_test_options(value_capacity=8,
                                        compaction_policy=policy))
        rng = random.Random(seed)
        reference = {}
        for _ in range(300):
            key = rng.randrange(2000)
            value = b"%d" % rng.randrange(50)
            db.put(key, value)
            reference[key] = value
        cursor = db.iterator()
        cursor.seek_to_first()
        assert cursor.take(10_000) == sorted(reference.items())
        db.close()
