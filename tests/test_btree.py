"""Unit + property tests for the B+-tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexBuildError
from repro.indexes import codec
from repro.indexes.btree import BPlusTree


def _bulk(n, order=16):
    pairs = [(i * 10, i) for i in range(n)]
    return BPlusTree.bulk_load(pairs, order=order), pairs


def test_bulk_load_and_get():
    tree, pairs = _bulk(500)
    for key, value in pairs:
        assert tree.get(key) == value
    assert tree.get(5) is None
    assert len(tree) == 500


def test_floor_semantics():
    tree, _ = _bulk(100)
    assert tree.floor(55) == (50, 5)
    assert tree.floor(50) == (50, 5)
    assert tree.floor(99999) == (990, 99)
    assert tree.floor(-1) is None


def test_items_in_order():
    tree, pairs = _bulk(300)
    assert list(tree.items()) == pairs


def test_range_items():
    tree, _ = _bulk(100)
    got = list(tree.range_items(95, 155))
    assert got == [(100, 10), (110, 11), (120, 12), (130, 13), (140, 14),
                   (150, 15)]
    assert list(tree.range_items(2000, 100)) == []


def test_insert_then_get():
    tree = BPlusTree(order=4)
    keys = list(range(0, 1000, 7))
    random.Random(3).shuffle(keys)
    for key in keys:
        tree.insert(key, key * 2)
    for key in keys:
        assert tree.get(key) == key * 2
    assert len(tree) == len(keys)
    assert [key for key, _ in tree.items()] == sorted(keys)


def test_insert_overwrites():
    tree = BPlusTree()
    tree.insert(1, 10)
    tree.insert(1, 20)
    assert tree.get(1) == 20
    assert len(tree) == 1


def test_height_grows_logarithmically():
    tree, _ = _bulk(2000, order=8)
    assert 3 <= tree.height <= 6
    assert tree.node_count() > 100


def test_empty_tree():
    tree = BPlusTree()
    assert tree.get(1) is None
    assert tree.floor(1) is None
    assert list(tree.items()) == []
    assert len(tree) == 0


def test_invalid_order():
    with pytest.raises(IndexBuildError):
        BPlusTree(order=2)


def test_serialize_roundtrip():
    tree, pairs = _bulk(700, order=8)
    writer = codec.Writer()
    tree.serialize_into(writer)
    restored = BPlusTree.deserialize_from(codec.Reader(writer.getvalue()))
    assert list(restored.items()) == pairs
    assert restored.height == tree.height
    assert restored.floor(123) == tree.floor(123)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 32), min_size=1,
                max_size=300, unique=True))
def test_property_bulk_load_floor_matches_bisect(keys):
    keys = sorted(keys)
    tree = BPlusTree.bulk_load([(key, i) for i, key in enumerate(keys)],
                               order=8)
    import bisect
    for probe in keys + [keys[0] - 1, keys[-1] + 1, (keys[0] + keys[-1]) // 2]:
        idx = bisect.bisect_right(keys, probe) - 1
        expected = (keys[idx], idx) if idx >= 0 else None
        assert tree.floor(probe) == expected


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=1 << 20),
                          st.integers(min_value=0, max_value=100)),
                max_size=200))
def test_property_inserts_match_dict(ops):
    tree = BPlusTree(order=4)
    reference = {}
    for key, value in ops:
        tree.insert(key, value)
        reference[key] = value
    assert len(tree) == len(reference)
    assert list(tree.items()) == sorted(reference.items())
