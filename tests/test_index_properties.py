"""Cross-index property tests: the Section 4 interface contract.

Every clustered index must satisfy, for any strictly-increasing key
array and any configured boundary:

1. containment — ``lookup(k)`` brackets the true position of every
   member key;
2. bounded width — the returned range respects the configured position
   boundary (with the +2 integer-rounding slack);
3. serialisation — ``deserialize(serialize())`` answers identically;
4. clamping — bounds always fall inside ``[0, n)``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexBuildError, IndexLookupError
from repro.indexes.registry import (
    ALL_KINDS,
    IndexFactory,
    IndexKind,
    deserialize_index,
)

sorted_keys = st.lists(
    st.integers(min_value=0, max_value=(1 << 62)),
    min_size=2, max_size=300, unique=True).map(sorted)

boundaries = st.sampled_from([4, 8, 32, 128])


@pytest.mark.parametrize("kind", ALL_KINDS)
@settings(max_examples=25, deadline=None)
@given(keys=sorted_keys, boundary=boundaries)
def test_containment_and_width(kind, keys, boundary):
    index = IndexFactory(kind, boundary).build(keys)
    slack = boundary + 2
    for step in range(0, len(keys), max(1, len(keys) // 40)):
        bound = index.lookup(keys[step])
        assert 0 <= bound.lo <= step < bound.hi <= len(keys)
        if kind is not IndexKind.RMI:
            # RMI's boundary is a tuning target, not a hard bound.
            assert bound.width <= slack


@pytest.mark.parametrize("kind", ALL_KINDS)
@settings(max_examples=15, deadline=None)
@given(keys=sorted_keys, boundary=boundaries)
def test_serialization_equivalence(kind, keys, boundary):
    index = IndexFactory(kind, boundary).build(keys)
    clone = deserialize_index(index.serialize())
    assert clone.kind == index.kind
    assert clone.n == index.n
    probes = keys[:: max(1, len(keys) // 20)] + [keys[0] - 1, keys[-1] + 1]
    for probe in probes:
        assert clone.lookup(probe) == index.lookup(probe)


@pytest.mark.parametrize("kind", ALL_KINDS)
@settings(max_examples=15, deadline=None)
@given(keys=sorted_keys, boundary=boundaries)
def test_absent_key_bounds_clamped(kind, keys, boundary):
    index = IndexFactory(kind, boundary).build(keys)
    for probe in (0, keys[0] - 1 if keys[0] else 0, keys[-1] + 1, 1 << 63):
        bound = index.lookup(probe)
        assert 0 <= bound.lo <= bound.hi <= len(keys)


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_lookup_before_build_raises(kind):
    index = IndexFactory(kind, 16).create()
    with pytest.raises(IndexLookupError):
        index.lookup(1)


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_empty_build_raises(kind):
    index = IndexFactory(kind, 16).create()
    with pytest.raises(IndexBuildError):
        index.build([])


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_size_and_cost_reported(kind, uniform_keys):
    keys = uniform_keys[:4000]
    index = IndexFactory(kind, 32).build(keys)
    assert index.size_bytes() == len(index.serialize())
    assert index.size_bytes() > 0
    assert index.train_key_visits >= len(keys) // 32  # FP visits per block
    from repro.storage.cost_model import DEFAULT_COST_MODEL
    assert index.expected_lookup_cost_us(DEFAULT_COST_MODEL) > 0.0


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_insertion_point_for_absent_keys_between_members(kind, uniform_keys):
    """For seeks: absent keys inside a segment bracket their neighbours."""
    keys = uniform_keys[:2000]
    index = IndexFactory(kind, 32).build(keys)
    for i in range(50, 1950, 97):
        probe = keys[i] + 1  # between keys[i] and keys[i+1]
        if probe == keys[i + 1]:
            continue
        bound = index.lookup(probe)
        # The bound must allow finding the successor position i+1 by
        # scanning forward from bound.lo.
        assert bound.lo <= i + 1
