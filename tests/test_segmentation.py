"""Property tests for the three segmentation algorithms.

The central invariant of the whole system: every segmentation keeps
each key's prediction within epsilon of its true position.  PGM's
optimality relative to the greedy corridor is also asserted.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexes.radix_spline import interpolate
from repro.indexes.segmentation import (
    greedy_corridor_segments,
    greedy_spline_points,
    optimal_pla_segments,
    verify_segments,
)

sorted_keys = st.lists(
    st.integers(min_value=0, max_value=(1 << 62)),
    min_size=1, max_size=400, unique=True).map(sorted)

epsilons = st.sampled_from([1, 2, 4, 16, 64])


@settings(max_examples=60, deadline=None)
@given(sorted_keys, epsilons)
def test_greedy_error_bound(keys, epsilon):
    segments, visits = greedy_corridor_segments(keys, epsilon)
    assert visits == len(keys)
    assert verify_segments(keys, segments, epsilon) <= epsilon + 1e-6


@settings(max_examples=60, deadline=None)
@given(sorted_keys, epsilons)
def test_optimal_error_bound(keys, epsilon):
    segments, visits = optimal_pla_segments(keys, epsilon)
    assert visits == len(keys)
    assert verify_segments(keys, segments, epsilon) <= epsilon + 1e-6


@settings(max_examples=60, deadline=None)
@given(sorted_keys, epsilons)
def test_optimal_never_more_segments_than_greedy(keys, epsilon):
    greedy, _ = greedy_corridor_segments(keys, epsilon)
    optimal, _ = optimal_pla_segments(keys, epsilon)
    assert len(optimal) <= len(greedy)


@settings(max_examples=60, deadline=None)
@given(sorted_keys, epsilons)
def test_segments_partition_the_array(keys, epsilon):
    for algorithm in (greedy_corridor_segments, optimal_pla_segments):
        segments, _ = algorithm(keys, epsilon)
        position = 0
        for segment in segments:
            assert segment.start == position
            assert segment.first_key == keys[position]
            position += segment.length
        assert position == len(keys)


@settings(max_examples=60, deadline=None)
@given(sorted_keys, epsilons)
def test_spline_interpolation_error_bound(keys, epsilon):
    points, visits = greedy_spline_points(keys, epsilon)
    assert visits == len(keys)
    assert points[0] == (keys[0], 0)
    if len(keys) == 1:
        assert points == [(keys[0], 0)]
        return
    assert points[-1] == (keys[-1], len(keys) - 1)
    spline_keys = [key for key, _ in points]
    assert spline_keys == sorted(set(spline_keys))
    # Every key interpolates within epsilon.
    seg = 0
    for pos, key in enumerate(keys):
        while points[seg + 1][0] < key:
            seg += 1
        x0, y0 = points[seg]
        x1, y1 = points[seg + 1]
        predicted = interpolate(x0, y0, x1, y1, key)
        assert abs(predicted - pos) <= epsilon + 1e-6


def test_single_key():
    for algorithm in (greedy_corridor_segments, optimal_pla_segments):
        segments, _ = algorithm([42], 4)
        assert len(segments) == 1
        assert segments[0].predict(42) == pytest.approx(0.0)
    points, _ = greedy_spline_points([42], 4)
    assert points == [(42, 0)]


def test_collinear_keys_make_one_segment():
    keys = list(range(1000, 2000, 5))
    for algorithm in (greedy_corridor_segments, optimal_pla_segments):
        segments, _ = algorithm(keys, 1)
        assert len(segments) == 1
    points, _ = greedy_spline_points(keys, 1)
    assert len(points) == 2


def test_optimal_strictly_better_on_drifting_data():
    """A slope that drifts slowly defeats the anchored greedy corridor."""
    rng = random.Random(11)
    keys = []
    key = 0
    step = 10
    for i in range(4000):
        if i % 200 == 0:
            step += 3
        key += step + rng.randrange(0, 3)
        keys.append(key)
    greedy, _ = greedy_corridor_segments(keys, 8)
    optimal, _ = optimal_pla_segments(keys, 8)
    assert len(optimal) < len(greedy)


def test_huge_keyspace_numerics():
    rng = random.Random(5)
    keys = sorted(rng.sample(range(1 << 60, 1 << 63), 5000))
    for algorithm, eps in ((greedy_corridor_segments, 8),
                           (optimal_pla_segments, 8)):
        segments, _ = algorithm(keys, eps)
        assert verify_segments(keys, segments, eps) <= eps + 1e-3
