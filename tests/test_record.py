"""Unit + property tests for the fixed-size record codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CorruptionError, InvalidOptionError
from repro.lsm.record import (
    KIND_TOMBSTONE,
    KIND_VALUE,
    Record,
    compare_versions,
    decode_entry,
    decode_key,
    encode_entry,
    entry_size,
    make_tombstone,
    make_value,
    split_meta,
)


def test_entry_size():
    assert entry_size(0) == 20
    assert entry_size(1004) == 1024


def test_roundtrip_value_record():
    record = make_value(42, 7, b"hello")
    blob = encode_entry(record, 16)
    assert len(blob) == entry_size(16)
    out = decode_entry(blob, 0, 16)
    assert out == record
    assert decode_key(blob, 0) == 42


def test_roundtrip_tombstone():
    record = make_tombstone(99, 3)
    blob = encode_entry(record, 8)
    out = decode_entry(blob, 0, 8)
    assert out.is_tombstone
    assert out.key == 99
    assert out.seq == 3
    assert out.value == b""


def test_offset_decoding():
    blob = (encode_entry(make_value(1, 1, b"a"), 4)
            + encode_entry(make_value(2, 2, b"bb"), 4))
    assert decode_entry(blob, entry_size(4), 4).key == 2
    assert decode_key(blob, entry_size(4)) == 2


def test_oversized_value_rejected():
    with pytest.raises(InvalidOptionError):
        encode_entry(make_value(1, 1, b"too long"), 4)


def test_bad_key_rejected():
    with pytest.raises(InvalidOptionError):
        encode_entry(Record(-1, 1, KIND_VALUE, b""), 4)
    with pytest.raises(InvalidOptionError):
        encode_entry(Record(1 << 65, 1, KIND_VALUE, b""), 4)


def test_truncated_buffer_raises():
    blob = encode_entry(make_value(1, 1, b"abc"), 8)
    with pytest.raises(CorruptionError):
        decode_entry(blob[:-10], 0, 8)
    with pytest.raises(CorruptionError):
        decode_key(b"short", 0)


def test_version_ordering():
    newer = make_value(5, 10, b"x")
    older = make_value(5, 3, b"y")
    assert compare_versions(newer, older) < 0  # newest first
    assert compare_versions(older, newer) > 0
    assert compare_versions(newer, newer) == 0
    assert compare_versions(make_value(1, 1, b""), make_value(2, 9, b"")) < 0
    assert newer.newer_than(older)


def test_split_meta():
    assert split_meta((7 << 8) | KIND_TOMBSTONE) == (7, KIND_TOMBSTONE)


@settings(max_examples=60, deadline=None)
@given(key=st.integers(min_value=0, max_value=(1 << 64) - 1),
       seq=st.integers(min_value=0, max_value=(1 << 56) - 1),
       kind=st.sampled_from([KIND_VALUE, KIND_TOMBSTONE]),
       value=st.binary(max_size=32))
def test_property_roundtrip(key, seq, kind, value):
    record = Record(key, seq, kind, value if kind == KIND_VALUE else b"")
    blob = encode_entry(record, 32)
    assert len(blob) == entry_size(32)
    assert decode_entry(blob, 0, 32) == record
