"""Unit tests for the MANIFEST version log and the model sidecar store."""

import struct

import pytest

from repro.errors import CorruptionError
from repro.persist.manifest import (
    MANIFEST_NAME,
    TABLE_FORMAT_BLOCKED,
    TABLE_FORMAT_FLAT,
    Manifest,
    ManifestState,
    VersionEdit,
)
from repro.persist.models import MODEL_FILE_PREFIX, ModelStore
from repro.storage.block_device import MemoryBlockDevice
from repro.storage.stats import (
    MANIFEST_EDITS,
    MANIFEST_TORN_TAILS,
    Stats,
)


def _device():
    return MemoryBlockDevice(block_size=256)


def _edit(**kwargs):
    edit = VersionEdit(**{k: v for k, v in kwargs.items()
                          if k in ("kind", "next_file_number", "last_seq")})
    for triple in kwargs.get("adds", ()):
        edit.add_file(*triple)
    for triple in kwargs.get("deletes", ()):
        edit.delete_file(*triple)
    for level, name in kwargs.get("pointers", {}).items():
        edit.point_model(level, name)
    return edit


# -- wire format ---------------------------------------------------------

def test_version_edit_roundtrip():
    edit = _edit(kind="compaction", next_file_number=42, last_seq=9000,
                 adds=[(2, 7, "sst-000007"), (2, 8, "sst-000008")],
                 deletes=[(1, 3, "sst-000003")],
                 pointers={2: "mdl-L02-000005", 1: ""})
    decoded = VersionEdit.decode(edit.encode())
    assert decoded == edit


def test_empty_edit_roundtrip():
    edit = VersionEdit()
    assert edit.is_empty
    assert VersionEdit.decode(edit.encode()) == edit


def test_unknown_tag_raises():
    with pytest.raises(CorruptionError):
        VersionEdit.decode(b"\xff")


def test_legacy_add_file_tag_decodes_as_flat_format():
    # Hand-build a payload using the pre-block-format ADD_FILE tag (4):
    # tag u8 | level u32 | number u64 | name bytes — no format field.
    from repro.indexes import codec
    writer = codec.Writer()
    writer.put_u8(4)
    writer.put_u32(1)
    writer.put_u64(7)
    writer.put_bytes(b"sst-000007")
    decoded = VersionEdit.decode(writer.getvalue())
    assert decoded.adds == [(1, 7, "sst-000007", TABLE_FORMAT_FLAT)]
    # Re-encoding upgrades the record to the format-carrying tag, and
    # the FLAT label survives the round trip.
    assert VersionEdit.decode(decoded.encode()) == decoded


def test_add_file_format_version_roundtrip():
    edit = VersionEdit()
    edit.add_file(0, 1, "sst-000001", TABLE_FORMAT_FLAT)
    edit.add_file(0, 2, "sst-000002", TABLE_FORMAT_BLOCKED)
    edit.add_file(0, 3, "sst-000003")  # defaults to current (blocked)
    decoded = VersionEdit.decode(edit.encode())
    assert decoded.adds == [(0, 1, "sst-000001", TABLE_FORMAT_FLAT),
                            (0, 2, "sst-000002", TABLE_FORMAT_BLOCKED),
                            (0, 3, "sst-000003", TABLE_FORMAT_BLOCKED)]


# -- state accumulation --------------------------------------------------

def test_state_applies_adds_deletes_and_pointers():
    state = ManifestState()
    state.apply(_edit(adds=[(0, 1, "sst-000001")], last_seq=10,
                      next_file_number=1))
    state.apply(_edit(adds=[(0, 2, "sst-000002")], last_seq=20,
                      next_file_number=2))
    state.apply(_edit(deletes=[(0, 1, "sst-000001"),
                               (0, 2, "sst-000002")],
                      adds=[(1, 3, "sst-000003")],
                      pointers={1: "mdl-L01-000001"}))
    assert state.files == {3: (1, "sst-000003", TABLE_FORMAT_BLOCKED)}
    assert state.model_pointers == {1: "mdl-L01-000001"}
    assert state.last_seq == 20
    assert state.next_file_number == 3  # tracks the max file number seen
    state.apply(_edit(pointers={1: ""}))
    assert state.model_pointers == {}
    assert state.live_names() == {"sst-000003"}


def test_state_rejects_inconsistent_edits():
    state = ManifestState()
    state.apply(_edit(adds=[(0, 1, "sst-000001")]))
    with pytest.raises(CorruptionError):
        state.apply(_edit(adds=[(1, 1, "sst-000001")]))  # duplicate number
    with pytest.raises(CorruptionError):
        state.apply(_edit(deletes=[(0, 9, "sst-000009")]))  # unknown file


# -- log append / replay -------------------------------------------------

def test_append_and_replay():
    device = _device()
    stats = Stats()
    manifest = Manifest(device, stats=stats)
    assert not manifest.exists()
    assert manifest.replay().is_empty
    manifest.append(_edit(adds=[(0, 1, "sst-000001")], last_seq=5))
    manifest.append(_edit(adds=[(0, 2, "sst-000002")], last_seq=9))
    state = manifest.replay()
    assert state.files == {1: (0, "sst-000001", TABLE_FORMAT_BLOCKED),
                           2: (0, "sst-000002", TABLE_FORMAT_BLOCKED)}
    assert state.last_seq == 9
    assert state.edits_applied == 2
    assert stats.get(MANIFEST_EDITS) == 2


def test_replay_tolerates_torn_tail_at_every_truncation_point():
    device = _device()
    manifest = Manifest(device)
    boundaries = [0]
    for i in range(1, 6):
        manifest.append(_edit(adds=[(0, i, f"sst-{i:06d}")], last_seq=i))
        boundaries.append(device.size(MANIFEST_NAME))
    full = device.pread(MANIFEST_NAME, 0, device.size(MANIFEST_NAME))
    for cut in range(len(full) + 1):
        truncated = _device()
        truncated.create(MANIFEST_NAME)
        truncated.append(MANIFEST_NAME, full[:cut])
        state = Manifest(truncated).replay()
        # The replay must land exactly on the last intact record.
        intact = max(i for i, end in enumerate(boundaries) if end <= cut)
        assert state.edits_applied == intact
        assert set(state.files) == set(range(1, intact + 1))


def test_replay_stops_at_crc_corruption():
    device = _device()
    stats = Stats()
    manifest = Manifest(device, stats=stats)
    manifest.append(_edit(adds=[(0, 1, "sst-000001")]))
    first_end = device.size(MANIFEST_NAME)
    manifest.append(_edit(adds=[(0, 2, "sst-000002")]))
    # Flip one payload byte of the second frame.
    raw = bytearray(device.pread(MANIFEST_NAME, 0,
                                 device.size(MANIFEST_NAME)))
    raw[first_end + struct.calcsize("<II")] ^= 0xFF
    device.create(MANIFEST_NAME)
    device.append(MANIFEST_NAME, bytes(raw))
    state = manifest.replay()
    assert state.files == {1: (0, "sst-000001", TABLE_FORMAT_BLOCKED)}
    assert stats.get(MANIFEST_TORN_TAILS) == 1


def test_rewrite_compacts_log_and_preserves_state():
    device = _device()
    manifest = Manifest(device)
    for i in range(1, 30):
        manifest.append(_edit(adds=[(0, i, f"sst-{i:06d}")], last_seq=i))
        if i > 1:
            manifest.append(_edit(deletes=[(0, i - 1, f"sst-{i - 1:06d}")]))
    before = manifest.replay()
    long_size = manifest.size_bytes()
    snapshot = VersionEdit(kind="checkpoint", last_seq=before.last_seq,
                           next_file_number=before.next_file_number)
    for number, (level, name, fmt) in before.files.items():
        snapshot.add_file(level, number, name, fmt)
    manifest.rewrite(snapshot)
    after = manifest.replay()
    assert after.files == before.files
    assert after.last_seq == before.last_seq
    assert after.next_file_number == before.next_file_number
    assert manifest.size_bytes() < long_size
    assert not device.exists("manifest.tmp")


# -- model sidecars ------------------------------------------------------

def test_model_store_roundtrip_and_epochs():
    device = _device()
    store = ModelStore(device)
    payload = b"\x07" + bytes(range(64))
    name = store.save(2, payload)
    assert name.startswith(MODEL_FILE_PREFIX)
    assert store.load(name) == payload
    second = store.save(2, payload)
    assert second != name  # fresh epoch, never overwrites
    # A new store on the same device resumes past surviving epochs.
    resumed = ModelStore(device)
    third = resumed.save(2, payload)
    assert third not in (name, second)


def test_model_store_corruption_returns_none():
    device = _device()
    store = ModelStore(device)
    name = store.save(1, b"payload-bytes")
    raw = bytearray(device.pread(name, 0, device.size(name)))
    raw[-1] ^= 0x1
    device.create(name)
    device.append(name, bytes(raw))
    assert store.load(name) is None
    assert store.load("mdl-L09-000099") is None  # missing file
    assert store.load(None) is None
    assert store.load("") is None


def test_model_store_delete_is_idempotent():
    device = _device()
    store = ModelStore(device)
    name = store.save(1, b"x")
    store.delete(name)
    store.delete(name)  # second delete of a missing sidecar is a no-op
    assert store.list_sidecars() == []
