"""Tests for Options validation and derived quantities."""

import pytest

from repro.errors import InvalidOptionError
from repro.indexes.registry import IndexKind
from repro.lsm.options import Granularity, Options, small_test_options


def test_defaults_validate():
    options = Options()
    options.validate()
    assert options.entry_bytes == 1024
    assert options.size_ratio == 10
    assert options.bloom_bits_per_key == 10


def test_derived_counts():
    options = Options(value_capacity=44, write_buffer_bytes=64 * 64,
                      sstable_bytes=128 * 64)
    assert options.entry_bytes == 64
    assert options.entries_per_buffer == 64
    assert options.entries_per_sstable == 128


def test_level_capacities_geometric():
    options = Options(size_ratio=10)
    assert options.level_capacity_bytes(2) == \
        options.level_capacity_bytes(1) * 10
    assert options.level_capacity_bytes(0) == \
        options.l0_compaction_trigger * options.write_buffer_bytes


@pytest.mark.parametrize("field,value", [
    ("position_boundary", 1),
    ("size_ratio", 1),
    ("value_capacity", -1),
    ("block_size", 32),
    ("bloom_bits_per_key", -1),
    ("max_levels", 1),
    ("l0_compaction_trigger", 0),
])
def test_invalid_fields_rejected(field, value):
    options = Options(**{field: value})
    with pytest.raises(InvalidOptionError):
        options.validate()


def test_sstable_must_hold_one_entry():
    options = Options(value_capacity=4096, sstable_bytes=1024)
    with pytest.raises(InvalidOptionError):
        options.validate()


def test_buffer_must_hold_one_entry():
    options = Options(value_capacity=4096, write_buffer_bytes=128,
                      sstable_bytes=1 << 20)
    with pytest.raises(InvalidOptionError):
        options.validate()


def test_with_changes_is_functional():
    base = Options()
    changed = base.with_changes(position_boundary=64,
                                index_kind=IndexKind.PGM)
    assert changed.position_boundary == 64
    assert changed.index_kind is IndexKind.PGM
    assert base.position_boundary == 32  # untouched


def test_make_index_factory_reflects_options():
    options = Options(index_kind=IndexKind.RS, position_boundary=16,
                      radix_bits=4)
    factory = options.make_index_factory()
    assert factory.kind is IndexKind.RS
    assert factory.boundary == 16
    assert factory.radix_bits == 4


def test_small_test_options_shape():
    options = small_test_options()
    assert options.entry_bytes == 64
    assert options.entries_per_buffer == 64
    assert options.entries_per_sstable == 128
    assert options.granularity is Granularity.FILE


def test_granularity_enum_strings():
    assert str(Granularity.FILE) == "file"
    assert Granularity("level") is Granularity.LEVEL
