"""Integration tests: every experiment runs and satisfies its checks.

These run the real experiment code on trimmed axes (tiny subsets of
kinds/boundaries) so the whole harness is exercised in seconds; the
full paper-shaped sweeps live in ``benchmarks/``.
"""

import pytest

from repro.bench.experiments import (
    ablations,
    fig5_dataset_cdfs,
    fig6_boundary_sweep,
    fig7_breakdown,
    fig8_granularity,
    fig9_compaction,
    fig10_level_overhead,
    fig11_range_lookup,
    fig12_ycsb,
    service_study,
    table1_stage_times,
    unclustered_study,
)
from repro.bench.runner import Scale
from repro.indexes.registry import IndexKind

#: A micro scale for harness integration tests.
MICRO = Scale(name="micro", n_keys=4_000, n_ops=400, value_capacity=108,
              write_buffer_bytes=16 * 1024, sstable_unit_bytes=512,
              default_sstable_bytes=32 * 1024, size_ratio=5, seed=7)

TRIMMED_KINDS = (IndexKind.FP, IndexKind.PLR, IndexKind.PGM)


def test_fig5_runs():
    result = fig5_dataset_cdfs.run(scale=MICRO,
                                   datasets=("random", "fb", "books"))
    assert result.tables
    assert result.all_checks_passed, result.render()


def test_fig6_runs_trimmed():
    result = fig6_boundary_sweep.run(scale=MICRO, kinds=TRIMMED_KINDS,
                                     boundaries=(128, 32, 8))
    # The PGM-vs-PLR memory edge needs realistically sized tables (the
    # benchmarks assert it at smoke scale+); every other Figure 6 shape
    # must hold even at micro scale.
    scale_robust = [check for check in result.failed_checks()
                    if "PGM memory" not in check.name]
    assert not scale_robust, result.render()
    table = result.tables[0][1]
    assert len(table.rows) == len(TRIMMED_KINDS) * 3


def test_fig7_runs_trimmed():
    result = fig7_breakdown.run(scale=MICRO, kinds=TRIMMED_KINDS,
                                boundaries=(64, 16))
    assert result.all_checks_passed, result.render()


def test_fig8_runs_trimmed():
    result = fig8_granularity.run(scale=MICRO,
                                  kinds=(IndexKind.PLR, IndexKind.RMI,
                                         IndexKind.PGM),
                                  boundaries=(64,),
                                  paper_mib_sizes=(8, 64))
    assert result.tables
    # Memory shrink check must hold even at micro scale.
    failed = [c for c in result.failed_checks()
              if "coarser granularity" in c.name]
    assert not failed, result.render()


def test_fig9_runs_trimmed():
    result = fig9_compaction.run(scale=MICRO,
                                 kinds=(IndexKind.FP, IndexKind.PLR,
                                        IndexKind.PLEX),
                                 boundaries=(64, 32))
    assert result.all_checks_passed, result.render()


def test_fig10_runs():
    result = fig10_level_overhead.run(scale=MICRO)
    assert result.all_checks_passed, result.render()


def test_table1_runs():
    result = table1_stage_times.run(scale=MICRO, paper_mib_sizes=(4, 32))
    assert result.all_checks_passed, result.render()


def test_fig11_runs_trimmed():
    result = fig11_range_lookup.run(scale=MICRO,
                                    kinds=(IndexKind.FP, IndexKind.PGM),
                                    boundaries=(128, 8),
                                    range_lengths=(2, 256))
    assert result.tables


def test_fig12_runs_trimmed():
    result = fig12_ycsb.run(scale=MICRO,
                            kinds=(IndexKind.FP, IndexKind.FT,
                                   IndexKind.PGM),
                            boundaries=(32,), workloads=("B", "C"))
    assert result.tables
    rows = result.tables[0][1].rows
    assert len(rows) == 3


def test_unclustered_runs():
    result = unclustered_study.run(scale=MICRO, n_scans=8, scan_length=64)
    assert result.all_checks_passed, result.render()


def test_ablations_runs():
    result = ablations.run(scale=MICRO,
                           epsilon_recursive_values=(4, 16),
                           radix_bits_values=(1, 8))
    assert result.all_checks_passed, result.render()


@pytest.mark.parametrize("module", [
    ablations, fig5_dataset_cdfs, fig6_boundary_sweep, fig7_breakdown,
    fig8_granularity, fig9_compaction, fig10_level_overhead,
    table1_stage_times, fig11_range_lookup, fig12_ycsb, unclustered_study,
    service_study])
def test_experiment_metadata(module):
    assert isinstance(module.EXPERIMENT_ID, str)
    assert isinstance(module.TITLE, str)
    assert callable(module.run)


def test_hardware_runs():
    from repro.bench.experiments import hardware_study
    result = hardware_study.run(scale=MICRO,
                                profiles=("paper-nvme", "cloud-object"))
    assert result.tables
    # The request-bound claim must hold even at micro scale.
    failed = [c for c in result.failed_checks()
              if "request" in c.name or "interchangeable" in c.name]
    assert not failed, result.render()


def test_tiering_study_runs():
    from repro.bench.experiments import tiering_study
    result = tiering_study.run(scale=MICRO)
    assert result.all_checks_passed, result.render()


def test_service_study_runs():
    result = service_study.run(scale=MICRO, shard_counts=(1, 4),
                               batch_sizes=(1, 16))
    assert result.tables
    # Scale-robust claims: routing, scans, group-commit arithmetic and
    # the cache showing hits must hold even at micro scale.
    robust = [check for check in result.failed_checks()
              if "latency" not in check.name and "read time" not in check.name]
    assert not robust, result.render()
