"""Whole-system invariant checks after randomized workloads.

A single fuzz harness drives a database through a mixed workload and
then audits every structural invariant the design relies on:

* levels >= 1 are sorted, non-overlapping runs (leveling);
* level payloads respect their capacities after compaction settles;
* every live table's bloom filter admits every key it holds;
* every live table's learned index brackets every key it holds;
* the device holds exactly the live files (no leaked SSTables);
* memory accounting equals the sum over live structures.
"""

import random

import pytest

from repro.indexes.registry import ALL_KINDS, IndexKind
from repro.lsm.db import LSMTree
from repro.lsm.options import CompactionPolicy, small_test_options
from repro.lsm.record import decode_key
from repro.lsm.sstable import HEADER_BYTES
from repro.persist.manifest import MANIFEST_NAME


def _run_workload(db, seed, n_ops=1500):
    rng = random.Random(seed)
    live = {}
    for _ in range(n_ops):
        roll = rng.random()
        key = rng.randrange(1 << 32)
        if roll < 0.7:
            db.put(key, b"v%d" % (key & 0xFFFF))
            live[key] = True
        elif roll < 0.8 and live:
            victim = rng.choice(list(live))
            db.delete(victim)
            live.pop(victim, None)
        else:
            db.get(key)
    db.flush()
    db.maybe_compact()
    return live


def _audit_tables(db):
    for level, meta in db.version.all_files():
        table = meta.table
        keys = table.load_keys()
        assert keys == sorted(set(keys)), f"{table.name}: keys not strict"
        assert keys[0] == table.min_key
        assert keys[-1] == table.max_key
        for key in keys[:: max(1, len(keys) // 32)]:
            assert table.bloom.may_contain(key), \
                f"{table.name}: bloom false negative"
        if table.index is not None:
            for pos in range(0, len(keys), max(1, len(keys) // 32)):
                bound = table.index.lookup(keys[pos])
                assert bound.lo <= pos < bound.hi, \
                    f"{table.name}: index missed position {pos}"


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_invariants_after_fuzz(kind):
    db = LSMTree(small_test_options(index_kind=kind, value_capacity=8))
    _run_workload(db, seed=hash(kind.value) & 0xFFFF)
    options = db.options

    # Leveling: sorted disjoint runs and bounded level sizes.
    for level in range(1, options.max_levels):
        files = db.version.levels[level]
        for left, right in zip(files, files[1:]):
            assert left.max_key < right.min_key
    for level in range(1, options.max_levels - 1):
        assert (db.version.level_data_bytes(level)
                <= options.level_capacity_bytes(level))

    # Device holds exactly the live files plus the persistence layer
    # (the MANIFEST version log; model sidecars only exist under level
    # granularity, which this fuzz does not run).
    live_files = {meta.name for _, meta in db.version.all_files()}
    assert set(db.device.list_files()) == live_files | {MANIFEST_NAME}

    # Per-table structural audit.
    _audit_tables(db)

    # Memory accounting equals the live structure sum.
    index_sum = sum(meta.table.index_bytes()
                    for _, meta in db.version.all_files())
    assert db.index_memory_bytes() == index_sum
    bloom_sum = sum(meta.table.bloom_bytes()
                    for _, meta in db.version.all_files())
    assert db.bloom_memory_bytes() == bloom_sum
    db.close()


def test_invariants_after_fuzz_tiering():
    db = LSMTree(small_test_options(
        index_kind=IndexKind.PGM, value_capacity=8,
        compaction_policy=CompactionPolicy.TIERING))
    _run_workload(db, seed=77)
    # Tiering: runs may overlap but each run is internally sorted, and
    # run counts stay below the trigger after settling.
    for level in range(1, db.options.max_levels - 1):
        assert db.version.file_count(level) < db.options.size_ratio
    _audit_tables(db)
    db.close()


def test_raw_file_layout_matches_footer():
    """The first and last physical entries agree with footer metadata.

    Under the block format (codec ``none`` stores blocks verbatim) the
    first entry sits right after the file header and the last at the
    tail of the final data block; the sparse index pins both offsets.
    """
    db = LSMTree(small_test_options())
    _run_workload(db, seed=5, n_ops=600)
    for _, meta in db.version.all_files():
        table = meta.table
        entry_bytes = table.footer.entry_bytes
        _, first_off, _, _ = table.handles[0]
        assert first_off == HEADER_BYTES
        first = db.device.pread(table.name, first_off, entry_bytes)
        assert decode_key(first, 0) == table.min_key
        _, last_block_off, _, last_raw = table.handles[-1]
        last = db.device.pread(
            table.name, last_block_off + last_raw - entry_bytes, entry_bytes)
        assert decode_key(last, 0) == table.max_key
    db.close()
