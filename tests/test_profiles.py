"""Tests for hardware cost-model profiles."""

import pytest

from repro.storage.profiles import (
    CLOUD_OBJECT,
    FAST_NVME,
    PAPER_NVME,
    PROFILES,
    SATA_SSD,
    get_profile,
    io_cpu_ratio,
)


def test_profiles_registered():
    assert set(PROFILES) == {"paper-nvme", "fast-nvme", "sata-ssd",
                             "cloud-object"}
    assert get_profile("paper-nvme") is PAPER_NVME
    with pytest.raises(KeyError):
        get_profile("floppy")


def test_ratio_ordering():
    ratios = [io_cpu_ratio(model) for model in
              (FAST_NVME, PAPER_NVME, SATA_SSD, CLOUD_OBJECT)]
    assert ratios == sorted(ratios)
    assert ratios[0] < 2.0          # near-memory device
    assert ratios[-1] > 1000.0      # request-dominated object store


def test_paper_profile_is_default_calibration():
    from repro.storage.cost_model import DEFAULT_COST_MODEL
    assert PAPER_NVME == DEFAULT_COST_MODEL


def test_profiles_usable_by_engine():
    from repro.lsm.db import LSMTree
    from repro.lsm.options import small_test_options

    options = small_test_options().with_changes(cost_model=SATA_SSD)
    db = LSMTree(options)
    for i in range(200):
        db.put(i * 7, b"v%d" % i)
    db.flush()
    before = db.stats.total_time()
    db.get(7)
    slow_cost = db.stats.total_time() - before
    db.close()

    db = LSMTree(small_test_options())
    for i in range(200):
        db.put(i * 7, b"v%d" % i)
    db.flush()
    before = db.stats.total_time()
    db.get(7)
    fast_cost = db.stats.total_time() - before
    db.close()
    assert slow_cost > 5 * fast_cost
