"""Tests for the tiering compaction policy (the Section 6.2 extension)."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import InvalidOptionError
from repro.indexes.registry import IndexKind
from repro.lsm.db import LSMTree
from repro.lsm.options import CompactionPolicy, Granularity, small_test_options
from repro.storage.stats import COMPACT_BYTES_IN


def _tiered_options(**overrides):
    return small_test_options(
        compaction_policy=CompactionPolicy.TIERING, **overrides)


def _fill(db, n=800, seed=2):
    rng = random.Random(seed)
    keys = rng.sample(range(1, 1 << 40), n)
    reference = {}
    for i, key in enumerate(keys):
        value = b"v%d" % i
        db.put(key, value)
        reference[key] = value
    return keys, reference


def test_put_get_roundtrip_tiering():
    db = LSMTree(_tiered_options())
    keys, reference = _fill(db)
    for key in keys[::7]:
        assert db.get(key) == reference[key]
    db.close()


def test_overwrites_resolve_to_newest_run():
    db = LSMTree(_tiered_options())
    keys, reference = _fill(db, n=400)
    for key in keys[:100]:
        db.put(key, b"new")
        reference[key] = b"new"
    db.flush()
    for key in keys[:100]:
        assert db.get(key) == b"new"
    db.close()


def test_deletes_with_tiering():
    db = LSMTree(_tiered_options())
    keys, reference = _fill(db, n=400)
    for key in keys[:80]:
        db.delete(key)
        del reference[key]
    db.flush()
    for key in keys[:120]:
        assert db.get(key) == reference.get(key)
    db.close()


def test_scan_matches_reference_tiering():
    db = LSMTree(_tiered_options())
    keys, reference = _fill(db, n=600)
    ordered = sorted(reference)
    start = ordered[200]
    expected = [(k, reference[k]) for k in ordered[200:240]]
    assert db.scan(start, 40) == expected
    db.close()


def test_levels_hold_multiple_runs():
    db = LSMTree(_tiered_options())
    _fill(db, n=900)
    db.flush()
    # Under tiering some level must accumulate several (overlapping) runs.
    multi = [level for level in range(1, db.options.max_levels)
             if db.version.file_count(level) > 1]
    assert multi, db.describe_levels()
    # Runs in one level may overlap (that is the point of tiering).
    level = multi[0]
    files = db.version.levels[level]
    overlaps = any(a.max_key >= b.min_key and b.max_key >= a.min_key
                   for i, a in enumerate(files) for b in files[i + 1:])
    assert overlaps
    db.close()


def test_tiering_writes_less_than_leveling():
    """Tiering's point: each entry is rewritten fewer times."""
    results = {}
    for policy in (CompactionPolicy.LEVELING, CompactionPolicy.TIERING):
        db = LSMTree(small_test_options(compaction_policy=policy))
        _fill(db, n=1200, seed=5)
        db.flush()
        results[policy] = db.stats.get(COMPACT_BYTES_IN)
        db.close()
    assert results[CompactionPolicy.TIERING] \
        < results[CompactionPolicy.LEVELING]


def test_tiering_rejects_level_granularity():
    with pytest.raises(InvalidOptionError):
        _tiered_options(granularity=Granularity.LEVEL)


@pytest.mark.parametrize("kind", [IndexKind.FP, IndexKind.PGM,
                                  IndexKind.RMI])
def test_all_kinds_serve_reads_under_tiering(kind):
    db = LSMTree(_tiered_options(index_kind=kind))
    keys, reference = _fill(db, n=700, seed=4)
    for key in keys[::11]:
        assert db.get(key) == reference[key]
    db.close()


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(0, 1 << 16),
                  st.binary(max_size=8)),
        st.tuples(st.just("delete"), st.integers(0, 1 << 16), st.just(b"")),
        st.tuples(st.just("get"), st.integers(0, 1 << 16), st.just(b"")),
    ),
    max_size=120))
def test_model_based_tiering(ops):
    db = LSMTree(_tiered_options(value_capacity=8))
    reference = {}
    try:
        for op, key, value in ops:
            if op == "put":
                db.put(key, value)
                reference[key] = value
            elif op == "delete":
                db.delete(key)
                reference.pop(key, None)
            else:
                assert db.get(key) == reference.get(key)
        db.flush()
        db.maybe_compact()
        for key, value in reference.items():
            assert db.get(key) == value
        cursor = db.iterator()
        cursor.seek_to_first()
        assert cursor.take(10_000) == sorted(reference.items())
    finally:
        db.close()
