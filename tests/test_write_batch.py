"""Tests for WriteBatch: atomicity, group commit, WAL recovery."""

import pytest

from repro.errors import InvalidOptionError
from repro.lsm.db import LSMTree
from repro.lsm.options import small_test_options
from repro.lsm.record import make_value
from repro.lsm.wal import WriteAheadLog
from repro.lsm.write_batch import WriteBatch
from repro.storage.block_device import MemoryBlockDevice
from repro.storage.stats import (
    BATCH_WRITES,
    UPDATES,
    WAL_GROUP_COMMITS,
    WAL_RECORDS_APPENDED,
    WRITE_CALLS,
)


def _filled(n=10, start=1):
    batch = WriteBatch()
    for i in range(start, start + n):
        batch.put(i, b"v%d" % i)
    return batch


# -- the batch object ---------------------------------------------------

def test_batch_staging_and_introspection():
    batch = WriteBatch()
    assert not batch and len(batch) == 0
    batch.put(1, b"a").put(2, b"b").delete(1)
    assert len(batch) == 3
    assert batch.keys() == [1, 2, 1]
    assert batch.payload_bytes() == 2
    batch.clear()
    assert not batch


def test_batch_iteration_preserves_order():
    batch = WriteBatch().put(5, b"x").delete(5).put(5, b"y")
    kinds = [kind for kind, _, _ in batch]
    assert kinds[0] == kinds[2] != kinds[1]


# -- applying batches ---------------------------------------------------

def test_write_applies_every_record():
    db = LSMTree(small_test_options())
    applied = db.write(_filled(10))
    assert applied == 10
    for i in range(1, 11):
        assert db.get(i) == b"v%d" % i


def test_write_empty_batch_is_noop():
    db = LSMTree(small_test_options())
    seq_before = db._seq
    assert db.write(WriteBatch()) == 0
    assert db._seq == seq_before
    assert db.stats.get(BATCH_WRITES) == 0


def test_last_operation_wins_within_a_batch():
    db = LSMTree(small_test_options())
    db.write(WriteBatch().put(1, b"old").delete(1).put(1, b"new")
             .put(2, b"x").delete(2))
    assert db.get(1) == b"new"
    assert db.get(2) is None


def test_oversized_value_rejects_whole_batch():
    db = LSMTree(small_test_options())  # value_capacity 44
    batch = WriteBatch().put(1, b"fine").put(2, b"z" * 100)
    with pytest.raises(InvalidOptionError):
        db.write(batch)
    assert db.get(1) is None  # nothing was applied
    assert db.stats.get(UPDATES) == 0


def test_batch_counts_updates_and_batches():
    db = LSMTree(small_test_options())
    db.write(_filled(7))
    db.write(_filled(3, start=100))
    assert db.stats.get(UPDATES) == 10
    assert db.stats.get(BATCH_WRITES) == 2


def test_overflowing_batch_triggers_flush():
    options = small_test_options()  # 64-entry buffer
    db = LSMTree(options)
    db.write(_filled(100))
    assert db.stats.get("op.flushes") >= 1
    for i in (1, 50, 100):
        assert db.get(i) == b"v%d" % i


# -- group commit -------------------------------------------------------

def test_batch_issues_exactly_one_group_commit():
    db = LSMTree(small_test_options(enable_wal=True))
    before = db.stats.snapshot()
    db.write(_filled(25))
    delta = before.delta(db.stats)
    assert delta.counter(WAL_GROUP_COMMITS) == 1
    assert delta.counter(WAL_RECORDS_APPENDED) == 25
    assert delta.counter(WRITE_CALLS) == 1


def test_individual_puts_commit_one_frame_each():
    db = LSMTree(small_test_options(enable_wal=True))
    before = db.stats.snapshot()
    for i in range(5):
        db.put(i + 1, b"x")
    delta = before.delta(db.stats)
    assert delta.counter(WAL_GROUP_COMMITS) == 5


def test_group_commit_amortizes_write_path_time():
    def write_us(batch_size):
        db = LSMTree(small_test_options(enable_wal=True,
                                        write_buffer_bytes=1 << 20))
        before = db.stats.snapshot()
        batch = WriteBatch()
        for i in range(64):
            batch.put(i + 1, b"v")
            if len(batch) >= batch_size:
                db.write(batch)
                batch.clear()
        if batch:
            db.write(batch)
        from repro.storage.stats import Stage
        return before.delta(db.stats).stage_time(Stage.WRITE_PATH)

    assert write_us(16) < write_us(1)


# -- WAL framing and recovery -------------------------------------------

def test_wal_append_batch_roundtrip():
    wal = WriteAheadLog(MemoryBlockDevice())
    records = [make_value(i, i, b"r%d" % i) for i in range(1, 6)]
    wal.append_batch(records)
    assert wal.replay_all() == records


def test_wal_mixed_single_and_batch_frames_replay_in_order():
    wal = WriteAheadLog(MemoryBlockDevice())
    wal.append(make_value(1, 1, b"a"))
    wal.append_batch([make_value(2, 2, b"b"), make_value(3, 3, b"c")])
    wal.append(make_value(4, 4, b"d"))
    assert [record.key for record in wal.replay_all()] == [1, 2, 3, 4]


def test_crash_recovery_replays_batch():
    options = small_test_options(enable_wal=True)
    db = LSMTree(options)
    db.write(_filled(12))
    # Simulate a crash: reopen from the same device without flushing.
    recovered = LSMTree.reopen(options, db.device)
    for i in range(1, 13):
        assert recovered.get(i) == b"v%d" % i


def test_torn_batch_frame_drops_whole_batch():
    device = MemoryBlockDevice()
    wal = WriteAheadLog(device)
    wal.append_batch([make_value(1, 1, b"keep"), make_value(2, 2, b"keep")])
    wal.append_batch([make_value(3, 3, b"torn"), make_value(4, 4, b"torn")])
    data = device.pread("wal", 0, device.size("wal"))
    device.create("wal")
    device.append("wal", data[:-3])  # chop the final frame
    survivors = WriteAheadLog(device).replay_all()
    # All-or-nothing: the second batch vanishes entirely.
    assert [record.key for record in survivors] == [1, 2]
