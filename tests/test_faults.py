"""FaultyBlockDevice: deterministic injection of every fault mode."""

import pytest

from repro.errors import (
    DiskFullError,
    InvalidOptionError,
    PowerCutError,
    StorageError,
    TransientIOError,
)
from repro.storage.block_device import MemoryBlockDevice
from repro.storage.faults import FaultPlan, FaultyBlockDevice
from repro.storage.retry import RetryPolicy
from repro.storage.stats import (
    FAULT_BIT_ROT_BLOCKS,
    FAULT_DISK_FULL,
    FAULT_POWER_CUTS,
    FAULT_TORN_APPENDS,
    FAULT_TRANSIENT_READS,
    FAULTS_INJECTED,
    RETRY_ATTEMPTS,
    RETRY_EXHAUSTED,
    RETRY_SUCCESSES,
    Stage,
    Stats,
)


def _device(plan, block_size=256):
    stats = Stats()
    inner = MemoryBlockDevice(block_size=block_size, stats=stats)
    return FaultyBlockDevice(inner, plan, stats=stats), stats


def _fill(device, name="sst-000001", nbytes=4096):
    device.create(name)
    device.append(name, bytes(i % 251 for i in range(nbytes)))
    return name


# -- pass-through ------------------------------------------------------


def test_no_faults_is_a_transparent_decorator():
    device, stats = _device(FaultPlan(seed=1))
    name = _fill(device)
    assert device.pread(name, 100, 64) == bytes(
        (100 + i) % 251 for i in range(64))
    assert device.exists(name)
    assert device.size(name) == 4096
    assert name in device.list_files()
    device.rename(name, "sst-000002")
    assert not device.exists(name)
    device.delete("sst-000002")
    assert stats.get(FAULTS_INJECTED) == 0


# -- transient read errors ---------------------------------------------


def test_transient_reads_fail_then_succeed():
    device, stats = _device(FaultPlan(seed=3, transient_read_rate=1.0,
                                      transient_fail_count=2))
    name = _fill(device)
    for _ in range(2):
        with pytest.raises(TransientIOError):
            device.pread(name, 0, 16)
    # The burst is bounded: the identical read now succeeds.
    assert device.pread(name, 0, 16) == bytes(range(16))
    assert stats.get(FAULT_TRANSIENT_READS) == 2


def test_retry_policy_absorbs_transients():
    device, stats = _device(FaultPlan(seed=3, transient_read_rate=1.0,
                                      transient_fail_count=2))
    name = _fill(device)
    policy = RetryPolicy(max_attempts=3)
    data = policy.call(lambda: device.pread(name, 0, 8), stats, Stage.IO)
    assert data == bytes(range(8))
    assert stats.get(RETRY_ATTEMPTS) == 2
    assert stats.get(RETRY_SUCCESSES) == 1
    assert stats.get(RETRY_EXHAUSTED) == 0


def test_retry_policy_exhaustion_reraises():
    device, stats = _device(FaultPlan(seed=3, transient_read_rate=1.0,
                                      transient_fail_count=5))
    name = _fill(device)
    policy = RetryPolicy(max_attempts=3)
    with pytest.raises(TransientIOError):
        policy.call(lambda: device.pread(name, 0, 8), stats, Stage.IO)
    assert stats.get(RETRY_EXHAUSTED) == 1


def test_retry_backoff_charges_simulated_time():
    device, stats = _device(FaultPlan(seed=3, transient_read_rate=1.0,
                                      transient_fail_count=1))
    name = _fill(device)
    policy = RetryPolicy(max_attempts=3, backoff_us=100.0, multiplier=2.0)
    before = stats.stage_time(Stage.IO)
    policy.call(lambda: device.pread(name, 0, 8), stats, Stage.IO)
    assert stats.stage_time(Stage.IO) - before >= 100.0


def test_retry_policy_validates():
    with pytest.raises(InvalidOptionError):
        RetryPolicy(max_attempts=0).validate()
    with pytest.raises(InvalidOptionError):
        RetryPolicy(backoff_us=-1.0).validate()
    with pytest.raises(InvalidOptionError):
        RetryPolicy(multiplier=0.5).validate()


# -- bit rot -----------------------------------------------------------


def test_rot_is_deterministic_and_stable():
    plan = FaultPlan(seed=11, bit_rot_rate=0.2)
    device, stats = _device(plan)
    name = _fill(device, nbytes=16 * 256)
    rotted = device.rotted_blocks(name)
    assert rotted  # 16 blocks at 20% rot: some must be hit
    first = device.pread(name, 0, device.size(name))
    again = device.pread(name, 0, device.size(name))
    assert first == again  # rot does not wander between reads
    twin, _ = _device(plan)
    _fill(twin, nbytes=16 * 256)
    assert twin.rotted_blocks(name) == rotted  # pure function of the plan
    assert stats.get(FAULT_BIT_ROT_BLOCKS) == len(rotted)


def test_rot_flips_exactly_one_bit_per_block():
    device, _ = _device(FaultPlan(seed=11))
    name = _fill(device, nbytes=8 * 256)
    clean = device.pread(name, 0, device.size(name))
    device.inject_rot(name, 3)
    dirty = device.pread(name, 0, device.size(name))
    diff = [(i, a ^ b) for i, (a, b) in enumerate(zip(clean, dirty))
            if a != b]
    assert len(diff) == 1
    pos, delta = diff[0]
    assert 3 * 256 <= pos < 4 * 256  # inside the rotted block
    assert bin(delta).count("1") == 1  # a single flipped bit


def test_rot_respects_file_prefixes():
    device, _ = _device(FaultPlan(seed=11, bit_rot_rate=1.0))
    wal = _fill(device, name="wal", nbytes=1024)
    assert device.rotted_blocks(wal) == []  # only sst-* rots by default
    sst = _fill(device, name="sst-000001", nbytes=1024)
    assert device.rotted_blocks(sst)


# -- torn appends and disk full ----------------------------------------


def test_torn_append_writes_a_prefix():
    device, stats = _device(FaultPlan(seed=5, torn_append_rate=1.0))
    device.create("wal")
    with pytest.raises(StorageError):
        device.append("wal", b"x" * 1000)
    assert device.size("wal") < 1000
    assert stats.get(FAULT_TORN_APPENDS) == 1


def test_disk_full_after_budget():
    device, stats = _device(FaultPlan(seed=5, disk_full_after_bytes=600))
    device.create("sst-000001")
    device.append("sst-000001", b"a" * 500)
    with pytest.raises(DiskFullError):
        device.append("sst-000001", b"b" * 500)
    # What fit was written (a torn tail), and the device stays full.
    assert device.size("sst-000001") == 600
    with pytest.raises(DiskFullError):
        device.append("sst-000001", b"c")
    assert stats.get(FAULT_DISK_FULL) == 2


# -- power cut ---------------------------------------------------------


def test_power_cut_kills_the_device_until_revive():
    device, stats = _device(FaultPlan(seed=5, power_cut_after_bytes=300))
    device.create("wal")
    device.append("wal", b"a" * 200)
    with pytest.raises(PowerCutError):
        device.append("wal", b"b" * 200)
    assert device.powered_off
    for op in (lambda: device.pread("wal", 0, 10),
               lambda: device.size("wal"),
               lambda: device.list_files(),
               lambda: device.append("wal", b"x")):
        with pytest.raises(PowerCutError):
            op()
    device.revive()
    assert not device.powered_off
    # Only the synced prefix survived; the budget stays consumed but
    # the cut does not re-fire.
    assert device.size("wal") == 300
    device.append("wal", b"c" * 100)
    assert device.size("wal") == 400
    assert stats.get(FAULT_POWER_CUTS) == 1


# -- plumbing ----------------------------------------------------------


def test_stats_reassignment_propagates_to_inner():
    device, _ = _device(FaultPlan(seed=1))
    fresh = Stats()
    device.stats = fresh
    assert device.stats is fresh
    assert device.inner.stats is fresh
