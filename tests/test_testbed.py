"""Tests for the unified testbed (load, measured phases, memory)."""

import pytest

from repro.core.config import BenchConfig
from repro.core.testbed import Testbed
from repro.indexes.registry import IndexKind
from repro.lsm.options import Granularity
from repro.storage.stats import Stage
from repro.workloads.ycsb import workload


def _config(**overrides):
    defaults = dict(index_kind=IndexKind.PGM, position_boundary=16,
                    value_capacity=44, write_buffer_bytes=64 * 64,
                    sstable_bytes=128 * 64, size_ratio=4, n_keys=3000)
    defaults.update(overrides)
    return BenchConfig(**defaults)


@pytest.fixture()
def bed():
    bed = Testbed.from_config(_config())
    yield bed
    bed.close()


def test_load_and_point_lookups(bed):
    keys = bed.load_dataset("random", 3000)
    metrics = bed.run_point_lookups(keys[::10])
    assert metrics.ops == 300
    assert metrics.avg_us > 0
    assert metrics.stage_avg_us(Stage.IO) > 0
    assert metrics.blocks_read_per_op() > 0
    assert metrics.total_us == pytest.approx(
        sum(metrics.stage_avg_us(s) * metrics.ops
            for s in (Stage.TABLE_LOOKUP, Stage.PREDICTION, Stage.IO,
                      Stage.SEARCH, Stage.SCAN)), rel=1e-6)


def test_bulk_load_equivalent_reads(bed):
    keys = bed.bulk_load_dataset("random", 3000)
    for key in keys[::97]:
        assert bed.db.get(key) == bed.value_for(key)
    assert bed.level_keys()  # level assignment recorded
    assert sum(len(v) for v in bed.level_keys().values()) == 3000


def test_bulk_load_spans_levels(bed):
    bed.bulk_load_dataset("random", 3000)
    levels = sorted(bed.level_keys())
    assert len(levels) >= 2
    sizes = [len(bed.level_keys()[level]) for level in levels]
    # Deeper levels hold geometrically more data.
    assert sizes[-1] > sizes[0]


def test_range_lookup_metrics(bed):
    keys = bed.bulk_load_dataset("random", 3000)
    metrics = bed.run_range_lookups(keys[::100], length=20)
    assert metrics.ops == 30
    assert metrics.stage_avg_us(Stage.SCAN) >= 0
    assert metrics.total_us > 0


def test_write_phase_reports_compaction(bed):
    keys = bed.bulk_load_dataset("random", 2000)
    fresh = [key + 1 for key in keys[:1500]]
    metrics = bed.run_writes(fresh)
    assert metrics.ops == 1500
    assert metrics.stage_us.get(Stage.WRITE_PATH.value, 0) > 0
    assert metrics.total_us > 0


def test_ycsb_phase(bed):
    keys = bed.bulk_load_dataset("random", 2000)
    mix = workload("A", keys, seed=5)
    metrics = bed.run_ycsb(mix, 500)
    assert metrics.ops == 500
    assert metrics.avg_us > 0


def test_memory_metrics(bed):
    bed.bulk_load_dataset("random", 3000)
    memory = bed.memory()
    assert memory.index_bytes > 0
    assert memory.bloom_bytes > 0
    assert memory.total_bytes == (memory.index_bytes + memory.bloom_bytes
                                  + memory.buffer_bytes)


def test_level_granularity_testbed():
    bed = Testbed.from_config(_config(granularity=Granularity.LEVEL))
    keys = bed.bulk_load_dataset("random", 3000)
    metrics = bed.run_point_lookups(keys[::20])
    assert metrics.avg_us > 0
    assert bed.memory().index_bytes > 0
    bed.close()


def test_value_for_fits_capacity(bed):
    value = bed.value_for((1 << 63) - 1)
    assert len(value) <= bed.options.value_capacity
