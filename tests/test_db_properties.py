"""Model-based property tests: the database vs a plain dict.

Hypothesis drives arbitrary put/delete/get/scan sequences against an
LSMTree and a reference dict; every observable behaviour must match.
This is the single strongest correctness net over the whole engine
(memtable, flush, compaction, indexes, iterators, tombstones).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.indexes.registry import IndexKind
from repro.lsm.db import LSMTree
from repro.lsm.options import Granularity, small_test_options

keys_st = st.integers(min_value=0, max_value=1 << 20)

ops_st = st.lists(
    st.one_of(
        st.tuples(st.just("put"), keys_st, st.binary(min_size=0, max_size=8)),
        st.tuples(st.just("delete"), keys_st, st.just(b"")),
        st.tuples(st.just("get"), keys_st, st.just(b"")),
        st.tuples(st.just("scan"), keys_st, st.just(b"")),
    ),
    max_size=150,
)


def _run_model(ops, options):
    db = LSMTree(options)
    reference = {}
    try:
        for op, key, value in ops:
            if op == "put":
                db.put(key, value)
                reference[key] = value
            elif op == "delete":
                db.delete(key)
                reference.pop(key, None)
            elif op == "get":
                assert db.get(key) == reference.get(key)
            else:  # scan
                expected = sorted((k, v) for k, v in reference.items()
                                  if k >= key)[:10]
                assert db.scan(key, 10) == expected
        # Final full verification after settling all structures.
        db.flush()
        db.maybe_compact()
        for key, value in reference.items():
            assert db.get(key) == value
        cursor = db.iterator()
        cursor.seek_to_first()
        assert cursor.take(10_000) == sorted(reference.items())
    finally:
        db.close()


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_st)
def test_model_based_fp(ops):
    _run_model(ops, small_test_options(index_kind=IndexKind.FP,
                                       value_capacity=8))


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_st)
def test_model_based_pgm(ops):
    _run_model(ops, small_test_options(index_kind=IndexKind.PGM,
                                       value_capacity=8))


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_st)
def test_model_based_rmi(ops):
    _run_model(ops, small_test_options(index_kind=IndexKind.RMI,
                                       value_capacity=8))


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_st)
def test_model_based_level_granularity(ops):
    _run_model(ops, small_test_options(index_kind=IndexKind.PLR,
                                       value_capacity=8,
                                       granularity=Granularity.LEVEL))


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_st, kind=st.sampled_from([IndexKind.FT, IndexKind.RS,
                                         IndexKind.PLEX]))
def test_model_based_other_kinds(ops, kind):
    _run_model(ops, small_test_options(index_kind=kind, value_capacity=8))


@pytest.mark.parametrize("kind", [IndexKind.PGM, IndexKind.FP])
def test_heavy_overwrite_churn(kind):
    """Many versions of few keys: compaction must keep only the newest."""
    db = LSMTree(small_test_options(index_kind=kind, value_capacity=8))
    reference = {}
    for round_no in range(40):
        for key in range(30):
            value = b"r%dk%d" % (round_no, key)
            db.put(key, value[:8])
            reference[key] = value[:8]
    db.flush()
    db.maybe_compact()
    for key, value in reference.items():
        assert db.get(key) == value
    db.close()
