"""Tests for the level-granularity model manager."""

from repro.indexes.registry import IndexFactory, IndexKind
from repro.lsm.level_index import LevelModelManager
from repro.lsm.options import small_test_options
from repro.lsm.record import make_value
from repro.lsm.sstable import TableBuilder
from repro.lsm.version import FileMetaData
from repro.storage.block_device import MemoryBlockDevice
from repro.storage.cost_model import CostModel
from repro.storage.stats import BLOCKS_READ, Stage, Stats


def _make_files(chunks):
    options = small_test_options()
    stats = Stats()
    device = MemoryBlockDevice(block_size=options.block_size, stats=stats)
    cost = CostModel(block_size=options.block_size)
    manager = LevelModelManager(IndexFactory(IndexKind.PGM, 8), stats, cost)
    files = []
    for number, keys in enumerate(chunks, start=1):
        builder = TableBuilder(device, f"f{number}", options, None, stats,
                               cost)
        for i, key in enumerate(keys):
            builder.add(make_value(key, i + 1, b"v%d" % key))
        table = builder.finish()
        manager.register_keys(table.name, table.cached_keys)
        files.append(FileMetaData(number=number, table=table))
    return manager, files, stats


def test_rebuild_and_lookup():
    chunks = [list(range(0, 300, 3)), list(range(300, 600, 3)),
              list(range(600, 900, 3))]
    manager, files, _ = _make_files(chunks)
    manager.rebuild(1, files)
    model = manager.model_for(1)
    assert model is not None
    assert model.total_entries == sum(len(chunk) for chunk in chunks)
    # Every key resolvable through the per-file bounds.
    for chunk, meta in zip(chunks, files):
        for key in chunk[::17]:
            pairs = manager.lookup(1, key)
            assert pairs
            hit = [bound for m, bound in pairs if m.number == meta.number]
            assert hit, f"key {key} not mapped to its file"
            local = chunk.index(key)
            assert hit[0].lo <= local < hit[0].hi


def test_bound_spanning_files():
    """A predicted range crossing a file edge yields bounds in both files."""
    chunks = [list(range(0, 100)), list(range(100, 200))]
    manager, files, _ = _make_files(chunks)
    manager.rebuild(1, files)
    pairs = manager.lookup(1, 99)
    names = [meta.number for meta, _ in pairs]
    assert 1 in names  # file containing the key always included
    for meta, bound in pairs:
        assert 0 <= bound.lo < bound.hi <= meta.entry_count


def test_memory_accounting():
    chunks = [list(range(0, 1000, 2))]
    manager, files, _ = _make_files(chunks)
    assert manager.memory_bytes() == 0
    manager.rebuild(1, files)
    assert manager.memory_bytes() > 0
    assert manager.memory_bytes(1) == manager.memory_bytes()
    assert manager.memory_bytes(2) == 0


def test_rebuild_empty_level_drops_model():
    chunks = [list(range(100))]
    manager, files, _ = _make_files(chunks)
    manager.rebuild(1, files)
    assert manager.model_for(1) is not None
    manager.rebuild(1, [])
    assert manager.model_for(1) is None
    assert manager.lookup(1, 5) == []


def test_rebuild_charges_training():
    chunks = [list(range(0, 2000, 2))]
    manager, files, stats = _make_files(chunks)
    before = stats.stage_time(Stage.COMPACT_TRAIN)
    manager.rebuild(1, files)
    assert stats.stage_time(Stage.COMPACT_TRAIN) > before
    assert stats.stage_time(Stage.COMPACT_WRITE_MODEL) > 0


def test_unregistered_keys_reload_lazily_exactly_once():
    # Recovery opens tables without registered key arrays; a rebuild
    # must pull them from the device — one read per table, cached.
    chunks = [list(range(100))]
    manager, files, stats = _make_files(chunks)
    manager.forget_keys(files[0].name)
    files[0].table.release_keys()
    before = stats.get(BLOCKS_READ)
    manager.rebuild(1, files)
    assert stats.get(BLOCKS_READ) > before, "expected a lazy key reload"
    assert manager.model_for(1) is not None
    # The reloaded array is cached: a second rebuild reads nothing.
    before = stats.get(BLOCKS_READ)
    manager.rebuild(1, files)
    assert stats.get(BLOCKS_READ) == before
