"""Unit tests for both block devices, including I/O accounting."""

import pytest

from repro.errors import FileNotFoundInDeviceError, StorageError
from repro.storage.block_device import FileBlockDevice, MemoryBlockDevice
from repro.storage.stats import BLOCKS_READ, BLOCKS_WRITTEN, BYTES_READ


@pytest.fixture(params=["memory", "file"])
def device(request, tmp_path):
    if request.param == "memory":
        return MemoryBlockDevice(block_size=256)
    return FileBlockDevice(str(tmp_path / "dev"), block_size=256)


def test_create_append_read_roundtrip(device):
    device.create("f")
    device.append("f", b"hello ")
    device.append("f", b"world")
    assert device.pread("f", 0, 11) == b"hello world"
    assert device.pread("f", 6, 5) == b"world"
    assert device.size("f") == 11


def test_short_read_past_eof(device):
    device.create("f")
    device.append("f", b"abc")
    assert device.pread("f", 1, 100) == b"bc"
    assert device.pread("f", 50, 10) == b""


def test_missing_file_raises(device):
    with pytest.raises(FileNotFoundInDeviceError):
        device.pread("nope", 0, 1)
    with pytest.raises(FileNotFoundInDeviceError):
        device.size("nope")
    with pytest.raises(FileNotFoundInDeviceError):
        device.delete("nope")
    with pytest.raises(FileNotFoundInDeviceError):
        device.append("nope", b"x")


def test_negative_range_rejected(device):
    device.create("f")
    device.append("f", b"abc")
    with pytest.raises(StorageError):
        device.pread("f", -1, 2)
    with pytest.raises(StorageError):
        device.pread("f", 0, -2)


def test_delete_and_exists(device):
    device.create("f")
    assert device.exists("f")
    device.delete("f")
    assert not device.exists("f")


def test_list_files_sorted(device):
    for name in ("c", "a", "b"):
        device.create(name)
    assert device.list_files() == ["a", "b", "c"]


def test_total_bytes(device):
    device.create("a")
    device.append("a", b"x" * 100)
    device.create("b")
    device.append("b", b"y" * 50)
    assert device.total_bytes() == 150


def test_block_accounting_on_reads(device):
    device.create("f")
    device.append("f", b"z" * 1024)
    before = device.stats.get(BLOCKS_READ)
    device.pread("f", 0, 256)       # exactly one block
    device.pread("f", 255, 2)       # straddles two blocks
    assert device.stats.get(BLOCKS_READ) - before == 3
    assert device.stats.get(BYTES_READ) >= 258


def test_block_accounting_on_writes(device):
    device.create("f")
    before = device.stats.get(BLOCKS_WRITTEN)
    device.append("f", b"q" * 300)  # two 256-byte blocks
    assert device.stats.get(BLOCKS_WRITTEN) - before == 2


def test_create_truncates(device):
    device.create("f")
    device.append("f", b"old data")
    device.create("f")
    assert device.size("f") == 0


def test_invalid_block_size():
    with pytest.raises(StorageError):
        MemoryBlockDevice(block_size=0)


def test_file_device_rejects_path_escape(tmp_path):
    device = FileBlockDevice(str(tmp_path / "dev"))
    with pytest.raises(StorageError):
        device.create("../escape")
