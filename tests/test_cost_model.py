"""Unit tests for the calibrated cost model.

The paper's Table 1 anchors the constants; these tests pin the
calibration so accidental edits show up as failures.
"""

import math

import pytest

from repro.storage.cost_model import DEFAULT_COST_MODEL, CostModel


def test_blocks_spanned_basic():
    cm = CostModel()
    assert cm.blocks_spanned(0, 4096) == 1
    assert cm.blocks_spanned(0, 4097) == 2
    assert cm.blocks_spanned(4095, 2) == 2
    assert cm.blocks_spanned(4096, 4096) == 1
    assert cm.blocks_spanned(100, 0) == 0


def test_read_cost_includes_seek():
    cm = CostModel()
    assert cm.read_us(1) == pytest.approx(cm.seek_us + cm.block_read_us)
    assert cm.read_us(4, seeks=0) == pytest.approx(4 * cm.block_read_us)
    assert cm.read_us(0) == pytest.approx(cm.seek_us)


def test_table1_calibration_io():
    """Boundary 10 with ~1 KiB entries spans 3 blocks: ~2.1 us (Table 1)."""
    cm = DEFAULT_COST_MODEL
    segment_bytes = 10 * 1024
    nblocks = cm.blocks_spanned(0, segment_bytes)
    assert nblocks == 3
    assert cm.read_us(nblocks) == pytest.approx(2.25, abs=0.5)


def test_table1_calibration_binary_search():
    """log2(10) probes at entry_probe_us ~= Table 1's 0.16 us."""
    cm = DEFAULT_COST_MODEL
    assert cm.segment_search_us(10) == pytest.approx(0.16, abs=0.08)


def test_binary_search_monotone_in_n():
    cm = CostModel()
    previous = 0.0
    for n in (1, 2, 8, 64, 1024, 1 << 20):
        cost = cm.binary_search_us(n)
        assert cost >= previous
        previous = cost


def test_binary_search_log_shape():
    cm = CostModel()
    assert cm.binary_search_us(1024) == pytest.approx(
        cm.index_compare_us * (math.log2(1024) + 1))


def test_train_cost_linear_in_visits():
    cm = CostModel()
    assert cm.train_us(1000) == pytest.approx(1000 * cm.train_visit_us)
    assert cm.train_us(0) == 0.0


def test_model_write_includes_block_writes():
    cm = CostModel()
    cost_small = cm.model_write_us(100)
    cost_big = cm.model_write_us(100 * 4096)
    assert cost_big > cost_small
    assert cost_small >= cm.write_us(1)


def test_io_dominates_cpu_at_paper_shape():
    """The Figure 7 invariant: segment I/O ~10x the CPU stages."""
    cm = DEFAULT_COST_MODEL
    io = cm.read_us(3)
    cpu = cm.segment_search_us(10) + cm.model_eval_us \
        + cm.binary_search_us(4096)
    assert io > 4 * cpu


def test_frozen_dataclass():
    cm = CostModel()
    with pytest.raises(AttributeError):
        cm.seek_us = 10.0  # type: ignore[misc]
