"""Unit + property tests for the binary codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CorruptionError
from repro.indexes import codec


def test_scalar_roundtrip():
    writer = codec.Writer()
    writer.put_u8(7)
    writer.put_u32(123456)
    writer.put_u64((1 << 60) + 5)
    writer.put_f64(3.25)
    reader = codec.Reader(writer.getvalue())
    assert reader.get_u8() == 7
    assert reader.get_u32() == 123456
    assert reader.get_u64() == (1 << 60) + 5
    assert reader.get_f64() == 3.25
    assert reader.exhausted()


def test_array_roundtrip():
    writer = codec.Writer()
    writer.put_u64_array([1, 2, 1 << 63])
    writer.put_u32_array([])
    writer.put_f64_array([0.5, -1.5])
    writer.put_bytes(b"payload")
    reader = codec.Reader(writer.getvalue())
    assert reader.get_u64_array() == [1, 2, 1 << 63]
    assert reader.get_u32_array() == []
    assert reader.get_f64_array() == [0.5, -1.5]
    assert reader.get_bytes() == b"payload"


def test_truncated_payload_raises():
    writer = codec.Writer()
    writer.put_u64(1)
    data = writer.getvalue()[:-2]
    reader = codec.Reader(data)
    with pytest.raises(CorruptionError):
        reader.get_u64()


def test_remaining_tracks_position():
    writer = codec.Writer()
    writer.put_u32(1)
    writer.put_u32(2)
    reader = codec.Reader(writer.getvalue())
    assert reader.remaining() == 8
    reader.get_u32()
    assert reader.remaining() == 4
    assert not reader.exhausted()


def test_writer_len_matches_payload():
    writer = codec.Writer()
    writer.put_u8(1)
    writer.put_u64_array([1, 2, 3])
    assert len(writer) == len(writer.getvalue()) == 1 + 4 + 24


def test_pack_pairs_roundtrip():
    triples = [(5, 0.5, -3.0), (1 << 62, 1e-12, 4.0)]
    data = codec.pack_pairs(triples)
    out = codec.unpack_pairs(codec.Reader(data))
    assert out == triples


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1),
                max_size=64))
def test_u64_array_property_roundtrip(values):
    writer = codec.Writer()
    writer.put_u64_array(values)
    assert codec.Reader(writer.getvalue()).get_u64_array() == values


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(allow_nan=False, allow_infinity=False),
                max_size=64))
def test_f64_array_property_roundtrip(values):
    writer = codec.Writer()
    writer.put_f64_array(values)
    assert codec.Reader(writer.getvalue()).get_f64_array() == values


@settings(max_examples=50, deadline=None)
@given(st.binary(max_size=256))
def test_bytes_property_roundtrip(payload):
    writer = codec.Writer()
    writer.put_bytes(payload)
    assert codec.Reader(writer.getvalue()).get_bytes() == payload
