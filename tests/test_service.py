"""Tests for the serving layer: routing, ShardedDB, oracle equivalence."""

import random

import pytest

from repro.errors import InvalidOptionError
from repro.lsm.db import LSMTree
from repro.lsm.options import small_test_options
from repro.lsm.write_batch import WriteBatch
from repro.service.router import HashRouter, mix64
from repro.service.sharded import ShardedDB
from repro.storage.stats import UPDATES, WAL_GROUP_COMMITS
from repro.workloads.ycsb import replay, workload


# -- routing ------------------------------------------------------------

def test_mix64_is_deterministic_and_bounded():
    assert mix64(42) == mix64(42)
    assert mix64(42) != mix64(43)
    for key in (0, 1, (1 << 64) - 1, 1 << 63):
        assert 0 <= mix64(key) < (1 << 64)


def test_router_spreads_sequential_keys():
    router = HashRouter(4)
    counts = [0] * 4
    for key in range(10_000):
        shard = router.shard_for(key)
        counts[shard] += 1
    assert min(counts) > 10_000 / 4 * 0.8  # within 20% of even


def test_router_split_preserves_per_key_order():
    router = HashRouter(4)
    batch = WriteBatch().put(7, b"a").delete(7).put(7, b"b")
    parts = router.split(batch)
    assert len(parts) == 1
    (_, part), = parts.items()
    assert len(part) == 3
    kinds = [kind for kind, _, _ in part]
    assert kinds[0] == kinds[2] != kinds[1]


def test_router_rejects_zero_shards():
    with pytest.raises(InvalidOptionError):
        HashRouter(0)


# -- ShardedDB basics ---------------------------------------------------

def test_sharded_point_operations():
    db = ShardedDB(num_shards=4, options=small_test_options())
    for i in range(200):
        db.put(i, b"v%d" % i)
    assert db.get(50) == b"v50"
    db.delete(50)
    assert db.get(50) is None
    assert db.get(10_000) is None


def test_sharded_constructor_validation():
    with pytest.raises(InvalidOptionError):
        ShardedDB(num_shards=0)
    from repro.storage.block_device import MemoryBlockDevice
    with pytest.raises(InvalidOptionError):
        ShardedDB(num_shards=2, options=small_test_options(),
                  devices=[MemoryBlockDevice(block_size=256)])


def test_sharded_write_splits_into_per_shard_group_commits():
    db = ShardedDB(num_shards=4, options=small_test_options(enable_wal=True))
    batch = WriteBatch()
    for i in range(64):
        batch.put(i, b"v%d" % i)
    shards_touched = len({db.shard_for(i) for i in range(64)})
    applied = db.write(batch)
    assert applied == 64
    assert db.stats.get(WAL_GROUP_COMMITS) == shards_touched
    for i in range(64):
        assert db.get(i) == b"v%d" % i


def test_sharded_scan_merges_across_shards():
    db = ShardedDB(num_shards=4, options=small_test_options())
    keys = list(range(0, 1000, 3))
    for key in keys:
        db.put(key, b"k%d" % key)
    got = db.scan(100, 20)
    expected = [key for key in keys if key >= 100][:20]
    assert [key for key, _ in got] == expected
    assert all(value == b"k%d" % key for key, value in got)
    # Scans starting past every key return nothing.
    assert db.scan(10_000, 5) == []


def test_sharded_aggregated_introspection():
    db = ShardedDB(num_shards=3, options=small_test_options())
    for i in range(300):
        db.put(i, b"x")
    assert db.stats.get(UPDATES) == 300
    assert db.entry_count() >= 300
    breakdown = db.memory_breakdown()
    assert set(breakdown) == {"index", "bloom", "buffer"}
    assert breakdown["buffer"] == 3 * db.options.write_buffer_bytes
    assert len(db.describe_shards()) == 3
    assert db.shard_balance() >= 1.0


def test_sharded_bulk_ingest_and_balance(uniform_keys):
    keys = uniform_keys[:4000]
    db = ShardedDB(num_shards=4, options=small_test_options())
    db.bulk_ingest(keys, seed=1)
    assert db.entry_count() == len(keys)
    assert db.shard_balance() < 1.25
    start = keys[2000]
    assert [key for key, _ in db.scan(start, 50)] == keys[2000:2050]


def test_sharded_reopen_recovers_every_shard():
    options = small_test_options(enable_wal=True)
    db = ShardedDB(num_shards=3, options=options)
    batch = WriteBatch()
    for i in range(150):
        batch.put(i, b"d%d" % i)
    db.write(batch)
    db.flush()  # some data in tables ...
    batch.clear()
    for i in range(150, 180):
        batch.put(i, b"d%d" % i)
    db.write(batch)  # ... and some only in WALs
    recovered = ShardedDB.reopen(3, options, [s.device for s in db.shards])
    for i in range(180):
        assert recovered.get(i) == b"d%d" % i, i


def test_sharded_cache_hit_rate_aggregates():
    db = ShardedDB(num_shards=2,
                   options=small_test_options(cache_bytes=64 * 1024))
    for i in range(400):
        db.put(i, b"c%d" % i)
    db.flush()
    for _ in range(3):
        for i in range(0, 400, 5):
            db.get(i)
    assert db.cache_hit_rate() > 0.0


# -- oracle equivalence -------------------------------------------------

def test_sharded_matches_single_tree_oracle():
    """Property test: a random op mix agrees with one LSMTree."""
    rng = random.Random(0xD15C0)
    sharded = ShardedDB(num_shards=4, options=small_test_options())
    oracle = LSMTree(small_test_options())
    key_space = range(1, 5000)
    live = set()
    batch = WriteBatch()
    for step in range(4000):
        roll = rng.random()
        key = rng.choice(key_space)
        if roll < 0.55:
            value = b"s%d-%d" % (step, key)
            sharded.put(key, value)
            oracle.put(key, value)
            live.add(key)
        elif roll < 0.70:
            sharded.delete(key)
            oracle.delete(key)
            live.discard(key)
        elif roll < 0.85:
            assert sharded.get(key) == oracle.get(key), key
        else:
            start = rng.choice(key_space)
            count = rng.randrange(1, 40)
            assert sharded.scan(start, count) == oracle.scan(start, count)
    # Batched epilogue through both write paths.
    for key in rng.sample(list(key_space), 200):
        batch.put(key, b"final-%d" % key)
    sharded.write(batch)
    oracle.write(batch)
    for key in rng.sample(list(key_space), 500):
        assert sharded.get(key) == oracle.get(key), key
    sharded.close()
    oracle.close()


# -- workload replay ----------------------------------------------------

def test_ycsb_replay_over_sharded_db_with_batching():
    keys = list(range(1, 2001))
    values = {}

    def value_for(key):
        return b"y%d" % key

    batched = ShardedDB(num_shards=4, options=small_test_options())
    direct = ShardedDB(num_shards=4, options=small_test_options())
    for key in keys:
        batched.put(key, value_for(key))
        direct.put(key, value_for(key))
    mix = workload("A", keys, seed=9)
    counts_batched = replay(batched, mix.operations(800), value_for,
                            write_batch_size=16)
    mix = workload("A", keys, seed=9)
    counts_direct = replay(direct, mix.operations(800), value_for)
    assert counts_batched == counts_direct
    for key in keys[::7]:
        assert batched.get(key) == direct.get(key), key


def test_replay_rejects_bad_batch_size():
    from repro.errors import WorkloadError
    db = ShardedDB(num_shards=1, options=small_test_options())
    with pytest.raises(WorkloadError):
        replay(db, [], write_batch_size=0)


# -- write acknowledgment semantics under rejection ---------------------

def _fleet_snapshot(db, keys):
    """Every shard's view of ``keys`` (None for absent)."""
    return [[shard.get(key) for key in keys] for shard in db.shards]


def test_write_rejection_applies_nothing_property():
    """Property: a batch any shard would refuse mutates *no* shard.

    Random multi-shard batches against a fleet where one random shard
    is read-only: every rejected batch must leave all shards exactly
    as they were (no partial cross-shard application acknowledged),
    and once the shard heals the same batch applies everywhere.
    """
    from repro.errors import ReadOnlyModeError

    rng = random.Random(0xD15EA5E)
    for trial in range(20):
        db = ShardedDB(num_shards=4, options=small_test_options())
        preload = {key: b"old%d" % key for key in range(40)}
        for key, value in preload.items():
            db.put(key, value)
        sick = rng.randrange(4)
        db.shards[sick]._enter_read_only("fuzz: simulated media damage")
        batch = WriteBatch()
        batch_keys = rng.sample(range(200), rng.randrange(4, 24))
        touched_shards = {db.shard_for(key) for key in batch_keys}
        for key in batch_keys:
            if rng.random() < 0.8 or key not in preload:
                batch.put(key, b"new%d" % key)
            else:
                batch.delete(key)
        probe = sorted(set(batch_keys) | set(preload))
        before = _fleet_snapshot(db, probe)
        if sick in touched_shards:
            with pytest.raises(ReadOnlyModeError):
                db.write(batch)
            assert _fleet_snapshot(db, probe) == before, \
                f"trial {trial}: rejected batch partially applied"
        else:
            assert db.write(batch) == len(batch)
        # Heal and re-apply: now every record must land.
        db.shards[sick]._read_only_reason = None
        db.write(batch)
        expected = dict(preload)
        for kind, key, value in batch:
            expected[key] = value if value else None
        for key in probe:
            want = expected.get(key)
            if want == b"":
                want = None
            assert db.get(key) == want, f"trial {trial} key {key}"
        db.close()


def test_write_rejects_oversized_value_before_any_commit():
    db = ShardedDB(num_shards=4, options=small_test_options())
    cap = db.options.value_capacity
    batch = WriteBatch()
    for key in range(12):
        batch.put(key, b"ok")
    batch.put(99, b"x" * (cap + 1))
    with pytest.raises(InvalidOptionError):
        db.write(batch)
    assert all(db.get(key) is None for key in range(12)), \
        "an invalid batch must not be partially applied"
    db.close()
