"""Tests for the YCSB request distributions."""

import math

import pytest

from repro.errors import WorkloadError
from repro.workloads.distributions import (
    HotspotPicker,
    LatestPicker,
    ScrambledZipfianPicker,
    UniformPicker,
    ZipfianPicker,
    fnv1a_64,
    make_picker,
)


def _frequencies(picker, n=20_000):
    counts = {}
    for _ in range(n):
        idx = picker.pick()
        assert 0 <= idx < picker.count
        counts[idx] = counts.get(idx, 0) + 1
    return counts


def test_uniform_coverage():
    counts = _frequencies(UniformPicker(100, seed=1))
    assert len(counts) == 100
    expected = 200
    assert all(abs(c - expected) < expected for c in counts.values())


def test_zipfian_skews_to_low_ranks():
    counts = _frequencies(ZipfianPicker(1000, seed=2))
    top = sum(counts.get(i, 0) for i in range(10))
    assert top > 0.3 * sum(counts.values())
    # Rank 0 is the most popular.
    assert counts[0] == max(counts.values())


def test_scrambled_zipfian_spreads_hotspots():
    counts = _frequencies(ScrambledZipfianPicker(1000, seed=3))
    hottest = max(counts, key=counts.get)
    # The hottest item should (almost surely) not be rank 0 once
    # scrambled across the space.
    assert hottest == fnv1a_64(0) % 1000


def test_latest_favours_recent():
    picker = LatestPicker(1000, seed=4)
    counts = _frequencies(picker)
    recent = sum(counts.get(i, 0) for i in range(990, 1000))
    old = sum(counts.get(i, 0) for i in range(10))
    assert recent > 10 * max(1, old)


def test_latest_tracks_growth():
    picker = LatestPicker(100, seed=5)
    picker.grow(200)
    counts = _frequencies(picker, n=5_000)
    assert max(counts) >= 190  # newest items reachable


def test_hotspot_concentration():
    picker = HotspotPicker(1000, seed=6, hot_fraction=0.1,
                           hot_op_fraction=0.9)
    counts = _frequencies(picker)
    hot = sum(counts.get(i, 0) for i in range(100))
    assert hot > 0.8 * sum(counts.values())


def test_zipfian_grow_extends_zeta():
    picker = ZipfianPicker(100, seed=7)
    zeta_before = picker._zeta
    picker.grow(200)
    assert picker._zeta > zeta_before
    assert picker._zeta == pytest.approx(
        sum(1.0 / (i ** 0.99) for i in range(1, 201)), rel=1e-9)
    with pytest.raises(WorkloadError):
        picker.grow(50)


def test_make_picker_by_name():
    assert isinstance(make_picker("uniform", 10), UniformPicker)
    assert isinstance(make_picker("zipfian", 10), ScrambledZipfianPicker)
    assert isinstance(make_picker("latest", 10), LatestPicker)
    assert isinstance(make_picker("hotspot", 10), HotspotPicker)
    with pytest.raises(WorkloadError):
        make_picker("gaussian", 10)


def test_determinism():
    a = [ZipfianPicker(500, seed=9).pick() for _ in range(50)]
    b = [ZipfianPicker(500, seed=9).pick() for _ in range(50)]
    assert a == b


def test_invalid_parameters():
    with pytest.raises(WorkloadError):
        UniformPicker(0)
    with pytest.raises(WorkloadError):
        ZipfianPicker(10, theta=1.5)
    with pytest.raises(WorkloadError):
        HotspotPicker(10, hot_fraction=0.0)
    with pytest.raises(WorkloadError):
        HotspotPicker(10, hot_op_fraction=1.5)


def test_fnv_hash_is_stable():
    assert fnv1a_64(0) == fnv1a_64(0)
    assert fnv1a_64(1) != fnv1a_64(2)
    assert 0 <= fnv1a_64(12345) < (1 << 64)
