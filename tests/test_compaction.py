"""Tests for compaction picking, execution and accounting."""

import random

import pytest

from repro.indexes.registry import IndexKind
from repro.lsm.db import LSMTree
from repro.lsm.options import Granularity, small_test_options
from repro.persist.manifest import MANIFEST_NAME
from repro.storage.stats import (
    COMPACT_BYTES_IN,
    COMPACT_BYTES_OUT,
    COMPACTIONS,
    Stage,
)


def _filled_db(**overrides):
    options = small_test_options(**overrides)
    db = LSMTree(options)
    rng = random.Random(11)
    keys = rng.sample(range(1, 1 << 40), 1000)
    for i, key in enumerate(keys):
        db.put(key, b"v%d" % i)
    return db, keys


def test_compactions_keep_levels_within_capacity():
    db, _ = _filled_db()
    db.flush()
    options = db.options
    for level in range(1, options.max_levels - 1):
        assert (db.version.level_data_bytes(level)
                <= options.level_capacity_bytes(level))
    db.close()


def test_levels_stay_sorted_and_disjoint():
    db, _ = _filled_db()
    db.flush()
    for level in range(1, db.options.max_levels):
        files = db.version.levels[level]
        for left, right in zip(files, files[1:]):
            assert left.max_key < right.min_key
    db.close()


def test_compaction_counters():
    db, _ = _filled_db()
    db.flush()
    assert db.stats.get(COMPACTIONS) > 0
    assert db.stats.get(COMPACT_BYTES_IN) > 0
    assert db.stats.get(COMPACT_BYTES_OUT) > 0
    # Dedup/tombstone dropping can only shrink output.
    assert (db.stats.get(COMPACT_BYTES_OUT)
            <= db.stats.get(COMPACT_BYTES_IN))
    db.close()


def test_compaction_charges_stages():
    db, _ = _filled_db()
    db.flush()
    for stage in (Stage.COMPACT_READ, Stage.COMPACT_MERGE,
                  Stage.COMPACT_WRITE, Stage.COMPACT_TRAIN,
                  Stage.COMPACT_WRITE_MODEL):
        assert db.stats.stage_time(stage) > 0, stage
    db.close()


def test_superseded_versions_collapse():
    db = LSMTree(small_test_options())
    for round_no in range(20):
        for key in range(40):
            db.put(key, b"r%d" % round_no)
    db.flush()
    db.maybe_compact()
    total_entries = sum(meta.entry_count
                       for _, meta in db.version.all_files())
    # 800 writes of 40 distinct keys must collapse to far fewer entries.
    assert total_entries < 200
    db.close()


def test_obsolete_files_deleted_from_device():
    db, _ = _filled_db()
    db.flush()
    live = {meta.name for _, meta in db.version.all_files()}
    on_disk = set(db.device.list_files())
    assert live <= on_disk
    # Nothing else should linger except the persistence layer's files:
    # the MANIFEST version log (and, under level granularity, the live
    # model sidecars — not built here).  The WAL is disabled.
    assert on_disk - live == {MANIFEST_NAME}
    db.close()


def test_round_robin_pointer_rotates():
    db, _ = _filled_db(size_ratio=3)
    db.flush()
    pointers = db.compactor._pointers
    # After a deep fill with T=3 at least one deep level compacted
    # partially, leaving a pointer.
    assert db.stats.get(COMPACTIONS) >= 2
    assert isinstance(pointers, dict)
    db.close()


def test_level_model_rebuilt_after_compaction():
    db, keys = _filled_db(index_kind=IndexKind.PGM,
                          granularity=Granularity.LEVEL)
    db.flush()
    assert db.level_models is not None
    deepest = db.version.deepest_nonempty_level()
    model = db.level_models.model_for(deepest)
    assert model is not None
    assert model.total_entries == db.version.level_entry_count(deepest)
    # Every key still readable through the level models.
    for key in keys[::31]:
        assert db.get(key) is not None
    db.close()


def test_partial_compaction_moves_subset():
    """Deep-level compactions move one file, not the whole level."""
    db, _ = _filled_db(size_ratio=3, l0_compaction_trigger=2)
    db.flush()
    outcomes = db.maybe_compact()
    # Trigger one more incremental round.
    rng = random.Random(5)
    for i, key in enumerate(rng.sample(range(1 << 41, 1 << 42), 400)):
        db.put(key, b"x%d" % i)
    db.flush()
    deep = [o for o in db.maybe_compact() if o.task.level >= 1]
    for outcome in deep:
        assert len(outcome.task.inputs) == 1  # partial: one upper file
    db.close()
