"""Crash-recovery tests: reopening a database from its device files."""

import random

import pytest

from repro.indexes.registry import IndexKind
from repro.lsm.db import LSMTree
from repro.lsm.options import CompactionPolicy, Granularity, small_test_options
from repro.storage.block_device import MemoryBlockDevice


def _build_db(options):
    device = MemoryBlockDevice(block_size=options.block_size)
    db = LSMTree(options, device=device)
    rng = random.Random(17)
    keys = rng.sample(range(1, 1 << 40), 900)
    reference = {}
    for i, key in enumerate(keys):
        value = b"v%d" % i
        db.put(key, value)
        reference[key] = value
    for key in keys[:60]:
        db.delete(key)
        del reference[key]
    return db, device, reference


def test_reopen_after_clean_flush():
    options = small_test_options()
    db, device, reference = _build_db(options)
    db.flush()
    db.close_files_only = None  # no-op marker; the device outlives the db
    recovered = LSMTree.reopen(options, device)
    for key in list(reference)[::7]:
        assert recovered.get(key) == reference[key]
    cursor = recovered.iterator()
    cursor.seek_to_first()
    assert cursor.take(10_000) == sorted(reference.items())
    recovered.close()


def test_reopen_preserves_level_structure():
    options = small_test_options()
    db, device, _ = _build_db(options)
    db.flush()
    shape_before = [(row["level"], row["files"], row["entries"])
                    for row in db.describe_levels()]
    recovered = LSMTree.reopen(options, device)
    shape_after = [(row["level"], row["files"], row["entries"])
                   for row in recovered.describe_levels()]
    assert shape_before == shape_after
    recovered.close()


def test_reopen_resumes_sequences_and_file_numbers():
    options = small_test_options()
    db, device, reference = _build_db(options)
    db.flush()
    seq_before = db._seq
    files_before = db._file_counter
    recovered = LSMTree.reopen(options, device)
    assert recovered._seq >= seq_before - len(recovered.memtable or [])
    assert recovered._file_counter >= files_before
    # New writes supersede old versions (sequence must have resumed).
    key = next(iter(reference))
    recovered.put(key, b"fresh")
    assert recovered.get(key) == b"fresh"
    recovered.flush()
    assert recovered.get(key) == b"fresh"
    recovered.close()


def test_reopen_with_wal_recovers_unflushed_writes():
    options = small_test_options(enable_wal=True)
    device = MemoryBlockDevice(block_size=options.block_size)
    db = LSMTree(options, device=device)
    for i in range(40):
        db.put(1000 + i, b"w%d" % i)
    db.flush()
    # Writes after the flush live only in the WAL ("crash" before flush).
    db.put(5000, b"unflushed")
    db.delete(1000)
    recovered = LSMTree.reopen(options, device)
    assert recovered.get(5000) == b"unflushed"
    assert recovered.get(1000) is None
    assert recovered.get(1001) == b"w1"
    recovered.close()


def test_reopen_level_granularity_rebuilds_models():
    options = small_test_options(index_kind=IndexKind.PGM,
                                 granularity=Granularity.LEVEL)
    db, device, reference = _build_db(options)
    db.flush()
    recovered = LSMTree.reopen(options, device)
    assert recovered.level_models is not None
    deepest = recovered.version.deepest_nonempty_level()
    if deepest >= 1:
        assert recovered.level_models.model_for(deepest) is not None
    for key in list(reference)[::13]:
        assert recovered.get(key) == reference[key]
    recovered.close()


def test_reopen_tiering_keeps_run_order():
    options = small_test_options(compaction_policy=CompactionPolicy.TIERING)
    device = MemoryBlockDevice(block_size=options.block_size)
    db = LSMTree(options, device=device)
    # Two generations of the same keys across separate runs.
    for generation in range(4):
        for key in range(100):
            db.put(key, b"g%d" % generation)
        db.flush()
    recovered = LSMTree.reopen(options, device)
    for key in range(0, 100, 9):
        assert recovered.get(key) == b"g3"  # newest generation wins
    recovered.close()


def test_reopen_empty_device():
    options = small_test_options()
    device = MemoryBlockDevice(block_size=options.block_size)
    recovered = LSMTree.reopen(options, device)
    assert recovered.get(1) is None
    recovered.put(1, b"x")
    assert recovered.get(1) == b"x"
    recovered.close()
