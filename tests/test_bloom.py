"""Unit + property tests for the bloom filter.

The load-bearing property is zero false negatives; the false-positive
rate is checked loosely against the 10-bit/key design point the paper
uses.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CorruptionError
from repro.lsm.bloom import BloomFilter


def test_no_false_negatives_basic():
    keys = list(range(0, 100_000, 97))
    bloom = BloomFilter.build(keys, bits_per_key=10)
    assert all(bloom.may_contain(key) for key in keys)


def test_false_positive_rate_near_design_point():
    rng = random.Random(1)
    keys = rng.sample(range(1 << 40), 20_000)
    bloom = BloomFilter.build(keys, bits_per_key=10)
    member = set(keys)
    probes = [key for key in rng.sample(range(1 << 40), 30_000)
              if key not in member][:20_000]
    fp = sum(1 for key in probes if bloom.may_contain(key))
    rate = fp / len(probes)
    # 10 bits/key gives ~1% theoretical FPR; allow generous slack.
    assert rate < 0.05
    assert bloom.false_positive_rate(len(keys)) < 0.02


def test_more_bits_fewer_false_positives():
    rng = random.Random(2)
    keys = rng.sample(range(1 << 40), 5_000)
    member = set(keys)
    probes = [key for key in rng.sample(range(1 << 40), 10_000)
              if key not in member][:5_000]

    def rate(bits):
        bloom = BloomFilter.build(keys, bits_per_key=bits)
        return sum(1 for key in probes if bloom.may_contain(key)) / len(probes)

    assert rate(16) <= rate(4)


def test_zero_bits_means_always_maybe():
    bloom = BloomFilter.build([1, 2, 3], bits_per_key=0)
    assert bloom.may_contain(1)
    assert bloom.may_contain(999)
    assert bloom.size_bytes() == 1


def test_empty_key_set():
    bloom = BloomFilter.build([], bits_per_key=10)
    assert bloom.size_bytes() >= 8
    # No keys inserted: arbitrary probes should mostly miss.
    assert not bloom.may_contain(12345)


def test_serialize_roundtrip():
    keys = list(range(500))
    bloom = BloomFilter.build(keys, bits_per_key=10)
    clone = BloomFilter.deserialize(bloom.serialize())
    assert clone.nbits == bloom.nbits
    assert clone.nprobes == bloom.nprobes
    for key in keys:
        assert clone.may_contain(key)


def test_deserialize_rejects_garbage():
    with pytest.raises(CorruptionError):
        BloomFilter.deserialize(b"xx")
    keys = list(range(100))
    data = BloomFilter.build(keys, 10).serialize()
    with pytest.raises(CorruptionError):
        BloomFilter.deserialize(data[:-3])


def test_size_matches_bits_per_key():
    keys = list(range(10_000))
    bloom = BloomFilter.build(keys, bits_per_key=10)
    assert bloom.size_bytes() == pytest.approx(10 * len(keys) / 8, rel=0.05)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1),
                min_size=1, max_size=500),
       st.sampled_from([2, 6, 10, 14]))
def test_property_no_false_negatives(keys, bits):
    bloom = BloomFilter.build(keys, bits_per_key=bits)
    assert all(bloom.may_contain(key) for key in keys)
    clone = BloomFilter.deserialize(bloom.serialize())
    assert all(clone.may_contain(key) for key in keys)
