"""Unit + property tests for the shared linear/cubic model fits."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexes.linear import (
    CubicModel,
    LinearModel,
    fit_cubic,
    fit_endpoints,
    fit_least_squares,
    max_abs_error,
    recenter,
)


def test_linear_predict_and_clamp():
    model = LinearModel(2.0, 1.0)
    assert model.predict(3.0) == 7.0
    assert model.predict_clamped(100, 10) == 9
    assert model.predict_clamped(-100, 10) == 0


def test_fit_endpoints_exact():
    model = fit_endpoints(10, 0, 20, 100)
    assert model.predict(10) == pytest.approx(0)
    assert model.predict(20) == pytest.approx(100)
    assert model.predict(15) == pytest.approx(50)


def test_fit_endpoints_degenerate_x():
    model = fit_endpoints(5, 0, 5, 10)
    assert model.slope == 0.0
    assert model.predict(5) == pytest.approx(5.0)


def test_least_squares_recovers_line():
    xs = list(range(100))
    ys = [3.0 * x + 7.0 for x in xs]
    model = fit_least_squares(xs, ys)
    assert model.slope == pytest.approx(3.0)
    assert model.intercept == pytest.approx(7.0)


def test_least_squares_large_keys_conditioning():
    base = 1 << 62
    xs = [base + i * (1 << 20) for i in range(200)]
    ys = list(range(200))
    model = fit_least_squares(xs, ys)
    assert max_abs_error(model, xs, ys) < 1.0


def test_least_squares_degenerate_inputs():
    assert fit_least_squares([], []).predict(0) == 0.0
    assert fit_least_squares([5], [9]).predict(123) == 9.0
    flat = fit_least_squares([5, 5, 5], [1, 2, 3])
    assert flat.slope == 0.0
    assert flat.predict(5) == pytest.approx(2.0)


def test_recenter_balances_residuals():
    xs = list(range(10))
    ys = [float(x) for x in xs]
    biased = LinearModel(1.0, 5.0)  # constant +5 residual on ys
    centered, err = recenter(biased, xs, ys)
    assert err == pytest.approx(0.0, abs=1e-12)
    assert centered.intercept == pytest.approx(0.0)


def test_shifted():
    model = LinearModel(1.0, 2.0).shifted(3.0)
    assert model.intercept == 5.0


def test_cubic_fits_cubic_data():
    xs = list(range(50))
    ys = [0.001 * x ** 3 - 0.2 * x ** 2 + x + 4 for x in xs]
    model = fit_cubic(xs, ys)
    worst = max(abs(model.predict(x) - y) for x, y in zip(xs, ys))
    assert worst < 1e-6


def test_cubic_small_input_falls_back_to_line():
    model = fit_cubic([1, 2], [10.0, 20.0])
    assert isinstance(model, CubicModel)
    assert model.predict(1) == pytest.approx(10.0)
    assert model.predict(2) == pytest.approx(20.0)


@settings(max_examples=40, deadline=None)
@given(st.floats(min_value=-100, max_value=100),
       st.floats(min_value=-100, max_value=100))
def test_least_squares_property_exact_on_lines(slope, intercept):
    xs = list(range(0, 64, 3))
    ys = [slope * x + intercept for x in xs]
    model = fit_least_squares(xs, ys)
    assert max_abs_error(model, xs, ys) < 1e-6 * (1 + abs(slope) * 64)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2,
                max_size=64))
def test_recenter_never_increases_error(ys):
    xs = list(range(len(ys)))
    model = fit_least_squares(xs, ys)
    before = max_abs_error(model, xs, ys)
    _, after = recenter(model, xs, ys)
    assert after <= before + 1e-9
