"""Integration tests for the LSMTree database."""

import random

import pytest

from repro.errors import DatabaseClosedError, InvalidOptionError
from repro.indexes.registry import ALL_KINDS, IndexKind
from repro.lsm.db import LSMTree
from repro.lsm.options import Granularity, small_test_options
from repro.storage.stats import BLOOM_PROBES, FLUSHES, POINT_LOOKUPS, Stage


def _fill(db, n=600, seed=1):
    rng = random.Random(seed)
    keys = rng.sample(range(1, 1 << 40), n)
    reference = {}
    for i, key in enumerate(keys):
        value = b"v%d" % i
        db.put(key, value)
        reference[key] = value
    return keys, reference


def test_put_get_roundtrip(tiny_options):
    db = LSMTree(tiny_options)
    keys, reference = _fill(db)
    for key in keys:
        assert db.get(key) == reference[key]
    db.close()


def test_get_absent(tiny_options):
    db = LSMTree(tiny_options)
    _fill(db, n=200)
    assert db.get(12345678901234) is None
    db.close()


def test_overwrite_and_delete(tiny_options):
    db = LSMTree(tiny_options)
    keys, reference = _fill(db, n=300)
    for key in keys[:50]:
        db.put(key, b"updated")
        reference[key] = b"updated"
    for key in keys[50:80]:
        db.delete(key)
        del reference[key]
    db.flush()
    for key in keys[:100]:
        assert db.get(key) == reference.get(key)
    db.close()


def test_flush_and_compaction_triggered(tiny_options):
    db = LSMTree(tiny_options)
    _fill(db, n=800)
    assert db.stats.get(FLUSHES) > 0
    assert db.version.deepest_nonempty_level() >= 1
    db.close()


def test_value_too_large_rejected(tiny_options):
    db = LSMTree(tiny_options)
    with pytest.raises(InvalidOptionError):
        db.put(1, b"x" * (tiny_options.value_capacity + 1))
    db.close()


def test_closed_database_raises(tiny_options):
    db = LSMTree(tiny_options)
    db.put(1, b"a")
    db.close()
    with pytest.raises(DatabaseClosedError):
        db.get(1)
    with pytest.raises(DatabaseClosedError):
        db.put(2, b"b")
    db.close()  # idempotent


def test_scan_matches_reference(tiny_options):
    db = LSMTree(tiny_options)
    keys, reference = _fill(db, n=500)
    ordered = sorted(reference)
    start = ordered[100]
    expected = [(k, reference[k]) for k in ordered[100:150]]
    assert db.scan(start, 50) == expected
    # Scan from before the smallest key.
    assert db.scan(0, 10) == [(k, reference[k]) for k in ordered[:10]]
    db.close()


def test_iterator_full_walk(tiny_options):
    db = LSMTree(tiny_options)
    _, reference = _fill(db, n=400)
    cursor = db.iterator()
    cursor.seek_to_first()
    assert cursor.take(10_000) == sorted(reference.items())
    db.close()


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_all_index_kinds_serve_reads(kind):
    db = LSMTree(small_test_options(index_kind=kind))
    keys, reference = _fill(db, n=700, seed=3)
    for key in keys[::7]:
        assert db.get(key) == reference[key]
    db.close()


@pytest.mark.parametrize("kind", [IndexKind.FP, IndexKind.PGM, IndexKind.RMI])
def test_level_granularity_serves_reads(kind):
    db = LSMTree(small_test_options(index_kind=kind,
                                    granularity=Granularity.LEVEL))
    keys, reference = _fill(db, n=700, seed=4)
    for key in keys[::7]:
        assert db.get(key) == reference[key]
    start = sorted(reference)[50]
    expected = [(k, reference[k]) for k in sorted(reference)
                if k >= start][:30]
    assert db.scan(start, 30) == expected
    assert db.index_memory_bytes() > 0
    db.close()


def test_stats_track_reads(tiny_options):
    db = LSMTree(tiny_options)
    keys, _ = _fill(db, n=300)
    before = db.stats.get(POINT_LOOKUPS)
    for key in keys[:20]:
        db.get(key)
    assert db.stats.get(POINT_LOOKUPS) - before == 20
    assert db.stats.get(BLOOM_PROBES) > 0
    assert db.stats.stage_time(Stage.IO) > 0
    db.close()


def test_memory_breakdown_components(tiny_options):
    db = LSMTree(tiny_options)
    _fill(db, n=500)
    breakdown = db.memory_breakdown()
    assert breakdown["index"] > 0
    assert breakdown["bloom"] > 0
    assert breakdown["buffer"] == tiny_options.write_buffer_bytes
    assert db.level_index_memory_bytes(1) >= 0
    db.close()


def test_level_read_stats_accumulate(tiny_options):
    db = LSMTree(tiny_options)
    keys, _ = _fill(db, n=600)
    db.reset_read_stats()
    for key in keys[::5]:
        db.get(key)
    stats = db.level_read_stats()
    assert stats
    total_us = sum(us for us, _ in stats.values())
    assert total_us > 0
    db.close()


def test_describe_levels(tiny_options):
    db = LSMTree(tiny_options)
    _fill(db, n=800)
    shape = db.describe_levels()
    assert shape
    for row in shape:
        assert row["entries"] > 0
        assert row["files"] > 0


def test_wal_recovery_restores_buffer():
    options = small_test_options(enable_wal=True)
    from repro.storage.block_device import MemoryBlockDevice
    device = MemoryBlockDevice(block_size=options.block_size)
    db = LSMTree(options, device=device)
    db.put(10, b"ten")
    db.put(20, b"twenty")
    db.delete(10)
    # Simulate a crash: reopen over the same device without flushing.
    recovered = LSMTree(options, device=device)
    assert recovered.get(20) == b"twenty"
    assert recovered.get(10) is None
    recovered.close()


def test_wal_reset_after_flush():
    options = small_test_options(enable_wal=True)
    db = LSMTree(options)
    db.put(1, b"a")
    db.flush()
    assert db.wal.size_bytes() == 0
    assert db.get(1) == b"a"
    db.close()


def test_tombstones_dropped_at_bottom(tiny_options):
    db = LSMTree(tiny_options)
    keys, reference = _fill(db, n=400, seed=9)
    for key in keys:
        db.delete(key)
    db.flush()
    # Force everything down repeatedly; eventually tombstones for fully
    # deleted ranges disappear.
    for _ in range(3):
        db.flush()
        db.maybe_compact()
    for key in keys[::11]:
        assert db.get(key) is None
    db.close()
