"""Tests for the configuration space and bench configs."""

import pytest

from repro.core.config import (
    PAPER_BOUNDARIES,
    BenchConfig,
    ConfigurationSpace,
)
from repro.errors import BenchmarkError
from repro.indexes.registry import ALL_KINDS, IndexKind
from repro.lsm.options import Granularity


def test_bench_config_to_options():
    config = BenchConfig(index_kind=IndexKind.PGM, position_boundary=64,
                         granularity=Granularity.LEVEL,
                         sstable_bytes=1 << 20, value_capacity=108)
    options = config.to_options()
    assert options.index_kind is IndexKind.PGM
    assert options.position_boundary == 64
    assert options.granularity is Granularity.LEVEL
    assert options.entry_bytes == 128


def test_label_formats():
    config = BenchConfig(index_kind=IndexKind.RS, position_boundary=16,
                         sstable_bytes=2 * 1024 * 1024)
    assert config.label() == "RS/b=16/sst=2MiB"
    level = BenchConfig(granularity=Granularity.LEVEL)
    assert level.label().endswith("sst=L")


def test_space_enumerates_grid():
    space = ConfigurationSpace(index_kinds=(IndexKind.FP, IndexKind.PGM),
                               boundaries=(8, 32),
                               datasets=("random", "wiki"))
    configs = space.configs()
    assert len(configs) == len(space) == 2 * 2 * 2
    combos = {(c.index_kind, c.position_boundary, c.dataset)
              for c in configs}
    assert (IndexKind.PGM, 8, "wiki") in combos


def test_space_defaults_cover_paper_axes():
    space = ConfigurationSpace()
    assert len(space) == len(ALL_KINDS) * len(PAPER_BOUNDARIES)


def test_space_rejects_empty_axes():
    with pytest.raises(BenchmarkError):
        ConfigurationSpace(index_kinds=())
    with pytest.raises(BenchmarkError):
        ConfigurationSpace(boundaries=())


def test_space_base_params_propagate():
    base = BenchConfig(n_keys=123, seed=9, value_capacity=44)
    space = ConfigurationSpace(index_kinds=(IndexKind.FP,),
                               boundaries=(8,), base=base)
    config = space.configs()[0]
    assert config.n_keys == 123
    assert config.seed == 9
    assert config.value_capacity == 44
