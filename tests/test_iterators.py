"""Tests for merging iterators and user-visible version collapsing."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.iterators import DBIterator, ListIterator, MergingIterator
from repro.lsm.record import make_tombstone, make_value


def _list_iter(records):
    return ListIterator(sorted(records, key=lambda r: (r.key, -r.seq)))


def test_list_iterator_seek():
    it = _list_iter([make_value(k, 1, b"") for k in (10, 20, 30)])
    it.seek(15)
    assert it.key() == 20
    it.seek(30)
    assert it.key() == 30
    it.seek(31)
    assert not it.valid()
    it.seek_to_first()
    assert it.key() == 10


def test_merging_iterator_interleaves_sorted():
    a = _list_iter([make_value(k, 1, b"a") for k in (1, 4, 7)])
    b = _list_iter([make_value(k, 2, b"b") for k in (2, 4, 8)])
    merged = MergingIterator([a, b])
    merged.seek_to_first()
    out = [(r.key, r.seq) for r in merged.drain()]
    assert out == [(1, 1), (2, 2), (4, 2), (4, 1), (7, 1), (8, 2)]


def test_merging_iterator_newest_first_within_key():
    old = _list_iter([make_value(5, 1, b"old")])
    new = _list_iter([make_value(5, 9, b"new")])
    merged = MergingIterator([old, new])
    merged.seek_to_first()
    assert merged.record().value == b"new"
    merged.advance()
    assert merged.record().value == b"old"


def test_merging_iterator_seek():
    a = _list_iter([make_value(k, 1, b"") for k in range(0, 100, 10)])
    b = _list_iter([make_value(k, 2, b"") for k in range(5, 100, 10)])
    merged = MergingIterator([a, b])
    merged.seek(42)
    assert merged.key() == 45


def test_db_iterator_hides_tombstones():
    records = [make_value(1, 1, b"a"), make_tombstone(2, 5),
               make_value(2, 3, b"dead"), make_value(3, 2, b"c")]
    cursor = DBIterator(_list_iter(records))
    cursor.seek_to_first()
    assert cursor.take(10) == [(1, b"a"), (3, b"c")]


def test_db_iterator_takes_newest_version():
    records = [make_value(7, 9, b"new"), make_value(7, 2, b"old")]
    cursor = DBIterator(_list_iter(records))
    cursor.seek_to_first()
    assert cursor.take(10) == [(7, b"new")]


def test_db_iterator_resurrected_key():
    """Delete then re-insert: the newest value wins."""
    records = [make_value(4, 10, b"back"), make_tombstone(4, 6),
               make_value(4, 2, b"orig")]
    cursor = DBIterator(_list_iter(records))
    cursor.seek_to_first()
    assert cursor.take(10) == [(4, b"back")]


def test_db_iterator_seek_lands_on_live_key():
    records = [make_value(1, 1, b"a"), make_tombstone(5, 2),
               make_value(9, 3, b"c")]
    cursor = DBIterator(_list_iter(records))
    cursor.seek(2)
    assert cursor.key() == 9


def test_db_iterator_take_limit():
    records = [make_value(k, 1, b"") for k in range(50)]
    cursor = DBIterator(_list_iter(records))
    cursor.seek_to_first()
    assert len(cursor.take(7)) == 7
    assert cursor.key() == 7  # cursor advanced past the taken entries


@settings(max_examples=40, deadline=None)
@given(st.lists(st.lists(st.integers(min_value=0, max_value=200),
                         max_size=50), min_size=1, max_size=5))
def test_property_merge_equals_sorted_union(sources):
    iterators = []
    seq = 0
    everything = []
    for source in sources:
        records = []
        for key in sorted(set(source)):
            seq += 1
            record = make_value(key, seq, b"%d" % seq)
            records.append(record)
            everything.append(record)
        iterators.append(_list_iter(records))
    merged = MergingIterator(iterators)
    merged.seek_to_first()
    out = [(r.key, r.seq) for r in merged.drain()]
    assert out == sorted(((r.key, r.seq) for r in everything),
                         key=lambda pair: (pair[0], -pair[1]))


@settings(max_examples=40, deadline=None)
@given(st.dictionaries(st.integers(min_value=0, max_value=100),
                       st.integers(min_value=1, max_value=3),
                       min_size=1, max_size=40))
def test_property_db_iterator_newest_wins(key_versions):
    seq = 0
    records = []
    expected = {}
    for key, versions in key_versions.items():
        for _ in range(versions):
            seq += 1
            records.append(make_value(key, seq, b"s%d" % seq))
            expected[key] = b"s%d" % seq
    cursor = DBIterator(_list_iter(records))
    cursor.seek_to_first()
    assert cursor.take(1000) == sorted(expected.items())
