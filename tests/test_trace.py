"""Tests for workload trace record/replay."""

import io

import pytest

from repro.errors import WorkloadError
from repro.indexes.registry import IndexKind
from repro.lsm.db import LSMTree
from repro.lsm.options import small_test_options
from repro.workloads.trace import (
    load_trace,
    read_trace,
    record_ycsb,
    replay,
    write_trace,
)
from repro.workloads.ycsb import Operation, OpKind, workload


def test_roundtrip():
    ops = [Operation(OpKind.READ, 42),
           Operation(OpKind.UPDATE, 7),
           Operation(OpKind.INSERT, 1 << 60),
           Operation(OpKind.SCAN, 5, scan_length=100),
           Operation(OpKind.READ_MODIFY_WRITE, 9)]
    buffer = io.StringIO()
    assert write_trace(ops, buffer) == 5
    buffer.seek(0)
    assert load_trace(buffer) == ops


def test_rejects_bad_header():
    with pytest.raises(WorkloadError):
        load_trace(io.StringIO("not a trace\nread 1\n"))


def test_rejects_malformed_lines():
    for body in ("read\n", "scan 1\n", "frobnicate 1\n", "read abc\n",
                 "delete 1 2\n"):
        source = io.StringIO("# repro-trace v1\n" + body)
        with pytest.raises(WorkloadError):
            load_trace(source)


def test_skips_comments_and_blanks():
    source = io.StringIO("# repro-trace v1\n\n# comment\nread 5\n")
    assert load_trace(source) == [Operation(OpKind.READ, 5)]


def test_record_ycsb_deterministic():
    keys = list(range(100, 400))
    a, b = io.StringIO(), io.StringIO()
    record_ycsb(workload("A", keys, seed=4), 200, a)
    record_ycsb(workload("A", keys, seed=4), 200, b)
    assert a.getvalue() == b.getvalue()
    a.seek(0)
    assert len(load_trace(a)) == 200


def test_replay_against_database():
    db = LSMTree(small_test_options(index_kind=IndexKind.PGM))
    keys = list(range(1000, 1400))
    for key in keys:
        db.put(key, b"seed")
    buffer = io.StringIO()
    record_ycsb(workload("A", keys, seed=9), 300, buffer)
    buffer.seek(0)
    counts = replay(db, read_trace(buffer))
    assert sum(counts.values()) == 300
    assert counts.get("read", 0) > 0
    assert counts.get("update", 0) > 0
    db.close()


def test_replay_delete_verb():
    db = LSMTree(small_test_options())
    db.put(5, b"x")
    source = io.StringIO("# repro-trace v1\ndelete 5\nread 5\n")
    counts = replay(db, read_trace(source))
    assert counts == {"delete": 1, "read": 1}
    assert db.get(5) is None
    db.close()


def test_identical_trace_identical_simulated_cost():
    """The point of traces: two replays cost exactly the same."""
    keys = list(range(2000, 2600))
    buffer = io.StringIO()
    record_ycsb(workload("B", keys, seed=3), 400, buffer)
    totals = []
    for _ in range(2):
        db = LSMTree(small_test_options(index_kind=IndexKind.PLR))
        for key in keys:
            db.put(key, b"seed")
        db.flush()
        before = db.stats.total_time()
        buffer.seek(0)
        replay(db, read_trace(buffer))
        totals.append(db.stats.total_time() - before)
        db.close()
    assert totals[0] == pytest.approx(totals[1])
