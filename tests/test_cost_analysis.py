"""Tests for the analytic cost model, validated against measurements."""

import pytest

from repro.core.config import BenchConfig
from repro.core.cost_analysis import (
    analytic_frontier,
    estimate_index_memory,
    expected_io_blocks,
    expected_io_us,
    expected_point_lookup_us,
    inner_index_cost_us,
    plateau_boundary,
)
from repro.core.testbed import Testbed
from repro.indexes.registry import ALL_KINDS, IndexKind
from repro.storage.cost_model import DEFAULT_COST_MODEL
from repro.storage.stats import Stage
from repro.workloads.datasets import generate


def test_io_blocks_formula():
    # 32 entries x 128 B = 4096 B = one block + expected straddle.
    blocks = expected_io_blocks(32, 128, 4096)
    assert 1.0 <= blocks <= 2.0
    assert expected_io_blocks(256, 1024, 4096) > 60


def test_io_us_monotone_in_boundary():
    cm = DEFAULT_COST_MODEL
    previous = 0.0
    for boundary in (8, 32, 128, 512):
        cost = expected_io_us(cm, boundary, 1024)
        assert cost >= previous
        previous = cost


def test_plateau_boundary():
    assert plateau_boundary(1024, 4096) == 4
    assert plateau_boundary(128, 4096) == 32
    assert plateau_boundary(8192, 4096) == 2


def test_inner_index_costs_ranked_sensibly():
    cm = DEFAULT_COST_MODEL
    costs = {kind: inner_index_cost_us(kind, cm, segments_hint=4096)
             for kind in ALL_KINDS}
    # RMI's two model evals are the cheapest structure access.
    assert costs[IndexKind.RMI] == min(costs.values())
    assert all(cost > 0 for cost in costs.values())


def test_memory_estimate_extrapolates():
    keys = generate("random", 8000, seed=1)
    estimate = estimate_index_memory(IndexKind.PLR, keys[:2000], 16,
                                     total_n=8000)
    actual = estimate_index_memory(IndexKind.PLR, keys, 16, total_n=8000)
    assert estimate.estimated_total_bytes == pytest.approx(
        actual.sample_bytes, rel=0.5)


def test_analytic_frontier_structure():
    keys = generate("random", 2000, seed=2)
    grid = analytic_frontier(DEFAULT_COST_MODEL, 1024, (64, 8),
                             (IndexKind.FP, IndexKind.PGM), keys, 100_000)
    assert set(grid) == {IndexKind.FP, IndexKind.PGM}
    for per_boundary in grid.values():
        assert per_boundary[8]["latency_us"] < per_boundary[64]["latency_us"]
        assert per_boundary[8]["memory_bytes"] \
            >= per_boundary[64]["memory_bytes"]
    # FP costs more memory than PGM at the tight boundary.
    assert grid[IndexKind.FP][8]["memory_bytes"] \
        > grid[IndexKind.PGM][8]["memory_bytes"]


def test_analytic_latency_matches_measurement():
    """The Section 4 model should predict the testbed within ~2x."""
    config = BenchConfig(index_kind=IndexKind.PLR, position_boundary=32,
                         value_capacity=108, write_buffer_bytes=64 * 128,
                         sstable_bytes=512 * 128, size_ratio=4, n_keys=4000)
    bed = Testbed.from_config(config)
    keys = bed.bulk_load_dataset("random", 4000)
    metrics = bed.run_point_lookups(keys[::5])
    measured = metrics.avg_us
    inner = inner_index_cost_us(IndexKind.PLR, DEFAULT_COST_MODEL,
                                segments_hint=64)
    predicted = expected_point_lookup_us(
        DEFAULT_COST_MODEL, 32, config.to_options().entry_bytes, inner,
        levels_probed=1.2, bloom_probes=2.0)
    bed.close()
    assert predicted == pytest.approx(measured, rel=1.0)
    # And the per-stage I/O estimate tracks the measured I/O stage.
    assert expected_io_us(DEFAULT_COST_MODEL, 32, 128) == pytest.approx(
        metrics.stage_avg_us(Stage.IO), rel=1.0)
