"""Scrub: verification, table rewrite, quarantine and manifest commit."""

import pytest

from repro.errors import QuarantinedBlockError
from repro.indexes.registry import IndexKind
from repro.lsm.db import LSMTree
from repro.lsm.options import Granularity, small_test_options
from repro.lsm.scrub import QUARANTINE_PREFIX
from repro.storage.block_device import MemoryBlockDevice
from repro.storage.faults import FaultPlan, FaultyBlockDevice
from repro.storage.stats import (
    SCRUB_BLOCKS_BAD,
    SCRUB_BLOCKS_CHECKED,
    SCRUB_ENTRIES_LOST,
    SCRUB_TABLES_CHECKED,
    SCRUB_TABLES_QUARANTINED,
    SCRUB_TABLES_REWRITTEN,
)


def _build(n=2000, granularity=Granularity.FILE, **changes):
    options = small_test_options(index_kind=IndexKind.PGM,
                                 granularity=granularity,
                                 enable_wal=True, enable_manifest=True,
                                 **changes)
    inner = MemoryBlockDevice(block_size=options.block_size)
    faulty = FaultyBlockDevice(inner, FaultPlan(seed=9))
    db = LSMTree(options, device=faulty)
    keys = list(range(n))
    db.bulk_ingest(keys)
    return db, faulty, options, keys


def _expected(options, key):
    return (b"v%x" % key)[: options.value_capacity]


def _rot_data_block(faulty, table, block_no):
    """Force rot into the device block holding one data block's bytes."""
    _, offset, _, _ = table.handles[block_no]
    faulty.inject_rot(table.name, offset // faulty.block_size)


def test_clean_database_scrubs_clean():
    db, _, _, _ = _build()
    report = db.scrub()
    assert report.clean
    assert report.tables_checked == db.version.file_count()
    assert report.blocks_checked > 0
    assert report.tables_rewritten == 0
    assert report.entries_lost == 0
    assert db.stats.get(SCRUB_TABLES_CHECKED) == report.tables_checked
    assert db.stats.get(SCRUB_BLOCKS_CHECKED) == report.blocks_checked
    assert db.stats.get(SCRUB_BLOCKS_BAD) == 0


def test_scrub_rewrites_damaged_table_and_accounts_loss():
    db, faulty, options, keys = _build()
    level, meta = db.version.all_files()[0]
    old_name = meta.table.name
    _rot_data_block(faulty, meta.table, 1)
    report = db.scrub()
    assert not report.clean
    assert report.tables_rewritten == 1
    assert report.blocks_bad == 1
    assert report.entries_lost > 0
    assert db.stats.get(SCRUB_TABLES_REWRITTEN) == 1
    assert db.stats.get(SCRUB_ENTRIES_LOST) == report.entries_lost
    damaged = [t for t in report.tables if t.action == "rewritten"]
    assert damaged[0].name == old_name
    assert damaged[0].rewritten_as is not None
    # The damaged original is gone; the replacement serves.
    assert not db.device.exists(old_name)
    missing = sum(1 for key in keys
                  if db.get(key) != _expected(options, key))
    assert missing == report.entries_lost
    # A second pass finds a healthy database.
    assert db.scrub().clean
    assert db.health()["status"] == "ok"


def test_scrub_survives_reopen_from_manifest():
    db, faulty, options, keys = _build()
    level, meta = db.version.all_files()[0]
    _rot_data_block(faulty, meta.table, 0)
    report = db.scrub()
    lost = report.entries_lost
    assert lost > 0
    reopened = LSMTree.reopen(options, db.device)
    missing = sum(1 for key in keys
                  if reopened.get(key) != _expected(options, key))
    assert missing == lost
    assert reopened.scrub().clean


@pytest.mark.parametrize("granularity",
                         [Granularity.FILE, Granularity.LEVEL])
def test_scrub_retrains_indexes_for_the_rewritten_table(granularity):
    db, faulty, options, keys = _build(granularity=granularity)
    picked = next((lv, m) for lv, m in db.version.all_files() if lv >= 1)
    level, meta = picked
    _rot_data_block(faulty, meta.table, len(meta.table.handles) // 2)
    report = db.scrub()
    assert report.tables_rewritten == 1
    # Every surviving key is still *findable* — the rewritten table's
    # (or level's) index covers the new, shorter file correctly.
    lost = report.entries_lost
    missing = sum(1 for key in keys
                  if db.get(key) != _expected(options, key))
    assert missing == lost


def test_scrub_quarantines_hopeless_table():
    db, faulty, options, keys = _build()
    level, meta = db.version.all_files()[0]
    victim = meta.table
    # Flip a byte inside *every* data block — rot alone flips only one
    # bit per device block, which can miss blocks that share one.
    raw = faulty.inner._files[victim.name]
    for _, offset, stored_len, _ in victim.handles:
        raw[offset + stored_len // 2] ^= 0xFF
    entry_count = victim.entry_count
    old_name = victim.name
    report = db.scrub()
    assert report.tables_quarantined == 1
    assert report.entries_lost == entry_count
    assert db.stats.get(SCRUB_TABLES_QUARANTINED) == 1
    # The file survives under the quarantine prefix for forensics and
    # is no longer part of the version.
    assert db.device.exists(QUARANTINE_PREFIX + old_name)
    assert all(m.table.name != old_name
               for _, m in db.version.all_files())
    assert db.health()["quarantined_tables"] == 1
    assert db.health()["status"] == "degraded"
    # Reads of the lost keys miss cleanly; everything else serves.
    missing = sum(1 for key in keys
                  if db.get(key) != _expected(options, key))
    assert missing == entry_count
    # The quarantined original survives a manifest reopen's GC.
    reopened = LSMTree.reopen(options, db.device)
    assert reopened.device.exists(QUARANTINE_PREFIX + old_name)


def test_scrub_recovers_stale_quarantine_after_medium_replacement():
    db, faulty, options, keys = _build(n=3000)
    # Rate-based rot poisons reads; quarantines accumulate.
    faulty.plan = FaultPlan(seed=9, bit_rot_rate=0.05)
    failed = 0
    for key in keys:
        try:
            db.get(key)
        except QuarantinedBlockError:
            failed += 1
    assert failed > 0
    # "Replace the medium": rot off.  Scrub now re-reads the previously
    # quarantined blocks clean and recovers every entry.
    faulty.plan = FaultPlan(seed=9)
    report = db.scrub()
    assert report.tables_rewritten > 0
    assert report.entries_lost == 0
    assert db.scrub().clean
    assert db.health()["status"] == "ok"
    assert all(db.get(key) == _expected(options, key) for key in keys)


def test_scrub_detects_metadata_rot():
    db, faulty, options, keys = _build()
    level, meta = db.version.all_files()[0]
    table = meta.table
    # Rot the device block holding the table's learned-index region.
    faulty.inject_rot(table.name,
                      table.footer.index_offset // faulty.block_size)
    report = db.scrub()
    damaged = [t for t in report.tables if t.damaged]
    assert len(damaged) == 1
    assert damaged[0].bad_regions  # named the broken region
    assert damaged[0].action == "rewritten"
    assert damaged[0].entries_lost == 0  # data blocks were all fine
    assert db.scrub().clean


def test_v1_tables_are_skipped_not_failed():
    from repro.lsm.sstable import write_legacy_table
    from repro.lsm.record import make_value

    options = small_test_options(index_kind=IndexKind.PGM)
    db = LSMTree(options)
    records = [make_value(key, key + 1, b"v%d" % key)
               for key in range(100)]
    write_legacy_table(db.device, "sst-000001", options, records,
                       db.index_factory)
    reopened = LSMTree.reopen(options, db.device, use_manifest=False)
    report = reopened.scrub()
    assert report.clean
    v1 = [t for t in report.tables if t.blocks_checked == 0]
    assert v1  # the flat table was listed but had nothing to verify
