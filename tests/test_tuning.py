"""Tests for the tuning advisor and memory ledger."""

import pytest

from repro.core.memory import MemoryLedger
from repro.core.tuning import TuningAdvisor
from repro.errors import BenchmarkError
from repro.indexes.registry import IndexKind
from repro.workloads.datasets import generate


@pytest.fixture(scope="module")
def sample_keys():
    return generate("random", 4000, seed=7)


def test_ledger_accounting():
    ledger = MemoryLedger(1000)
    ledger.allocate("index", 400)
    ledger.allocate("bloom", 300)
    assert ledger.used_bytes() == 700
    assert ledger.remaining_bytes() == 300
    assert ledger.fits()
    assert ledger.utilisation() == pytest.approx(0.7)
    assert ledger.share("index") == pytest.approx(4 / 7)
    ledger.allocate("index", 800)  # replace, not add
    assert ledger.used_bytes() == 1100
    assert not ledger.fits()
    ledger.release("bloom")
    assert ledger.used_bytes() == 800
    assert "index" in ledger.report()


def test_ledger_rejects_negative():
    with pytest.raises(BenchmarkError):
        MemoryLedger(-1)
    ledger = MemoryLedger(10)
    with pytest.raises(BenchmarkError):
        ledger.allocate("x", -5)


def test_recommendation_fits_budget(sample_keys):
    advisor = TuningAdvisor()
    rec = advisor.recommend(memory_budget_bytes=200_000,
                            sample_keys=sample_keys, total_keys=100_000,
                            entry_bytes=1024)
    assert rec.expected_index_bytes <= 100_000  # half reserved
    assert rec.index_kind in set(advisor.kinds)
    assert rec.position_boundary in set(advisor.boundaries)
    assert rec.expected_latency_us > 0


def test_bigger_budget_never_slower(sample_keys):
    advisor = TuningAdvisor()
    small = advisor.recommend(memory_budget_bytes=20_000,
                              sample_keys=sample_keys, total_keys=500_000,
                              entry_bytes=1024)
    large = advisor.recommend(memory_budget_bytes=5_000_000,
                              sample_keys=sample_keys, total_keys=500_000,
                              entry_bytes=1024)
    assert large.expected_latency_us <= small.expected_latency_us


def test_tiny_budget_falls_back_frugally(sample_keys):
    advisor = TuningAdvisor()
    rec = advisor.recommend(memory_budget_bytes=64,
                            sample_keys=sample_keys, total_keys=10_000_000,
                            entry_bytes=1024)
    assert rec.notes  # advisory note about the budget
    assert rec.expected_index_bytes > 0


def test_plateau_flagged(sample_keys):
    advisor = TuningAdvisor()
    rec = advisor.recommend(memory_budget_bytes=50_000_000,
                            sample_keys=sample_keys, total_keys=100_000,
                            entry_bytes=1024)
    # A huge budget should land at (or below) the I/O plateau and say so.
    assert rec.at_plateau


def test_advisor_requires_sample():
    advisor = TuningAdvisor()
    with pytest.raises(BenchmarkError):
        advisor.recommend(memory_budget_bytes=1000, sample_keys=[],
                          total_keys=10, entry_bytes=1024)


def test_level_boundary_allocation_prefers_hot_levels():
    advisor = TuningAdvisor()
    boundaries = advisor.allocate_level_boundaries(
        level_entries={1: 10_000, 2: 100_000, 3: 1_000_000},
        level_read_shares={1: 0.6, 2: 0.3, 3: 0.1},
        bytes_per_key_at={256: 0.07},
        index_budget_bytes=120_000,
        entry_bytes=1024)
    # The hot shallow level gets the tightest boundary.
    assert boundaries[1] <= boundaries[2] <= boundaries[3]
    assert boundaries[1] < 256


def test_level_boundary_allocation_respects_budget():
    advisor = TuningAdvisor()
    entries = {1: 10_000, 2: 100_000}
    cost_ref = {256: 0.07}
    budget = 40_000
    boundaries = advisor.allocate_level_boundaries(
        level_entries=entries, level_read_shares={1: 0.5, 2: 0.5},
        bytes_per_key_at=cost_ref, index_budget_bytes=budget,
        entry_bytes=1024)

    def cost(level, boundary):
        return 0.07 * 256 / boundary * entries[level]

    total = sum(cost(level, boundary)
                for level, boundary in boundaries.items())
    assert total <= budget * 1.01


def test_level_boundary_allocation_rejects_zero_budget():
    advisor = TuningAdvisor()
    with pytest.raises(BenchmarkError):
        advisor.allocate_level_boundaries(
            level_entries={1: 10}, level_read_shares={1: 1.0},
            bytes_per_key_at={256: 0.1}, index_budget_bytes=0,
            entry_bytes=1024)


def test_monkey_bloom_allocation_favours_shallow_levels():
    advisor = TuningAdvisor()
    entries = {1: 10_000, 2: 100_000, 3: 1_000_000}
    bits = advisor.allocate_bloom_bits(
        level_entries=entries,
        total_bloom_bits=10 * sum(entries.values()))
    # Shallow (small) levels get at least as many bits/key as deep ones.
    assert bits[1] >= bits[2] >= bits[3]
    assert bits[1] > 10  # better-than-uniform for the cheap level
    spent = sum(bits[level] * entries[level] for level in entries)
    assert spent <= 10 * sum(entries.values())


def test_monkey_bloom_allocation_respects_cap_and_budget():
    advisor = TuningAdvisor()
    entries = {1: 100, 2: 100}
    bits = advisor.allocate_bloom_bits(level_entries=entries,
                                       total_bloom_bits=100_000,
                                       max_bits_per_key=12)
    assert all(value <= 12 for value in bits.values())
    with pytest.raises(BenchmarkError):
        advisor.allocate_bloom_bits(level_entries=entries,
                                    total_bloom_bits=0)


def test_monkey_allocation_integrates_with_options():
    from repro.lsm.db import LSMTree
    from repro.lsm.options import small_test_options

    advisor = TuningAdvisor()
    bits = advisor.allocate_bloom_bits(
        level_entries={0: 64, 1: 256, 2: 1024},
        total_bloom_bits=10 * (64 + 256 + 1024))
    schedule = tuple(bits[level] for level in sorted(bits))
    options = small_test_options(bloom_bits_per_level=schedule)
    db = LSMTree(options)
    import random
    keys = random.Random(3).sample(range(1, 1 << 40), 500)
    for i, key in enumerate(keys):
        db.put(key, b"v%d" % i)
    db.flush()
    for key in keys[::17]:
        assert db.get(key) is not None
    db.close()
