"""Tests for the bench runner, scales and CLI plumbing."""

from pathlib import Path

import pytest

from repro.bench.cli import build_parser, main
from repro.bench.experiments import EXPERIMENTS, TITLES
from repro.bench.runner import (
    SCALES,
    Scale,
    get_scale,
    sample_queries,
    with_paper_entries,
)
from repro.errors import BenchmarkError
from repro.indexes.registry import IndexKind


def test_scales_registered():
    assert {"smoke", "small", "medium"} <= set(SCALES)
    for scale in SCALES.values():
        assert scale.n_keys > 0
        assert scale.entry_bytes == 20 + scale.value_capacity


def test_get_scale_by_name_and_passthrough():
    assert get_scale("smoke") is SCALES["smoke"]
    assert get_scale(SCALES["small"]) is SCALES["small"]
    with pytest.raises(BenchmarkError):
        get_scale("galactic")


def test_scale_config_round_trip():
    scale = SCALES["smoke"]
    config = scale.config(IndexKind.PGM, 32, dataset="wiki")
    assert config.index_kind is IndexKind.PGM
    assert config.position_boundary == 32
    assert config.dataset == "wiki"
    options = config.to_options()
    assert options.entry_bytes == scale.entry_bytes


def test_paper_sstable_mapping():
    scale = SCALES["smoke"]
    assert scale.paper_sstable_bytes(8) == 8 * scale.sstable_unit_bytes
    assert scale.paper_sstable_bytes(128) \
        == 16 * scale.paper_sstable_bytes(8)


def test_with_paper_entries_scales_bytes():
    scale = SCALES["smoke"]
    config = scale.config(IndexKind.FP, 32)
    options = with_paper_entries(scale, config)
    assert options.entry_bytes == 1024
    assert options.entries_per_buffer == \
        scale.write_buffer_bytes // scale.entry_bytes


def test_sample_queries_deterministic():
    keys = list(range(100))
    a = sample_queries(keys, 50, seed=1)
    b = sample_queries(keys, 50, seed=1)
    assert a == b
    assert all(q in set(keys) for q in a)


def test_experiment_registry_complete():
    expected = {"fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
                "table1", "fig11", "fig12", "unclustered", "ablations",
                "tiering", "hardware", "service", "multiget", "recovery",
                "blocks", "faults", "obs", "overload", "replication"}
    assert expected == set(EXPERIMENTS)
    assert expected == set(TITLES)


def test_every_experiment_has_a_benchmark_smoke():
    # Registering an experiment without a benchmarks/ smoke wrapper
    # means `--list` advertises something CI never exercises.
    bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
    for experiment_id in EXPERIMENTS:
        smoke = bench_dir / f"test_bench_{experiment_id}.py"
        assert smoke.is_file(), \
            f"experiment {experiment_id!r} has no {smoke.name}"
        assert f"{experiment_id}_study" in smoke.read_text() \
            or experiment_id in smoke.read_text()


def test_cli_parser():
    parser = build_parser()
    args = parser.parse_args(["fig6", "--scale", "smoke"])
    assert args.experiment == "fig6"
    assert args.scale == "smoke"


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig6" in out
    assert "unclustered" in out


def test_cli_unknown_experiment(capsys):
    assert main(["nope"]) == 2


def test_cli_runs_fig5(capsys):
    assert main(["fig5", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "CDF" in out
    assert "[PASS]" in out


def test_cli_csv_mode(capsys):
    assert main(["fig5", "--scale", "smoke", "--csv"]) == 0
    out = capsys.readouterr().out
    assert "dataset," in out


def test_cli_out_exports_csv(tmp_path, capsys):
    out_dir = tmp_path / "results"
    assert main(["fig5", "--scale", "smoke", "--out", str(out_dir)]) == 0
    capsys.readouterr()
    files = sorted(p.name for p in out_dir.iterdir())
    assert any(name.startswith("fig5__") and name.endswith(".csv")
               for name in files)
    assert "fig5__checks.txt" in files
    checks = (out_dir / "fig5__checks.txt").read_text()
    assert "[PASS]" in checks
