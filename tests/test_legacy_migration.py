"""Legacy flat-format migration: detection, compat reads, upgrade.

A database written before the block format stores flat v1 tables and
(possibly) a manifest whose ADD_FILE records carry no format field.
These tests pin the migration contract:

* scan-fallback recovery detects v1 files from their footers and the
  migration snapshot records their *actual* format (the mislabel fix);
* manifest-driven recovery opens v1 files through the compat read path
  and cross-checks the recorded format against the file;
* compaction rewrites v1 inputs as current-format tables, upgrading
  the tree in place;
* the format constants duplicated in the persist layer stay equal to
  the sstable layer's (they are duplicated to keep persist below lsm
  in the layering).
"""

import pytest

from repro.errors import CorruptionError
from repro.indexes.registry import IndexFactory, IndexKind
from repro.lsm.db import LSMTree
from repro.lsm.options import small_test_options
from repro.lsm.record import make_value
from repro.lsm.sstable import (
    FORMAT_BLOCKED,
    FORMAT_FLAT,
    Table,
    write_legacy_table,
)
from repro.persist.manifest import (
    MANIFEST_NAME,
    TABLE_FORMAT_BLOCKED,
    TABLE_FORMAT_FLAT,
    Manifest,
)
from repro.storage.block_device import MemoryBlockDevice
from repro.storage.cost_model import CostModel
from repro.storage.stats import RECOVERY_MANIFEST_OPENS, Stats


def _options(**overrides):
    return small_test_options(index_kind=IndexKind.PGM,
                              position_boundary=8, **overrides)


def _legacy_device(options, levels):
    """A device holding only pre-block-format tables, ``{level: keys}``."""
    device = MemoryBlockDevice(block_size=options.block_size, stats=Stats())
    factory = IndexFactory(IndexKind.PGM, 8)
    number = 0
    seq = 0
    for level, keys in levels.items():
        number += 1
        records = []
        for key in sorted(keys):
            seq += 1
            records.append(make_value(key, seq, b"old-%d" % key))
        write_legacy_table(device, f"sst-{number:06d}", options, records,
                           index_factory=factory, level=level)
    return device


def test_format_constants_stay_in_sync():
    # persist/ duplicates these to stay below lsm/ in the layering; a
    # drift here would mislabel every table the manifest records.
    assert TABLE_FORMAT_FLAT == FORMAT_FLAT
    assert TABLE_FORMAT_BLOCKED == FORMAT_BLOCKED


def test_scan_fallback_reads_legacy_tables():
    options = _options()
    keys = list(range(1000, 1512, 4))
    device = _legacy_device(options, {1: keys})
    db = LSMTree.reopen(options, device)
    for key in keys[::17]:
        assert db.get(key) == b"old-%d" % key
    assert db.get(keys[0] + 1) is None
    (_, meta), = db.version.all_files()
    assert meta.table.format_version == FORMAT_FLAT


def test_migration_snapshot_records_actual_formats():
    options = _options()
    old_keys = list(range(0, 256, 2))
    device = _legacy_device(options, {1: old_keys})
    db = LSMTree.reopen(options, device)
    # Mix in a current-format flush so the snapshot labels both kinds.
    for key in range(1, 129, 2):
        db.put(key, b"new-%d" % key)
    db.flush()
    del db  # dropping the handle simulates a crash-stop exit
    state = Manifest(device).replay()
    formats = {}
    for number, (level, name, fmt) in state.files.items():
        table = Table.open(device, name, options, Stats(),
                           CostModel(block_size=options.block_size))
        formats[name] = (fmt, table.format_version)
    assert formats  # at least the legacy file and the flush
    for name, (recorded, actual) in formats.items():
        assert recorded == actual, name
    assert any(recorded == TABLE_FORMAT_FLAT
               for recorded, _ in formats.values())
    assert any(recorded == TABLE_FORMAT_BLOCKED
               for recorded, _ in formats.values())


def test_manifest_reopen_uses_compat_path():
    options = _options()
    keys = list(range(500, 756))
    device = _legacy_device(options, {1: keys})
    db = LSMTree.reopen(options, device)  # scan + migrate snapshot
    del db  # crash-stop: files stay on the device
    assert device.exists(MANIFEST_NAME)
    reopened = LSMTree.reopen(options, device)  # manifest-driven now
    assert reopened.stats.get(RECOVERY_MANIFEST_OPENS) == 1
    for key in keys[::31]:
        assert reopened.get(key) == b"old-%d" % key
    legacy = [meta for _, meta in reopened.version.all_files()
              if meta.table.format_version == FORMAT_FLAT]
    assert legacy  # still served from the flat file, no rewrite yet


def test_compaction_upgrades_legacy_tables():
    options = _options()
    old_keys = list(range(0, 512, 4))
    device = _legacy_device(options, {1: old_keys})
    db = LSMTree.reopen(options, device)
    # Overwrite through the write path until L0 compacts into the
    # legacy L1 file; the outputs must come back in the current format.
    for key in range(0, 512, 2):
        db.put(key, b"new-%d" % key)
    db.flush()
    db.maybe_compact()
    formats = {meta.table.format_version
               for _, meta in db.version.all_files()}
    assert formats == {FORMAT_BLOCKED}
    for key in range(0, 512, 4):
        assert db.get(key) == b"new-%d" % key
    del db
    # The manifest agrees: every live file is recorded as blocked.
    state = Manifest(device).replay()
    assert state.files
    assert {fmt for _, _, fmt in state.files.values()} \
        == {TABLE_FORMAT_BLOCKED}
    # And a final reopen serves the merged view.
    reopened = LSMTree.reopen(options, device)
    for key in range(0, 512, 4):
        assert reopened.get(key) == b"new-%d" % key


def test_expected_format_mismatch_is_detected():
    options = _options()
    keys = list(range(100, 200))
    device = _legacy_device(options, {1: keys})
    cost = CostModel(block_size=options.block_size)
    # The file is v1; a manifest claiming it is blocked must not be
    # silently believed.
    with pytest.raises(CorruptionError):
        Table.open(device, "sst-000001", options, Stats(), cost,
                   expected_format=FORMAT_BLOCKED)
    # The honest label opens fine.
    table = Table.open(device, "sst-000001", options, Stats(), cost,
                       expected_format=FORMAT_FLAT)
    assert table.get(keys[0]).value == b"old-%d" % keys[0]


def test_mixed_formats_scan_correctly():
    options = _options()
    old_keys = list(range(0, 300, 3))
    device = _legacy_device(options, {2: old_keys})
    db = LSMTree.reopen(options, device)
    for key in range(1, 300, 3):
        db.put(key, b"new-%d" % key)
    db.flush()
    expected = sorted(set(old_keys) | set(range(1, 300, 3)))
    got = db.scan(0, len(expected) + 10)
    assert [key for key, _ in got] == expected
    for key, value in got:
        want = b"old-%d" % key if key % 3 == 0 else b"new-%d" % key
        assert value == want
