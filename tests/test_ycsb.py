"""Tests for the YCSB workload generator."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.ycsb import (
    CORE_WORKLOADS,
    OpKind,
    WorkloadSpec,
    YCSBWorkload,
    workload,
)


@pytest.fixture()
def loaded_keys():
    return list(range(1000, 2000))


def _mix(ops):
    counts = {}
    for op in ops:
        counts[op.kind] = counts.get(op.kind, 0) + 1
    total = sum(counts.values())
    return {kind: count / total for kind, count in counts.items()}


def test_core_specs_sum_to_one():
    for spec in CORE_WORKLOADS.values():
        spec.validate()


def test_invalid_spec_rejected():
    with pytest.raises(WorkloadError):
        WorkloadSpec(name="bad", read=0.5, update=0.3).validate()


@pytest.mark.parametrize("name,expected", [
    ("A", {OpKind.READ: 0.5, OpKind.UPDATE: 0.5}),
    ("B", {OpKind.READ: 0.95, OpKind.UPDATE: 0.05}),
    ("C", {OpKind.READ: 1.0}),
    ("F", {OpKind.READ: 0.5, OpKind.READ_MODIFY_WRITE: 0.5}),
])
def test_operation_mixes(name, expected, loaded_keys):
    ops = list(workload(name, loaded_keys, seed=1).operations(4000))
    mix = _mix(ops)
    for kind, fraction in expected.items():
        assert mix.get(kind, 0.0) == pytest.approx(fraction, abs=0.05)


def test_workload_d_inserts_and_latest(loaded_keys):
    reserve = list(range(5000, 5500))
    mix = workload("D", loaded_keys, insert_reserve=reserve, seed=2)
    ops = list(mix.operations(2000))
    inserts = [op for op in ops if op.kind is OpKind.INSERT]
    assert inserts
    assert all(op.key in set(reserve) for op in inserts)
    # Reads after inserts may target inserted keys (latest distribution).
    read_keys = {op.key for op in ops if op.kind is OpKind.READ}
    assert read_keys & (set(loaded_keys) | set(reserve))


def test_workload_e_scan_lengths(loaded_keys):
    ops = list(workload("E", loaded_keys, seed=3).operations(2000))
    scans = [op for op in ops if op.kind is OpKind.SCAN]
    assert scans
    assert all(1 <= op.scan_length <= 100 for op in scans)
    assert any(op.scan_length > 50 for op in scans)


def test_insert_reserve_exhaustion_synthesises_keys(loaded_keys):
    mix = workload("D", loaded_keys, insert_reserve=[5000], seed=4)
    ops = [op for op in mix.operations(3000) if op.kind is OpKind.INSERT]
    assert len(ops) > 1
    keys = [op.key for op in ops]
    assert keys[0] == 5000
    assert len(set(keys)) == len(keys)  # all distinct


def test_determinism(loaded_keys):
    a = [(op.kind, op.key) for op in
         workload("A", loaded_keys, seed=9).operations(500)]
    b = [(op.kind, op.key) for op in
         workload("A", loaded_keys, seed=9).operations(500)]
    assert a == b


def test_unknown_workload(loaded_keys):
    with pytest.raises(WorkloadError):
        workload("Z", loaded_keys)


def test_empty_load_rejected():
    with pytest.raises(WorkloadError):
        YCSBWorkload(spec=CORE_WORKLOADS["A"], loaded_keys=[])
