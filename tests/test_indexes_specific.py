"""Per-index behavioural tests beyond the shared interface contract."""

import pytest

from repro.errors import IndexBuildError
from repro.indexes.fence import FencePointerIndex
from repro.indexes.fiting_tree import FITingTreeIndex
from repro.indexes.pgm import PGMIndex
from repro.indexes.plex import CompactHistTree, PLEXIndex
from repro.indexes.plr import PLRIndex
from repro.indexes.radix_spline import RadixSplineIndex
from repro.indexes.registry import IndexFactory, IndexKind
from repro.indexes.rmi import RMIIndex, RmiTuningCache
from repro.storage.cost_model import DEFAULT_COST_MODEL


# -- fence pointers ------------------------------------------------------

def test_fp_block_alignment(uniform_keys):
    keys = uniform_keys[:1000]
    index = FencePointerIndex(block_entries=32)
    index.build(keys)
    for i in (0, 31, 32, 999):
        bound = index.lookup(keys[i])
        assert bound.lo == (i // 32) * 32
        assert bound.width <= 32
    assert index.pointer_count() == (1000 + 31) // 32
    assert index.configured_boundary() == 32


def test_fp_memory_is_16_bytes_per_pointer(uniform_keys):
    keys = uniform_keys[:1024]
    index = FencePointerIndex(block_entries=8)
    index.build(keys)
    pointers = index.pointer_count()
    # key (8) + offset (8) per pointer plus a fixed header.
    assert abs(index.size_bytes() - 16 * pointers) < 64


def test_fp_rejects_bad_block_entries():
    with pytest.raises(IndexBuildError):
        FencePointerIndex(0)


# -- PLR ------------------------------------------------------------------

def test_plr_segment_count_grows_with_precision(uniform_keys):
    keys = uniform_keys[:5000]
    loose = PLRIndex(epsilon=64)
    loose.build(keys)
    tight = PLRIndex(epsilon=4)
    tight.build(keys)
    assert tight.segment_count() > loose.segment_count()


def test_plr_single_pass_training(uniform_keys):
    keys = uniform_keys[:3000]
    index = PLRIndex(epsilon=16)
    index.build(keys)
    assert index.train_key_visits == len(keys)


# -- FITing-Tree -----------------------------------------------------------

def test_fiting_tree_uses_btree(uniform_keys):
    keys = uniform_keys[:5000]
    index = FITingTreeIndex(epsilon=8, order=8)
    index.build(keys)
    assert index.tree_height() >= 2
    assert index.segment_count() > 1


def test_fiting_tree_memory_exceeds_plr(uniform_keys):
    keys = uniform_keys[:5000]
    ft = FITingTreeIndex(epsilon=8)
    ft.build(keys)
    plr = PLRIndex(epsilon=8)
    plr.build(keys)
    assert ft.size_bytes() > plr.size_bytes()
    assert ft.segment_count() == plr.segment_count()  # same greedy pass


# -- PGM --------------------------------------------------------------------

def test_pgm_recursive_levels(uniform_keys):
    keys = uniform_keys[:8000]
    index = PGMIndex(epsilon=4, epsilon_recursive=2)
    index.build(keys)
    assert index.level_count() >= 2
    # Root level has exactly one segment.
    assert len(index._levels[-1]) == 1


def test_pgm_beats_greedy_segment_count(clustered_keys):
    pgm = PGMIndex(epsilon=8)
    pgm.build(clustered_keys)
    plr = PLRIndex(epsilon=8)
    plr.build(clustered_keys)
    assert pgm.segment_count() <= plr.segment_count()


def test_pgm_epsilon_recursive_default_is_papers():
    index = PGMIndex(epsilon=16)
    assert index.epsilon_recursive == 4


def test_pgm_rejects_bad_epsilons():
    with pytest.raises(IndexBuildError):
        PGMIndex(epsilon=0)
    with pytest.raises(IndexBuildError):
        PGMIndex(epsilon=4, epsilon_recursive=0)


# -- RadixSpline ---------------------------------------------------------

def test_rs_radix_table_narrowing(uniform_keys):
    keys = uniform_keys[:5000]
    index = RadixSplineIndex(epsilon=8, radix_bits=4)
    index.build(keys)
    assert len(index._table) == (1 << 4) + 1
    assert index._table[-1] == index.spline_point_count()
    assert index._table[0] == 0


def test_rs_more_bits_more_table_memory(uniform_keys):
    keys = uniform_keys[:5000]
    small = RadixSplineIndex(epsilon=8, radix_bits=1)
    small.build(keys)
    big = RadixSplineIndex(epsilon=8, radix_bits=12)
    big.build(keys)
    assert big.size_bytes() > small.size_bytes()
    assert big.spline_point_count() == small.spline_point_count()


def test_rs_rejects_bad_params():
    with pytest.raises(IndexBuildError):
        RadixSplineIndex(epsilon=0)
    with pytest.raises(IndexBuildError):
        RadixSplineIndex(epsilon=4, radix_bits=0)


# -- PLEX ------------------------------------------------------------------

def test_plex_self_tuning_picks_candidate(uniform_keys):
    keys = uniform_keys[:5000]
    index = PLEXIndex(epsilon=8)
    index.build(keys)
    assert index.chosen_bits() in index.candidate_bits
    assert index.tree_height() >= 1


def test_plex_training_costs_multiple_passes(uniform_keys):
    keys = uniform_keys[:3000]
    index = PLEXIndex(epsilon=8)
    index.build(keys)
    # One spline pass plus one evaluation pass per candidate.
    expected = len(keys) * (1 + len(index.candidate_bits))
    assert index.train_key_visits == expected


def test_cht_lookup_ranges_bracket_keys(uniform_keys):
    keys = uniform_keys[:2000]
    spline_keys = keys[::20]
    tree = CompactHistTree(bits=4, leaf_threshold=4)
    tree.build(list(spline_keys))
    import bisect
    for probe in keys[::37]:
        lo, hi = tree.lookup_range(probe)
        insertion = bisect.bisect_right(spline_keys, probe)
        assert lo <= insertion <= hi


# -- RMI ---------------------------------------------------------------------

def test_rmi_errors_are_recorded_not_configured(uniform_keys):
    keys = uniform_keys[:5000]
    index = RMIIndex(boundary_target=16)
    index.build(keys)
    assert index.max_error() >= 0
    assert index.mean_error() <= index.max_error()
    assert index.leaf_count() >= 8


def test_rmi_tighter_target_needs_more_leaves(uniform_keys):
    keys = uniform_keys[:8000]
    loose = RMIIndex(boundary_target=128)
    loose.build(keys)
    tight = RMIIndex(boundary_target=4)
    tight.build(keys)
    assert tight.leaf_count() > loose.leaf_count()


def test_rmi_warm_cache_reduces_training(uniform_keys):
    keys = uniform_keys[:4000]
    cache = RmiTuningCache()
    cold = RMIIndex(boundary_target=16, cache=cache)
    cold.build(keys)
    warm = RMIIndex(boundary_target=16, cache=cache)
    warm.build(keys)
    assert warm.train_key_visits <= cold.train_key_visits
    assert warm.train_key_visits == 2 * len(keys)  # one round, two passes


def test_rmi_prediction_cost_is_two_evals(uniform_keys):
    keys = uniform_keys[:2000]
    index = RMIIndex(boundary_target=32)
    index.build(keys)
    assert index.expected_lookup_cost_us(DEFAULT_COST_MODEL) == pytest.approx(
        2 * DEFAULT_COST_MODEL.model_eval_us)


def test_rmi_rejects_tiny_boundary():
    with pytest.raises(IndexBuildError):
        RMIIndex(boundary_target=1)


# -- registry ---------------------------------------------------------------

def test_factory_boundary_to_epsilon_mapping():
    factory = IndexFactory(IndexKind.PGM, 64)
    assert factory.epsilon == 32
    index = factory.create()
    assert index.epsilon == 32


def test_factory_rejects_tiny_boundary():
    with pytest.raises(IndexBuildError):
        IndexFactory(IndexKind.PLR, 1)


def test_factory_shares_rmi_cache(uniform_keys):
    factory = IndexFactory(IndexKind.RMI, 16)
    first = factory.build(uniform_keys[:4000])
    second = factory.build(uniform_keys[:4000])
    assert second.train_key_visits <= first.train_key_visits


def test_kind_from_name_case_insensitive():
    from repro.indexes.registry import kind_from_name
    assert kind_from_name("pgm") is IndexKind.PGM
    assert kind_from_name("Plex") is IndexKind.PLEX
    with pytest.raises(IndexBuildError):
        kind_from_name("btree")


def test_deserialize_unknown_tag():
    from repro.indexes.registry import deserialize_index
    with pytest.raises(IndexBuildError):
        deserialize_index(b"\xee rest")
