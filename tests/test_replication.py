"""ReplicaGroup: log shipping, failover, hints, staleness, repair."""

import pytest

from repro.errors import (
    HintQueueFullError,
    InvalidOptionError,
    ReadOnlyModeError,
    ReplicaUnavailableError,
    ReproError,
)
from repro.lsm.options import small_test_options
from repro.lsm.write_batch import WriteBatch
from repro.service.gateway import Gateway, GatewayConfig
from repro.service.replication import (
    FAILOVER_OP,
    AckPolicy,
    ReplicaGroup,
    ReplicationConfig,
)
from repro.service.sharded import ShardedDB
from repro.storage.block_device import MemoryBlockDevice
from repro.storage.faults import FaultPlan, FaultyBlockDevice
from repro.storage.stats import (
    REPL_BACKPRESSURE,
    REPL_CATCHUP_FRAMES,
    REPL_FRAMES_LOST,
    REPL_FRAMES_SHIPPED,
    REPL_HINTS_QUEUED,
    REPL_HINTS_REPLAYED,
    REPL_PROMOTIONS,
    REPL_RECORDS_LOST,
    REPL_RESYNCS,
    REPL_STALE_READS,
)

HEARTBEAT_US = 1_000.0
TIMEOUT_US = 3_000.0


def _config(**overrides):
    knobs = dict(replication_factor=3, ack=AckPolicy.QUORUM,
                 heartbeat_interval_us=HEARTBEAT_US,
                 heartbeat_timeout_us=TIMEOUT_US)
    knobs.update(overrides)
    return ReplicationConfig(**knobs)


def _group(config=None, seed=7):
    config = config if config is not None else _config()
    options = small_test_options()
    devices = [
        FaultyBlockDevice(MemoryBlockDevice(block_size=options.block_size),
                          FaultPlan(seed=seed + r))
        for r in range(config.replication_factor)]
    return ReplicaGroup(0, options, config, devices=devices), devices


def _tick_past_timeout(group, rounds=6):
    """Advance the detector far enough to declare a dead replica dead."""
    now = group.clock.now_us
    for _ in range(rounds):
        now += HEARTBEAT_US
        group.tick(now)
    return now


# -- config / construction ---------------------------------------------


def test_acks_needed_per_policy():
    assert AckPolicy.ASYNC.acks_needed(3) == 1
    assert AckPolicy.QUORUM.acks_needed(1) == 1
    assert AckPolicy.QUORUM.acks_needed(3) == 2
    assert AckPolicy.QUORUM.acks_needed(5) == 3
    assert AckPolicy.ALL.acks_needed(3) == 3


@pytest.mark.parametrize("overrides", [
    dict(replication_factor=0),
    dict(heartbeat_interval_us=0.0),
    dict(heartbeat_timeout_us=HEARTBEAT_US / 2),
    dict(hint_queue_frames=0),
    dict(max_staleness_frames=-1),
    dict(ship_frame_us=-1.0),
])
def test_config_validation_rejects_bad_knobs(overrides):
    with pytest.raises(InvalidOptionError):
        _config(**overrides).validate()


def test_group_forces_wal_on():
    # A replica's durability promise (acked frames survive its own
    # power cut) rests on its WAL; the group must not honor the
    # paper's WAL-off default.
    options = small_test_options()
    assert not options.enable_wal
    group = ReplicaGroup(0, options, _config())
    assert group.options.enable_wal
    assert all(replica.tree.options.enable_wal
               for replica in group.replicas)
    group.close()


def test_device_count_must_match_factor():
    options = small_test_options()
    with pytest.raises(InvalidOptionError):
        ReplicaGroup(0, options, _config(),
                     devices=[MemoryBlockDevice(
                         block_size=options.block_size)])


# -- log shipping ------------------------------------------------------


def test_quorum_writes_apply_on_every_live_replica():
    group, _ = _group()
    for i in range(20):
        group.put(i, b"v%d" % i)
    for replica in group.replicas:
        for i in range(20):
            assert replica.tree.get(i) == b"v%d" % i
    assert group.stats.get(REPL_FRAMES_SHIPPED) == 40  # 20 frames x 2
    group.close()


def test_async_followers_catch_up_at_the_tick():
    group, _ = _group(_config(ack=AckPolicy.ASYNC))
    for i in range(5):
        group.put(i, b"v%d" % i)
    # Acked on the primary alone; followers have nothing yet.
    followers = [r for r in group.replicas if r.index != group.primary_index]
    assert all(r.applied_lsn == 0 for r in followers)
    group.tick(HEARTBEAT_US)
    assert all(r.applied_lsn == group.last_lsn() for r in followers)
    assert followers[0].tree.get(3) == b"v3"
    group.close()


def test_write_batch_is_one_frame():
    group, _ = _group()
    batch = WriteBatch()
    batch.put(1, b"a")
    batch.put(2, b"b")
    batch.delete(3)
    group.write(batch)
    assert group.last_lsn() == 1
    for replica in group.replicas:
        assert replica.tree.get(1) == b"a"
        assert replica.tree.get(2) == b"b"
    group.close()


def test_retained_frames_are_truncated_once_everyone_applied():
    group, _ = _group()
    for i in range(10):
        group.put(i, b"x")
    # Inline quorum shipping caught every replica up; nothing retained.
    assert not group._frames
    group.close()


# -- failover ----------------------------------------------------------


def test_primary_power_cut_promotes_most_caught_up_follower():
    group, devices = _group()
    for i in range(10):
        group.put(i, b"v%d" % i)
    devices[0].cut_power()
    with pytest.raises(ReproError):
        group.put(99, b"lost")
    _tick_past_timeout(group)
    assert group.primary_index is not None and group.primary_index != 0
    assert group.stats.get(REPL_PROMOTIONS) == 1
    hist = group.registry.histograms.get(FAILOVER_OP)
    assert hist is not None and hist.count == 1
    # Writes resume through the new primary and replicate.
    group.put(99, b"back")
    assert group.get(99) == b"back"
    assert group.get(7) == b"v7"
    group.close()


def test_async_unshipped_suffix_is_truncated_and_counted_lost():
    group, devices = _group(_config(ack=AckPolicy.ASYNC))
    group.put(1, b"shipped")
    group.tick(HEARTBEAT_US)  # frame 1 reaches the followers
    group.put(2, b"doomed")
    group.put(3, b"doomed")
    devices[0].cut_power()
    _tick_past_timeout(group)
    assert group.stats.get(REPL_FRAMES_LOST) == 2
    assert group.stats.get(REPL_RECORDS_LOST) == 2
    assert group.get(1) == b"shipped"
    assert group.get(2) is None and group.get(3) is None
    # The log head rewound to the survivor's history.
    assert group.last_lsn() == 1
    group.close()


def test_headless_group_refuses_writes_with_reason():
    group, devices = _group(_config(replication_factor=1))
    devices[0].cut_power()
    with pytest.raises(ReproError):
        group.put(1, b"x")
    _tick_past_timeout(group)
    assert group.read_only
    assert "headless" in (group.read_only_reason or "")
    with pytest.raises(ReadOnlyModeError):
        group.put(1, b"x")
    group.close()


# -- hinted handoff ----------------------------------------------------


def test_dead_follower_accumulates_hints_and_replays_on_revive():
    group, devices = _group()
    group.put(0, b"seed")
    devices[2].cut_power()
    _tick_past_timeout(group)  # declare replica 2 dead
    for i in range(1, 6):
        group.put(i, b"v%d" % i)  # quorum holds: primary + replica 1
    assert group.stats.get(REPL_HINTS_QUEUED) == 5
    assert group.lag_frames(group.replicas[2]) == 5
    devices[2].revive()
    _tick_past_timeout(group)
    assert group.stats.get(REPL_HINTS_REPLAYED) == 5
    assert group.stats.get(REPL_CATCHUP_FRAMES) == 5
    assert group.replicas[2].applied_lsn == group.last_lsn()
    assert group.replicas[2].tree.get(5) == b"v5"
    group.close()


def test_hint_queue_bound_backpressures_writes_all_or_nothing():
    group, devices = _group(_config(hint_queue_frames=3))
    devices[2].cut_power()
    _tick_past_timeout(group)
    for i in range(3):
        group.put(i, b"ok")
    with pytest.raises(HintQueueFullError):
        group.put(77, b"rejected")
    assert group.stats.get(REPL_BACKPRESSURE) == 1
    # All-or-nothing: the rejected write never touched the primary.
    assert group.get(77) is None
    assert group.last_lsn() == 3
    group.close()


# -- bounded-staleness follower reads ----------------------------------


def test_reads_fail_over_to_a_fresh_follower_within_the_bound():
    group, devices = _group()
    for i in range(8):
        group.put(i, b"v%d" % i)
    # Flush so reads must touch the device (a memtable read would let
    # the dead primary keep "serving" without noticing its disk).
    group.flush()
    devices[0].cut_power()
    # No tick yet: the group has not noticed.  The read discovers the
    # dead primary and falls to a caught-up follower.
    assert group.get(4) == b"v4"
    assert group.stats.get(REPL_STALE_READS) >= 1
    group.close()


def test_reads_refused_past_the_staleness_bound():
    group, devices = _group(_config(ack=AckPolicy.ASYNC,
                                    max_staleness_frames=2))
    for i in range(6):
        group.put(i, b"v%d" % i)  # never shipped: followers lag 6
    group.flush()
    devices[0].cut_power()
    with pytest.raises(ReplicaUnavailableError):
        group.get(0)
    group.close()


# -- anti-entropy ------------------------------------------------------


def test_diverged_old_primary_resyncs_on_rejoin():
    group, devices = _group(_config(ack=AckPolicy.ASYNC))
    group.put(1, b"shipped")
    group.tick(HEARTBEAT_US)
    group.put(2, b"unshipped")  # applied on the primary alone
    devices[0].cut_power()
    _tick_past_timeout(group)
    assert group.replicas[0].diverged
    new_primary = group.primary_index
    group.put(3, b"post-failover")
    devices[0].revive()
    _tick_past_timeout(group)
    assert group.stats.get(REPL_RESYNCS) == 1
    assert not group.replicas[0].diverged
    # The resynced replica matches the new primary's live view: the
    # disowned write is gone, the surviving history is present.
    assert group.replicas[0].tree.get(2) is None
    assert group.replicas[0].tree.get(3) == b"post-failover"
    assert group.primary_index == new_primary
    group.close()


def test_anti_entropy_rewrites_a_drifted_follower():
    group, _ = _group()
    for i in range(5):
        group.put(i, b"v%d" % i)
    # Perturb one follower behind the protocol's back (healed medium,
    # long-truncated hints): an extra key and a clobbered value.
    follower = group.replicas[2]
    follower.tree.put(999, b"ghost")
    follower.tree.put(3, b"stale")
    group.anti_entropy()
    assert follower.tree.get(999) is None
    assert follower.tree.get(3) == b"v3"
    group.close()


# -- facade / introspection --------------------------------------------


def test_replication_summary_reports_roles_and_lag():
    group, devices = _group(_config(ack=AckPolicy.ASYNC))
    for i in range(4):
        group.put(i, b"x")
    summary = group.replication_summary()
    assert summary["primary"] == 0
    assert summary["roles"] == ["primary", "follower", "follower"]
    assert summary["alive"] == 3
    assert summary["max_lag_frames"] == 4
    health = group.health()
    assert health["replication"]["primary"] == 0
    lags = [entry["lag_frames"]
            for entry in health["replication"]["replicas"]]
    assert lags == [0, 4, 4]
    group.close()


def test_sharded_db_routes_through_replica_groups():
    config = _config()
    db = ShardedDB(num_shards=2, options=small_test_options(),
                   replication=config, observe=False)
    for i in range(40):
        db.put(i, b"v%d" % i)
    for i in range(40):
        assert db.get(i) == b"v%d" % i
    health = db.health()
    assert health["status"] == "ok"
    for shard_health in health["shards"]:
        roles = [entry["role"]
                 for entry in shard_health["replication"]["replicas"]]
        assert roles.count("primary") == 1
    db.close()


def test_gateway_health_surfaces_replica_roles_and_lag():
    db = ShardedDB(num_shards=2, options=small_test_options(),
                   replication=_config(), observe=False)
    gateway = Gateway(db, GatewayConfig())
    batch = WriteBatch()
    batch.put(5, b"x")
    gateway.write(batch)
    for shard in range(2):
        entry = gateway.shard_health(shard)
        assert entry["replica_roles"].count("primary") == 1
        assert entry["replicas_alive"] == 3
        assert entry["replication_lag"] == 0
    db.close()


# -- regression: breaker closes after follower promotion ---------------


def test_breaker_reopens_after_follower_promotion():
    """A force-opened breaker on a headless shard must close again.

    Regression for the failover/overload interaction: the breaker
    opens while the shard is primary-less, and the half-open probe
    after the cooldown must find the promoted follower and close.
    """
    options = small_test_options()
    devices = [
        [FaultyBlockDevice(MemoryBlockDevice(block_size=options.block_size),
                           FaultPlan(seed=31 + shard * 97 + r))
         for r in range(3)]
        for shard in range(2)]
    db = ShardedDB(num_shards=2, options=options, devices=devices,
                   replication=_config(), observe=False)
    gateway = Gateway(db, GatewayConfig(breaker_cooldown_us=10_000.0))
    key0 = next(k for k in range(200) if db.shard_for(k) == 0)
    batch = WriteBatch()
    batch.put(key0, b"before")
    gateway.write(batch)
    devices[0][db.shards[0].primary_index].cut_power()
    # First write discovers the death (and trips the breaker); second
    # fails fast against the open breaker.
    for _ in range(2):
        with pytest.raises(ReproError):
            gateway.write(batch)
    assert gateway.breakers[0].state != "closed"
    now = gateway.clock.now_us
    for _ in range(6):
        now += HEARTBEAT_US
        db.tick(now)
    gateway.clock.advance_to(now + 20_000.0)
    landed = None
    for attempt in range(3):
        retry = WriteBatch()
        payload = b"after-%d" % attempt
        retry.put(key0, payload)
        try:
            gateway.write(retry)
            landed = payload
        except ReproError:
            pass
    assert gateway.breakers[0].state == "closed"
    assert landed is not None and db.get(key0) == landed
    db.close()


# -- durability fuzz: power cut at every WAL byte offset ---------------


@pytest.mark.faults
def test_power_cut_fuzz_at_every_wal_byte_offset():
    """Cut the primary at every WAL-frame byte offset; nothing acked dies.

    For each byte the primary's WAL stream grows by during the
    workload, run the identical schedule with a power cut budgeted at
    exactly that offset, fail over, and check both durability claims:
    every acknowledged batch survives promotion intact, and every
    unacknowledged batch is all-or-nothing on the survivors.
    """
    options = small_test_options()
    n_batches = 8

    def workload(group):
        acked = []
        rejected = []
        for i in range(n_batches):
            batch = WriteBatch()
            keys = [1_000 + 3 * i, 1_001 + 3 * i, 1_002 + 3 * i]
            for key in keys:
                batch.put(key, b"b%d" % i)
            try:
                group.write(batch)
            except ReproError:
                rejected.append((keys, b"b%d" % i))
            else:
                acked.append((keys, b"b%d" % i))
        return acked, rejected

    # Baseline run: measure where the workload's WAL bytes start/end.
    group, devices = _group(seed=1_000)
    init_bytes = devices[0]._appended
    workload(group)
    total_bytes = devices[0]._appended
    group.close()
    assert total_bytes > init_bytes

    for offset in range(init_bytes, total_bytes):
        config = _config()
        clean = [
            FaultyBlockDevice(
                MemoryBlockDevice(block_size=options.block_size),
                FaultPlan(seed=2_000 + r))
            for r in range(1, 3)]
        primary_device = FaultyBlockDevice(
            MemoryBlockDevice(block_size=options.block_size),
            FaultPlan(seed=2_000, power_cut_after_bytes=offset))
        group = ReplicaGroup(0, options, config,
                             devices=[primary_device] + clean)
        acked, rejected = workload(group)
        _tick_past_timeout(group)
        assert group.primary_index != 0, f"no failover at offset {offset}"
        for keys, value in acked:
            for key in keys:
                assert group.get(key) == value, \
                    f"acked key {key} lost at offset {offset}"
        for keys, _ in rejected:
            present = [group.get(key) is not None for key in keys]
            assert all(present) or not any(present), \
                f"torn batch {keys} at offset {offset}"
        group.close()
