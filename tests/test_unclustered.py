"""Tests for the data-unclustered indexes (ALEX and LIPP)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexBuildError
from repro.indexes.alex import ALEXIndex
from repro.indexes.dili import DILIIndex
from repro.indexes.lipp import LIPPIndex
from repro.indexes.nfl import NFLIndex


def _pairs(keys):
    return [(key, b"v%d" % key) for key in keys]


@pytest.fixture(params=[ALEXIndex, LIPPIndex, DILIIndex, NFLIndex])
def index_cls(request):
    return request.param


def test_bulk_load_and_get(index_cls, uniform_keys):
    keys = uniform_keys[:3000]
    index = index_cls()
    index.bulk_load(_pairs(keys))
    assert len(index) == len(keys)
    for key in keys[::97]:
        assert index.get(key) == b"v%d" % key
    assert index.get(keys[0] + 1) is None


def test_insert_new_and_overwrite(index_cls, uniform_keys):
    keys = uniform_keys[:500]
    index = index_cls()
    index.bulk_load(_pairs(keys))
    fresh = [key + 1 for key in keys[::5] if key + 1 not in set(keys)]
    for key in fresh:
        index.insert(key, b"new")
    for key in fresh:
        assert index.get(key) == b"new"
    assert len(index) == len(keys) + len(fresh)
    index.insert(keys[0], b"over")
    assert index.get(keys[0]) == b"over"
    assert len(index) == len(keys) + len(fresh)


def test_range_scan_matches_sorted_reference(index_cls, uniform_keys):
    keys = uniform_keys[:2000]
    index = index_cls()
    index.bulk_load(_pairs(keys))
    rng = random.Random(9)
    for _ in range(20):
        start = keys[rng.randrange(len(keys))]
        expected = [(k, b"v%d" % k) for k in keys if k >= start][:50]
        assert index.range_scan(start, 50) == expected


def test_counters_track_traversal(index_cls, uniform_keys):
    keys = uniform_keys[:2000]
    index = index_cls()
    index.bulk_load(_pairs(keys))
    index.counters.reset()
    for key in keys[:100]:
        index.get(key)
    assert index.counters.operations == 100
    assert index.counters.node_hops >= 100  # at least one hop per lookup
    assert index.counters.hops_per_op() >= 1.0


def test_memory_accounts_slots(index_cls, uniform_keys):
    keys = uniform_keys[:1000]
    index = index_cls()
    index.bulk_load(_pairs(keys))
    # Unclustered structures pay per-slot overhead well above 8B/key.
    assert index.memory_bytes() > 8 * len(keys)


def test_empty_bulk_load_raises(index_cls):
    with pytest.raises(IndexBuildError):
        index_cls().bulk_load([])


def test_alex_splits_grow_structure(uniform_keys):
    keys = uniform_keys[:200]
    index = ALEXIndex()
    index.bulk_load(_pairs(keys))
    before_mem = index.memory_bytes()
    rng = random.Random(4)
    inserts = rng.sample(range(1, 1 << 62), 2000)
    for key in inserts:
        index.insert(key, b"x")
    for key in inserts[::53]:
        assert index.get(key) == b"x"
    assert index.memory_bytes() > before_mem
    assert index.depth() >= 2


def test_lipp_conflicts_create_children(uniform_keys):
    index = LIPPIndex()
    # Dense cluster forces slot conflicts -> child nodes.
    keys = list(range(10_000, 10_400))
    index.bulk_load(_pairs(keys))
    assert index.depth() >= 1
    for key in keys[::17]:
        assert index.get(key) == b"v%d" % key


def test_lipp_scan_counts_scatter(uniform_keys):
    index = LIPPIndex()
    keys = list(range(0, 100_000, 7))
    index.bulk_load(_pairs(keys))
    index.counters.reset()
    index.range_scan(keys[10], 500)
    assert index.counters.scatter_jumps >= 0  # counted, possibly zero
    assert index.counters.operations == 1


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 48), min_size=1,
                max_size=150, unique=True))
def test_property_unclustered_get_after_load(keys):
    keys = sorted(keys)
    for cls in (ALEXIndex, LIPPIndex, DILIIndex, NFLIndex):
        index = cls()
        index.bulk_load(_pairs(keys))
        for key in keys:
            assert index.get(key) == b"v%d" % key


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 40), min_size=1,
                max_size=120, unique=True),
       st.lists(st.integers(min_value=0, max_value=1 << 40), min_size=1,
                max_size=60, unique=True))
def test_property_unclustered_inserts_match_dict(loaded, inserted):
    loaded = sorted(loaded)
    for cls in (ALEXIndex, LIPPIndex, DILIIndex, NFLIndex):
        index = cls()
        index.bulk_load(_pairs(loaded))
        reference = {key: b"v%d" % key for key in loaded}
        for key in inserted:
            index.insert(key, b"i%d" % key)
            reference[key] = b"i%d" % key
        for key in reference:
            assert index.get(key) == reference[key]
        assert len(index) == len(reference)


def test_dili_distribution_driven_leaves(clustered_keys):
    """Dense regions should get more, smaller leaves than sparse ones."""
    index = DILIIndex()
    index.bulk_load(_pairs(clustered_keys[:4000]))
    assert index.depth() >= 2
    for key in clustered_keys[:4000:131]:
        assert index.get(key) == b"v%d" % key


def test_dili_inserts_trigger_splits(uniform_keys):
    index = DILIIndex()
    index.bulk_load(_pairs(uniform_keys[:100]))
    rng = random.Random(8)
    inserts = rng.sample(range(1, 1 << 61), 1200)
    for key in inserts:
        index.insert(key, b"y")
    for key in inserts[::37]:
        assert index.get(key) == b"y"
    assert len(index) >= 1200


def test_nfl_flow_uniformises_hard_distribution(clustered_keys):
    """The point of NFL: after the flow, hard keys look uniform."""
    from repro.workloads.datasets import generate, hardness_score
    keys = generate("fb", 3000, seed=3)
    index = NFLIndex()
    index.bulk_load(_pairs(keys))
    raw_hardness = hardness_score(keys)
    transformed = index.flow_uniformity(keys)
    assert transformed < raw_hardness / 5
    assert transformed < 0.05


def test_nfl_buckets_stay_balanced(uniform_keys):
    index = NFLIndex(bucket_target=16)
    index.bulk_load(_pairs(uniform_keys[:4000]))
    # The flow should keep the worst bucket within a small multiple of
    # the target occupancy.
    assert index.max_bucket_size() <= 16 * 6


def test_nfl_transform_monotone(uniform_keys):
    from repro.indexes.nfl import NumericalFlow
    flow = NumericalFlow(uniform_keys[:2000])
    probes = uniform_keys[:2000:97]
    values = [flow.transform(key) for key in probes]
    assert all(b >= a for a, b in zip(values, values[1:]))
    assert 0.0 <= values[0] and values[-1] < 1.0
