"""Shared fixtures: deterministic key sets and compact engine options."""

from __future__ import annotations

import random

import pytest

from repro.indexes.registry import ALL_KINDS
from repro.lsm.options import small_test_options


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "faults: slower fault-injection fuzz tests (run with -m faults)")


@pytest.fixture(scope="session")
def uniform_keys():
    """20k sorted unique uniform keys over the full 63-bit space."""
    rng = random.Random(0xC0FFEE)
    return sorted(rng.sample(range(1, 1 << 63), 20_000))


@pytest.fixture(scope="session")
def clustered_keys():
    """Sorted unique keys with heavy clustering (hard for linear models)."""
    rng = random.Random(0xBEEF)
    keys = set()
    base = 1
    for _ in range(40):
        base += rng.randrange(1 << 40, 1 << 50)
        for _ in range(500):
            keys.add(base + rng.randrange(1 << 16))
    return sorted(keys)


@pytest.fixture(params=[kind.value for kind in ALL_KINDS])
def index_kind(request):
    """Parametrised over all seven index types."""
    return request.param


@pytest.fixture()
def tiny_options():
    """Small-engine options: 64-entry buffer, 128-entry SSTables."""
    return small_test_options()
