"""Unit + property tests for the skip-list memtable."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.memtable import MemTable
from repro.lsm.record import make_tombstone, make_value


def test_add_get():
    table = MemTable(entry_bytes=64)
    table.add(make_value(5, 1, b"a"))
    table.add(make_value(3, 2, b"b"))
    assert table.get(5).value == b"a"
    assert table.get(3).value == b"b"
    assert table.get(4) is None
    assert len(table) == 2


def test_newer_seq_supersedes():
    table = MemTable(entry_bytes=64)
    table.add(make_value(1, 1, b"old"))
    table.add(make_value(1, 5, b"new"))
    assert table.get(1).value == b"new"
    assert len(table) == 1
    # A stale (lower-seq) write must not clobber a newer one.
    table.add(make_value(1, 3, b"stale"))
    assert table.get(1).value == b"new"


def test_tombstones_stored():
    table = MemTable(entry_bytes=64)
    table.add(make_value(1, 1, b"x"))
    table.add(make_tombstone(1, 2))
    assert table.get(1).is_tombstone


def test_records_sorted():
    table = MemTable(entry_bytes=64)
    keys = random.Random(7).sample(range(10_000), 500)
    for i, key in enumerate(keys):
        table.add(make_value(key, i + 1, b"v"))
    out = [record.key for record in table.records()]
    assert out == sorted(keys)


def test_records_from_midpoint():
    table = MemTable(entry_bytes=64)
    for i, key in enumerate(range(0, 100, 10)):
        table.add(make_value(key, i + 1, b"v"))
    assert [r.key for r in table.records_from(35)] == [40, 50, 60, 70, 80, 90]
    assert [r.key for r in table.records_from(40)][0] == 40
    assert list(table.records_from(1000)) == []


def test_approximate_bytes():
    table = MemTable(entry_bytes=100)
    assert table.approximate_bytes() == 0
    assert table.is_empty()
    for i in range(10):
        table.add(make_value(i, i + 1, b"v"))
    assert table.approximate_bytes() == 1000
    assert not table.is_empty()


def test_comparison_depth_grows():
    small = MemTable(entry_bytes=8)
    for i in range(4):
        small.add(make_value(i, i + 1, b""))
    big = MemTable(entry_bytes=8)
    for i in range(4000):
        big.add(make_value(i, i + 1, b""))
    assert big.comparison_depth() >= small.comparison_depth()


def test_deterministic_structure():
    a = MemTable(entry_bytes=8, seed=123)
    b = MemTable(entry_bytes=8, seed=123)
    for i in range(200):
        a.add(make_value(i * 7, i + 1, b""))
        b.add(make_value(i * 7, i + 1, b""))
    assert [r.key for r in a.records()] == [r.key for r in b.records()]


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=1 << 32),
                          st.binary(max_size=8)), max_size=300))
def test_property_matches_dict(ops):
    table = MemTable(entry_bytes=32)
    reference = {}
    for seq, (key, value) in enumerate(ops, start=1):
        table.add(make_value(key, seq, value))
        reference[key] = value
    assert len(table) == len(reference)
    for key, value in reference.items():
        assert table.get(key).value == value
    assert [r.key for r in table.records()] == sorted(reference)
