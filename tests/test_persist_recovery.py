"""Recovery tests for the durable persistence layer.

Covers the acceptance bar of the persistence subsystem:

* a manifest-driven reopen performs **zero** index training and yields
  a Version and lookup results identical to the pre-close tree;
* a manifest truncated at *any* byte offset (record boundaries and torn
  tails alike) replays to the exact committed state at that point —
  simulated by snapshotting the device around every manifest append of
  a live workload;
* uncommitted garbage a crash leaves behind (orphan tables, superseded
  model sidecars, a half-finished manifest rewrite) is collected;
* shards of a :class:`~repro.service.sharded.ShardedDB` recover
  independently: destroying one shard's manifest does not disturb the
  others.
"""

import random

import pytest

from repro.indexes.registry import IndexKind
from repro.lsm.db import LSMTree
from repro.lsm.options import Granularity, small_test_options
from repro.persist.manifest import MANIFEST_NAME, MANIFEST_TMP_NAME
from repro.persist.models import MODEL_FILE_PREFIX
from repro.service.sharded import ShardedDB
from repro.storage.block_device import MemoryBlockDevice
from repro.storage.stats import (
    RECOVERY_FILES_GCED,
    RECOVERY_MANIFEST_OPENS,
    RECOVERY_SCANS,
    TRAIN_KEY_VISITS,
    Stage,
)


def _fill(db, n=700, seed=11):
    rng = random.Random(seed)
    keys = rng.sample(range(1, 1 << 40), n)
    reference = {}
    for i, key in enumerate(keys):
        value = b"v%d" % i
        db.put(key, value)
        reference[key] = value
    for key in keys[:n // 12]:
        db.delete(key)
        del reference[key]
    return reference


def _all_items(db):
    cursor = db.iterator()
    cursor.seek_to_first()
    return cursor.take(1_000_000)


# -- the acceptance bar --------------------------------------------------

@pytest.mark.parametrize("granularity",
                         [Granularity.FILE, Granularity.LEVEL])
def test_manifest_reopen_trains_nothing_and_matches_oracle(granularity):
    options = small_test_options(index_kind=IndexKind.PGM,
                                 granularity=granularity)
    device = MemoryBlockDevice(block_size=options.block_size)
    db = LSMTree(options, device=device)
    reference = _fill(db)
    db.flush()
    shape_before = [(row["level"], row["files"], row["entries"])
                    for row in db.describe_levels()]

    recovered = LSMTree.reopen(options, device)

    # Zero training during reopen: no key visits, no train-stage time.
    assert recovered.stats.get(TRAIN_KEY_VISITS) == 0
    assert recovered.stats.stage_time(Stage.COMPACT_TRAIN) == 0.0
    assert recovered.stats.stage_time(Stage.COMPACT_WRITE_MODEL) == 0.0
    # No data-block reads either: recovery is O(manifest), not O(data).
    assert recovered.stats.stage_time(Stage.COMPACT_READ) == 0.0
    assert recovered.stats.get(RECOVERY_MANIFEST_OPENS) == 1

    # Oracle equivalence: identical Version shape and identical reads.
    shape_after = [(row["level"], row["files"], row["entries"])
                   for row in recovered.describe_levels()]
    assert shape_after == shape_before
    for key, value in list(reference.items())[::7]:
        assert recovered.get(key) == value
    assert _all_items(recovered) == sorted(reference.items())
    recovered.close()


def test_scan_path_still_retrains_level_models():
    # The cost the manifest avoids must actually exist on the old path.
    options = small_test_options(index_kind=IndexKind.PGM,
                                 granularity=Granularity.LEVEL)
    device = MemoryBlockDevice(block_size=options.block_size)
    db = LSMTree(options, device=device)
    _fill(db)
    db.flush()
    assert db.version.deepest_nonempty_level() >= 1
    scanned = LSMTree.reopen(options, device, use_manifest=False)
    assert scanned.stats.get(RECOVERY_SCANS) == 1
    assert scanned.stats.get(TRAIN_KEY_VISITS) > 0


def test_manifest_reopen_with_wal_recovers_unflushed_writes():
    options = small_test_options(enable_wal=True)
    device = MemoryBlockDevice(block_size=options.block_size)
    db = LSMTree(options, device=device)
    for i in range(80):
        db.put(2000 + i, b"w%d" % i)
    db.flush()
    db.put(7777, b"unflushed")
    db.delete(2000)
    recovered = LSMTree.reopen(options, device)
    assert recovered.stats.get(RECOVERY_MANIFEST_OPENS) == 1
    assert recovered.get(7777) == b"unflushed"
    assert recovered.get(2000) is None
    # Sequences resumed past both manifest and WAL records.
    recovered.put(2001, b"fresh")
    assert recovered.get(2001) == b"fresh"
    recovered.close()


def test_checkpoint_compacts_manifest_to_one_record():
    options = small_test_options(index_kind=IndexKind.PGM,
                                 granularity=Granularity.LEVEL)
    device = MemoryBlockDevice(block_size=options.block_size)
    db = LSMTree(options, device=device)
    reference = _fill(db)
    long_manifest = device.size(MANIFEST_NAME)
    summary = db.checkpoint()
    assert device.size(MANIFEST_NAME) < long_manifest
    assert summary["files"] == db.version.file_count()
    assert summary["models_persisted"] >= 1
    recovered = LSMTree.reopen(options, device)
    assert recovered.stats.get(TRAIN_KEY_VISITS) == 0
    assert _all_items(recovered) == sorted(reference.items())
    recovered.close()


# -- crash consistency ---------------------------------------------------

class _SnapshottingDevice(MemoryBlockDevice):
    """Records (files, committed-reference) around every manifest append.

    The workload loop keeps ``reference`` up to date *before* calling
    into the database, so at the instant a version edit is appended the
    dictionary equals exactly the data the edit commits.
    """

    def __init__(self, reference, **kwargs):
        super().__init__(**kwargs)
        self.reference = reference
        self.pre = []    # device state just before each append (crash
        self.post = []   # during the append) / just after it
        self.committed = []  # reference at each append

    def _copy_files(self):
        return {name: bytes(buf) for name, buf in self._files.items()}

    def append(self, name, data):
        if name == MANIFEST_NAME:
            self.pre.append(self._copy_files())
        super().append(name, data)
        if name == MANIFEST_NAME:
            self.post.append(self._copy_files())
            self.committed.append(dict(self.reference))


def _device_from(files, block_size):
    device = MemoryBlockDevice(block_size=block_size)
    device._files = {name: bytearray(buf) for name, buf in files.items()}
    return device


def _run_crashy_workload(granularity):
    options = small_test_options(index_kind=IndexKind.PGM, value_capacity=8,
                                 granularity=granularity)
    reference = {}
    device = _SnapshottingDevice(reference, block_size=options.block_size)
    db = LSMTree(options, device=device)
    rng = random.Random(23)
    live = []
    for _ in range(900):
        if rng.random() < 0.85 or not live:
            key = rng.randrange(1 << 32)
            value = b"x%d" % (key & 0xFFF)
            reference[key] = value  # updated BEFORE the engine runs
            db.put(key, value)
            live.append(key)
        else:
            victim = live.pop(rng.randrange(len(live)))
            reference.pop(victim, None)
            db.delete(victim)
    return options, device


def _assert_recovers_to(options, files, expected):
    device = _device_from(files, options.block_size)
    recovered = LSMTree.reopen(options, device)
    assert recovered.stats.get(TRAIN_KEY_VISITS) == 0
    assert _all_items(recovered) == sorted(expected.items())
    # GC left exactly the live files + the persistence layer.
    live = {meta.name for _, meta in recovered.version.all_files()}
    for name in device.list_files():
        if name.startswith("sst-"):
            assert name in live, f"leaked table {name}"
        assert name != MANIFEST_TMP_NAME


@pytest.mark.parametrize("granularity",
                         [Granularity.FILE, Granularity.LEVEL])
def test_crash_at_every_manifest_record_boundary(granularity):
    """Replay from every pre/post-append device state is consistent.

    ``post[i]`` must recover to exactly the data committed by edit i;
    ``pre[i]`` (a crash *during* append i) must recover to the state of
    edit i-1, garbage-collecting whatever files edit i would have
    referenced.  This covers crash-mid-flush and crash-mid-compaction
    at every commit point of a real workload.
    """
    options, device = _run_crashy_workload(granularity)
    assert len(device.post) >= 8, "workload produced too few commits"
    for i in range(len(device.post)):
        _assert_recovers_to(options, device.post[i], device.committed[i])
        before = device.committed[i - 1] if i > 0 else {}
        _assert_recovers_to(options, device.pre[i], before)


@pytest.mark.parametrize("granularity",
                         [Granularity.FILE, Granularity.LEVEL])
def test_torn_manifest_tail_recovers_previous_commit(granularity):
    """A partially written final record must roll back one commit."""
    options, device = _run_crashy_workload(granularity)
    for i in range(1, len(device.post), 3):
        files = dict(device.post[i])
        prev_size = len(device.pre[i][MANIFEST_NAME])
        full = files[MANIFEST_NAME]
        for cut in (prev_size + 1, prev_size + 5, len(full) - 1):
            if not prev_size < cut < len(full):
                continue
            torn = dict(files)
            torn[MANIFEST_NAME] = full[:cut]
            _assert_recovers_to(options, torn,
                                device.committed[i - 1])


def test_torn_tail_is_truncated_so_later_commits_survive():
    """Edits appended after torn bytes would be lost to every replay;
    reopen must truncate the garbage before the session commits again."""
    options = small_test_options()
    device = MemoryBlockDevice(block_size=options.block_size)
    db = LSMTree(options, device=device)
    reference = _fill(db, n=300)
    db.flush()
    device.append(MANIFEST_NAME, b"\x13torn-by-a-crash")  # torn tail

    second = LSMTree.reopen(options, device)
    for i in range(200):  # enough to flush new tables + commit edits
        second.put(10_000_000 + i, b"post-crash-%d" % i)
        reference[10_000_000 + i] = b"post-crash-%d" % i
    second.flush()

    third = LSMTree.reopen(options, device)
    assert third.stats.get(TRAIN_KEY_VISITS) == 0
    assert _all_items(third) == sorted(reference.items())
    third.close()


def test_manifest_opt_out_reopen_invalidates_stale_log():
    """Scanning a manifest-carrying device with the manifest disabled
    must drop the log: it will go stale this session, and replaying it
    later would garbage-collect everything written in between."""
    options = small_test_options()
    device = MemoryBlockDevice(block_size=options.block_size)
    db = LSMTree(options, device=device)
    reference = _fill(db, n=300)
    db.flush()

    legacy = options.with_changes(enable_manifest=False)
    second = LSMTree.reopen(legacy, device)
    assert not device.exists(MANIFEST_NAME)  # stale log dropped
    for i in range(200):
        second.put(20_000_000 + i, b"unlogged-%d" % i)
        reference[20_000_000 + i] = b"unlogged-%d" % i
    second.flush()

    third = LSMTree.reopen(options, device)  # manifest back on
    assert third.stats.get(RECOVERY_SCANS) == 1  # no stale replay
    assert _all_items(third) == sorted(reference.items())
    third.close()


def test_wal_tail_sequences_survive_reopen():
    """A key rewritten in the WAL tail (seq beyond any table footer)
    must stay supersedable after reopen: the replayed sequence floor
    may not be clobbered back below the WAL's highest record."""
    options = small_test_options(enable_wal=True)
    device = MemoryBlockDevice(block_size=options.block_size)
    db = LSMTree(options, device=device)
    db.put(1, b"a")
    db.flush()
    db.put(2, b"b-old")
    db.put(2, b"b-new")  # both live only in the WAL

    recovered = LSMTree.reopen(options, device)
    assert recovered.get(2) == b"b-new"
    recovered.put(2, b"b-v3")  # must get a seq above the WAL tail's
    assert recovered.get(2) == b"b-v3"
    recovered.flush()
    assert recovered.get(2) == b"b-v3"
    recovered.close()


def test_reopen_collects_uncommitted_garbage():
    options = small_test_options()
    device = MemoryBlockDevice(block_size=options.block_size)
    db = LSMTree(options, device=device)
    reference = _fill(db, n=300)
    db.flush()
    # A crash can orphan compaction outputs, model sidecars and a
    # half-finished manifest rewrite; recovery must sweep them all.
    for name in ("sst-999999", MODEL_FILE_PREFIX + "L01-999999",
                 MANIFEST_TMP_NAME):
        device.create(name)
        device.append(name, b"orphaned-by-a-crash")
    recovered = LSMTree.reopen(options, device)
    assert recovered.stats.get(RECOVERY_FILES_GCED) == 3
    for name in ("sst-999999", MODEL_FILE_PREFIX + "L01-999999",
                 MANIFEST_TMP_NAME):
        assert not device.exists(name)
    assert _all_items(recovered) == sorted(reference.items())
    recovered.close()


def test_scan_fallback_migrates_legacy_device_to_manifest():
    legacy = small_test_options(enable_manifest=False)
    device = MemoryBlockDevice(block_size=legacy.block_size)
    db = LSMTree(legacy, device=device)
    reference = _fill(db, n=400)
    db.flush()
    assert not device.exists(MANIFEST_NAME)

    options = legacy.with_changes(enable_manifest=True)
    first = LSMTree.reopen(options, device)
    assert first.stats.get(RECOVERY_SCANS) == 1
    assert device.exists(MANIFEST_NAME)  # migrated

    second = LSMTree.reopen(options, device)
    assert second.stats.get(RECOVERY_MANIFEST_OPENS) == 1
    assert second.stats.get(TRAIN_KEY_VISITS) == 0
    assert _all_items(second) == sorted(reference.items())
    second.close()


# -- sharded recovery ----------------------------------------------------

def _sharded_setup(num_shards=3):
    options = small_test_options(index_kind=IndexKind.PGM,
                                 granularity=Granularity.LEVEL)
    devices = [MemoryBlockDevice(block_size=options.block_size)
               for _ in range(num_shards)]
    sdb = ShardedDB(num_shards=num_shards, options=options, devices=devices)
    rng = random.Random(5)
    reference = {}
    for i, key in enumerate(rng.sample(range(1, 1 << 40), 900)):
        value = b"s%d" % i
        sdb.put(key, value)
        reference[key] = value
    sdb.checkpoint()
    return options, devices, sdb, reference


def test_sharded_checkpoint_restore_is_retrain_free():
    options, devices, sdb, reference = _sharded_setup()
    restored = ShardedDB.reopen(len(devices), options, devices)
    assert restored.stats.get(TRAIN_KEY_VISITS) == 0
    assert restored.stats.get(RECOVERY_MANIFEST_OPENS) == len(devices)
    for key, value in list(reference.items())[::11]:
        assert restored.get(key) == value


def test_sharded_recovery_is_per_shard_independent():
    options, devices, sdb, reference = _sharded_setup()
    # Shard 0: garbage appended after the last commit — a torn tail
    # that recovery must shrug off without losing committed data.
    devices[0].append(MANIFEST_NAME, b"\x00\x01torn-garbage")
    # Shard 1: manifest destroyed mid-snapshot — that shard recovers
    # empty (its one intact prefix), the others are untouched.
    snap = devices[1].pread(MANIFEST_NAME, 0,
                            devices[1].size(MANIFEST_NAME))
    devices[1].create(MANIFEST_NAME)
    devices[1].append(MANIFEST_NAME, snap[:9])
    restored = ShardedDB.reopen(len(devices), options, devices)
    assert restored.stats.get(TRAIN_KEY_VISITS) == 0
    assert restored.shards[1].entry_count() == 0
    router = restored.router
    hits = misses = 0
    for key, value in reference.items():
        if router.shard_for(key) == 1:
            assert restored.get(key) is None
            misses += 1
        else:
            assert restored.get(key) == value
            hits += 1
    assert hits > 0 and misses > 0  # both populations exercised
