"""The overload gateway: queues, deadlines, breakers, retry budgets."""

import json
import random

import pytest

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    InvalidOptionError,
    ReadOnlyModeError,
    RequestRejectedError,
    ShedError,
    TransientIOError,
)
from repro.lsm.db import LSMTree
from repro.lsm.deadline import DeadlineToken
from repro.lsm.options import small_test_options
from repro.lsm.write_batch import WriteBatch
from repro.service.gateway import (
    CircuitBreaker,
    Gateway,
    GatewayConfig,
    OUTCOME_EXPIRED,
    OUTCOME_OK,
    OUTCOME_SHED,
    Request,
    RetryBudget,
    VirtualClock,
    requests_from_ycsb,
)
from repro.service.sharded import ShardedDB
from repro.storage.block_device import MemoryBlockDevice
from repro.storage.faults import FaultPlan, FaultyBlockDevice
from repro.storage.retry import RetryPolicy
from repro.storage.stats import (
    OVERLOAD_EXPIRED_AT_DEQUEUE,
    OVERLOAD_REQUESTS,
    OVERLOAD_SHED,
    RETRY_ATTEMPTS,
    RETRY_BUDGET_DENIED,
    RETRY_EXHAUSTED,
    Stats,
)
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.ycsb import Operation, OpKind

N_KEYS = 600


def build_db(num_shards=2, plan=None, **overrides):
    options = small_test_options(cache_bytes=0, data_cache_bytes=0,
                                 **overrides)
    devices = None
    if plan is not None:
        devices = [FaultyBlockDevice(
            MemoryBlockDevice(block_size=options.block_size),
            FaultPlan(seed=plan.seed + i,
                      transient_read_rate=plan.transient_read_rate,
                      transient_fail_count=plan.transient_fail_count,
                      transient_timeout_us=plan.transient_timeout_us))
            for i in range(num_shards)]
    db = ShardedDB(num_shards=num_shards, options=options, devices=devices,
                   observe=False)
    db.bulk_ingest(list(range(N_KEYS)), seed=1)
    return db


def uniform_plan(n, rate, deadline_us, seed=3):
    times = PoissonArrivals(rate_per_sec=rate, seed=seed).times(n)
    rng = random.Random(seed)
    return [Request("get", rng.randrange(N_KEYS), t, t + deadline_us)
            for t in times]


# -- virtual clock and config ------------------------------------------


def test_virtual_clock_is_monotone():
    clock = VirtualClock()
    clock.advance_to(10.0)
    clock.advance_to(5.0)
    assert clock.now_us == 10.0


def test_config_validation():
    with pytest.raises(InvalidOptionError):
        GatewayConfig(queue_depth=0).validate()
    with pytest.raises(InvalidOptionError):
        GatewayConfig(breaker_error_threshold=0.0).validate()
    with pytest.raises(InvalidOptionError):
        GatewayConfig(breaker_window=2, breaker_min_samples=8).validate()
    with pytest.raises(InvalidOptionError):
        GatewayConfig(max_client_retries=-1).validate()
    GatewayConfig().validate()


def test_request_rejects_unknown_op():
    with pytest.raises(InvalidOptionError):
        Request("scan", 1, 0.0, 100.0)


# -- deadline token -----------------------------------------------------


def test_deadline_token_meters_simulated_time():
    stats = Stats()
    token = DeadlineToken(stats, budget_us=100.0)
    assert not token.expired()
    from repro.storage.stats import Stage
    stats.charge(Stage.IO, 60.0)
    assert token.elapsed_us() == pytest.approx(60.0)
    assert token.remaining_us() == pytest.approx(40.0)
    stats.charge(Stage.IO, 60.0)
    assert token.expired()
    with pytest.raises(DeadlineExceededError):
        token.check("test")


def test_lsm_read_path_aborts_on_expired_deadline():
    options = small_test_options(cache_bytes=0, data_cache_bytes=0)
    db = LSMTree(options)
    db.bulk_ingest(list(range(N_KEYS)), seed=1)
    db.deadline = DeadlineToken(db.stats, budget_us=0.0)
    with pytest.raises(DeadlineExceededError):
        db.get(5)
    db.deadline = None
    assert db.get(5) is not None
    db.close()


def test_lsm_multi_get_degrades_per_key_on_deadline():
    options = small_test_options(cache_bytes=0, data_cache_bytes=0)
    db = LSMTree(options)
    db.bulk_ingest(list(range(N_KEYS)), seed=1)
    keys = list(range(0, 40))
    db.deadline = DeadlineToken(db.stats, budget_us=0.0)
    errors = {}
    values = db.multi_get(keys, errors=errors)
    db.deadline = None
    assert errors, "an expired deadline must surface per-key errors"
    for key, value in zip(keys, values):
        if key in errors:
            assert isinstance(value, DeadlineExceededError)
    # Without the errors protocol the same state raises.
    db.deadline = DeadlineToken(db.stats, budget_us=0.0)
    with pytest.raises(DeadlineExceededError):
        db.multi_get(keys)
    db.deadline = None
    db.close()


# -- circuit breaker ----------------------------------------------------


def breaker(**overrides):
    config = GatewayConfig(breaker_window=8, breaker_min_samples=4,
                           breaker_error_threshold=0.5,
                           breaker_cooldown_us=1_000.0,
                           breaker_half_open_probes=2, **overrides)
    return CircuitBreaker(0, config, Stats())


def test_breaker_opens_on_error_rate_and_recovers():
    b = breaker()
    for _ in range(4):
        b.record(False, now_us=0.0)
    assert b.state == CircuitBreaker.OPEN
    assert not b.allow(100.0)
    # Cooldown elapses -> half-open probe allowed.
    assert b.allow(1_500.0)
    assert b.state == CircuitBreaker.HALF_OPEN
    b.record(True, 1_600.0)
    b.record(True, 1_700.0)
    assert b.state == CircuitBreaker.CLOSED


def test_breaker_half_open_failure_reopens():
    b = breaker()
    for _ in range(4):
        b.record(False, 0.0)
    assert b.allow(2_000.0)
    b.record(False, 2_100.0)
    assert b.state == CircuitBreaker.OPEN
    assert not b.allow(2_200.0)


def test_breaker_disabled_is_transparent():
    b = breaker(breaker_enabled=False)
    for _ in range(20):
        b.record(False, 0.0)
    assert b.allow(0.0)
    assert b.state == CircuitBreaker.CLOSED


def test_gateway_fails_fast_when_shard_read_only():
    db = build_db(num_shards=2)
    gw = Gateway(db, GatewayConfig())
    db.shards[0]._enter_read_only("test damage")
    batch = WriteBatch()
    for key in range(24):
        batch.put(key, b"x")
    with pytest.raises((CircuitOpenError, ReadOnlyModeError)):
        gw.write(batch)
    assert gw.breakers[0].state == CircuitBreaker.OPEN
    db.close()


# -- retry budget -------------------------------------------------------


def test_retry_budget_spends_and_denies():
    budget = RetryBudget(True, ratio=0.5, burst=2.0, stats=Stats())
    assert budget.try_spend()
    assert budget.try_spend()
    assert not budget.try_spend()
    for _ in range(2):
        budget.on_request()
    assert budget.try_spend()


def test_retry_budget_disabled_always_grants():
    budget = RetryBudget(False, ratio=0.0, burst=0.0, stats=Stats())
    assert all(budget.try_spend() for _ in range(100))


def test_retry_policy_budget_composition():
    """Exhausted budget surfaces the original TransientIOError with
    zero extra engine attempts, and retry.* counters stay consistent."""
    plan = FaultPlan(seed=11, transient_read_rate=1.0,
                     transient_fail_count=10 ** 6)
    db = build_db(num_shards=1, plan=plan,
                  retry=RetryPolicy(max_attempts=1))
    gw = Gateway(db, GatewayConfig(breaker_enabled=False,
                                   retry_budget_enabled=True,
                                   retry_budget_ratio=0.0,
                                   retry_budget_burst=2.0,
                                   max_client_retries=10,
                                   default_deadline_us=10 ** 9))
    reqs = uniform_plan(4, rate=1_000.0, deadline_us=10 ** 9)
    report = gw.run(reqs)
    # Every request ultimately fails (faults never clear); the two
    # budget tokens allow exactly two resubmits across the whole run.
    assert report.outcomes == {"failed": 4}
    assert report.counters["retry.client_resubmits"] == 2.0
    assert report.counters["retry.budget_spent"] == 2.0
    assert report.counters[RETRY_BUDGET_DENIED] > 0
    # Engine-level attempts: one per client attempt (max_attempts=1
    # means the engine never retried on its own), so total engine
    # attempts == first attempts + client resubmits.
    engine_attempts = db.stats.get(RETRY_ATTEMPTS)
    assert engine_attempts == 4 + 2
    assert db.stats.get(RETRY_EXHAUSTED) == engine_attempts
    db.close()


# -- open-loop simulation ----------------------------------------------


def test_low_load_all_requests_complete_in_deadline():
    db = build_db()
    gw = Gateway(db, GatewayConfig(queue_depth=8))
    reqs = uniform_plan(300, rate=2_000.0, deadline_us=50_000.0)
    report = gw.run(reqs)
    assert report.outcomes == {OUTCOME_OK: 300}
    assert report.counters[OVERLOAD_REQUESTS] == 300
    assert report.goodput_per_sec > 0
    db.close()


def test_overload_sheds_and_bounds_queue_delay():
    db = build_db()
    depth = 4
    gw = Gateway(db, GatewayConfig(queue_depth=depth))
    reqs = uniform_plan(2_000, rate=10 ** 6, deadline_us=50_000.0)
    report = gw.run(reqs)
    assert report.counters[OVERLOAD_SHED] > 0
    assert report.outcomes[OUTCOME_SHED] > 0
    # Bounded queues bound queueing delay: nothing can wait longer
    # than the whole queue ahead of it being served.
    max_service = report.percentiles["gw.service"]["max"]
    assert report.percentiles["gw.queue_delay"]["max"] \
        <= depth * max_service * 1.5
    first_shed = next(r for r in reqs if r.outcome == OUTCOME_SHED)
    assert isinstance(first_shed.error, ShedError)
    assert isinstance(first_shed.error, RequestRejectedError)
    db.close()


def test_expired_at_dequeue_drops_without_service():
    db = build_db()
    gw = Gateway(db, GatewayConfig(queue_depth=64))
    # Deadlines far shorter than the queueing delay at this arrival
    # rate: whatever queues must expire before reaching the server.
    reqs = uniform_plan(1_000, rate=10 ** 6, deadline_us=20.0)
    report = gw.run(reqs)
    assert report.counters[OVERLOAD_EXPIRED_AT_DEQUEUE] > 0
    assert report.outcomes[OUTCOME_EXPIRED] > 0
    expired = [r for r in reqs if r.outcome == OUTCOME_EXPIRED]
    assert all(isinstance(r.error, DeadlineExceededError) for r in expired)
    assert all(r.start_us < 0 for r in expired), \
        "expired requests must never have occupied the server"
    db.close()


def test_run_is_deterministic():
    def once():
        db = build_db()
        gw = Gateway(db, GatewayConfig(queue_depth=8))
        report = gw.run(uniform_plan(500, rate=200_000.0,
                                     deadline_us=2_000.0))
        db.close()
        return json.dumps(report.to_json_dict(), sort_keys=True)
    assert once() == once()


def test_outcome_conservation_under_stress():
    db = build_db(plan=FaultPlan(seed=5, transient_read_rate=0.1,
                                 transient_fail_count=2,
                                 transient_timeout_us=50.0),
                  retry=RetryPolicy(max_attempts=1))
    gw = Gateway(db, GatewayConfig(queue_depth=6,
                                   breaker_enabled=False,
                                   max_client_retries=3))
    reqs = uniform_plan(1_500, rate=400_000.0, deadline_us=1_500.0)
    report = gw.run(reqs)
    assert sum(report.outcomes.values()) \
        == report.counters[OVERLOAD_REQUESTS] == 1_500
    db.close()


def test_results_match_oracle_for_completed_requests():
    db = build_db()
    gw = Gateway(db, GatewayConfig(queue_depth=16))
    reqs = uniform_plan(400, rate=5_000.0, deadline_us=100_000.0)
    report = gw.run(reqs)
    assert report.outcomes[OUTCOME_OK] == 400
    oracle = build_db()
    for req in reqs:
        assert req.result == oracle.get(req.key)
    oracle.close()
    db.close()


# -- health plumbing ----------------------------------------------------


def test_health_reports_breaker_and_queue_state():
    db = build_db()
    gw = Gateway(db, GatewayConfig(queue_depth=4))
    gw.run(uniform_plan(1_000, rate=10 ** 6, deadline_us=50_000.0))
    health = db.health()
    for entry in health["shards"]:
        assert entry["breaker"] == CircuitBreaker.CLOSED
        assert entry["queue_depth"] == 0
        assert "expired" in entry and "deadline_exceeded" in entry
    assert sum(entry["shed"] for entry in health["shards"]) \
        == gw.stats.get(OVERLOAD_SHED) > 0
    db.close()


def test_health_without_gateway_is_unchanged():
    db = build_db()
    entry = db.health()["shards"][0]
    assert "breaker" not in entry
    db.close()


# -- synchronous API ----------------------------------------------------


def test_sync_get_and_multi_get_with_deadline():
    db = build_db()
    gw = Gateway(db)
    assert gw.get(5) == db.get(5)
    keys = list(range(30))
    assert gw.multi_get(keys) == db.multi_get(keys)
    # A zero deadline degrades multi_get per key, not wholesale.
    errors = {}
    values = gw.multi_get(keys, deadline_us=0.0, errors=errors)
    assert errors
    assert len(values) == len(keys)
    with pytest.raises(DeadlineExceededError):
        gw.get(5, deadline_us=0.0)
    db.close()


def test_requests_from_ycsb_maps_kinds():
    ops = [Operation(OpKind.READ, 1), Operation(OpKind.UPDATE, 2),
           Operation(OpKind.INSERT, 3)]
    times = [10.0, 20.0, 30.0]
    reqs = requests_from_ycsb(ops, times, deadline_us=100.0)
    assert [r.op for r in reqs] == ["get", "put", "put"]
    assert [r.deadline_us for r in reqs] == [110.0, 120.0, 130.0]
    with pytest.raises(InvalidOptionError):
        requests_from_ycsb(ops, times[:2], deadline_us=100.0)
