"""Tests for the reporting primitives (tables, sparklines, checks)."""

import pytest

from repro.bench.report import (
    ExperimentResult,
    ResultTable,
    ShapeCheck,
    format_bytes,
    format_cell,
    require,
    sparkline,
)


def test_result_table_alignment():
    table = ResultTable(columns=["name", "value"])
    table.add_row("alpha", 1.2345)
    table.add_row("b", 100)
    text = table.to_text()
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert "1.23" in text
    assert "100" in text
    assert len({len(line) for line in lines[:2]}) >= 1


def test_result_table_rejects_bad_row():
    table = ResultTable(columns=["a", "b"])
    with pytest.raises(ValueError):
        table.add_row(1)


def test_result_table_column_and_filter():
    table = ResultTable(columns=["kind", "x"])
    table.add_row("FP", 1)
    table.add_row("PGM", 2)
    table.add_row("FP", 3)
    assert table.column("x") == [1, 2, 3]
    filtered = table.filtered("kind", "FP")
    assert filtered.column("x") == [1, 3]


def test_csv_output():
    table = ResultTable(columns=["a", "b"])
    table.add_row("x", 0.5)
    csv = table.to_csv()
    assert csv == "a,b\nx,0.50\n"


def test_sparkline_shape():
    line = sparkline([0, 1, 2, 3])
    assert len(line) == 4
    assert line[0] == "▁"
    assert line[-1] == "█"
    assert sparkline([]) == ""
    assert sparkline([5, 5, 5]) == "▁▁▁"


def test_format_bytes():
    assert format_bytes(512) == "512 B"
    assert format_bytes(2048) == "2.0 KiB"
    assert format_bytes(3 * 1024 * 1024) == "3.0 MiB"


def test_format_cell():
    assert format_cell(True) == "yes"
    assert format_cell(1.23456, 3) == "1.235"
    assert format_cell("txt") == "txt"


def test_experiment_result_checks():
    result = ExperimentResult("figX", "demo")
    result.check("holds", True)
    result.check("fails", False, "reason")
    assert not result.all_checks_passed
    assert len(result.failed_checks()) == 1
    rendered = result.render()
    assert "[PASS] holds" in rendered
    assert "[FAIL] fails — reason" in rendered


def test_require_raises_on_failures():
    result = ExperimentResult("figX", "demo")
    result.check("ok", True)
    require(result)  # no failures: fine
    result.check("bad", False)
    with pytest.raises(AssertionError):
        require(result)
    require(result, only=["ok"])  # scoped requirement passes


def test_shape_check_render():
    check = ShapeCheck("name", True, "detail")
    assert check.render() == "[PASS] name — detail"
