"""Tests for the shared index-base helpers and error types."""

import pytest

import repro
from repro.errors import (
    BenchmarkError,
    CorruptionError,
    DatabaseClosedError,
    FileNotFoundInDeviceError,
    IndexBuildError,
    IndexLookupError,
    InvalidOptionError,
    ReproError,
    StorageError,
    WorkloadError,
)
from repro.indexes.base import (
    SearchBound,
    Segment,
    floor_index,
    segments_to_bound,
    validate_strictly_increasing,
)


def test_error_hierarchy():
    for exc in (StorageError, CorruptionError, IndexBuildError,
                IndexLookupError, InvalidOptionError, DatabaseClosedError,
                WorkloadError, BenchmarkError, FileNotFoundInDeviceError):
        assert issubclass(exc, ReproError)
    err = FileNotFoundInDeviceError("f1")
    assert err.name == "f1"
    assert "f1" in str(err)


def test_search_bound_basics():
    bound = SearchBound(5, 9)
    assert bound.width == 4
    assert bound.contains(5) and bound.contains(8)
    assert not bound.contains(9) and not bound.contains(4)
    clamped = SearchBound(-3, 100).clamped(10)
    assert (clamped.lo, clamped.hi) == (0, 10)
    empty = SearchBound(20, 30).clamped(10)
    assert empty.width == 0


def test_floor_index():
    keys = [10, 20, 30]
    assert floor_index(keys, 5) == 0     # clamped below
    assert floor_index(keys, 10) == 0
    assert floor_index(keys, 25) == 1
    assert floor_index(keys, 99) == 2


def test_segment_predict_is_offset_anchored():
    segment = Segment(first_key=1 << 62, slope=0.5, intercept=100.0,
                      start=100, length=10)
    assert segment.predict(1 << 62) == 100.0
    assert segment.predict((1 << 62) + 8) == 104.0


def test_segments_to_bound_clamps_into_segment():
    segment = Segment(first_key=1000, slope=1.0, intercept=50.0,
                      start=50, length=10)
    bound = segments_to_bound(segment, 1000, epsilon=3)
    assert bound.lo >= 50 and bound.hi <= 60
    assert bound.contains(50)
    # Prediction far beyond the segment end clamps to its edge.
    far = segments_to_bound(segment, 10_000, epsilon=3)
    assert far.hi <= 60
    assert far.width > 0


def test_validate_strictly_increasing():
    validate_strictly_increasing([1, 2, 5])
    with pytest.raises(IndexBuildError):
        validate_strictly_increasing([1, 1])
    with pytest.raises(IndexBuildError):
        validate_strictly_increasing([2, 1])


def test_package_exports():
    assert repro.__version__
    assert repro.IndexKind.PGM.value == "PGM"
    assert callable(repro.LSMTree)
    assert len(repro.ALL_KINDS) == 7
