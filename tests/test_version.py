"""Tests for level metadata bookkeeping."""

import pytest

from repro.errors import StorageError
from repro.indexes.registry import IndexFactory, IndexKind
from repro.lsm.options import small_test_options
from repro.lsm.record import make_value
from repro.lsm.sstable import TableBuilder
from repro.lsm.version import FileMetaData, Version
from repro.storage.block_device import MemoryBlockDevice
from repro.storage.cost_model import CostModel
from repro.storage.stats import Stats


def _meta(number, keys, device=None, stats=None):
    options = small_test_options()
    stats = stats or Stats()
    device = device or MemoryBlockDevice(block_size=options.block_size,
                                         stats=stats)
    builder = TableBuilder(device, f"sst-{number}", options,
                           IndexFactory(IndexKind.FP, 8), stats,
                           CostModel(block_size=options.block_size))
    for i, key in enumerate(keys):
        builder.add(make_value(key, i + 1, b"v"))
    return FileMetaData(number=number, table=builder.finish())


@pytest.fixture()
def version():
    return Version(max_levels=4)


def test_add_sorted_non_overlapping(version):
    version.add_file(1, _meta(1, range(100, 200)))
    version.add_file(1, _meta(2, range(300, 400)))
    version.add_file(1, _meta(3, range(200, 300)))
    mins = [meta.min_key for meta in version.levels[1]]
    assert mins == sorted(mins)
    assert version.file_count(1) == 3


def test_overlap_rejected_in_deep_levels(version):
    version.add_file(1, _meta(1, range(100, 200)))
    with pytest.raises(StorageError):
        version.add_file(1, _meta(2, range(150, 250)))
    with pytest.raises(StorageError):
        version.add_file(1, _meta(3, range(50, 150)))


def test_l0_allows_overlap_newest_first(version):
    version.add_file(0, _meta(1, range(0, 100)))
    version.add_file(0, _meta(2, range(50, 150)))
    files = version.files_for_key(0, 75)
    assert [meta.number for meta in files] == [2, 1]  # newest first


def test_files_for_key_deep_level(version):
    version.add_file(1, _meta(1, range(100, 200)))
    version.add_file(1, _meta(2, range(300, 400)))
    assert [m.number for m in version.files_for_key(1, 150)] == [1]
    assert version.files_for_key(1, 250) == []
    assert version.files_for_key(1, 50) == []
    assert [m.number for m in version.files_for_key(1, 399)] == [2]


def test_overlapping_files(version):
    version.add_file(1, _meta(1, range(0, 100)))
    version.add_file(1, _meta(2, range(200, 300)))
    version.add_file(1, _meta(3, range(400, 500)))
    got = version.overlapping_files(1, 250, 450)
    assert [meta.number for meta in got] == [2, 3]
    assert version.overlapping_files(1, 100, 199) == []


def test_remove_files(version):
    a = _meta(1, range(0, 100))
    b = _meta(2, range(200, 300))
    version.add_file(1, a)
    version.add_file(1, b)
    version.remove_files(1, [a])
    assert [meta.number for meta in version.levels[1]] == [2]


def test_byte_and_entry_accounting(version):
    version.add_file(1, _meta(1, range(100)))
    version.add_file(2, _meta(2, range(200, 250)))
    assert version.level_entry_count(1) == 100
    assert version.level_entry_count(2) == 50
    assert version.level_data_bytes(1) == 100 * 64
    assert version.file_count() == 2


def test_deepest_nonempty_and_overlaps_below(version):
    assert version.deepest_nonempty_level() == -1
    version.add_file(1, _meta(1, range(100)))
    version.add_file(3, _meta(2, range(1000, 1100)))
    assert version.deepest_nonempty_level() == 3
    assert version.key_range_overlaps_below(1, 1000, 1050)
    assert not version.key_range_overlaps_below(1, 0, 999)
    assert not version.key_range_overlaps_below(3, 0, 5000)


def test_all_files_order(version):
    version.add_file(2, _meta(1, range(100)))
    version.add_file(0, _meta(2, range(200, 300)))
    levels = [level for level, _ in version.all_files()]
    assert levels == sorted(levels)


def test_level_bounds_checked(version):
    with pytest.raises(StorageError):
        version.files_for_key(9, 1)
    with pytest.raises(StorageError):
        version.add_file(-1, _meta(1, range(10)))
