"""Tests for the SOSD-style dataset generators."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.datasets import (
    DATASET_NAMES,
    KEY_SPACE,
    cdf,
    generate,
    hardness_score,
)


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_exact_count_sorted_unique(name):
    keys = generate(name, 3000, seed=5)
    assert len(keys) == 3000
    assert all(isinstance(key, int) for key in keys[:10])
    assert all(0 <= key < KEY_SPACE for key in keys[:100])
    assert all(b > a for a, b in zip(keys, keys[1:]))


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_deterministic(name):
    assert generate(name, 1000, seed=3) == generate(name, 1000, seed=3)


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_seed_changes_output(name):
    assert generate(name, 1000, seed=1) != generate(name, 1000, seed=2)


def test_unknown_dataset():
    with pytest.raises(WorkloadError):
        generate("mnist", 100)
    with pytest.raises(WorkloadError):
        generate("random", 0)


def test_cdf_shape():
    keys = generate("random", 2000, seed=1)
    xs, ys = cdf(keys, points=64)
    assert xs[0] == 0.0 and xs[-1] == 1.0
    assert ys[0] == 0.0 and ys[-1] == 1.0
    assert all(b >= a for a, b in zip(ys, ys[1:]))
    assert all(b >= a for a, b in zip(xs, xs[1:]))


def test_cdf_empty_rejected():
    with pytest.raises(WorkloadError):
        cdf([])


def test_hardness_ordering():
    scores = {name: hardness_score(generate(name, 4000, seed=2))
              for name in DATASET_NAMES}
    assert scores["random"] < 0.02
    assert scores["fb"] > 0.2
    assert scores["books"] > 0.15
    assert scores["random"] == min(scores.values())


def test_hardness_on_perfect_line():
    keys = list(range(0, 100_000, 7))
    assert hardness_score(keys) < 1e-9


def test_segment_dataset_is_piecewise():
    """The segment dataset must have distinct density regimes."""
    keys = generate("segment", 5000, seed=4)
    # Split the key space into 10 regions and count keys per region.
    span = keys[-1] - keys[0]
    counts = [0] * 10
    for key in keys:
        region = min(9, (key - keys[0]) * 10 // max(1, span))
        counts[region] += 1
    assert max(counts) > 3 * max(1, min(counts))


def test_fb_dataset_heavy_tail():
    keys = generate("fb", 5000, seed=4)
    # Most keys in the low 10% of the observed range.
    cutoff = keys[0] + (keys[-1] - keys[0]) // 10
    dense = sum(1 for key in keys if key <= cutoff)
    assert dense > 0.7 * len(keys)
