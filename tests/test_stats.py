"""Unit tests for the stats registry (counters, stages, snapshots)."""

import pytest

from repro.storage.stats import (
    BLOCKS_READ,
    COMPACTION_STAGES,
    READ_STAGES,
    Stage,
    Stats,
)


def test_counters_accumulate():
    stats = Stats()
    stats.add(BLOCKS_READ)
    stats.add(BLOCKS_READ, 4)
    assert stats.get(BLOCKS_READ) == 5
    assert stats.get("never.touched") == 0.0


def test_stage_charging_and_totals():
    stats = Stats()
    stats.charge(Stage.IO, 2.0)
    stats.charge(Stage.IO, 1.5)
    stats.charge(Stage.PREDICTION, 0.25)
    assert stats.stage_time(Stage.IO) == pytest.approx(3.5)
    assert stats.total_time() == pytest.approx(3.75)


def test_negative_charge_rejected():
    stats = Stats()
    with pytest.raises(ValueError):
        stats.charge(Stage.IO, -1.0)


def test_read_time_covers_only_read_stages():
    stats = Stats()
    for stage in READ_STAGES:
        stats.charge(stage, 1.0)
    stats.charge(Stage.COMPACT_WRITE, 100.0)
    assert stats.read_time() == pytest.approx(len(READ_STAGES))


def test_compaction_time_covers_only_compaction_stages():
    stats = Stats()
    for stage in COMPACTION_STAGES:
        stats.charge(stage, 2.0)
    stats.charge(Stage.IO, 50.0)
    assert stats.compaction_time() == pytest.approx(2.0 * len(COMPACTION_STAGES))


def test_snapshot_delta_isolates_window():
    stats = Stats()
    stats.add(BLOCKS_READ, 10)
    stats.charge(Stage.IO, 5.0)
    snap = stats.snapshot()
    stats.add(BLOCKS_READ, 3)
    stats.charge(Stage.IO, 1.25)
    stats.charge(Stage.SEARCH, 0.5)
    delta = snap.delta(stats)
    assert delta.counter(BLOCKS_READ) == 3
    assert delta.stage_time(Stage.IO) == pytest.approx(1.25)
    assert delta.stage_time(Stage.SEARCH) == pytest.approx(0.5)
    assert delta.total_time() == pytest.approx(1.75)
    assert delta.read_time() == pytest.approx(1.75)


def test_snapshot_delta_skips_unchanged_entries():
    stats = Stats()
    stats.add(BLOCKS_READ, 10)
    snap = stats.snapshot()
    delta = snap.delta(stats)
    assert delta.counters == {}
    assert delta.stage_us == {}


def test_merge_folds_other_registry():
    a = Stats()
    b = Stats()
    a.add(BLOCKS_READ, 1)
    b.add(BLOCKS_READ, 2)
    b.charge(Stage.SCAN, 4.0)
    a.merge(b)
    assert a.get(BLOCKS_READ) == 3
    assert a.stage_time(Stage.SCAN) == pytest.approx(4.0)


def test_reset_clears_everything():
    stats = Stats()
    stats.add(BLOCKS_READ, 9)
    stats.charge(Stage.IO, 1.0)
    stats.reset()
    assert stats.total_time() == 0.0
    assert stats.get(BLOCKS_READ) == 0.0


def test_breakdown_is_sorted_by_stage_name():
    stats = Stats()
    stats.charge(Stage.SEARCH, 1.0)
    stats.charge(Stage.IO, 2.0)
    keys = list(stats.breakdown().keys())
    assert keys == sorted(keys)


def test_iter_yields_sorted_counters():
    stats = Stats()
    stats.add("z", 1)
    stats.add("a", 2)
    assert [name for name, _ in stats] == ["a", "z"]


def test_every_runtime_counter_is_registered():
    """A full workload charges only counters named in ALL_COUNTERS.

    Guards against stringly-typed drift: any call site inventing an
    ad-hoc counter name (instead of importing a constant from
    ``repro.storage.stats``) shows up here as an unregistered key.
    The workload deliberately crosses every subsystem that charges
    counters: WAL group commits, block + data caches, compression,
    level-granularity models, compaction, MultiGet coalescing, scans,
    checkpointing, both recovery paths, and a replicated crash
    schedule that drives every ``repl.*`` series.
    """
    import random

    from repro.errors import ReproError
    from repro.lsm.db import LSMTree
    from repro.lsm.options import Granularity, small_test_options
    from repro.lsm.write_batch import WriteBatch
    from repro.service.replication import (
        AckPolicy,
        ReplicaGroup,
        ReplicationConfig,
    )
    from repro.storage.block_device import MemoryBlockDevice
    from repro.storage.faults import FaultPlan, FaultyBlockDevice
    from repro.storage.stats import ALL_COUNTERS

    assert ALL_COUNTERS, "counter registry must not be empty"
    charged = set()
    for granularity in (Granularity.FILE, Granularity.LEVEL):
        options = small_test_options(granularity=granularity,
                                     enable_wal=True,
                                     cache_bytes=32 * 1024,
                                     data_cache_bytes=32 * 1024)
        db = LSMTree(options)
        rng = random.Random(13)
        for i in range(300):
            db.put(rng.randrange(500), b"w%d" % i)
        batch = WriteBatch()
        for i in range(40):
            batch.put(500 + i, b"b%d" % i)
            batch.delete(rng.randrange(500))
        db.write(batch)
        db.flush()
        for _ in range(200):
            db.get(rng.randrange(600))
        db.multi_get([rng.randrange(600) for _ in range(64)])
        db.scan(rng.randrange(500), 25)
        db.checkpoint()
        device = db.device
        charged.update(db.stats.counters)
        recovered = LSMTree.reopen(options, device)  # manifest path
        charged.update(recovered.stats.counters)
        rescanned = LSMTree.reopen(options, recovered.device,
                                   use_manifest=False)  # scan path
        charged.update(rescanned.stats.counters)
        rescanned.close()
    # Replicated phase: one crash schedule that walks the whole
    # protocol — shipping, hints, backpressure, revival, stale reads,
    # promotion with a lost suffix, resync and anti-entropy.
    config = ReplicationConfig(replication_factor=3, ack=AckPolicy.ASYNC,
                               heartbeat_interval_us=1_000.0,
                               heartbeat_timeout_us=3_000.0,
                               hint_queue_frames=2)
    repl_options = small_test_options()
    devices = [FaultyBlockDevice(
        MemoryBlockDevice(block_size=repl_options.block_size),
        FaultPlan(seed=40 + r)) for r in range(3)]
    group = ReplicaGroup(0, repl_options, config, devices=devices)
    for i in range(4):
        group.put(i, b"r%d" % i)
    group.tick(1_000.0)  # async ship to the followers
    devices[2].cut_power()
    for now in (2_000.0, 3_000.0, 4_000.0, 5_000.0):
        group.tick(now)  # misses accumulate; replica 2 declared dead
    group.put(10, b"hinted")
    group.put(11, b"hinted")
    with pytest.raises(ReproError):
        group.put(12, b"over the hint bound")
    devices[2].revive()
    group.tick(6_000.0)  # rejoin replays the hinted suffix
    group.put(20, b"unshipped")
    group.flush()  # reads must touch the (about to die) device
    devices[0].cut_power()
    group.get(0)  # read discovers the death, serves from a follower
    for now in (7_000.0, 8_000.0, 9_000.0, 10_000.0, 11_000.0):
        group.tick(now)  # promotion; the unshipped frame is lost
    devices[0].revive()
    group.tick(12_000.0)  # diverged old primary resyncs
    follower = next(replica for replica in group.replicas
                    if replica.index != group.primary_index)
    follower.tree.put(999, b"drift")
    group.anti_entropy()
    charged.update(group.stats.counters)
    group.close()
    repl_series = {name for name in ALL_COUNTERS if name.startswith("repl.")}
    uncharged = repl_series - charged
    assert not uncharged, f"repl.* series never charged: {uncharged}"
    unregistered = charged - ALL_COUNTERS
    assert not unregistered, f"unregistered counter names: {unregistered}"
