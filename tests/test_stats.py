"""Unit tests for the stats registry (counters, stages, snapshots)."""

import pytest

from repro.storage.stats import (
    BLOCKS_READ,
    COMPACTION_STAGES,
    READ_STAGES,
    Stage,
    Stats,
)


def test_counters_accumulate():
    stats = Stats()
    stats.add(BLOCKS_READ)
    stats.add(BLOCKS_READ, 4)
    assert stats.get(BLOCKS_READ) == 5
    assert stats.get("never.touched") == 0.0


def test_stage_charging_and_totals():
    stats = Stats()
    stats.charge(Stage.IO, 2.0)
    stats.charge(Stage.IO, 1.5)
    stats.charge(Stage.PREDICTION, 0.25)
    assert stats.stage_time(Stage.IO) == pytest.approx(3.5)
    assert stats.total_time() == pytest.approx(3.75)


def test_negative_charge_rejected():
    stats = Stats()
    with pytest.raises(ValueError):
        stats.charge(Stage.IO, -1.0)


def test_read_time_covers_only_read_stages():
    stats = Stats()
    for stage in READ_STAGES:
        stats.charge(stage, 1.0)
    stats.charge(Stage.COMPACT_WRITE, 100.0)
    assert stats.read_time() == pytest.approx(len(READ_STAGES))


def test_compaction_time_covers_only_compaction_stages():
    stats = Stats()
    for stage in COMPACTION_STAGES:
        stats.charge(stage, 2.0)
    stats.charge(Stage.IO, 50.0)
    assert stats.compaction_time() == pytest.approx(2.0 * len(COMPACTION_STAGES))


def test_snapshot_delta_isolates_window():
    stats = Stats()
    stats.add(BLOCKS_READ, 10)
    stats.charge(Stage.IO, 5.0)
    snap = stats.snapshot()
    stats.add(BLOCKS_READ, 3)
    stats.charge(Stage.IO, 1.25)
    stats.charge(Stage.SEARCH, 0.5)
    delta = snap.delta(stats)
    assert delta.counter(BLOCKS_READ) == 3
    assert delta.stage_time(Stage.IO) == pytest.approx(1.25)
    assert delta.stage_time(Stage.SEARCH) == pytest.approx(0.5)
    assert delta.total_time() == pytest.approx(1.75)
    assert delta.read_time() == pytest.approx(1.75)


def test_snapshot_delta_skips_unchanged_entries():
    stats = Stats()
    stats.add(BLOCKS_READ, 10)
    snap = stats.snapshot()
    delta = snap.delta(stats)
    assert delta.counters == {}
    assert delta.stage_us == {}


def test_merge_folds_other_registry():
    a = Stats()
    b = Stats()
    a.add(BLOCKS_READ, 1)
    b.add(BLOCKS_READ, 2)
    b.charge(Stage.SCAN, 4.0)
    a.merge(b)
    assert a.get(BLOCKS_READ) == 3
    assert a.stage_time(Stage.SCAN) == pytest.approx(4.0)


def test_reset_clears_everything():
    stats = Stats()
    stats.add(BLOCKS_READ, 9)
    stats.charge(Stage.IO, 1.0)
    stats.reset()
    assert stats.total_time() == 0.0
    assert stats.get(BLOCKS_READ) == 0.0


def test_breakdown_is_sorted_by_stage_name():
    stats = Stats()
    stats.charge(Stage.SEARCH, 1.0)
    stats.charge(Stage.IO, 2.0)
    keys = list(stats.breakdown().keys())
    assert keys == sorted(keys)


def test_iter_yields_sorted_counters():
    stats = Stats()
    stats.add("z", 1)
    stats.add("a", 2)
    assert [name for name, _ in stats] == ["a", "z"]
