"""Observability layer tests: histograms, tracer, registry, windows.

The two contracts the PR's acceptance criteria pin down get property
tests here:

* **Lossless merge** — per-shard histograms merged with
  :meth:`~repro.obs.histogram.Histogram.merge` have exactly the state
  (bucket occupancy, count, min, max — hence every percentile) of one
  histogram fed all samples, for any partition of any sample stream.
* **Pure observation** — a :class:`~repro.obs.trace.Tracer` attached
  to :class:`~repro.storage.stats.Stats` changes no counter and no
  stage time: a traced engine run produces stats identical to an
  untraced one.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.db import LSMTree
from repro.lsm.options import small_test_options
from repro.obs.histogram import (
    Histogram,
    bucket_bounds,
    bucket_index,
    merge_all,
)
from repro.obs.registry import MetricsRegistry, MetricsWindow
from repro.obs.trace import OpType, Tracer
from repro.service.sharded import ShardedDB
from repro.storage.stats import BLOOM_PROBES, Stage, Stats


# -- histogram buckets -----------------------------------------------------


def test_bucket_index_exact_below_subbucket_count():
    for ns in range(32):
        assert bucket_index(ns) == ns
        assert bucket_bounds(ns) == (ns, ns + 1)


def test_bucket_bounds_contain_value():
    for ns in [0, 1, 31, 32, 33, 100, 1023, 1024, 5_000, 10**9]:
        lo, hi = bucket_bounds(bucket_index(ns))
        assert lo <= ns < hi


def test_bucket_relative_error_bounded():
    for ns in [33, 100, 999, 12_345, 10**8]:
        lo, hi = bucket_bounds(bucket_index(ns))
        assert (hi - lo) / lo <= 1 / 32 + 1e-12


def test_histogram_basics():
    h = Histogram()
    assert h.percentile(0.5) == 0.0
    assert h.mean_us == 0.0
    h.record_many([1.0, 2.0, 3.0, 4.0])
    assert h.count == 4
    assert h.mean_us == pytest.approx(2.5)
    assert h.min_us == 1.0
    assert h.max_us == 4.0
    assert h.percentile(0.5) == pytest.approx(2.0, rel=0.04)
    assert h.percentile(1.0) == pytest.approx(4.0, rel=0.04)


def test_histogram_rejects_negative():
    with pytest.raises(ValueError):
        Histogram().record(-0.5)
    with pytest.raises(ValueError):
        Histogram().percentile(0.0)


def test_percentiles_monotone_in_rank():
    rng = random.Random(7)
    h = Histogram()
    h.record_many(rng.expovariate(0.01) for _ in range(5_000))
    values = [h.percentile(q) for q in (0.1, 0.5, 0.9, 0.99, 0.999, 1.0)]
    assert values == sorted(values)
    assert values[-1] == h.max_us


def test_percentile_relative_error_bound():
    rng = random.Random(11)
    samples = sorted(rng.uniform(0.5, 500.0) for _ in range(2_000))
    h = Histogram()
    h.record_many(samples)
    for q in (0.5, 0.9, 0.99):
        exact = samples[max(0, int(round(q * len(samples))) - 1)]
        assert h.percentile(q) == pytest.approx(exact, rel=0.05)


def test_since_isolates_window():
    h = Histogram()
    h.record_many([1.0, 2.0])
    base = h.copy()
    h.record_many([100.0, 200.0])
    delta = h.since(base)
    assert delta.count == 2
    assert delta.percentile(0.5) == pytest.approx(100.0, rel=0.05)
    assert delta.percentile(1.0) == pytest.approx(200.0, rel=0.05)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e7,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=300),
       st.integers(min_value=1, max_value=8),
       st.randoms(use_true_random=False))
def test_merged_shards_equal_single_histogram(samples, n_shards, rng):
    """The acceptance-criterion property: sharded merge is lossless."""
    single = Histogram()
    single.record_many(samples)
    shards = [Histogram() for _ in range(n_shards)]
    for us in samples:
        shards[rng.randrange(n_shards)].record(us)
    merged = merge_all(shards)
    assert merged.state() == single.state()
    for q in (0.5, 0.9, 0.99, 0.999):
        assert merged.percentile(q) == single.percentile(q)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=200),
       st.data())
def test_merge_order_independent(samples, data):
    splits = sorted(data.draw(st.sets(
        st.integers(min_value=0, max_value=len(samples)), max_size=4)))
    parts = []
    prev = 0
    for cut in splits + [len(samples)]:
        parts.append(samples[prev:cut])
        prev = cut
    forward = Histogram()
    for part in parts:
        piece = Histogram()
        piece.record_many(part)
        forward.merge(piece)
    backward = Histogram()
    for part in reversed(parts):
        piece = Histogram()
        piece.record_many(part)
        backward.merge(piece)
    assert forward.state() == backward.state()


# -- tracer ----------------------------------------------------------------


def test_untraced_stats_hold_no_observer_state():
    """Disabled mode: Stats carries nothing for the obs layer."""
    plain = Stats()
    plain.charge(Stage.IO, 2.0)
    plain.add(BLOOM_PROBES, 3)
    assert plain.tracer is None
    # Attach/detach leaves the registry exactly as it was.
    detached = Stats()
    tracer = Tracer()
    detached.attach_tracer(tracer)
    detached.detach_tracer()
    detached.charge(Stage.IO, 2.0)
    detached.add(BLOOM_PROBES, 3)
    assert detached.tracer is None
    assert detached.counters == plain.counters
    assert detached.stage_us == plain.stage_us
    assert not tracer.registry.histograms


def test_tracer_is_pure_observer_on_stats():
    traced = Stats()
    traced.attach_tracer(Tracer())
    plain = Stats()
    for stats in (traced, plain):
        span = stats.begin_op(OpType.GET)
        stats.charge(Stage.IO, 4.0)
        stats.add(BLOOM_PROBES)
        stats.end_op(span)
    assert traced.counters == plain.counters
    assert traced.stage_us == plain.stage_us


def test_span_charges_route_to_whole_stack():
    tracer = Tracer()
    stats = Stats()
    stats.attach_tracer(tracer)
    put = tracer.begin(OpType.PUT)
    stats.charge(Stage.WRITE_PATH, 1.0)
    flush = tracer.begin(OpType.FLUSH)
    stats.charge(Stage.COMPACT_WRITE, 5.0)
    stats.add(BLOOM_PROBES, 2)
    tracer.end(flush)
    tracer.end(put)
    assert flush.total_us == pytest.approx(5.0)
    assert put.total_us == pytest.approx(6.0)  # parent includes child
    assert put.stage_us[Stage.COMPACT_WRITE.value] == pytest.approx(5.0)
    assert put.counters[BLOOM_PROBES] == 2
    assert put.children == [flush]
    # Both latencies recorded, each under its own op type.
    reg = tracer.registry
    assert reg.histogram("put").count == 1
    assert reg.histogram("flush").count == 1


def test_end_out_of_order_raises():
    tracer = Tracer()
    outer = tracer.begin(OpType.GET)
    tracer.begin(OpType.FLUSH)
    with pytest.raises(ValueError, match="span stack"):
        tracer.end(outer)


def test_sampling_keeps_exactly_one_in_n():
    tracer = Tracer(sample_every=3)
    for _ in range(10):
        tracer.end(tracer.begin(OpType.GET))
    # Root indices 0..9; kept: 0, 3, 6, 9.
    assert len(tracer.registry.sampled) == 4
    assert [span.index for span in tracer.registry.sampled] == [0, 3, 6, 9]


def test_sampling_disabled_keeps_none_but_histograms_full():
    tracer = Tracer(sample_every=0)
    stats = Stats()
    stats.attach_tracer(tracer)
    for i in range(20):
        span = tracer.begin(OpType.GET)
        stats.charge(Stage.IO, float(i))
        tracer.end(span)
    assert len(tracer.registry.sampled) == 0
    assert tracer.registry.histogram("get").count == 20


def test_exemplars_keep_top_k_slowest():
    registry = MetricsRegistry(exemplar_capacity=3)
    tracer = Tracer(registry=registry)
    stats = Stats()
    stats.attach_tracer(tracer)
    order = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0]
    for us in order:
        span = tracer.begin(OpType.GET)
        stats.charge(Stage.IO, us)
        tracer.end(span)
    kept = [span.total_us for span in registry.exemplars()]
    assert kept == [9.0, 8.0, 7.0]


def test_traced_engine_run_matches_untraced_exactly():
    """Acceptance criterion: byte-identical Stats totals."""
    def drive(tracer):
        db = LSMTree(small_test_options(), tracer=tracer)
        rng = random.Random(99)
        for _ in range(400):
            key = rng.randrange(1_000)
            roll = rng.random()
            if roll < 0.6:
                db.put(key, b"v%d" % key)
            elif roll < 0.8:
                db.get(key)
            elif roll < 0.9:
                db.delete(key)
            else:
                db.scan(key, 5)
        db.flush()
        counters = dict(db.stats.counters)
        stages = dict(db.stats.stage_us)
        db.close()
        return counters, stages

    untraced = drive(None)
    traced = drive(Tracer(sample_every=1))
    assert traced == untraced


# -- registry --------------------------------------------------------------


def test_registry_merge_is_lossless_and_rebounds_exemplars():
    a = MetricsRegistry(exemplar_capacity=2)
    b = MetricsRegistry(exemplar_capacity=2)
    tracer_a = Tracer(registry=a)
    tracer_b = Tracer(registry=b)
    stats_a, stats_b = Stats(), Stats()
    stats_a.attach_tracer(tracer_a)
    stats_b.attach_tracer(tracer_b)
    for us in (1.0, 10.0, 3.0):
        span = tracer_a.begin(OpType.GET)
        stats_a.charge(Stage.IO, us)
        tracer_a.end(span)
    for us in (2.0, 20.0):
        span = tracer_b.begin(OpType.GET)
        stats_b.charge(Stage.IO, us)
        tracer_b.end(span)
    merged = MetricsRegistry(exemplar_capacity=2)
    merged.merge(a)
    merged.merge(b)
    single = Histogram()
    single.record_many([1.0, 10.0, 3.0, 2.0, 20.0])
    assert merged.histogram("get").state() == single.state()
    assert [s.total_us for s in merged.exemplars()] == [20.0, 10.0]


def test_registry_json_and_prometheus_exports():
    registry = MetricsRegistry()
    tracer = Tracer(sample_every=1, registry=registry)
    stats = Stats()
    stats.attach_tracer(tracer)
    span = tracer.begin(OpType.GET, "key=1")
    stats.charge(Stage.IO, 2.5)
    stats.add(BLOOM_PROBES)
    tracer.end(span)

    doc = registry.to_json_dict(stats)
    assert doc["histograms"]["get"]["count"] == 1.0
    assert doc["exemplars"][0]["op"] == "get"
    assert doc["exemplars"][0]["counters"][BLOOM_PROBES] == 1
    assert doc["counters"][BLOOM_PROBES] == 1
    assert doc["stage_us"][Stage.IO.value] == pytest.approx(2.5)
    json.loads(registry.to_json(stats))  # round-trips as valid JSON

    text = registry.to_prometheus(stats)
    assert 'repro_op_latency_us{op="get",quantile="0.99"}' in text
    assert 'repro_op_latency_us_count{op="get"} 1' in text
    assert 'repro_counter_total{name="' in text
    assert text.endswith("\n")


def test_registry_reset_clears_everything():
    registry = MetricsRegistry()
    tracer = Tracer(sample_every=1, registry=registry)
    tracer.end(tracer.begin(OpType.GET))
    registry.windows.append({"window": 0.0})
    registry.reset()
    assert not registry.histograms
    assert not registry.exemplars()
    assert not registry.sampled
    assert not registry.windows


def test_metrics_window_rows():
    registry = MetricsRegistry()
    tracer = Tracer(registry=registry)
    stats = Stats()
    stats.attach_tracer(tracer)
    window = MetricsWindow(registry, stats.total_time, window_ops=2)
    for us in (1.0, 2.0, 3.0, 4.0, 5.0):
        span = tracer.begin(OpType.GET)
        stats.charge(Stage.IO, us)
        tracer.end(span)
        window.tick()
    window.finish()
    rows = registry.windows
    assert [row["ops"] for row in rows] == [2.0, 2.0, 1.0]
    assert rows[0]["sim_us"] == pytest.approx(3.0)
    assert rows[1]["sim_us"] == pytest.approx(7.0)
    assert rows[2]["sim_us"] == pytest.approx(5.0)
    assert rows[0]["ops_per_sim_sec"] == pytest.approx(2e6 / 3.0)
    assert "get_p99_us" in rows[0]
    with pytest.raises(ValueError):
        MetricsWindow(registry, stats.total_time, window_ops=0)


# -- sharded aggregation ---------------------------------------------------


def _drive_sharded(db, n_ops=300, seed=5):
    rng = random.Random(seed)
    for _ in range(n_ops):
        key = rng.randrange(2_000)
        if rng.random() < 0.5:
            db.put(key, b"s%d" % key)
        else:
            db.get(key)


def test_sharded_metrics_merge_is_lossless():
    db = ShardedDB(num_shards=4, options=small_test_options(),
                   metrics_sink=MetricsRegistry())
    _drive_sharded(db)
    merged = db.metrics()
    for op, histogram in merged.histograms.items():
        single = merge_all(reg.histogram(op) for reg in db.registries)
        assert histogram.state() == single.state()
    total_ops = sum(reg.histogram("get").count + reg.histogram("put").count
                    for reg in db.registries)
    assert (merged.histogram("get").count
            + merged.histogram("put").count) == total_ops == 300
    db.close()


def test_sharded_close_folds_metrics_into_sink_once():
    sink = MetricsRegistry()
    db = ShardedDB(num_shards=2, options=small_test_options(),
                   metrics_sink=sink)
    _drive_sharded(db, n_ops=50)
    expected = db.metrics().histogram("put").state()
    db.close()
    db.close()  # idempotent: the second close must not double-count
    assert sink.histogram("put").state() == expected


def test_sharded_observe_off_attaches_nothing():
    db = ShardedDB(num_shards=2, options=small_test_options(),
                   observe=False)
    _drive_sharded(db, n_ops=20)
    assert db.registries == [] and db.tracers == []
    assert all(shard.stats.tracer is None for shard in db.shards)
    db.close()


def test_sharded_reopen_traces_recovery_per_shard():
    options = small_test_options(enable_manifest=True)
    db = ShardedDB(num_shards=2, options=options,
                   metrics_sink=MetricsRegistry())
    for key in range(200):
        db.put(key, b"r%d" % key)
    db.flush()
    # Crash-style handoff: reopen from the live devices (close() would
    # release the tables, deleting their files).
    devices = [shard.device for shard in db.shards]
    sink = MetricsRegistry()
    recovered = ShardedDB.reopen(2, options, devices, metrics_sink=sink)
    assert all(reg.histogram("recovery").count == 1
               for reg in recovered.registries)
    for key in range(200):
        assert recovered.get(key) == b"r%d" % key
    recovered.close()
    assert sink.histogram("recovery").count == 2
