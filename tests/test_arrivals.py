"""Open-loop arrival generators: determinism, rates, burstiness."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.arrivals import (
    BurstyArrivals,
    PoissonArrivals,
    index_of_dispersion,
)


def test_poisson_deterministic():
    a = PoissonArrivals(rate_per_sec=10_000, seed=7).times(500)
    b = PoissonArrivals(rate_per_sec=10_000, seed=7).times(500)
    assert a == b
    assert PoissonArrivals(rate_per_sec=10_000, seed=8).times(500) != a


def test_poisson_monotone_and_positive():
    times = PoissonArrivals(rate_per_sec=50_000, seed=1).times(2_000)
    assert len(times) == 2_000
    assert times[0] > 0
    assert all(b > a for a, b in zip(times, times[1:]))


def test_poisson_mean_rate():
    rate = 20_000
    times = PoissonArrivals(rate_per_sec=rate, seed=3).times(5_000)
    measured = len(times) * 1e6 / times[-1]
    assert measured == pytest.approx(rate, rel=0.1)


def test_poisson_rejects_bad_rate():
    with pytest.raises(WorkloadError):
        PoissonArrivals(rate_per_sec=0).times(10)
    with pytest.raises(WorkloadError):
        PoissonArrivals(rate_per_sec=-5.0).times(10)


def test_bursty_deterministic_and_monotone():
    gen = BurstyArrivals(rate_per_sec=5_000, burst_factor=10.0, seed=5)
    a = gen.times(2_000)
    b = BurstyArrivals(rate_per_sec=5_000, burst_factor=10.0, seed=5) \
        .times(2_000)
    assert a == b
    assert all(y > x for x, y in zip(a, a[1:]))


def test_bursty_is_overdispersed():
    # Same mean-ish rate: the modulated process must show a larger
    # variance-to-mean ratio of per-window counts than Poisson's ~1.
    window = 10_000.0
    poisson = PoissonArrivals(rate_per_sec=10_000, seed=9).times(5_000)
    bursty = BurstyArrivals(rate_per_sec=10_000, burst_factor=8.0,
                            seed=9).times(5_000)
    d_poisson = index_of_dispersion(poisson, window)
    d_bursty = index_of_dispersion(bursty, window)
    assert d_poisson < 2.0
    assert d_bursty > 2.0 * d_poisson


def test_bursty_rejects_bad_parameters():
    with pytest.raises(WorkloadError):
        BurstyArrivals(rate_per_sec=1_000, burst_factor=0.5).times(10)
    with pytest.raises(WorkloadError):
        BurstyArrivals(rate_per_sec=1_000, mean_quiet_us=0).times(10)


def test_index_of_dispersion_degenerate_inputs():
    assert index_of_dispersion([], 100.0) == 0.0
    assert index_of_dispersion([1.0, 2.0], 0.0) == 0.0
