"""MultiGet oracle tests: the batched read path vs per-key ``get``.

The contract under test is exact result equivalence —
``multi_get(keys) == [get(k) for k in keys]`` — under randomized
puts/deletes/overwrites, duplicate keys in the batch, absent keys,
both index granularities, coalescing on and off, with and without a
block cache, and across ``ShardedDB`` shards.  A second group checks
the cost story: coalesced runs charge fewer seeks, and the
``multiget.*`` counters say so.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.indexes.registry import IndexKind
from repro.lsm.db import LSMTree
from repro.lsm.options import (
    CompactionPolicy,
    Granularity,
    small_test_options,
)
from repro.service.sharded import ShardedDB
from repro.storage.stats import (
    MULTIGET_BATCHES,
    MULTIGET_COALESCED,
    MULTIGET_KEYS,
    MULTIGET_SEEKS_SAVED,
    SEEKS,
    Stage,
)


def _mutate(db, rng, universe, n_ops=600):
    """Randomized puts/overwrites/deletes; returns the reference dict."""
    reference = {}
    for _ in range(n_ops):
        key = rng.choice(universe)
        roll = rng.random()
        if roll < 0.75:
            value = b"v%x-%x" % (key, rng.randrange(16))
            db.put(key, value)
            reference[key] = value
        else:
            db.delete(key)
            reference.pop(key, None)
    return reference


def _query_batch(rng, universe, reference, size=120):
    """Present + absent + duplicate keys, shuffled."""
    present = list(reference)
    batch = []
    if present:
        batch += [rng.choice(present) for _ in range(size // 2)]
    batch += [rng.choice(universe) for _ in range(size // 3)]
    batch += batch[: size // 6]  # guaranteed duplicates
    rng.shuffle(batch)
    return batch


@pytest.mark.parametrize("granularity",
                         [Granularity.FILE, Granularity.LEVEL])
@pytest.mark.parametrize("cache_bytes", [0, 1 << 14])
@pytest.mark.parametrize("coalesce", [True, False])
def test_multi_get_matches_per_key_oracle(granularity, cache_bytes,
                                          coalesce):
    rng = random.Random(0xA11CE)
    options = small_test_options(IndexKind.PGM, granularity=granularity,
                                 cache_bytes=cache_bytes)
    db = LSMTree(options)
    universe = sorted(rng.sample(range(1 << 30), 1500))
    try:
        for phase in range(3):
            reference = _mutate(db, rng, universe)
            if phase:  # leave a non-empty memtable on the last phase
                db.flush()
            for _ in range(3):
                batch = _query_batch(rng, universe, reference)
                expected = [db.get(key) for key in batch]
                assert db.multi_get(batch, coalesce=coalesce) == expected
    finally:
        db.close()


def test_multi_get_matches_oracle_under_tiering():
    """Overlapping runs per level: newest-first resolution must hold."""
    rng = random.Random(0x7137)
    options = small_test_options(IndexKind.PGM,
                                 compaction_policy=CompactionPolicy.TIERING)
    db = LSMTree(options)
    universe = sorted(rng.sample(range(1 << 30), 1500))
    try:
        for _ in range(3):
            reference = _mutate(db, rng, universe)
            db.flush()
            batch = _query_batch(rng, universe, reference)
            expected = [db.get(key) for key in batch]
            assert db.multi_get(batch) == expected
        # The batched walk must not charge more than the per-key path.
        batch = sorted(set(_query_batch(rng, universe, reference)))[:64]
        before = db.stats.snapshot()
        db.multi_get(batch)
        batched_us = before.delta(db.stats).read_time()
        before = db.stats.snapshot()
        for key in batch:
            db.get(key)
        per_key_us = before.delta(db.stats).read_time()
        assert batched_us <= per_key_us
    finally:
        db.close()


def test_multi_get_empty_and_singleton():
    db = LSMTree(small_test_options(IndexKind.PGM))
    try:
        assert db.multi_get([]) == []
        assert db.multi_get([42]) == [None]
        db.put(42, b"x")
        assert db.multi_get([42, 42, 7]) == [b"x", b"x", None]
    finally:
        db.close()


def test_multi_get_sees_newest_version_across_levels():
    """Overwrites and tombstones in shallower levels shadow deep data."""
    db = LSMTree(small_test_options(IndexKind.PGM))
    try:
        for key in range(400):
            db.put(key, b"old%x" % key)
        db.flush()
        for key in range(0, 400, 3):
            db.put(key, b"new%x" % key)
        for key in range(1, 400, 3):
            db.delete(key)
        db.flush()
        batch = list(range(0, 400, 7)) + list(range(400, 420))
        assert db.multi_get(batch) == [db.get(key) for key in batch]
    finally:
        db.close()


@pytest.mark.parametrize("granularity",
                         [Granularity.FILE, Granularity.LEVEL])
def test_sharded_multi_get_matches_single_tree(granularity):
    rng = random.Random(0x5AA5)
    options = small_test_options(IndexKind.PGM, granularity=granularity)
    sdb = ShardedDB(num_shards=3, options=options)
    oracle = LSMTree(options)
    universe = sorted(rng.sample(range(1 << 30), 1200))
    try:
        for _ in range(500):
            key = rng.choice(universe)
            if rng.random() < 0.8:
                value = b"s%x" % key
                sdb.put(key, value)
                oracle.put(key, value)
            else:
                sdb.delete(key)
                oracle.delete(key)
        sdb.flush()
        batch = [rng.choice(universe) for _ in range(300)]
        batch += batch[:40]  # duplicates spanning shards
        assert sdb.multi_get(batch) == [oracle.get(key) for key in batch]
    finally:
        sdb.close()
        oracle.close()


keys_st = st.integers(min_value=0, max_value=1 << 16)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(
    st.one_of(
        st.tuples(st.just("put"), keys_st,
                  st.binary(min_size=0, max_size=8)),
        st.tuples(st.just("delete"), keys_st, st.just(b"")),
    ),
    max_size=120,
), batch=st.lists(keys_st, min_size=1, max_size=40))
def test_multi_get_hypothesis_model(ops, batch):
    db = LSMTree(small_test_options(IndexKind.PGM))
    reference = {}
    try:
        for op, key, value in ops:
            if op == "put":
                db.put(key, value)
                reference[key] = value
            else:
                db.delete(key)
                reference.pop(key, None)
        assert db.multi_get(batch) == [reference.get(key) for key in batch]
    finally:
        db.close()


# -- cost accounting ------------------------------------------------------


def _loaded_level_db(**overrides):
    db = LSMTree(small_test_options(IndexKind.PGM,
                                    granularity=Granularity.LEVEL,
                                    **overrides))
    for key in range(2000):
        db.put(key, b"v%x" % key)
    db.flush()
    db.maybe_compact()
    return db


def test_multi_get_coalesces_and_saves_seeks():
    db = _loaded_level_db()
    try:
        batch = list(range(500, 564))  # dense: adjacent predicted segments
        before = db.stats.snapshot()
        result = db.multi_get(batch)
        delta = before.delta(db.stats)
        assert result == [b"v%x" % key for key in batch]
        assert delta.counter(MULTIGET_BATCHES) == 1
        assert delta.counter(MULTIGET_KEYS) == len(batch)
        assert delta.counter(MULTIGET_COALESCED) > 0
        assert delta.counter(MULTIGET_SEEKS_SAVED) > 0
        batched_seeks = delta.counter(SEEKS)

        before = db.stats.snapshot()
        for key in batch:
            db.get(key)
        per_key_seeks = before.delta(db.stats).counter(SEEKS)
        assert batched_seeks < per_key_seeks
    finally:
        db.close()


def test_multi_get_coalesce_off_disables_merging():
    db = _loaded_level_db()
    try:
        before = db.stats.snapshot()
        db.multi_get(list(range(500, 564)), coalesce=False)
        delta = before.delta(db.stats)
        assert delta.counter(MULTIGET_COALESCED) == 0
        assert delta.counter(MULTIGET_SEEKS_SAVED) == 0
    finally:
        db.close()


def test_testbed_run_multi_get_matches_per_key_phase():
    from repro.core.config import BenchConfig
    from repro.core.testbed import Testbed

    bed = Testbed.from_config(BenchConfig(
        index_kind=IndexKind.PGM, position_boundary=16, value_capacity=44,
        write_buffer_bytes=64 * 64, sstable_bytes=128 * 64, size_ratio=4,
        n_keys=3000))
    try:
        keys = bed.bulk_load_dataset("random", 3000)
        queries = keys[::10]
        per_key = bed.run_point_lookups(queries)
        batched = bed.run_multi_get(queries, batch_size=16)
        assert batched.ops == per_key.ops == len(queries)
        assert batched.counter(MULTIGET_BATCHES) == -(-len(queries) // 16)
        assert batched.counter(MULTIGET_KEYS) == len(queries)
        assert batched.counter(SEEKS) <= per_key.counter(SEEKS)
    finally:
        bed.close()


def test_replay_counts_read_your_writes():
    from repro.storage.stats import MULTIGET_READ_YOUR_WRITES
    from repro.workloads.ycsb import OpKind, Operation, replay

    db = LSMTree(small_test_options(IndexKind.PGM))
    try:
        ops = [
            Operation(OpKind.UPDATE, 5),
            Operation(OpKind.READ, 5),    # staged above: read-your-writes
            Operation(OpKind.READ, 7),    # not staged: goes to the tree
            Operation(OpKind.READ, 5),    # still staged
        ]
        counts = replay(db, ops, write_batch_size=8, read_batch_size=8)
        assert counts["read"] == 3
        assert counts["read_from_batch"] == 2
        assert db.stats.get(MULTIGET_READ_YOUR_WRITES) == 2
        assert db.stats.stage_time(Stage.TABLE_LOOKUP) > 0.0
        assert db.get(5) is not None  # the staged write did commit
    finally:
        db.close()


def test_empty_memtable_charges_no_table_lookup():
    """Satellite fix: an empty memtable costs neither probe nor charge."""
    db = LSMTree(small_test_options(IndexKind.PGM))
    try:
        assert db.get(123) is None
        assert db.stats.stage_time(Stage.TABLE_LOOKUP) == 0.0
        assert db.multi_get([1, 2, 3]) == [None, None, None]
        assert db.stats.stage_time(Stage.TABLE_LOOKUP) == 0.0
    finally:
        db.close()
