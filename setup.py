"""Legacy setup shim: enables `pip install -e .` without the wheel package.

The execution environment has no network and no `wheel` module, so the
PEP 517 editable path (which builds a wheel) is unavailable; this shim
lets pip fall back to `setup.py develop`.
"""

from setuptools import setup

setup()
