"""Operation traces: record a workload once, replay it anywhere.

A benchmark comparing many configurations must feed each one the *same*
operation stream.  Generators are deterministic given a seed, but a
trace file decouples reproduction from generator code entirely: record
YCSB (or any operation sequence) once, then replay the identical
stream against every configuration — or in another process, or after
generator internals change.

The format is a line-oriented text file (easy to diff and version):

::

    # repro-trace v1
    read 42
    update 42
    insert 77
    scan 42 100
    rmw 42
    delete 42
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, TextIO

from repro.errors import WorkloadError
from repro.workloads.ycsb import Operation, OpKind
from repro.workloads.ycsb import replay as ycsb_replay

_HEADER = "# repro-trace v1"

_KIND_TO_NAME = {
    OpKind.READ: "read",
    OpKind.UPDATE: "update",
    OpKind.INSERT: "insert",
    OpKind.SCAN: "scan",
    OpKind.READ_MODIFY_WRITE: "rmw",
}
_NAME_TO_KIND = {name: kind for kind, name in _KIND_TO_NAME.items()}
#: Extra verb not produced by YCSB but useful in hand-written traces.
_DELETE = "delete"


def write_trace(operations: Iterable[Operation], sink: TextIO) -> int:
    """Serialise ``operations`` to ``sink``; returns the count written."""
    sink.write(_HEADER + "\n")
    count = 0
    for op in operations:
        name = _KIND_TO_NAME.get(op.kind)
        if name is None:
            raise WorkloadError(f"cannot serialise operation kind {op.kind}")
        if op.kind is OpKind.SCAN:
            sink.write(f"{name} {op.key} {op.scan_length}\n")
        else:
            sink.write(f"{name} {op.key}\n")
        count += 1
    return count


def read_trace(source: TextIO) -> Iterator[Operation]:
    """Parse a trace; yields :class:`Operation` values lazily."""
    header = source.readline().rstrip("\n")
    if header != _HEADER:
        raise WorkloadError(
            f"not a repro trace (header {header!r}, expected {_HEADER!r})")
    for line_no, raw in enumerate(source, start=2):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        name = parts[0]
        if name == _DELETE:
            # Deletes replay as an update with an empty value marker; the
            # runner maps them to LSMTree.delete.
            if len(parts) != 2:
                raise WorkloadError(f"line {line_no}: delete takes one key")
            yield Operation(OpKind.UPDATE, _parse_key(parts[1], line_no),
                            scan_length=-1)
            continue
        kind = _NAME_TO_KIND.get(name)
        if kind is None:
            raise WorkloadError(f"line {line_no}: unknown op {name!r}")
        if kind is OpKind.SCAN:
            if len(parts) != 3:
                raise WorkloadError(
                    f"line {line_no}: scan takes key and length")
            yield Operation(kind, _parse_key(parts[1], line_no),
                            scan_length=_parse_key(parts[2], line_no))
        else:
            if len(parts) != 2:
                raise WorkloadError(f"line {line_no}: {name} takes one key")
            yield Operation(kind, _parse_key(parts[1], line_no))


def _parse_key(token: str, line_no: int) -> int:
    try:
        value = int(token)
    except ValueError:
        raise WorkloadError(
            f"line {line_no}: expected an integer, got {token!r}") from None
    if value < 0:
        raise WorkloadError(f"line {line_no}: negative value {value}")
    return value


def record_ycsb(workload, n_ops: int, sink: TextIO) -> int:
    """Record ``n_ops`` operations of a YCSB workload into ``sink``."""
    return write_trace(workload.operations(n_ops), sink)


def load_trace(source: TextIO) -> List[Operation]:
    """Eagerly load a whole trace."""
    return list(read_trace(source))


def replay(db, operations: Iterable[Operation],
           value_for=None, write_batch_size: int = 1) -> dict:
    """Execute ``operations`` against a database; returns op counts.

    A thin alias of :func:`repro.workloads.ycsb.replay` kept here
    because traces are this module's concern; see that function for
    the ``write_batch_size`` group-commit semantics.
    """
    return ycsb_replay(db, operations, value_for=value_for,
                       write_batch_size=write_batch_size)
