"""Open-loop arrival processes for overload experiments.

The paper replays workloads *closed-loop*: every operation starts when
the previous one finishes, so the system is never offered more load
than it can serve and queueing delay is structurally invisible.  Real
traffic is *open-loop* — users do not wait for each other — and the
regime that separates index designs in production is saturation, where
queueing dominates p99/p999.

This module generates deterministic arrival timestamps (simulated
microseconds) for the request gateway:

* :class:`PoissonArrivals` — memoryless arrivals at a fixed offered
  rate, the canonical open-loop model;
* :class:`BurstyArrivals` — a two-state modulated Poisson process
  (quiet/burst), whose index of dispersion exceeds Poisson's 1.0: the
  same mean rate arrives in bursts that overflow bounded queues even
  when mean utilisation looks safe.

All generators are pure functions of their parameters and seed — the
same plan replays byte-identically, which is what lets the ``overload``
experiment assert determinism end to end.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.errors import WorkloadError


@dataclass(frozen=True)
class PoissonArrivals:
    """Exponential inter-arrival gaps at ``rate_per_sec`` offered load."""

    rate_per_sec: float
    seed: int = 0

    def validate(self) -> None:
        """Raise :class:`WorkloadError` on a non-positive rate."""
        if self.rate_per_sec <= 0:
            raise WorkloadError(
                f"arrival rate must be > 0 ops/s, got {self.rate_per_sec}")

    def times(self, count: int) -> List[float]:
        """``count`` strictly increasing arrival timestamps (sim µs)."""
        self.validate()
        rng = random.Random(self.seed)
        mean_gap_us = 1e6 / self.rate_per_sec
        now = 0.0
        out: List[float] = []
        for _ in range(count):
            now += rng.expovariate(1.0) * mean_gap_us
            out.append(now)
        return out


@dataclass(frozen=True)
class BurstyArrivals:
    """Two-state modulated Poisson: quiet baseline plus load bursts.

    The process alternates between a *quiet* state arriving at
    ``rate_per_sec`` and a *burst* state arriving at ``burst_factor``
    times that; state holding times are exponential with means
    ``mean_quiet_us`` / ``mean_burst_us``.  Mean offered rate is the
    duty-cycle-weighted blend; variance is strictly super-Poisson, so
    a bounded queue provisioned for the mean still sheds during bursts.
    """

    rate_per_sec: float
    burst_factor: float = 8.0
    mean_quiet_us: float = 200_000.0
    mean_burst_us: float = 25_000.0
    seed: int = 0

    def validate(self) -> None:
        """Raise :class:`WorkloadError` on nonsensical parameters."""
        if self.rate_per_sec <= 0:
            raise WorkloadError(
                f"arrival rate must be > 0 ops/s, got {self.rate_per_sec}")
        if self.burst_factor < 1.0:
            raise WorkloadError(
                f"burst_factor must be >= 1, got {self.burst_factor}")
        if self.mean_quiet_us <= 0 or self.mean_burst_us <= 0:
            raise WorkloadError("state holding times must be > 0 us")

    def times(self, count: int) -> List[float]:
        """``count`` strictly increasing arrival timestamps (sim µs)."""
        self.validate()
        rng = random.Random(self.seed)
        quiet_gap_us = 1e6 / self.rate_per_sec
        burst_gap_us = quiet_gap_us / self.burst_factor
        now = 0.0
        in_burst = False
        state_ends = rng.expovariate(1.0) * self.mean_quiet_us
        out: List[float] = []
        while len(out) < count:
            gap = rng.expovariate(1.0) * (burst_gap_us if in_burst
                                          else quiet_gap_us)
            if now + gap >= state_ends:
                # Cross into the next state; arrivals restart there
                # (memorylessness makes discarding the partial gap fair).
                now = state_ends
                in_burst = not in_burst
                mean = self.mean_burst_us if in_burst else self.mean_quiet_us
                state_ends = now + rng.expovariate(1.0) * mean
                continue
            now += gap
            out.append(now)
        return out


def index_of_dispersion(times: List[float], window_us: float) -> float:
    """Variance-to-mean ratio of arrival counts per ``window_us`` bin.

    ~1.0 for Poisson, >1.0 for bursty processes — the statistic tests
    use to tell the two generators apart without eyeballing plots.
    """
    if not times or window_us <= 0:
        return 0.0
    horizon = times[-1]
    bins = max(1, int(horizon // window_us))
    counts = [0] * bins
    for t in times:
        idx = min(bins - 1, int(t // window_us))
        counts[idx] += 1
    mean = sum(counts) / len(counts)
    if mean == 0:
        return 0.0
    var = sum((c - mean) ** 2 for c in counts) / len(counts)
    return var / mean
