"""Request distributions for lookup workloads (the YCSB set).

These choose *which* of the currently-inserted records an operation
touches.  All pickers are deterministic given their seed and implement
the same ``pick()`` protocol; Zipfian follows the Gray et al.
construction YCSB uses (with the incremental recomputation shortcut
for a growing record count), and "latest" composes Zipfian with
recency, exactly as in the YCSB core package.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod

from repro.errors import WorkloadError

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def fnv1a_64(value: int) -> int:
    """FNV-1a hash of an integer's 8 little-endian bytes (YCSB's scramble)."""
    acc = _FNV_OFFSET
    for _ in range(8):
        acc ^= value & 0xFF
        acc = (acc * _FNV_PRIME) & _MASK64
        value >>= 8
    return acc


class KeyPicker(ABC):
    """Chooses an index in ``[0, count)`` per operation."""

    def __init__(self, count: int, seed: int = 0) -> None:
        if count < 1:
            raise WorkloadError(f"picker needs at least 1 item, got {count}")
        self.count = count
        self.rng = random.Random(seed)

    @abstractmethod
    def pick(self) -> int:
        """Next chosen index."""

    def grow(self, new_count: int) -> None:
        """Inform the picker that the record count grew (inserts)."""
        if new_count < self.count:
            raise WorkloadError("record count cannot shrink")
        self.count = new_count


class UniformPicker(KeyPicker):
    """Every record equally likely."""

    def pick(self) -> int:
        return self.rng.randrange(self.count)


class ZipfianPicker(KeyPicker):
    """YCSB's Zipfian generator (theta = 0.99 by default).

    Popular items are the low ranks; use :class:`ScrambledZipfianPicker`
    to spread popularity over the key space.
    """

    def __init__(self, count: int, seed: int = 0,
                 theta: float = 0.99) -> None:
        super().__init__(count, seed)
        if not 0 < theta < 1:
            raise WorkloadError(f"zipfian theta must be in (0,1), got {theta}")
        self.theta = theta
        self._items = count
        self._zeta = self._zeta_static(count, theta)
        self._recompute()

    @staticmethod
    def _zeta_static(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def _recompute(self) -> None:
        theta = self.theta
        self._alpha = 1.0 / (1.0 - theta)
        self._zeta2 = self._zeta_static(2, theta)
        self._eta = ((1.0 - (2.0 / self._items) ** (1.0 - theta))
                     / (1.0 - self._zeta2 / self._zeta))

    def grow(self, new_count: int) -> None:
        if new_count == self._items:
            return
        # Incremental zeta extension (YCSB's allow_item_count_decrease=False
        # path): extend the harmonic sum instead of recomputing.
        for i in range(self._items + 1, new_count + 1):
            self._zeta += 1.0 / (i ** self.theta)
        self._items = new_count
        super().grow(new_count)
        self._recompute()

    def pick(self) -> int:
        u = self.rng.random()
        uz = u * self._zeta
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        rank = int(self._items * ((self._eta * u - self._eta + 1.0)
                                  ** self._alpha))
        return min(rank, self._items - 1)


class ScrambledZipfianPicker(ZipfianPicker):
    """Zipfian ranks scattered across the key space via FNV hashing."""

    def pick(self) -> int:
        rank = super().pick()
        return fnv1a_64(rank) % self.count


class LatestPicker(ZipfianPicker):
    """Most recently inserted records are the most popular (YCSB-D)."""

    def pick(self) -> int:
        rank = super().pick()
        return self.count - 1 - rank


class HotspotPicker(KeyPicker):
    """A hot fraction of the key space receives most operations."""

    def __init__(self, count: int, seed: int = 0, hot_fraction: float = 0.2,
                 hot_op_fraction: float = 0.8) -> None:
        super().__init__(count, seed)
        if not 0 < hot_fraction <= 1:
            raise WorkloadError(
                f"hot_fraction must be in (0,1], got {hot_fraction}")
        if not 0 <= hot_op_fraction <= 1:
            raise WorkloadError(
                f"hot_op_fraction must be in [0,1], got {hot_op_fraction}")
        self.hot_fraction = hot_fraction
        self.hot_op_fraction = hot_op_fraction

    def pick(self) -> int:
        hot_count = max(1, int(self.count * self.hot_fraction))
        if self.rng.random() < self.hot_op_fraction:
            return self.rng.randrange(hot_count)
        if hot_count >= self.count:
            return self.rng.randrange(self.count)
        return hot_count + self.rng.randrange(self.count - hot_count)


def make_picker(name: str, count: int, seed: int = 0) -> KeyPicker:
    """Construct a picker by its YCSB name."""
    lowered = name.lower()
    if lowered == "uniform":
        return UniformPicker(count, seed)
    if lowered == "zipfian":
        return ScrambledZipfianPicker(count, seed)
    if lowered == "latest":
        return LatestPicker(count, seed)
    if lowered == "hotspot":
        return HotspotPicker(count, seed)
    raise WorkloadError(f"unknown request distribution: {name!r}")
