"""YCSB core workloads A-F as operation streams (the paper's Section 5.6).

The paper evaluates mixed workloads with the six standard YCSB mixes:

====  ==========================  =======================
Name  Mix                         Request distribution
====  ==========================  =======================
A     50% read / 50% update       zipfian
B     95% read / 5% update        zipfian
C     100% read                   zipfian
D     95% read / 5% insert        latest
E     95% scan / 5% insert        zipfian (ranges < 100)
F     50% read / 50% RMW          zipfian
====  ==========================  =======================

A workload instance owns the insertion-ordered key list (so "latest"
can favour recent inserts) and yields :class:`Operation` values; the
testbed executes them against a database.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.errors import WorkloadError
from repro.lsm.write_batch import WriteBatch
from repro.storage.stats import MULTIGET_READ_YOUR_WRITES, Stage
from repro.workloads.distributions import KeyPicker, make_picker


class OpKind(str, enum.Enum):
    """YCSB operation kinds."""

    READ = "read"
    UPDATE = "update"
    INSERT = "insert"
    SCAN = "scan"
    READ_MODIFY_WRITE = "rmw"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Operation:
    """One workload operation against a concrete key."""

    kind: OpKind
    key: int
    scan_length: int = 0


@dataclass(frozen=True)
class WorkloadSpec:
    """Operation mix plus request distribution."""

    name: str
    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    scan: float = 0.0
    rmw: float = 0.0
    distribution: str = "zipfian"
    max_scan_length: int = 100

    def validate(self) -> None:
        """Proportions must sum to 1."""
        total = self.read + self.update + self.insert + self.scan + self.rmw
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(
                f"workload {self.name}: proportions sum to {total}, not 1")


#: The six mixes of the paper's Figure 12.
CORE_WORKLOADS: Dict[str, WorkloadSpec] = {
    "A": WorkloadSpec(name="A", read=0.5, update=0.5),
    "B": WorkloadSpec(name="B", read=0.95, update=0.05),
    "C": WorkloadSpec(name="C", read=1.0),
    "D": WorkloadSpec(name="D", read=0.95, insert=0.05,
                      distribution="latest"),
    "E": WorkloadSpec(name="E", scan=0.95, insert=0.05),
    "F": WorkloadSpec(name="F", read=0.5, rmw=0.5),
}


@dataclass
class YCSBWorkload:
    """A reproducible stream of YCSB operations over a key set.

    ``loaded_keys`` are the records present before the run (insertion
    order matters for the "latest" distribution); ``insert_reserve``
    supplies keys for INSERT operations.
    """

    spec: WorkloadSpec
    loaded_keys: Sequence[int]
    insert_reserve: Sequence[int] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        self.spec.validate()
        if not self.loaded_keys:
            raise WorkloadError("YCSB workload needs at least one loaded key")
        self._insertion_order: List[int] = list(self.loaded_keys)
        self._reserve_pos = 0

    def operations(self, count: int) -> Iterator[Operation]:
        """Yield ``count`` operations."""
        rng = random.Random(self.seed)
        picker = make_picker(self.spec.distribution,
                             len(self._insertion_order), seed=self.seed + 1)
        thresholds = self._thresholds()
        for _ in range(count):
            roll = rng.random()
            kind = self._kind_for(roll, thresholds)
            if kind is OpKind.INSERT:
                key = self._next_insert_key()
                self._insertion_order.append(key)
                picker.grow(len(self._insertion_order))
                yield Operation(OpKind.INSERT, key)
                continue
            key = self._insertion_order[picker.pick()]
            if kind is OpKind.SCAN:
                length = rng.randint(1, self.spec.max_scan_length)
                yield Operation(OpKind.SCAN, key, scan_length=length)
            else:
                yield Operation(kind, key)

    def _thresholds(self) -> List[tuple]:
        spec = self.spec
        table = []
        acc = 0.0
        for fraction, kind in ((spec.read, OpKind.READ),
                               (spec.update, OpKind.UPDATE),
                               (spec.insert, OpKind.INSERT),
                               (spec.scan, OpKind.SCAN),
                               (spec.rmw, OpKind.READ_MODIFY_WRITE)):
            if fraction > 0:
                acc += fraction
                table.append((acc, kind))
        return table

    @staticmethod
    def _kind_for(roll: float, thresholds: List[tuple]) -> OpKind:
        for limit, kind in thresholds:
            if roll <= limit:
                return kind
        return thresholds[-1][1]

    def _next_insert_key(self) -> int:
        if self._reserve_pos < len(self.insert_reserve):
            key = self.insert_reserve[self._reserve_pos]
            self._reserve_pos += 1
            return key
        # Reserve exhausted: synthesise fresh keys above the max seen.
        top = max(self._insertion_order[-1],
                  self.insert_reserve[-1] if self.insert_reserve else 0)
        return top + 1 + self._reserve_pos


def replay(db, operations: Iterable[Operation],
           value_for: Optional[Callable[[int], bytes]] = None,
           write_batch_size: int = 1,
           read_batch_size: int = 1,
           window: Optional[object] = None) -> Dict[str, int]:
    """Execute an operation stream against ``db``; returns op counts.

    ``db`` is anything with the engine surface — an
    :class:`~repro.lsm.db.LSMTree` or a
    :class:`~repro.service.sharded.ShardedDB`.  ``value_for(key)``
    supplies write payloads (defaults to a compact deterministic
    value).  An UPDATE with ``scan_length == -1`` is the trace
    encoding of a delete (see :mod:`repro.workloads.trace`).

    With ``write_batch_size > 1``, consecutive updates, inserts and
    deletes are staged into a
    :class:`~repro.lsm.write_batch.WriteBatch` and committed as a
    group once full; any read, scan or read-modify-write first commits
    the pending batch, preserving read-your-writes semantics.

    With ``read_batch_size > 1``, consecutive READs are staged and
    drained through one ``db.multi_get`` per batch — the mirrored read
    side of write batching.  Program order is preserved exactly: a
    READ of a key staged in the pending write batch is answered from
    that batch (read-your-writes — an in-memory probe charged as one
    batch-index descent, no device access; counted under
    ``multiget.read_your_writes`` and in the returned
    ``read_from_batch``), and any write, scan or read-modify-write
    drains the staged reads first, so a read can never observe a
    write issued after it.

    ``window`` (a :class:`~repro.obs.registry.MetricsWindow`) is
    ticked once per workload operation, so windowed throughput/
    percentile snapshots line up with the operation stream.
    """
    if write_batch_size < 1:
        raise WorkloadError(
            f"write_batch_size must be >= 1, got {write_batch_size}")
    if read_batch_size < 1:
        raise WorkloadError(
            f"read_batch_size must be >= 1, got {read_batch_size}")
    if value_for is None:
        def value_for(key: int) -> bytes:  # noqa: ANN001 - local default
            return b"t%x" % key
    counts: Dict[str, int] = {}
    pending = WriteBatch()
    pending_reads: List[int] = []
    staged_writes: set = set()  # keys with an op in the pending batch

    def commit() -> None:
        drain_reads()
        if pending:
            db.write(pending)
            pending.clear()
            staged_writes.clear()

    def drain_reads() -> None:
        if pending_reads:
            db.multi_get(pending_reads)
            pending_reads.clear()

    batching = write_batch_size > 1
    read_batching = read_batch_size > 1
    for op in operations:
        if op.kind is OpKind.READ:
            if read_batching:
                # Keys staged in the pending write batch resolve from
                # it (read-your-writes); the rest wait for the batch.
                if op.key in staged_writes:
                    # ShardedDB.stats is an ephemeral aggregate, so the
                    # charge/counter stick only on a single tree; the
                    # returned ``read_from_batch`` covers every engine.
                    cost = getattr(db, "cost", None)
                    if cost is not None:
                        db.stats.charge(
                            Stage.TABLE_LOOKUP,
                            cost.index_compare_us
                            * max(1, len(pending)).bit_length())
                        db.stats.add(MULTIGET_READ_YOUR_WRITES)
                    counts["read_from_batch"] = (
                        counts.get("read_from_batch", 0) + 1)
                else:
                    pending_reads.append(op.key)
                    if len(pending_reads) >= read_batch_size:
                        drain_reads()
            else:
                commit()
                db.get(op.key)
        elif op.kind is OpKind.UPDATE and op.scan_length == -1:
            drain_reads()
            if batching:
                pending.delete(op.key)
                staged_writes.add(op.key)
                if len(pending) >= write_batch_size:
                    commit()
            else:
                db.delete(op.key)
            counts["delete"] = counts.get("delete", 0) + 1
            if window is not None:
                window.tick()
            continue
        elif op.kind in (OpKind.UPDATE, OpKind.INSERT):
            drain_reads()
            if batching:
                pending.put(op.key, value_for(op.key))
                staged_writes.add(op.key)
                if len(pending) >= write_batch_size:
                    commit()
            else:
                db.put(op.key, value_for(op.key))
        elif op.kind is OpKind.SCAN:
            commit()
            db.scan(op.key, op.scan_length)
        elif op.kind is OpKind.READ_MODIFY_WRITE:
            commit()
            db.get(op.key)
            db.put(op.key, value_for(op.key))
        counts[op.kind.value] = counts.get(op.kind.value, 0) + 1
        if window is not None:
            window.tick()
    commit()
    return counts


def workload(name: str, loaded_keys: Sequence[int],
             insert_reserve: Optional[Sequence[int]] = None,
             seed: int = 0) -> YCSBWorkload:
    """Construct one of the six core workloads by letter."""
    spec = CORE_WORKLOADS.get(name.upper())
    if spec is None:
        valid = ", ".join(sorted(CORE_WORKLOADS))
        raise WorkloadError(
            f"unknown YCSB workload {name!r}; expected one of: {valid}")
    return YCSBWorkload(spec=spec, loaded_keys=loaded_keys,
                        insert_reserve=insert_reserve or [], seed=seed)
