"""Workload generation: SOSD-style datasets and YCSB operation streams."""

from repro.workloads.arrivals import (
    BurstyArrivals,
    PoissonArrivals,
    index_of_dispersion,
)
from repro.workloads.datasets import (
    DATASET_NAMES,
    KEY_SPACE,
    cdf,
    generate,
    hardness_score,
)
from repro.workloads.distributions import (
    HotspotPicker,
    KeyPicker,
    LatestPicker,
    ScrambledZipfianPicker,
    UniformPicker,
    ZipfianPicker,
    make_picker,
)
from repro.workloads.trace import (
    load_trace,
    read_trace,
    record_ycsb,
    replay,
    write_trace,
)
from repro.workloads.ycsb import (
    CORE_WORKLOADS,
    Operation,
    OpKind,
    WorkloadSpec,
    YCSBWorkload,
    workload,
)

__all__ = [
    "PoissonArrivals",
    "BurstyArrivals",
    "index_of_dispersion",
    "DATASET_NAMES",
    "KEY_SPACE",
    "generate",
    "cdf",
    "hardness_score",
    "KeyPicker",
    "UniformPicker",
    "ZipfianPicker",
    "ScrambledZipfianPicker",
    "LatestPicker",
    "HotspotPicker",
    "make_picker",
    "OpKind",
    "Operation",
    "WorkloadSpec",
    "CORE_WORKLOADS",
    "YCSBWorkload",
    "workload",
    "write_trace",
    "read_trace",
    "load_trace",
    "record_ycsb",
    "replay",
]
