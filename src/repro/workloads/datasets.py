"""SOSD-style synthetic datasets (the paper's seven key distributions).

The paper evaluates on seven SOSD-derived key sets — Random, Segment,
Longitude, Longlat, Books, FB and Wiki — whose only role in the study
is the *shape of their CDF* (Figure 5): smooth uniform CDFs are easy
for linear models, clustered or heavy-tailed CDFs force more segments.
The real datasets are multi-gigabyte downloads, so this module
generates synthetic key sets reproducing each family's qualitative CDF
shape:

* ``random`` — uniform over the 63-bit space (near-linear CDF);
* ``segment`` — piecewise-linear CDF with a handful of slope changes;
* ``longitude`` — clusters around populated longitudes (multi-modal);
* ``longlat`` — interleaved longitude/latitude projection (stepped,
  strongly clustered);
* ``books`` — lognormal-ish mid-heavy popularity (smooth but curved);
* ``fb`` — heavy upper tail: dense low ids plus sparse huge ids;
* ``wiki`` — bursty timestamps: dense regimes separated by quiet gaps.

All generators return sorted, de-duplicated Python ints in
``[0, 2^63)`` and are deterministic in ``(name, n, seed)``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError

#: Keys live in [0, KEY_SPACE).
KEY_SPACE = 1 << 63

DATASET_NAMES = ("random", "segment", "longitude", "longlat", "books",
                 "fb", "wiki")


def _finalize(raw: np.ndarray, n: int, rng: np.random.Generator) -> List[int]:
    """Clip to the key space, deduplicate, and top up to exactly ``n``."""
    keys = np.unique(np.clip(raw.astype(np.float64), 0, KEY_SPACE - 1)
                     .astype(np.uint64))
    while len(keys) < n:
        extra = rng.integers(0, KEY_SPACE, size=n - len(keys) + 16,
                             dtype=np.uint64)
        keys = np.unique(np.concatenate([keys, extra]))
    if len(keys) > n:
        # Thin evenly so the CDF shape is preserved.
        idx = np.linspace(0, len(keys) - 1, n).astype(np.int64)
        keys = keys[idx]
        keys = np.unique(keys)
        while len(keys) < n:  # pathological duplicates after thinning
            extra = rng.integers(0, KEY_SPACE, size=n - len(keys) + 16,
                                 dtype=np.uint64)
            keys = np.unique(np.concatenate([keys, extra]))[:n]
    return [int(k) for k in keys]


def gen_random(n: int, seed: int = 0) -> List[int]:
    """Uniform random keys (SOSD ``uniform``/the paper's Random)."""
    rng = np.random.default_rng(seed)
    return _finalize(rng.integers(0, KEY_SPACE, size=int(n * 1.01) + 8,
                                  dtype=np.uint64), n, rng)


def gen_segment(n: int, seed: int = 0, pieces: int = 10) -> List[int]:
    """Piecewise-linear CDF: a few regions of distinct density."""
    rng = np.random.default_rng(seed + 1)
    # Random segment widths in key space and random densities.
    widths = rng.dirichlet(np.ones(pieces)) * KEY_SPACE
    weights = rng.dirichlet(np.ones(pieces) * 0.5)
    counts = np.maximum(1, (weights * n * 1.02).astype(np.int64))
    start = 0.0
    parts = []
    for width, count in zip(widths, counts):
        parts.append(rng.uniform(start, start + width, size=count))
        start += width
    return _finalize(np.concatenate(parts), n, rng)


def gen_longitude(n: int, seed: int = 0) -> List[int]:
    """Clusters near populated longitudes, mapped onto the key space."""
    rng = np.random.default_rng(seed + 2)
    centers = np.array([-122.4, -99.1, -74.0, -46.6, 2.3, 13.4, 28.0,
                        77.2, 103.8, 116.4, 139.7, 151.2])
    weights = np.array([8, 5, 9, 6, 7, 5, 4, 10, 8, 9, 8, 4], dtype=float)
    weights /= weights.sum()
    counts = (weights * n * 1.05).astype(np.int64) + 1
    parts = []
    for center, count in zip(centers, counts):
        parts.append(rng.normal(center, 3.5, size=count))
    lon = np.clip(np.concatenate(parts), -180.0, 180.0)
    scaled = (lon + 180.0) / 360.0 * (KEY_SPACE - 1)
    return _finalize(scaled, n, rng)


def gen_longlat(n: int, seed: int = 0) -> List[int]:
    """Projected (lon, lat) pairs: stepped, strongly clustered CDF."""
    rng = np.random.default_rng(seed + 3)
    centers = [(-122.4, 37.8), (-74.0, 40.7), (-46.6, -23.5), (2.3, 48.9),
               (28.0, -26.2), (77.2, 28.6), (103.8, 1.4), (139.7, 35.7)]
    per = n // len(centers) + 1
    parts = []
    for lon_c, lat_c in centers:
        lon = rng.normal(lon_c, 2.0, size=per)
        lat = rng.normal(lat_c, 2.0, size=per)
        projected = (np.clip(lon, -180, 180) + 180.0) * 400.0 \
            + (np.clip(lat, -90, 90) + 90.0)
        parts.append(projected)
    combined = np.concatenate(parts)
    scaled = combined / combined.max() * (KEY_SPACE - 1)
    return _finalize(scaled, n, rng)


def gen_books(n: int, seed: int = 0) -> List[int]:
    """Amazon-books-like smooth-but-curved CDF (lognormal bulk)."""
    rng = np.random.default_rng(seed + 4)
    raw = rng.lognormal(mean=0.0, sigma=0.8, size=int(n * 1.05) + 8)
    scaled = raw / raw.max() * (KEY_SPACE - 1)
    return _finalize(scaled, n, rng)


def gen_fb(n: int, seed: int = 0) -> List[int]:
    """Facebook-ids-like: dense low range plus an extreme upper tail."""
    rng = np.random.default_rng(seed + 5)
    bulk = rng.uniform(0, KEY_SPACE * 0.02, size=int(n * 0.9))
    tail = (rng.pareto(1.2, size=int(n * 0.15) + 8) + 1.0) \
        * KEY_SPACE * 0.02
    return _finalize(np.concatenate([bulk, tail]), n, rng)


def gen_wiki(n: int, seed: int = 0) -> List[int]:
    """Wikipedia-timestamp-like: bursty regimes with quiet gaps."""
    rng = np.random.default_rng(seed + 6)
    bursts = 24
    per = n // bursts + 1
    t = 0.0
    parts = []
    for _ in range(bursts):
        rate = rng.uniform(0.5, 20.0)   # events per tick in this regime
        gaps = rng.exponential(1.0 / rate, size=per)
        times = t + np.cumsum(gaps)
        t = times[-1] + rng.uniform(5.0, 50.0)  # quiet gap
        parts.append(times)
    combined = np.concatenate(parts)
    scaled = combined / combined.max() * (KEY_SPACE - 1)
    return _finalize(scaled, n, rng)


_GENERATORS: Dict[str, Callable[[int, int], List[int]]] = {
    "random": gen_random,
    "segment": gen_segment,
    "longitude": gen_longitude,
    "longlat": gen_longlat,
    "books": gen_books,
    "fb": gen_fb,
    "wiki": gen_wiki,
}


def generate(name: str, n: int, seed: int = 0) -> List[int]:
    """Generate dataset ``name`` with exactly ``n`` sorted unique keys."""
    if n < 1:
        raise WorkloadError(f"dataset size must be >= 1, got {n}")
    try:
        generator = _GENERATORS[name.lower()]
    except KeyError:
        valid = ", ".join(DATASET_NAMES)
        raise WorkloadError(
            f"unknown dataset {name!r}; expected one of: {valid}") from None
    keys = generator(n, seed)
    if len(keys) != n:
        keys = keys[:n]
    return keys


def cdf(keys: Sequence[int], points: int = 256) -> Tuple[List[float], List[float]]:
    """Sampled CDF of a key set, normalised to [0, 1] on both axes.

    This is what Figure 5 plots: x = key position in the key space,
    y = fraction of keys below it.
    """
    if not keys:
        raise WorkloadError("cannot compute the CDF of an empty key set")
    n = len(keys)
    lo, hi = keys[0], keys[-1]
    span = max(1, hi - lo)
    xs: List[float] = []
    ys: List[float] = []
    step = max(1, n // points)
    for i in range(0, n, step):
        xs.append((keys[i] - lo) / span)
        ys.append(i / n)
    xs.append(1.0)
    ys.append(1.0)
    return xs, ys


def hardness_score(keys: Sequence[int], sample: int = 4096) -> float:
    """A crude linearity measure: RMS deviation of the CDF from a line.

    0 means perfectly linear (easy for learned indexes); larger values
    mean more curvature (more segments needed).  Used by the tuning
    advisor and by dataset tests.
    """
    n = len(keys)
    step = max(1, n // sample)
    xs, ys = [], []
    lo, hi = keys[0], keys[-1]
    span = max(1, hi - lo)
    for i in range(0, n, step):
        xs.append((keys[i] - lo) / span)
        ys.append(i / (n - 1) if n > 1 else 0.0)
    deviations = [(y - x) ** 2 for x, y in zip(xs, ys)]
    return (sum(deviations) / len(deviations)) ** 0.5
