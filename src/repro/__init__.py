"""repro — learned indexes in LSM-tree systems, reproduced end to end.

A from-scratch Python implementation of the unified testbed from
*"Evaluating Learned Indexes in LSM-tree Systems: Benchmarks, Insights
and Design Choices"* (EDBT 2026): a LevelDB-style LSM-tree whose
SSTables are indexed by pluggable learned models, a calibrated
simulated-I/O substrate, SOSD-style dataset generators, YCSB workloads,
and a harness that regenerates every figure and table of the paper's
evaluation.

Quickstart::

    from repro import LSMTree, Options, IndexKind

    options = Options(index_kind=IndexKind.PGM, position_boundary=32)
    db = LSMTree(options)
    db.put(42, b"hello")
    assert db.get(42) == b"hello"

See ``examples/`` for complete walkthroughs and ``benchmarks/`` for the
paper's experiments.
"""

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    DiskFullError,
    PowerCutError,
    QuarantinedBlockError,
    ReadOnlyModeError,
    ReproError,
    RequestRejectedError,
    ShedError,
    TransientIOError,
)
from repro.indexes import (
    ALL_KINDS,
    LEARNED_KINDS,
    ClusteredIndex,
    IndexFactory,
    IndexKind,
    SearchBound,
)
from repro.lsm import LSMTree, Options, ScrubReport, WriteBatch
from repro.service import Gateway, GatewayConfig, HashRouter, ShardedDB
from repro.storage import (
    CostModel,
    FaultPlan,
    FaultyBlockDevice,
    MemoryBlockDevice,
    RetryPolicy,
    Stage,
    Stats,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "TransientIOError",
    "DiskFullError",
    "PowerCutError",
    "ReadOnlyModeError",
    "QuarantinedBlockError",
    "RequestRejectedError",
    "DeadlineExceededError",
    "ShedError",
    "CircuitOpenError",
    "FaultPlan",
    "FaultyBlockDevice",
    "RetryPolicy",
    "ClusteredIndex",
    "SearchBound",
    "IndexFactory",
    "IndexKind",
    "ALL_KINDS",
    "LEARNED_KINDS",
    "LSMTree",
    "Options",
    "ScrubReport",
    "WriteBatch",
    "ShardedDB",
    "HashRouter",
    "Gateway",
    "GatewayConfig",
    "CostModel",
    "MemoryBlockDevice",
    "Stats",
    "Stage",
    "__version__",
]
