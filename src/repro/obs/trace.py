"""Per-operation trace spans: Table-1-style waterfalls for single ops.

The stats registry can only report *sums* per stage; a :class:`Tracer`
attributes them to individual operations.  Every traced operation —
get, multi_get, put, delete, write-batch, scan, flush, compaction,
recovery — opens a root :class:`Span`; while it is active, every
:meth:`repro.storage.stats.Stats.charge` lands in the span's per-stage
waterfall and every :meth:`~repro.storage.stats.Stats.add` attaches to
its counters, so one sampled slow lookup carries its own latency
breakdown (how much prediction, how much I/O, how many bloom probes,
how many cache hits).

Operations nest — a ``put`` that fills the memtable triggers a
``flush`` which may trigger ``compaction``s — and so do spans: charges
route to *every* span on the stack, so a parent's total includes its
children's work (exactly the write stall a tail-latency report must
show), while each child still records its own latency under its own
op type.

Tracing is pure observation: a tracer never charges time or counters
into :class:`~repro.storage.stats.Stats`, so totals with tracing on
are byte-identical to totals without it (shape-checked by the ``obs``
experiment).  Span *retention* is sampled 1-in-N
(``sample_every``); histograms see every operation regardless, and the
registry always keeps the top-K slowest root spans as exemplars.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from repro.obs.registry import MetricsRegistry


class OpType(str, enum.Enum):
    """Root-span operation labels."""

    GET = "get"
    MULTI_GET = "multi_get"
    PUT = "put"
    DELETE = "delete"
    WRITE_BATCH = "write_batch"
    SCAN = "scan"
    FLUSH = "flush"
    COMPACTION = "compaction"
    RECOVERY = "recovery"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Span:
    """One traced operation: its waterfall, counters and children."""

    __slots__ = ("op", "index", "detail", "total_us", "stage_us",
                 "counters", "children")

    def __init__(self, op: str, index: int, detail: str = "") -> None:
        self.op = op
        self.index = index
        self.detail = detail
        self.total_us = 0.0
        #: Stage-name -> simulated us (the per-op Table 1 waterfall).
        self.stage_us: Dict[str, float] = {}
        #: Counter deltas attributed to this op (bloom probes, blocks
        #: read, cache hits, ...).
        self.counters: Dict[str, float] = {}
        #: Nested op spans (a put's flush, a flush's compactions).
        self.children: List["Span"] = []

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dump, children included."""
        return {
            "op": self.op,
            "index": self.index,
            "detail": self.detail,
            "total_us": self.total_us,
            "stage_us": dict(sorted(self.stage_us.items())),
            "counters": dict(sorted(self.counters.items())),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.op}#{self.index}, {self.total_us:.2f}us, "
                f"{len(self.children)} children)")


class Tracer:
    """Opens/closes spans and routes stats events into the active ones.

    ``sample_every=N`` keeps every N-th root span in the registry's
    bounded ring buffer (0 keeps none — histograms and exemplars still
    see every op); ``registry`` receives per-op latencies, exemplars
    and sampled spans, and defaults to a private one.
    """

    def __init__(self, sample_every: int = 0,
                 registry: Optional[MetricsRegistry] = None) -> None:
        if sample_every < 0:
            raise ValueError(f"sample_every must be >= 0: {sample_every}")
        self.sample_every = sample_every
        self.registry = registry if registry is not None else MetricsRegistry()
        self._stack: List[Span] = []
        self._root_seq = 0

    # -- span lifecycle ------------------------------------------------

    def begin(self, op: "OpType | str", detail: str = "") -> Span:
        """Open a span for ``op``; nested under any active span."""
        span = Span(str(op), self._root_seq + len(self._stack), detail)
        self._stack.append(span)
        return span

    def end(self, span: Span) -> None:
        """Close ``span``; record its latency, retain it if selected."""
        if not self._stack or self._stack[-1] is not span:
            raise ValueError(f"span stack corruption closing {span!r}")
        self._stack.pop()
        self.registry.record_op(span.op, span.total_us)
        if self._stack:
            self._stack[-1].children.append(span)
            return
        self._root_seq += 1
        self.registry.offer_exemplar(span)
        if self.sample_every and (span.index % self.sample_every == 0):
            self.registry.keep_sampled(span)

    @property
    def active_depth(self) -> int:
        """How many spans are currently open (0 when idle)."""
        return len(self._stack)

    # -- stats hooks (called by Stats.charge / Stats.add) --------------

    def on_charge(self, stage, us: float) -> None:
        """Attribute a simulated-time charge to every active span."""
        name = stage.value
        for span in self._stack:
            span.total_us += us
            span.stage_us[name] = span.stage_us.get(name, 0.0) + us

    def on_count(self, name: str, amount: float) -> None:
        """Attribute a counter increment to every active span."""
        for span in self._stack:
            span.counters[name] = span.counters.get(name, 0.0) + amount
