"""HDR-style log-bucketed latency histograms with lossless merge.

The paper reports *means* per stage; tail behaviour (where learned
indexes and B-trees actually diverge — *Benchmarking Learned Indexes*,
arXiv:2006.12804) needs full distributions.  A :class:`Histogram`
records simulated-microsecond samples into logarithmic buckets with a
fixed number of linear sub-buckets per octave (HdrHistogram's layout),
so:

* relative value error is bounded by ``1 / 2**SUB_BUCKET_BITS`` (~3%);
* memory stays tiny — buckets are a sparse dict, one int per occupied
  bucket, regardless of sample count;
* **merging is exact**: bucket boundaries are a pure function of the
  bucket index, identical for every instance, so folding one
  histogram's counts into another yields byte-for-byte the bucket
  occupancy a single histogram fed all samples would have.  This is
  what lets :class:`~repro.service.sharded.ShardedDB` aggregate
  per-shard histograms losslessly (property-tested in
  ``tests/test_obs.py``).

Samples are quantised to integer nanoseconds before bucketing: values
below ``2**SUB_BUCKET_BITS`` ns are recorded exactly, everything above
with the bounded relative error.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

#: Linear sub-buckets per octave: 2**5 = 32 -> <= ~3.1% relative error.
SUB_BUCKET_BITS = 5
SUB_BUCKET_COUNT = 1 << SUB_BUCKET_BITS

#: The percentile set every report shows (issue: p50/p90/p99/p999).
REPORT_PERCENTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999),
)


def bucket_index(ns: int) -> int:
    """Bucket index for a non-negative integer nanosecond value."""
    if ns < SUB_BUCKET_COUNT:
        return ns
    shift = ns.bit_length() - 1 - SUB_BUCKET_BITS
    return (shift << SUB_BUCKET_BITS) + (ns >> shift)


def bucket_bounds(index: int) -> Tuple[int, int]:
    """Inclusive-exclusive nanosecond range ``[lo, hi)`` of one bucket."""
    if index < SUB_BUCKET_COUNT:
        return index, index + 1
    shift = (index >> SUB_BUCKET_BITS) - 1
    base = (index - (shift << SUB_BUCKET_BITS)) << shift
    return base, base + (1 << shift)


class Histogram:
    """Log-bucketed distribution of non-negative microsecond samples."""

    __slots__ = ("counts", "count", "sum_us", "min_us", "max_us")

    def __init__(self) -> None:
        self.counts: Dict[int, int] = {}
        self.count = 0
        self.sum_us = 0.0
        self.min_us = float("inf")
        self.max_us = 0.0

    # -- recording -----------------------------------------------------

    def record(self, us: float) -> None:
        """Record one sample of ``us`` simulated microseconds."""
        if us < 0:
            raise ValueError(f"negative latency sample: {us}")
        index = bucket_index(int(round(us * 1000.0)))
        self.counts[index] = self.counts.get(index, 0) + 1
        self.count += 1
        self.sum_us += us
        if us < self.min_us:
            self.min_us = us
        if us > self.max_us:
            self.max_us = us

    def record_many(self, samples: Iterable[float]) -> None:
        """Record every sample in ``samples``."""
        for us in samples:
            self.record(us)

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (exact on bucket counts).

        Bucket occupancy, total count, min and max after a merge are
        identical to a single histogram fed both sample streams, so
        every percentile is too; only ``sum_us`` (a float sum) can
        differ in the last bits by addition order.
        """
        for index, n in other.counts.items():
            self.counts[index] = self.counts.get(index, 0) + n
        self.count += other.count
        self.sum_us += other.sum_us
        if other.min_us < self.min_us:
            self.min_us = other.min_us
        if other.max_us > self.max_us:
            self.max_us = other.max_us

    def copy(self) -> "Histogram":
        """An independent copy (for window baselines)."""
        dup = Histogram()
        dup.counts = dict(self.counts)
        dup.count = self.count
        dup.sum_us = self.sum_us
        dup.min_us = self.min_us
        dup.max_us = self.max_us
        return dup

    def since(self, baseline: "Histogram") -> "Histogram":
        """The samples recorded after ``baseline`` was captured.

        ``baseline`` must be an earlier :meth:`copy` of this histogram;
        the delta's min/max are bucket-bound approximations (the exact
        extremes of just the window are not recoverable).
        """
        delta = Histogram()
        for index, n in self.counts.items():
            change = n - baseline.counts.get(index, 0)
            if change:
                delta.counts[index] = change
        delta.count = self.count - baseline.count
        delta.sum_us = self.sum_us - baseline.sum_us
        if delta.counts:
            delta.min_us = bucket_bounds(min(delta.counts))[0] / 1000.0
            delta.max_us = bucket_bounds(max(delta.counts))[1] / 1000.0
        return delta

    # -- reading -------------------------------------------------------

    @property
    def mean_us(self) -> float:
        """Mean sample value (0.0 when empty)."""
        return self.sum_us / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (0 < q <= 1) in microseconds.

        Returns the midpoint of the bucket holding the target rank,
        clamped into the exact observed ``[min, max]`` range; 0.0 when
        the histogram is empty.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"percentile out of range: {q}")
        if not self.count:
            return 0.0
        if q == 1.0:
            return self.max_us  # tracked exactly; skip the bucket walk
        target = max(1, int(round(q * self.count)))
        seen = 0
        for index in sorted(self.counts):
            seen += self.counts[index]
            if seen >= target:
                lo, hi = bucket_bounds(index)
                mid_us = (lo + hi) / 2000.0
                return min(max(mid_us, self.min_us), self.max_us)
        return self.max_us  # pragma: no cover - ranks always land above

    def percentiles(self) -> Dict[str, float]:
        """The standard report set plus count/mean/max."""
        out = {name: self.percentile(q) for name, q in REPORT_PERCENTILES}
        out["count"] = float(self.count)
        out["mean"] = self.mean_us
        out["max"] = self.max_us if self.count else 0.0
        return out

    def state(self) -> Tuple[Tuple[Tuple[int, int], ...], int, float, float]:
        """Canonical comparable state: (buckets, count, min, max).

        Two histograms with equal state produce identical percentiles;
        ``sum_us`` is deliberately excluded (float addition order).
        """
        buckets = tuple(sorted((i, n) for i, n in self.counts.items() if n))
        return (buckets, self.count,
                self.min_us if self.count else 0.0,
                self.max_us if self.count else 0.0)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dump: percentiles plus raw bucket occupancy."""
        out: Dict[str, object] = dict(self.percentiles())
        out["min"] = self.min_us if self.count else 0.0
        out["buckets"] = {str(i): n for i, n in sorted(self.counts.items())}
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Histogram(count={self.count}, mean={self.mean_us:.2f}us, "
                f"p99={self.percentile(0.99):.2f}us)")


def merge_all(histograms: Iterable[Histogram]) -> Histogram:
    """A fresh histogram holding every input's samples."""
    total = Histogram()
    for histogram in histograms:
        total.merge(histogram)
    return total


def percentile_keys() -> List[str]:
    """Report column order for percentile tables."""
    return [name for name, _ in REPORT_PERCENTILES]
