"""Observability: per-op trace spans, latency histograms, exporters.

The measurement layer on top of :mod:`repro.storage.stats`:

* :class:`~repro.obs.histogram.Histogram` — HDR-style log-bucketed
  latency distributions with exact merge (p50/p90/p99/p999);
* :class:`~repro.obs.trace.Tracer` / :class:`~repro.obs.trace.Span` —
  per-operation waterfalls built from ``Stats.charge`` events, with
  1-in-N sampling and top-K slowest exemplars;
* :class:`~repro.obs.registry.MetricsRegistry` — the sink holding
  histograms, exemplars, sampled spans and windowed snapshots, with
  JSON and Prometheus text exporters.

Attach a tracer with ``db.stats.attach_tracer(tracer)`` (or let
:class:`~repro.core.testbed.Testbed` /
:class:`~repro.service.sharded.ShardedDB` do it by default).  Tracing
is pure observation — simulated-time totals are byte-identical with it
on or off.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.histogram import Histogram, merge_all, percentile_keys
from repro.obs.registry import (
    MetricsRegistry,
    MetricsWindow,
    global_registry,
)
from repro.obs.trace import OpType, Span, Tracer

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "MetricsWindow",
    "OpType",
    "Span",
    "Tracer",
    "global_registry",
    "merge_all",
    "percentile_keys",
]
