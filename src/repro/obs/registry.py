"""MetricsRegistry: histograms, exemplars, windows, and exporters.

The registry is the sink every :class:`~repro.obs.trace.Tracer` feeds:

* **histograms** — one :class:`~repro.obs.histogram.Histogram` per op
  type, recording every operation's simulated latency (sampling only
  affects span *retention*, never the distributions);
* **exemplars** — a bounded top-K of the slowest root spans seen, each
  carrying its full per-stage waterfall and counters (the "which op
  was slow and why" view);
* **sampled spans** — a bounded ring of 1-in-N root spans kept by the
  tracer's sampling knob;
* **windows** — throughput/percentile snapshots emitted every W ops by
  :class:`MetricsWindow` during ``ycsb.replay`` runs.

``merge`` folds another registry in: histogram bucket counts add
exactly (see :meth:`~repro.obs.histogram.Histogram.merge`), exemplars
are re-offered against the same top-K rule.  That is how
:class:`~repro.service.sharded.ShardedDB` produces fleet-wide
percentiles from per-shard registries without loss.

Exports: :meth:`to_json_dict` (machine-readable, also the payload of
``BENCH_*.json`` files) and :meth:`to_prometheus` (text exposition
format: counters, per-stage time, and one summary per op type).
"""

from __future__ import annotations

import heapq
import json
import re
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.obs.histogram import Histogram, percentile_keys

#: Retention bounds (spans are small; keep the stores strictly bounded).
DEFAULT_EXEMPLARS = 8
DEFAULT_SAMPLED_CAPACITY = 256

_PROM_NAME = re.compile(r"[^a-zA-Z0-9_]")


def _prom(name: str) -> str:
    """A Prometheus-legal metric/label token."""
    return _PROM_NAME.sub("_", name)


class MetricsRegistry:
    """Per-op histograms plus bounded span retention and exporters."""

    def __init__(self, exemplar_capacity: int = DEFAULT_EXEMPLARS,
                 sampled_capacity: int = DEFAULT_SAMPLED_CAPACITY) -> None:
        self.histograms: Dict[str, Histogram] = {}
        self.exemplar_capacity = exemplar_capacity
        self.sampled: Deque[object] = deque(maxlen=sampled_capacity)
        self.windows: List[Dict[str, float]] = []
        # Min-heap of (total_us, tiebreak, span): the root beats every
        # kept span, so a new span only enters by displacing the
        # fastest exemplar.
        self._exemplar_heap: List[Tuple[float, int, object]] = []
        self._exemplar_seq = 0

    # -- ingestion (tracer-facing) -------------------------------------

    def histogram(self, op: str) -> Histogram:
        """The histogram for ``op`` (created on first use)."""
        histogram = self.histograms.get(op)
        if histogram is None:
            histogram = self.histograms[op] = Histogram()
        return histogram

    def record_op(self, op: str, us: float) -> None:
        """Record one operation's simulated latency."""
        self.histogram(op).record(us)

    def offer_exemplar(self, span) -> None:
        """Keep ``span`` iff it ranks among the top-K slowest so far."""
        if self.exemplar_capacity <= 0:
            return
        self._exemplar_seq += 1
        entry = (span.total_us, self._exemplar_seq, span)
        if len(self._exemplar_heap) < self.exemplar_capacity:
            heapq.heappush(self._exemplar_heap, entry)
        elif span.total_us > self._exemplar_heap[0][0]:
            heapq.heapreplace(self._exemplar_heap, entry)

    def keep_sampled(self, span) -> None:
        """Append a 1-in-N sampled span to the bounded ring."""
        self.sampled.append(span)

    # -- aggregation ---------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` in: exact histogram merge, exemplars re-ranked."""
        for op, histogram in other.histograms.items():
            self.histogram(op).merge(histogram)
        for _, _, span in sorted(other._exemplar_heap):
            self.offer_exemplar(span)
        self.sampled.extend(other.sampled)
        self.windows.extend(other.windows)

    def snapshot(self) -> Dict[str, Histogram]:
        """Copies of every histogram, for later :meth:`delta_since`."""
        return {op: histogram.copy()
                for op, histogram in self.histograms.items()}

    def delta_since(self, baseline: Dict[str, Histogram]
                    ) -> Dict[str, Histogram]:
        """Per-op histograms of just the samples since ``baseline``."""
        out: Dict[str, Histogram] = {}
        for op, histogram in self.histograms.items():
            before = baseline.get(op)
            delta = histogram.since(before) if before else histogram.copy()
            if delta.count:
                out[op] = delta
        return out

    def reset(self) -> None:
        """Drop every histogram, exemplar, sampled span and window."""
        self.histograms.clear()
        self.sampled.clear()
        self.windows.clear()
        self._exemplar_heap.clear()
        self._exemplar_seq = 0

    # -- reading -------------------------------------------------------

    def exemplars(self) -> List[object]:
        """The kept slowest spans, slowest first."""
        return [span for _, _, span in
                sorted(self._exemplar_heap, reverse=True)]

    def ops(self) -> List[str]:
        """Op types with at least one recorded sample, sorted."""
        return sorted(op for op, histogram in self.histograms.items()
                      if histogram.count)

    def percentile_rows(self) -> List[Dict[str, float]]:
        """One row per op type: count/mean plus the report percentiles."""
        rows = []
        for op in self.ops():
            row: Dict[str, float] = {"op": op}
            row.update(self.histograms[op].percentiles())
            rows.append(row)
        return rows

    # -- exporters -----------------------------------------------------

    def to_json_dict(self, stats=None) -> Dict[str, object]:
        """Machine-readable dump (counters/stages included when given)."""
        doc: Dict[str, object] = {
            "histograms": {op: self.histograms[op].to_dict()
                           for op in self.ops()},
            "exemplars": [span.to_dict() for span in self.exemplars()],
            "sampled_spans": len(self.sampled),
            "windows": list(self.windows),
        }
        if stats is not None:
            doc["counters"] = dict(sorted(stats.counters.items()))
            doc["stage_us"] = {stage.value: us for stage, us in
                               sorted(stats.stage_us.items(),
                                      key=lambda item: item[0].value)}
        return doc

    def to_json(self, stats=None, indent: int = 2) -> str:
        """The JSON text of :meth:`to_json_dict`."""
        return json.dumps(self.to_json_dict(stats), indent=indent,
                          sort_keys=False)

    def to_prometheus(self, stats=None, prefix: str = "repro") -> str:
        """Prometheus text exposition format.

        Counters become ``<prefix>_<name>_total``, stage times become
        ``<prefix>_stage_us_total{stage=...}``, and every op histogram
        becomes a summary (``quantile`` series plus ``_count``/
        ``_sum``).
        """
        lines: List[str] = []
        if stats is not None:
            lines.append(f"# TYPE {prefix}_counter_total counter")
            for name, amount in sorted(stats.counters.items()):
                lines.append(f"{prefix}_counter_total"
                             f'{{name="{_prom(name)}"}} {amount:g}')
            lines.append(f"# TYPE {prefix}_stage_us_total counter")
            for stage, us in sorted(stats.stage_us.items(),
                                    key=lambda item: item[0].value):
                lines.append(f"{prefix}_stage_us_total"
                             f'{{stage="{_prom(stage.value)}"}} {us:g}')
        metric = f"{prefix}_op_latency_us"
        lines.append(f"# TYPE {metric} summary")
        for op in self.ops():
            histogram = self.histograms[op]
            label = _prom(op)
            for name, q in zip(percentile_keys(),
                               (0.50, 0.90, 0.99, 0.999)):
                value = histogram.percentile(q)
                lines.append(f'{metric}{{op="{label}",quantile="{q:g}"}} '
                             f"{value:g}")
            lines.append(f'{metric}_count{{op="{label}"}} {histogram.count}')
            lines.append(f'{metric}_sum{{op="{label}"}} {histogram.sum_us:g}')
        return "\n".join(lines) + "\n"


class MetricsWindow:
    """Windowed throughput/percentile snapshots for replay runs.

    ``tick()`` once per executed operation; every ``window_ops`` ticks
    a snapshot row is appended to the registry's ``windows``: operation
    count, simulated time elapsed in the window, derived throughput
    (ops per simulated second) and the window-local p50/p99 per op
    type.  ``clock`` supplies cumulative simulated microseconds
    (normally ``stats.total_time``; a callable so ShardedDB's ephemeral
    aggregate works too).
    """

    def __init__(self, registry: MetricsRegistry,
                 clock: Callable[[], float], window_ops: int) -> None:
        if window_ops < 1:
            raise ValueError(f"window_ops must be >= 1: {window_ops}")
        self.registry = registry
        self.clock = clock
        self.window_ops = window_ops
        self._ops = 0
        self._window_start_us = clock()
        self._baseline = registry.snapshot()

    def tick(self, n: int = 1) -> None:
        """Count ``n`` executed operations; close full windows."""
        self._ops += n
        while self._ops >= self.window_ops:
            self._close(self.window_ops)
            self._ops -= self.window_ops

    def finish(self) -> None:
        """Close a trailing partial window (no-op when empty)."""
        if self._ops:
            self._close(self._ops)
            self._ops = 0

    def _close(self, ops: int) -> None:
        now_us = self.clock()
        elapsed_us = now_us - self._window_start_us
        row: Dict[str, float] = {
            "window": float(len(self.registry.windows)),
            "ops": float(ops),
            "sim_us": elapsed_us,
            "ops_per_sim_sec": (ops * 1e6 / elapsed_us
                                if elapsed_us > 0 else 0.0),
        }
        for op, delta in self.registry.delta_since(self._baseline).items():
            row[f"{op}_p50_us"] = delta.percentile(0.50)
            row[f"{op}_p99_us"] = delta.percentile(0.99)
        self.registry.windows.append(row)
        self._window_start_us = now_us
        self._baseline = self.registry.snapshot()


#: The process-wide default registry.  Testbeds feed it unless given a
#: private one; the bench CLI resets it around each experiment and
#: renders its percentiles/waterfalls into every report.
_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The shared default :class:`MetricsRegistry`."""
    return _GLOBAL
