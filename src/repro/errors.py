"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
applications can catch one base class.  Subclasses mirror the major
subsystems: storage, the LSM-tree engine, learned indexes and the
benchmark harness.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class StorageError(ReproError):
    """A block-device level failure (unknown file, bad offset, ...)."""


class FileNotFoundInDeviceError(StorageError):
    """Raised when opening or reading a file that the device does not hold."""

    def __init__(self, name: str) -> None:
        super().__init__(f"no such file in block device: {name!r}")
        self.name = name


class CorruptionError(ReproError):
    """Raised when on-disk data fails a checksum or structural check."""


class ChecksumError(CorruptionError):
    """A CRC32C mismatch (or undecodable payload) in one table region.

    Carries enough context to name the damage: the file, the region
    (``header``, ``data``, ``block_index``, ``index``, ``bloom`` or
    ``footer``) and — for data blocks — the block number, so operators
    and tests can tell a poisoned block from a destroyed table.
    """

    def __init__(self, file: str, region: str, *, block: int = -1,
                 detail: str = "") -> None:
        where = f"{file}: {region}"
        if block >= 0:
            where += f" block {block}"
        message = f"checksum mismatch in {where}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)
        self.file = file
        self.region = region
        self.block = block


class TransientIOError(StorageError):
    """A read failed for a reason that a bounded retry may cure.

    Injected by :class:`repro.storage.faults.FaultyBlockDevice` to model
    the flaky-but-recoverable class of device errors (bus resets, SCSI
    timeouts).  Call sites wrap reads in a
    :class:`repro.storage.retry.RetryPolicy`; only when the policy is
    exhausted does the error escape to the caller.
    """


class DiskFullError(StorageError):
    """An append failed because the device ran out of space.

    The bytes that fit were written (a torn tail); the engine responds
    by entering read-only degraded mode — reads keep working, writes
    raise :class:`ReadOnlyModeError` until an operator intervenes.
    """


class PowerCutError(StorageError):
    """The simulated machine lost power; the device is gone until revived.

    After a power cut every operation on the faulty device raises this
    error.  Tests call ``FaultyBlockDevice.revive()`` and reopen the
    database to model the post-crash restart.
    """


class ReadOnlyModeError(ReproError):
    """A write was rejected because the database is in degraded mode.

    Raised by ``put``/``delete``/``write`` after the engine saw a
    :class:`DiskFullError` or a WAL-append failure.  ``reason`` names
    the triggering condition; reads remain fully available.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(f"database is read-only (degraded): {reason}")
        self.reason = reason


class QuarantinedBlockError(ChecksumError):
    """A lookup touched a data block that failed its checksum.

    Once a block fails CRC verification it is quarantined: evicted from
    both cache tiers, never re-admitted, and every later read that needs
    it fails fast with this error instead of re-reading poison.  Other
    blocks of the same table keep serving.  ``scrub()`` is the repair
    path.

    Subclasses :class:`ChecksumError` (region ``"data"``) because the
    root cause is a checksum failure — callers catching the broad class
    see quarantined reads too, while the narrow type tells the first
    failure from the fail-fast replays.
    """

    def __init__(self, file: str, block: int) -> None:
        CorruptionError.__init__(
            self,
            f"{file}: block {block} is quarantined after a checksum failure")
        self.file = file
        self.region = "data"
        self.block = block


class RequestRejectedError(ReproError):
    """Base class for overload-control rejections at the serving tier.

    These are *flow-control* outcomes, not corruption or crashes: the
    request gateway refused (or abandoned) work to protect latency for
    everything else.  Clients distinguish them from storage faults
    because the right reaction differs — back off, don't retry hot.
    """


class DeadlineExceededError(RequestRejectedError):
    """A request ran out of its simulated-microsecond deadline.

    Raised by the gateway when a queued request expires before service
    starts (expired-at-dequeue) and by the LSM read path's deadline
    checkpoints when an executing lookup's accumulated simulated time
    crosses the budget mid-operation.  ``deadline_us`` is the absolute
    simulated deadline; ``now_us`` is where the clock stood when the
    request was abandoned.
    """

    def __init__(self, deadline_us: float, now_us: float,
                 where: str = "") -> None:
        suffix = f" in {where}" if where else ""
        super().__init__(
            f"deadline exceeded{suffix}: now={now_us:.1f}us > "
            f"deadline={deadline_us:.1f}us")
        self.deadline_us = deadline_us
        self.now_us = now_us
        self.where = where


class ShedError(RequestRejectedError):
    """Admission control dropped a request because a queue was full.

    Depth-based shedding: when a shard's bounded FIFO already holds
    ``queue_depth`` requests, new arrivals are rejected immediately
    instead of queueing unboundedly — bounded queues are what keep p99
    finite under overload.  ``shard`` names the saturated queue and
    ``depth`` its configured bound.
    """

    def __init__(self, shard: int, depth: int) -> None:
        super().__init__(
            f"shard {shard} queue full (depth {depth}); request shed")
        self.shard = shard
        self.depth = depth


class CircuitOpenError(RequestRejectedError):
    """A request was failed fast by an open per-shard circuit breaker.

    The breaker opened because the shard's recent error rate crossed
    the threshold (or its ``health()`` degraded to read-only); until
    the cooldown elapses and half-open probes succeed, requests fail
    here — in microseconds — instead of queueing behind a sick shard.
    """

    def __init__(self, shard: int, reason: str = "") -> None:
        detail = f": {reason}" if reason else ""
        super().__init__(
            f"shard {shard} circuit breaker is open{detail}")
        self.shard = shard
        self.reason = reason


class ReplicationError(ReproError):
    """Base class for replication-layer failures.

    These are *replication-protocol* outcomes — a write could not reach
    enough replicas, or a hint queue overflowed — distinct from storage
    faults (the device is fine) and from overload rejections (the
    gateway admitted the request; the replica group refused it).
    """


class QuorumLostError(ReplicationError):
    """A write could not be acknowledged by enough replicas.

    Raised under the ``QUORUM``/``ALL`` ack policies when the number of
    live replicas that durably applied the frame is below the policy's
    requirement.  The write *is not* acked: depending on which replicas
    applied it before the failure it may survive or vanish, exactly like
    an in-doubt write in a real quorum system.  ``acked`` and
    ``needed`` report how far the frame got.
    """

    def __init__(self, shard: int, acked: int, needed: int) -> None:
        super().__init__(
            f"shard {shard}: write reached {acked}/{needed} replicas "
            f"required for acknowledgement")
        self.shard = shard
        self.acked = acked
        self.needed = needed


class HintQueueFullError(ReplicationError):
    """Hinted handoff ran out of buffer space for a dead replica.

    The primary retains a bounded suffix of the shipped log for each
    dead follower; when that queue is full the group applies
    backpressure by rejecting new writes *before* the primary applies
    them, so a rejected write is all-or-nothing across the group.
    """

    def __init__(self, shard: int, replica: int, limit: int) -> None:
        super().__init__(
            f"shard {shard}: hint queue for replica {replica} is full "
            f"({limit} frames); write rejected (backpressure)")
        self.shard = shard
        self.replica = replica
        self.limit = limit


class ReplicaUnavailableError(ReplicationError):
    """No live replica can serve the request.

    Raised when every replica of a group is dead (reads), or when a
    bounded-staleness follower read finds no follower within the lag
    bound and the primary is gone too.
    """

    def __init__(self, shard: int, detail: str = "") -> None:
        suffix = f": {detail}" if detail else ""
        super().__init__(f"shard {shard}: no replica available{suffix}")
        self.shard = shard


class IndexBuildError(ReproError):
    """Raised when a learned index cannot be constructed over the given keys."""


class IndexLookupError(ReproError):
    """Raised when an index is queried before it has been built."""


class InvalidOptionError(ReproError):
    """Raised when :class:`repro.lsm.options.Options` are inconsistent."""


class DatabaseClosedError(ReproError):
    """Raised when an operation is attempted on a closed database."""


class WorkloadError(ReproError):
    """Raised when a workload specification is invalid."""


class BenchmarkError(ReproError):
    """Raised when an experiment is configured inconsistently."""
