"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
applications can catch one base class.  Subclasses mirror the major
subsystems: storage, the LSM-tree engine, learned indexes and the
benchmark harness.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class StorageError(ReproError):
    """A block-device level failure (unknown file, bad offset, ...)."""


class FileNotFoundInDeviceError(StorageError):
    """Raised when opening or reading a file that the device does not hold."""

    def __init__(self, name: str) -> None:
        super().__init__(f"no such file in block device: {name!r}")
        self.name = name


class CorruptionError(ReproError):
    """Raised when on-disk data fails a checksum or structural check."""


class ChecksumError(CorruptionError):
    """A CRC32C mismatch (or undecodable payload) in one table region.

    Carries enough context to name the damage: the file, the region
    (``header``, ``data``, ``block_index``, ``index``, ``bloom`` or
    ``footer``) and — for data blocks — the block number, so operators
    and tests can tell a poisoned block from a destroyed table.
    """

    def __init__(self, file: str, region: str, *, block: int = -1,
                 detail: str = "") -> None:
        where = f"{file}: {region}"
        if block >= 0:
            where += f" block {block}"
        message = f"checksum mismatch in {where}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)
        self.file = file
        self.region = region
        self.block = block


class IndexBuildError(ReproError):
    """Raised when a learned index cannot be constructed over the given keys."""


class IndexLookupError(ReproError):
    """Raised when an index is queried before it has been built."""


class InvalidOptionError(ReproError):
    """Raised when :class:`repro.lsm.options.Options` are inconsistent."""


class DatabaseClosedError(ReproError):
    """Raised when an operation is attempted on a closed database."""


class WorkloadError(ReproError):
    """Raised when a workload specification is invalid."""


class BenchmarkError(ReproError):
    """Raised when an experiment is configured inconsistently."""
