"""Durable persistence: the MANIFEST version log and model sidecars.

The paper's testbed never restarts mid-experiment, so the seed engine
recovered by rescanning every ``sst-*`` file and retraining all learned
indexes — an O(data · retrain) restart.  This package converts recovery
to O(manifest):

* :class:`~repro.persist.manifest.Manifest` — an append-only,
  CRC-framed *version-edit log* (LevelDB's MANIFEST, scaled to this
  engine).  Every flush, compaction and bulk ingest appends one atomic
  :class:`~repro.persist.manifest.VersionEdit`; replay with torn-tail
  tolerance reconstructs the exact live file layout without touching a
  single data block.
* :class:`~repro.persist.models.ModelStore` — durable learned-index
  model files (``mdl-*`` sidecars, written via the type-tagged
  :mod:`repro.indexes.codec` payloads).  Per-table models are already
  embedded in their table files; the sidecars give *level-granularity*
  models — which previously had no on-disk home and were retrained from
  a full key reload on every open — the same pay-training-once
  lifecycle.

:meth:`repro.lsm.db.LSMTree.reopen` consumes both: when a manifest is
present, recovery opens exactly the files it names, deserialises models
instead of retraining them, and garbage-collects anything a crash left
behind.
"""

from repro.persist.manifest import (
    MANIFEST_NAME,
    Manifest,
    ManifestState,
    VersionEdit,
)
from repro.persist.models import MODEL_FILE_PREFIX, ModelStore

__all__ = [
    "MANIFEST_NAME",
    "Manifest",
    "ManifestState",
    "VersionEdit",
    "MODEL_FILE_PREFIX",
    "ModelStore",
]
