"""Durable learned-index models: the ``mdl-*`` sidecar files.

Per-*table* models already live inside their table file (the
type-tagged codec payload between the data and bloom segments, offsets
in the footer), so they survive restarts for free.  Per-*level* models
(:mod:`repro.lsm.level_index`) had no on-disk home: the seed engine
retrained them from a full key reload on every open — the dominant
restart cost the paper's Table 1 / Figure 9 attribute to training.

A :class:`ModelStore` gives level models the same lifecycle: whenever a
level model is (re)trained, its serialized payload — the exact bytes
:func:`repro.indexes.registry.deserialize_index` reconstructs from — is
written to a fresh ``mdl-L<level>-<epoch>`` file::

    sidecar := crc32(u32) | payload_len(u32) | payload

The manifest's model-pointer records name the live sidecar per level;
superseded sidecars are deleted only after the pointing edit commits,
and recovery garbage-collects any sidecar no pointer names.  A missing
or corrupt sidecar is never fatal: :meth:`ModelStore.load` returns
``None`` and the caller falls back to retraining that one level.
"""

from __future__ import annotations

from typing import List, Optional

from repro.storage.block_device import BlockDevice
from repro.storage.cost_model import CostModel
from repro.storage.framing import frame, parse_single_frame
from repro.storage.stats import (
    MODEL_BYTES_PERSISTED,
    MODELS_LOADED,
    MODELS_PERSISTED,
    Stage,
    Stats,
)

#: Every sidecar name starts with this (recovery GC keys off it).
MODEL_FILE_PREFIX = "mdl-"


class ModelStore:
    """Writes, loads and retires ``mdl-*`` sidecars on one device."""

    def __init__(self, device: BlockDevice, *,
                 stats: Optional[Stats] = None,
                 cost: Optional[CostModel] = None) -> None:
        self.device = device
        self.stats = stats
        self.cost = cost
        # Resume the epoch counter past any surviving sidecar so names
        # never collide across restarts.
        self._epoch = 0
        for name in device.list_files():
            if name.startswith(MODEL_FILE_PREFIX):
                try:
                    self._epoch = max(self._epoch,
                                      int(name.rsplit("-", 1)[-1]))
                except ValueError:
                    continue

    # -- naming --------------------------------------------------------

    @staticmethod
    def _name(level: int, epoch: int) -> str:
        return f"{MODEL_FILE_PREFIX}L{level:02d}-{epoch:06d}"

    def list_sidecars(self) -> List[str]:
        """Every ``mdl-*`` file currently on the device."""
        return [name for name in self.device.list_files()
                if name.startswith(MODEL_FILE_PREFIX)]

    # -- writing -------------------------------------------------------

    def save(self, level: int, payload: bytes) -> str:
        """Persist one serialized model; returns the sidecar name.

        The write lands in a *new* file (never overwriting the live
        sidecar), so the previous model stays valid until the manifest
        edit repointing the level commits.
        """
        self._epoch += 1
        name = self._name(level, self._epoch)
        self.device.create(name)
        self.device.append(name, frame(payload))
        if self.stats is not None:
            self.stats.add(MODELS_PERSISTED)
            self.stats.add(MODEL_BYTES_PERSISTED, len(payload))
        return name

    def delete(self, name: str) -> None:
        """Drop a superseded sidecar (missing files are ignored)."""
        if self.device.exists(name):
            self.device.delete(name)

    # -- loading -------------------------------------------------------

    def load(self, name: Optional[str]) -> Optional[bytes]:
        """Read one sidecar's payload; None when absent or corrupt.

        Corruption is detected by the CRC, so a torn sidecar write
        degrades to a retrain of that level rather than a wrong model.
        Reads bypass the block cache: a model is deserialized once at
        open and the raw bytes never read again.
        """
        if not name or not self.device.exists(name):
            return None
        size = self.device.size(name)
        data = self.device.pread_uncached(name, 0, size)
        payload = parse_single_frame(data)
        if payload is None:
            return None
        if self.stats is not None:
            self.stats.add(MODELS_LOADED)
            if self.cost is not None:
                nblocks = self.cost.blocks_spanned(0, size)
                self.stats.charge(Stage.RECOVERY, self.cost.read_us(nblocks))
        return payload
