"""The MANIFEST: a crash-safe, append-only version-edit log.

Every structural change to the tree — a flush adding an L0 file, a
compaction atomically swapping inputs for outputs, a bulk ingest, a
model retrain moving a level's ``mdl-*`` pointer — is recorded as one
:class:`VersionEdit` inside one CRC-framed record::

    frame   := crc32(u32) | payload_len(u32) | payload
    payload := ( tag(u8) field... )*            # codec-encoded fields

Because an edit occupies exactly one frame, commits are atomic: a torn
append fails its CRC and replay stops at the last intact record,
exactly like the WAL.  The ordering discipline that makes this safe is
enforced by the callers: *new files are written before the edit that
references them, and obsolete files are deleted only after the edit
that drops them* — so any replayable prefix of the log names only files
that exist, and a crash can only leave unreferenced garbage (which
recovery garbage-collects), never dangling references.

The log is compacted by :meth:`Manifest.rewrite`: the full state is
written as a single snapshot edit into a temporary file which is then
atomically renamed over the manifest, so a crash mid-rewrite leaves the
old log untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CorruptionError
from repro.indexes import codec
from repro.storage.block_device import BlockDevice
from repro.storage.cost_model import CostModel
from repro.storage.framing import frame, parse_frames
from repro.storage.stats import (
    MANIFEST_EDITS,
    MANIFEST_EDITS_REPLAYED,
    MANIFEST_SNAPSHOTS,
    MANIFEST_TORN_TAILS,
    Stage,
    Stats,
)

#: Device file name of the version-edit log.
MANIFEST_NAME = "manifest"
#: Scratch name used while rewriting (renamed over MANIFEST_NAME).
MANIFEST_TMP_NAME = "manifest.tmp"

# Field tags inside one edit payload (LevelDB's kComparator/kLogNumber/
# kNewFile scheme, reduced to what this engine needs).
_TAG_KIND = 1
_TAG_NEXT_FILE_NUMBER = 2
_TAG_LAST_SEQ = 3
_TAG_ADD_FILE = 4          # legacy: flat-format (v1) files, no format field
_TAG_DELETE_FILE = 5
_TAG_MODEL_POINTER = 6
_TAG_ADD_FILE_V2 = 7       # carries the table format_version

#: Table format versions; these mirror ``repro.lsm.sstable.FORMAT_*``
#: (duplicated here because persist sits below lsm in the layering —
#: a structural test asserts the two stay equal).  Legacy ``ADD_FILE``
#: records predate the block format, so they decode as FLAT: that is
#: how a manifest written before this change correctly labels its
#: files, and why the scan-fallback snapshot must record each table's
#: *actual* footer format rather than assuming the current one.
TABLE_FORMAT_FLAT = 1
TABLE_FORMAT_BLOCKED = 2


@dataclass
class VersionEdit:
    """One atomic change to the version: the unit of manifest commit.

    ``adds`` holds ``(level, number, name, format_version)`` tuples —
    the format field lets recovery detect legacy flat-format files
    without probing footers; ``deletes`` hold ``(level, number, name)``
    triples; ``model_pointers`` maps a level to the ``mdl-*`` sidecar
    holding its current learned model (the empty string clears the
    pointer, i.e. invalidates any previously persisted model for that
    level).
    """

    kind: str = ""
    next_file_number: Optional[int] = None
    last_seq: Optional[int] = None
    adds: List[Tuple[int, int, str, int]] = field(default_factory=list)
    deletes: List[Tuple[int, int, str]] = field(default_factory=list)
    model_pointers: Dict[int, str] = field(default_factory=dict)

    # -- construction helpers ------------------------------------------

    def add_file(self, level: int, number: int, name: str,
                 format_version: int = TABLE_FORMAT_BLOCKED) -> None:
        """Record that ``name`` (file ``number``) joined ``level``."""
        self.adds.append((level, number, name, format_version))

    def delete_file(self, level: int, number: int, name: str) -> None:
        """Record that ``name`` (file ``number``) left ``level``."""
        self.deletes.append((level, number, name))

    def point_model(self, level: int, sidecar: str) -> None:
        """Point ``level`` at ``sidecar`` ("" invalidates the model)."""
        self.model_pointers[level] = sidecar

    @property
    def is_empty(self) -> bool:
        """True when the edit carries no information at all."""
        return (not self.adds and not self.deletes
                and not self.model_pointers
                and self.next_file_number is None
                and self.last_seq is None)

    # -- wire format ---------------------------------------------------

    def encode(self) -> bytes:
        """Serialise to the tagged payload format."""
        writer = codec.Writer()
        if self.kind:
            writer.put_u8(_TAG_KIND)
            writer.put_bytes(self.kind.encode("utf-8"))
        if self.next_file_number is not None:
            writer.put_u8(_TAG_NEXT_FILE_NUMBER)
            writer.put_u64(self.next_file_number)
        if self.last_seq is not None:
            writer.put_u8(_TAG_LAST_SEQ)
            writer.put_u64(self.last_seq)
        for level, number, name, format_version in self.adds:
            writer.put_u8(_TAG_ADD_FILE_V2)
            writer.put_u32(level)
            writer.put_u64(number)
            writer.put_u32(format_version)
            writer.put_bytes(name.encode("utf-8"))
        for level, number, name in self.deletes:
            writer.put_u8(_TAG_DELETE_FILE)
            writer.put_u32(level)
            writer.put_u64(number)
            writer.put_bytes(name.encode("utf-8"))
        for level in sorted(self.model_pointers):
            writer.put_u8(_TAG_MODEL_POINTER)
            writer.put_u32(level)
            writer.put_bytes(self.model_pointers[level].encode("utf-8"))
        return writer.getvalue()

    @classmethod
    def decode(cls, payload: bytes) -> "VersionEdit":
        """Inverse of :meth:`encode`."""
        reader = codec.Reader(payload)
        edit = cls()
        while not reader.exhausted():
            tag = reader.get_u8()
            if tag == _TAG_KIND:
                edit.kind = reader.get_bytes().decode("utf-8")
            elif tag == _TAG_NEXT_FILE_NUMBER:
                edit.next_file_number = reader.get_u64()
            elif tag == _TAG_LAST_SEQ:
                edit.last_seq = reader.get_u64()
            elif tag == _TAG_ADD_FILE:
                # Legacy record: written before tables carried a format
                # field, i.e. while the flat format was current.
                level = reader.get_u32()
                number = reader.get_u64()
                edit.adds.append(
                    (level, number, reader.get_bytes().decode("utf-8"),
                     TABLE_FORMAT_FLAT))
            elif tag == _TAG_ADD_FILE_V2:
                level = reader.get_u32()
                number = reader.get_u64()
                format_version = reader.get_u32()
                edit.adds.append(
                    (level, number, reader.get_bytes().decode("utf-8"),
                     format_version))
            elif tag == _TAG_DELETE_FILE:
                level = reader.get_u32()
                number = reader.get_u64()
                edit.deletes.append(
                    (level, number, reader.get_bytes().decode("utf-8")))
            elif tag == _TAG_MODEL_POINTER:
                level = reader.get_u32()
                edit.model_pointers[level] = (
                    reader.get_bytes().decode("utf-8"))
            else:
                raise CorruptionError(f"unknown manifest edit tag: {tag}")
        return edit


@dataclass
class ManifestState:
    """The accumulated result of replaying a manifest prefix."""

    #: file number -> (level, device file name, table format_version)
    #: for every live file.
    files: Dict[int, Tuple[int, str, int]] = field(default_factory=dict)
    #: level -> live ``mdl-*`` sidecar name.
    model_pointers: Dict[int, str] = field(default_factory=dict)
    next_file_number: int = 0
    last_seq: int = 0
    edits_applied: int = 0
    #: Replay found unreplayable bytes after the last intact record.
    #: The holder of the log must truncate them (rewrite a snapshot)
    #: before appending again — an append landing after torn bytes
    #: would be invisible to every future replay.
    torn: bool = False

    def apply(self, edit: VersionEdit) -> None:
        """Fold one edit into the state (replay step)."""
        for level, number, name in edit.deletes:
            if number not in self.files:
                raise CorruptionError(
                    f"manifest deletes unknown file {name} (#{number})")
            self.files.pop(number)
        for level, number, name, format_version in edit.adds:
            if number in self.files:
                raise CorruptionError(
                    f"manifest adds duplicate file {name} (#{number})")
            self.files[number] = (level, name, format_version)
        for level, sidecar in edit.model_pointers.items():
            if sidecar:
                self.model_pointers[level] = sidecar
            else:
                self.model_pointers.pop(level, None)
        if edit.next_file_number is not None:
            self.next_file_number = max(self.next_file_number,
                                        edit.next_file_number)
        if self.files:
            self.next_file_number = max(self.next_file_number,
                                        max(self.files))
        if edit.last_seq is not None:
            self.last_seq = max(self.last_seq, edit.last_seq)
        self.edits_applied += 1

    @property
    def is_empty(self) -> bool:
        """True when no intact edit was replayed."""
        return self.edits_applied == 0

    def live_names(self) -> set:
        """Every device file name the state references (data + models)."""
        names = {name for _, name, _ in self.files.values()}
        names.update(sidecar for sidecar in self.model_pointers.values())
        return names


class Manifest:
    """The append-only version log of one database on one device."""

    def __init__(self, device: BlockDevice, *,
                 stats: Optional[Stats] = None,
                 cost: Optional[CostModel] = None,
                 name: str = MANIFEST_NAME) -> None:
        self.device = device
        self.stats = stats
        self.cost = cost
        self.name = name

    # -- queries -------------------------------------------------------

    def exists(self) -> bool:
        """True when the log file is present on the device."""
        return self.device.exists(self.name)

    def size_bytes(self) -> int:
        """Current log length (0 when absent)."""
        return self.device.size(self.name) if self.exists() else 0

    # -- writing -------------------------------------------------------

    def append(self, edit: VersionEdit) -> None:
        """Durably append one edit as a single CRC frame."""
        if not self.device.exists(self.name):
            self.device.create(self.name)
        self.device.append(self.name, frame(edit.encode()))
        if self.stats is not None:
            self.stats.add(MANIFEST_EDITS)

    def rewrite(self, snapshot: VersionEdit) -> None:
        """Compact the log to one snapshot edit, atomically.

        The snapshot is written to a scratch file and renamed over the
        manifest, so a crash at any point leaves either the old log or
        the new one — never a half-written manifest.
        """
        tmp = MANIFEST_TMP_NAME if self.name == MANIFEST_NAME \
            else self.name + ".tmp"
        self.device.create(tmp)
        self.device.append(tmp, frame(snapshot.encode()))
        self.device.rename(tmp, self.name)
        if self.stats is not None:
            self.stats.add(MANIFEST_SNAPSHOTS)

    # -- replay --------------------------------------------------------

    def replay(self) -> ManifestState:
        """Reconstruct the state from every intact record.

        A torn or corrupt tail (short frame, CRC mismatch) ends the
        replay silently: the state reflects the longest intact prefix
        and ``state.torn`` is set so the caller can truncate the
        garbage (via :meth:`rewrite`) before appending again.  Replay
        reads bypass any block-cache tier — the log is read once at
        open and never again.
        """
        state = ManifestState()
        if not self.exists():
            return state
        data = self.device.pread_uncached(self.name, 0,
                                          self.device.size(self.name))
        if self.stats is not None and self.cost is not None:
            nblocks = self.cost.blocks_spanned(0, len(data))
            self.stats.charge(Stage.RECOVERY, self.cost.read_us(nblocks))
        payloads, torn = parse_frames(data)
        for payload in payloads:
            state.apply(VersionEdit.decode(payload))
        state.torn = torn
        if self.stats is not None:
            self.stats.add(MANIFEST_EDITS_REPLAYED, state.edits_applied)
            if torn:
                self.stats.add(MANIFEST_TORN_TAILS)
        return state
