"""Per-shard replication: log shipping, failover, catch-up, hints.

Every logical shard of a :class:`~repro.service.sharded.ShardedDB` can
be a :class:`ReplicaGroup` of R independent
:class:`~repro.lsm.db.LSMTree` instances on separate (fault-injectable)
devices.  The group duck-types the single-tree surface the sharding and
gateway layers already use, so replication slots under both without
changing a call site.  The protocol, all in deterministic simulated
time:

* **Log shipping** — every acknowledged write becomes one *frame* (the
  same unit as a WAL group commit) appended to the primary's outgoing
  log and applied on followers through their own WAL, so each replica
  is independently durable.  The ack policy decides when the client
  hears back: :attr:`AckPolicy.ASYNC` acks after the primary alone
  (followers catch up at heartbeat ticks — fastest, loses the
  unshipped suffix when the primary dies), :attr:`AckPolicy.QUORUM`
  after a majority, :attr:`AckPolicy.ALL` after every live replica.
* **Failure detection** — a deterministic heartbeat on the shared
  :class:`VirtualClock`: every :meth:`ReplicaGroup.tick` probes each
  replica's device; a replica whose device stays powered off for
  ``heartbeat_timeout_us`` is declared dead.  A ``PowerCutError``
  surfacing on the serving path marks the replica dead immediately
  (the error is unambiguous); promotion still waits for the tick, so
  failover timing is a pure function of the schedule.
* **Promotion** — on primary death (or a primary wedged read-only) the
  most-caught-up live follower is promoted.  Promotion *reopens* the
  follower manifest-driven, so the model-reload cost of the configured
  index granularity is measured, not skipped — failover time lands in
  the ``repl.failover`` histogram as detection wait plus recovery
  work.  Frames the dead primary never shipped are truncated and
  counted lost (``repl.frames_lost``); the old primary rejoins
  diverged and needs a full resync.
* **Hinted handoff** — frames a dead follower misses are retained (its
  hints) up to ``hint_queue_frames``; past that the group rejects new
  writes with :class:`~repro.errors.HintQueueFullError` *before* the
  primary applies them, so backpressured writes are all-or-nothing.
  A revived replica replays its hinted suffix to catch up.
* **Bounded-staleness follower reads** — while no primary is serving,
  reads fall to the most-caught-up live follower provided its lag is
  within ``max_staleness_frames``; the group keeps answering reads
  straight through a failover.
* **Anti-entropy** — :meth:`ReplicaGroup.anti_entropy` scrubs every
  replica (reusing the single-tree repair path) and then diffs each
  follower against the primary, rewriting divergent entries — the
  repair story for a healed medium whose frames are long truncated.

Everything charges the group's single shared
:class:`~repro.storage.stats.Stats` registry (``repl.*`` counters,
ship costs under the write-path stage), so gateway service-time deltas
and deadline tokens see one simulated timeline for the whole group.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import (
    DatabaseClosedError,
    HintQueueFullError,
    InvalidOptionError,
    PowerCutError,
    QuorumLostError,
    ReadOnlyModeError,
    ReplicaUnavailableError,
    ReproError,
)
from repro.lsm.db import LSMTree
from repro.lsm.options import Options
from repro.lsm.record import KIND_TOMBSTONE, KIND_VALUE
from repro.lsm.scrub import ScrubReport
from repro.obs.registry import MetricsRegistry
from repro.storage.block_device import BlockDevice, MemoryBlockDevice
from repro.storage.stats import (
    DEGRADED_WRITES_REJECTED,
    REPL_ANTIENTROPY_REPAIRED,
    REPL_ANTIENTROPY_RUNS,
    REPL_BACKPRESSURE,
    REPL_CATCHUP_FRAMES,
    REPL_FRAMES_LOST,
    REPL_FRAMES_SHIPPED,
    REPL_HEARTBEAT_MISSES,
    REPL_HEARTBEATS,
    REPL_HINTS_QUEUED,
    REPL_HINTS_REPLAYED,
    REPL_PROMOTIONS,
    REPL_RECORDS_LOST,
    REPL_RECORDS_SHIPPED,
    REPL_REPLICA_DEATHS,
    REPL_RESYNCS,
    REPL_STALE_READS,
    REPL_WRITES_ACKED,
    REPL_WRITES_REJECTED,
    Stage,
    Stats,
)

#: Histogram the group records failover times into (detection wait plus
#: the promoted follower's measured reopen/model-reload work).
FAILOVER_OP = "repl.failover"

#: Replica roles (health/report vocabulary).
ROLE_PRIMARY = "primary"
ROLE_FOLLOWER = "follower"

#: Smallest key a full-table dump starts from (keys are signed 64-bit
#: in the wire format; workloads use non-negative ints).
_MIN_KEY = -(1 << 63)


class VirtualClock:
    """Monotone simulated-microsecond clock; the only time source here.

    Shared between the gateway's event loop and every replica group's
    failure detector, so "when did the failure become observable" and
    "when did promotion complete" live on one timeline.
    """

    def __init__(self, now_us: float = 0.0) -> None:
        self.now_us = now_us

    def advance_to(self, t_us: float) -> None:
        """Move time forward (never backward) to ``t_us``."""
        if t_us > self.now_us:
            self.now_us = t_us


class AckPolicy(str, enum.Enum):
    """When a replicated write is acknowledged to the client."""

    #: Primary-only durability; followers catch up at heartbeat ticks.
    ASYNC = "async"
    #: A majority of the group (primary included) applied the frame.
    QUORUM = "quorum"
    #: Every replica of the group applied the frame.
    ALL = "all"

    def acks_needed(self, replicas: int) -> int:
        """Replicas that must durably apply a frame before the ack."""
        if self is AckPolicy.ASYNC:
            return 1
        if self is AckPolicy.QUORUM:
            return replicas // 2 + 1
        return replicas

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ReplicationConfig:
    """Replication knobs for every shard of a :class:`ShardedDB`."""

    #: Copies per shard (1 = no redundancy, the control arm).
    replication_factor: int = 3
    #: When a write is acknowledged (see :class:`AckPolicy`).
    ack: AckPolicy = AckPolicy.QUORUM
    #: Cadence of failure-detector probes and async shipping.
    heartbeat_interval_us: float = 5_000.0
    #: A replica unreachable this long is declared dead.
    heartbeat_timeout_us: float = 15_000.0
    #: Hinted-handoff bound: frames retained for one dead replica;
    #: writes that would exceed it are rejected (backpressure).
    hint_queue_frames: int = 256
    #: Follower reads are refused past this many frames of lag.
    max_staleness_frames: int = 64
    #: Simulated network cost of shipping one frame to one follower.
    ship_frame_us: float = 120.0
    #: Marginal per-record cost on top of :attr:`ship_frame_us`.
    ship_record_us: float = 2.0

    def validate(self) -> None:
        """Reject inconsistent knobs with :class:`InvalidOptionError`."""
        if self.replication_factor < 1:
            raise InvalidOptionError(
                f"replication_factor must be >= 1, got "
                f"{self.replication_factor}")
        if self.heartbeat_interval_us <= 0:
            raise InvalidOptionError("heartbeat_interval_us must be > 0")
        if self.heartbeat_timeout_us < self.heartbeat_interval_us:
            raise InvalidOptionError(
                "heartbeat_timeout_us must be >= heartbeat_interval_us")
        if self.hint_queue_frames < 1:
            raise InvalidOptionError("hint_queue_frames must be >= 1")
        if self.max_staleness_frames < 0:
            raise InvalidOptionError("max_staleness_frames must be >= 0")
        if self.ship_frame_us < 0 or self.ship_record_us < 0:
            raise InvalidOptionError("ship costs must be >= 0")


class Replica:
    """One copy of a shard: a tree, its device, and detector state."""

    __slots__ = ("index", "tree", "device", "role", "alive", "applied_lsn",
                 "last_ok_us", "suspect_since_us", "diverged",
                 "crash_looping")

    def __init__(self, index: int, tree: LSMTree,
                 device: BlockDevice) -> None:
        self.index = index
        self.tree = tree
        #: The device handed in at construction (the fault-injection
        #: wrapper when there is one) — the probe target and the handle
        #: reopens recover from.  ``tree.device`` may be a cache wrapper
        #: above it.
        self.device = device
        self.role = ROLE_FOLLOWER
        self.alive = True
        #: Highest frame LSN durably applied by this replica.  Bumped
        #: only after the replica's own WAL accepted the frame, so it
        #: never overstates what a post-crash reopen will recover.
        self.applied_lsn = 0
        self.last_ok_us = 0.0
        self.suspect_since_us: Optional[float] = None
        #: True when this replica applied frames the group later
        #: truncated (an old primary's unshipped suffix); hints cannot
        #: heal it — only a full resync from the current primary.
        self.diverged = False
        #: True when restarting this replica did not clear its
        #: read-only wound (e.g. a full disk); the detector stops
        #: restart-looping it until anti-entropy or a revive.
        self.crash_looping = False

    @property
    def powered_off(self) -> bool:
        """Whether the failure detector's probe sees a dead device."""
        return bool(getattr(self.device, "powered_off", False))


class ReplicaGroup:
    """R replicated LSM-trees serving one shard as a single facade.

    Duck-types the :class:`~repro.lsm.db.LSMTree` surface that
    :class:`~repro.service.sharded.ShardedDB` and
    :class:`~repro.service.gateway.Gateway` touch — reads and writes
    route through the replication protocol transparently.  All R trees
    share one :class:`~repro.storage.stats.Stats`, so the group has a
    single simulated timeline.
    """

    def __init__(self, shard: int, options: Options,
                 config: ReplicationConfig,
                 devices: Optional[Sequence[BlockDevice]] = None,
                 clock: Optional[VirtualClock] = None) -> None:
        config.validate()
        self.shard = shard
        if not options.enable_wal:
            # Replication's durability story rests on every replica
            # being *independently* durable: an acked frame must
            # survive that replica's own power cut, which only the WAL
            # provides.  The paper's closed-loop default leaves the WAL
            # off; a replica group is precisely the deployment where it
            # cannot be.
            options = options.with_changes(enable_wal=True)
        self.options = options
        self.config = config
        self.clock = clock if clock is not None else VirtualClock()
        self.stats = Stats()
        #: Group-local histograms (``repl.failover``); merged into the
        #: fleet metrics by :meth:`ShardedDB.metrics`.
        self.registry = MetricsRegistry()
        factor = config.replication_factor
        if devices is not None and len(devices) != factor:
            raise InvalidOptionError(
                f"shard {shard}: got {len(devices)} devices for "
                f"replication factor {factor}")
        self.replicas: List[Replica] = []
        for i in range(factor):
            device = (devices[i] if devices is not None
                      else MemoryBlockDevice(block_size=options.block_size))
            tree = LSMTree(options, device=device, stats=self.stats)
            self.replicas.append(Replica(i, tree, device))
        self.replicas[0].role = ROLE_PRIMARY
        self._primary_index: Optional[int] = 0
        #: Retained outgoing log: ``(lsn, ops)`` frames not yet applied
        #: by every non-diverged replica (live followers behind async
        #: shipping, dead followers' hints).  LSNs are contiguous.
        self._frames: Deque[Tuple[int, Tuple[Tuple[int, int, bytes], ...]]] \
            = deque()
        self._next_lsn = 1
        #: When the current primary's failure first became observable
        #: (first missed heartbeat or first serving-path power cut);
        #: the failover histogram measures from here.
        self._failure_observed_us: Optional[float] = None
        #: When the detector last ran; :meth:`tick` self-limits to the
        #: heartbeat cadence so callers can tick every operation.
        self._last_tick_us: Optional[float] = None
        self._deadline = None
        self._closed = False

    # -- role/state introspection --------------------------------------

    def _primary(self) -> Optional[Replica]:
        if self._primary_index is None:
            return None
        return self.replicas[self._primary_index]

    @property
    def primary_index(self) -> Optional[int]:
        """Index of the current primary replica (None = headless)."""
        return self._primary_index

    def last_lsn(self) -> int:
        """LSN of the newest acknowledged-or-attempted frame."""
        return self._next_lsn - 1

    def lag_frames(self, replica: Replica) -> int:
        """How many frames ``replica`` trails the group's log head."""
        return max(0, self.last_lsn() - replica.applied_lsn)

    @property
    def read_only(self) -> bool:
        """True while no live, writable primary is serving."""
        primary = self._primary()
        return (primary is None or not primary.alive
                or primary.tree.read_only)

    @property
    def read_only_reason(self) -> Optional[str]:
        """Why writes are refused (None while a primary serves)."""
        primary = self._primary()
        if primary is None:
            return "no promotable replica (group headless)"
        if not primary.alive:
            return "primary dead; awaiting failover"
        return primary.tree.read_only_reason

    @property
    def deadline(self):
        """The active deadline token (gateway-attached, per request)."""
        return self._deadline

    @deadline.setter
    def deadline(self, token) -> None:
        self._deadline = token
        for replica in self.replicas:
            replica.tree.deadline = token

    def _check_open(self) -> None:
        if self._closed:
            raise DatabaseClosedError("operation on closed ReplicaGroup")

    def _check_writable(self) -> None:
        primary = self._primary()
        if primary is None or not primary.alive:
            self.stats.add(DEGRADED_WRITES_REJECTED)
            raise ReadOnlyModeError(self.read_only_reason)
        primary.tree._check_writable()

    # -- failure observation -------------------------------------------

    def _observe_failure(self, replica: Replica) -> None:
        """A serving-path error proved ``replica``'s device is gone."""
        if replica.role == ROLE_PRIMARY and self._failure_observed_us is None:
            self._failure_observed_us = self.clock.now_us
        if replica.alive:
            replica.alive = False
            replica.suspect_since_us = self.clock.now_us
            self.stats.add(REPL_REPLICA_DEATHS)

    # -- write path ----------------------------------------------------

    def put(self, key: int, value: bytes) -> None:
        """Insert or overwrite ``key`` through the replication log."""
        self._commit(((KIND_VALUE, key, bytes(value)),))

    def delete(self, key: int) -> None:
        """Delete ``key`` (a replicated tombstone frame)."""
        self._commit(((KIND_TOMBSTONE, key, b""),))

    def write(self, batch) -> int:
        """Apply a :class:`WriteBatch` as one replicated frame."""
        ops = tuple(batch)
        if not ops:
            return 0
        return self._commit(ops)

    def _ship_eligible(self, replica: Replica) -> bool:
        """Can frames be applied on ``replica`` right now?"""
        return (replica.alive and not replica.diverged
                and not replica.tree.read_only
                and replica.index != self._primary_index)

    def _hinted(self, replica: Replica) -> bool:
        """Is ``replica`` accumulating hints (expected to return)?"""
        return (replica.index != self._primary_index
                and not replica.diverged
                and not self._ship_eligible(replica))

    def _commit(self, ops: Tuple[Tuple[int, int, bytes], ...]) -> int:
        self._check_open()
        primary = self._primary()
        if primary is None or not primary.alive:
            self.stats.add(DEGRADED_WRITES_REJECTED)
            raise ReadOnlyModeError(self.read_only_reason)
        # Backpressure BEFORE the primary applies anything: a write the
        # hint bound rejects must be all-or-nothing across the group.
        for replica in self.replicas:
            if not self._hinted(replica):
                continue
            if self.lag_frames(replica) + 1 > self.config.hint_queue_frames:
                self.stats.add(REPL_BACKPRESSURE)
                self.stats.add(REPL_WRITES_REJECTED)
                raise HintQueueFullError(self.shard, replica.index,
                                         self.config.hint_queue_frames)
        try:
            applied = primary.tree.write(list(ops))
        except ReadOnlyModeError:
            # The primary wedged mid-commit (disk full, torn WAL, power
            # cut).  If the device itself is gone the failure is
            # unambiguous — mark the replica dead now; either way note
            # when the failure became observable so the failover
            # histogram starts here, not at the next tick.
            if primary.powered_off:
                self._observe_failure(primary)
            elif self._failure_observed_us is None:
                self._failure_observed_us = self.clock.now_us
            self.stats.add(REPL_WRITES_REJECTED)
            raise
        lsn = self._next_lsn
        self._next_lsn += 1
        self._frames.append((lsn, ops))
        primary.applied_lsn = lsn
        acks = 1
        inline = self.config.ack is not AckPolicy.ASYNC
        for replica in self.replicas:
            if replica.index == primary.index:
                continue
            if self._hinted(replica):
                self.stats.add(REPL_HINTS_QUEUED)
                continue
            if not self._ship_eligible(replica):
                continue
            if inline:
                if self._ship_frame(replica, lsn, ops):
                    acks += 1
            # ASYNC: the frame waits for the next heartbeat tick.
        needed = self.config.ack.acks_needed(len(self.replicas))
        if acks < needed:
            self.stats.add(REPL_WRITES_REJECTED)
            raise QuorumLostError(self.shard, acks, needed)
        self.stats.add(REPL_WRITES_ACKED)
        self._truncate_frames()
        return applied

    def _ship_frame(self, replica: Replica, lsn: int,
                    ops: Tuple[Tuple[int, int, bytes], ...]) -> bool:
        """Apply one frame on a follower; False when it failed."""
        assert replica.applied_lsn == lsn - 1, \
            f"out-of-order ship: {replica.applied_lsn} -> {lsn}"
        self.stats.charge(Stage.WRITE_PATH,
                          self.config.ship_frame_us
                          + self.config.ship_record_us * len(ops))
        try:
            replica.tree.write(list(ops))
        except ReadOnlyModeError:
            if replica.powered_off:
                self._observe_failure(replica)
            return False
        except PowerCutError:
            self._observe_failure(replica)
            return False
        replica.applied_lsn = lsn
        self.stats.add(REPL_FRAMES_SHIPPED)
        self.stats.add(REPL_RECORDS_SHIPPED, len(ops))
        return True

    def _truncate_frames(self) -> None:
        """Drop frames every non-diverged replica has applied."""
        floor = min((replica.applied_lsn for replica in self.replicas
                     if not replica.diverged), default=self.last_lsn())
        while self._frames and self._frames[0][0] <= floor:
            self._frames.popleft()

    # -- read path -----------------------------------------------------

    def _read_replica(self) -> Replica:
        """The replica reads are served from right now.

        The live primary serves (read-only degraded is fine — reads
        keep working); without one, the most-caught-up live follower
        serves provided its lag is inside the staleness bound.
        """
        primary = self._primary()
        if primary is not None and primary.alive:
            return primary
        best: Optional[Replica] = None
        for replica in self.replicas:
            if not replica.alive or replica.diverged:
                continue
            if best is None or replica.applied_lsn > best.applied_lsn:
                best = replica
        if best is None:
            raise ReplicaUnavailableError(self.shard, "every replica dead")
        lag = self.lag_frames(best)
        if lag > self.config.max_staleness_frames:
            raise ReplicaUnavailableError(
                self.shard,
                f"best follower lags {lag} frames "
                f"(bound {self.config.max_staleness_frames})")
        self.stats.add(REPL_STALE_READS)
        return best

    def _serve_read(self, op):
        """Run ``op`` on the serving replica, failing over on power cuts.

        A ``PowerCutError`` mid-read is an unambiguous death: the
        replica is marked dead immediately and the read retries on the
        next candidate — bounded by R, deterministic.
        """
        self._check_open()
        while True:
            replica = self._read_replica()
            try:
                return op(replica.tree)
            except PowerCutError:
                self._observe_failure(replica)

    def get(self, key: int) -> Optional[bytes]:
        """Point lookup; None when absent or deleted."""
        return self._serve_read(lambda tree: tree.get(key))

    def multi_get(self, keys: Sequence[int],
                  coalesce: Optional[bool] = None,
                  errors: Optional[Dict[int, ReproError]] = None,
                  ) -> List[Union[bytes, ReproError, None]]:
        """Batched point lookups on the serving replica."""
        return self._serve_read(
            lambda tree: tree.multi_get(keys, coalesce=coalesce,
                                        errors=errors))

    def scan(self, start_key: int, count: int) -> List[Tuple[int, bytes]]:
        """Range lookup on the serving replica."""
        return self._serve_read(lambda tree: tree.scan(start_key, count))

    # -- failure detector / heartbeat tick -----------------------------

    def tick(self, now_us: Optional[float] = None) -> None:
        """One failure-detector round: probe, ship, catch up, fail over.

        Deterministic: probes every replica's device, declares dead
        those unreachable past the timeout, restarts/reopens revived
        or wounded followers (replaying their hinted suffix), ships
        pending frames under the async policy, and promotes a follower
        when the primary cannot serve writes.
        """
        self._check_open()
        if now_us is not None:
            self.clock.advance_to(now_us)
        now = self.clock.now_us
        if (self._last_tick_us is not None
                and now - self._last_tick_us
                < self.config.heartbeat_interval_us):
            # Called faster than the heartbeat cadence (e.g. once per
            # client operation): the detector only actually runs every
            # interval, so async shipping lag is real, not an artifact
            # of how often the driver polls.
            return
        self._last_tick_us = now
        for replica in self.replicas:
            self._probe(replica, now)
        primary = self._primary()
        if primary is not None and primary.alive and not primary.powered_off:
            # Shipping is the primary's job: only a live, *reachable*
            # primary can push its outgoing buffer — a suspect one
            # (powered off, not yet declared dead) cannot, which is
            # exactly what makes its unshipped suffix losable.  A
            # wedged (read-only but reachable) primary still ships
            # before handing off, so that failover loses nothing.
            self._ship_pending()
        if primary is None or not primary.alive or primary.tree.read_only:
            # A dead primary's unshipped suffix died with it; promotion
            # truncates it (counted lost) before the new primary ships
            # the surviving history to lagging followers.
            self._promote(now)
            self._ship_pending()
        self._truncate_frames()

    def _probe(self, replica: Replica, now: float) -> None:
        self.stats.add(REPL_HEARTBEATS)
        if replica.powered_off:
            self.stats.add(REPL_HEARTBEAT_MISSES)
            if not replica.alive:
                return
            if replica.suspect_since_us is None:
                replica.suspect_since_us = now
                if replica.role == ROLE_PRIMARY \
                        and self._failure_observed_us is None:
                    self._failure_observed_us = now
            elif (now - replica.suspect_since_us
                    >= self.config.heartbeat_timeout_us):
                replica.alive = False
                self.stats.add(REPL_REPLICA_DEATHS)
            return
        replica.suspect_since_us = None
        replica.last_ok_us = now
        if not replica.alive:
            self._rejoin(replica)
        elif (replica.role == ROLE_FOLLOWER and replica.tree.read_only
                and not replica.crash_looping):
            # A wounded-but-reachable follower (torn WAL append, a
            # transient full disk) gets one restart; if the wound
            # reappears the replica is crash-looping and waits for
            # anti-entropy or an operator.
            self._restart(replica)
            if replica.tree.read_only:
                replica.crash_looping = True

    def _restart(self, replica: Replica) -> None:
        """Reopen a replica from its device (the process restarted).

        Deliberately does NOT ``close()`` the old tree: close is a
        graceful teardown that deletes the backing tables, while a
        restart models a process crash — the device keeps exactly what
        was durable and recovery replays it.  The old facade is marked
        closed so a stale reference cannot serve.  Recovery work
        (manifest replay, model reloads, WAL replay) charges the shared
        registry — restart cost is measured.
        """
        old = replica.tree
        replica.tree = LSMTree.reopen(self.options, old.device,
                                      stats=self.stats)
        replica.tree.deadline = self._deadline
        old._closed = True

    def _rejoin(self, replica: Replica) -> None:
        """A revived replica reopens, resyncs or replays, and returns."""
        self._restart(replica)
        replica.alive = True
        replica.crash_looping = False
        replica.suspect_since_us = None
        if replica.diverged:
            primary = self._primary()
            if primary is not None and primary.alive \
                    and primary.index != replica.index:
                self.stats.add(REPL_RESYNCS)
                self._copy_from(primary, replica)
            # Headless group: stay diverged until a primary exists.
            return
        self._replay_hints(replica)

    def _replay_hints(self, replica: Replica) -> None:
        """Apply the retained frame suffix a returning replica missed."""
        if replica.tree.read_only:
            replica.crash_looping = True
            return
        for lsn, ops in self._frames:
            if lsn <= replica.applied_lsn:
                continue
            replayed = self._ship_frame(replica, lsn, ops)
            if not replayed:
                return
            self.stats.add(REPL_CATCHUP_FRAMES)
            self.stats.add(REPL_HINTS_REPLAYED)

    def _ship_pending(self) -> None:
        """Ship retained frames to every eligible lagging follower."""
        for replica in self.replicas:
            if not self._ship_eligible(replica):
                continue
            for lsn, ops in list(self._frames):
                if lsn <= replica.applied_lsn:
                    continue
                if not self._ship_frame(replica, lsn, ops):
                    break

    def _promote(self, now: float) -> None:
        """Fail over to the most-caught-up live follower, if any."""
        if self._failure_observed_us is None:
            self._failure_observed_us = now
        old = self._primary()
        best: Optional[Replica] = None
        for replica in self.replicas:
            if old is not None and replica.index == old.index:
                continue
            if (not replica.alive or replica.diverged
                    or replica.tree.read_only):
                continue
            if best is None or replica.applied_lsn > best.applied_lsn:
                best = replica
        if best is None:
            # Headless: reads may still serve from followers within the
            # staleness bound; writes stay refused until a tick finds a
            # promotable replica.
            self._primary_index = (None if old is None or not old.alive
                                   else self._primary_index)
            return
        # The unshipped suffix died with the old primary's outgoing
        # buffer.  Truncate it (and the LSN space) so the group's log
        # matches the new primary; under ASYNC these were acked — that
        # is precisely the durability gap the quorum policies close.
        lost = [frame for frame in self._frames if frame[0] > best.applied_lsn]
        if lost:
            self.stats.add(REPL_FRAMES_LOST, len(lost))
            self.stats.add(REPL_RECORDS_LOST,
                           sum(len(ops) for _, ops in lost))
            while self._frames and self._frames[-1][0] > best.applied_lsn:
                self._frames.pop()
        self._next_lsn = best.applied_lsn + 1
        if old is not None:
            old.role = ROLE_FOLLOWER
            if old.applied_lsn > best.applied_lsn:
                # The old primary applied frames the group just
                # disowned; hints cannot heal that — full resync.
                old.diverged = True
                old.applied_lsn = best.applied_lsn
            if old.alive and old.tree.read_only:
                # Demoted for a write wound; don't restart-loop it.
                old.crash_looping = True
        # Promotion reopens the follower manifest-driven, so the model
        # reload cost of the configured granularity is *measured*:
        # failover time = detection wait + real recovery work.
        before_us = self.stats.total_time()
        self._restart(best)
        recovery_us = self.stats.total_time() - before_us
        best.role = ROLE_PRIMARY
        self._primary_index = best.index
        failover_us = (now - self._failure_observed_us) + recovery_us
        self.registry.record_op(FAILOVER_OP, failover_us)
        self.stats.add(REPL_PROMOTIONS)
        self._failure_observed_us = None

    # -- anti-entropy --------------------------------------------------

    def anti_entropy(self) -> ScrubReport:
        """Scrub every live replica, then repair divergence off the primary.

        The scrub pass reuses the single-tree verify/rewrite/quarantine
        path per replica (media damage is local).  The diff pass then
        walks each live follower against the primary's live entries and
        rewrites what differs — the repair story for a replica whose
        medium healed after its hints were truncated.
        """
        self._check_open()
        self.stats.add(REPL_ANTIENTROPY_RUNS)
        report = ScrubReport()
        for replica in self.replicas:
            if replica.alive:
                report.merge(replica.tree.scrub())
        primary = self._primary()
        if primary is None or not primary.alive:
            return report
        for replica in self.replicas:
            if replica.index == primary.index or not replica.alive:
                continue
            self._copy_from(primary, replica)
        self._truncate_frames()
        return report

    def _copy_from(self, source: Replica, target: Replica) -> None:
        """Make ``target`` byte-equivalent to ``source``'s live view."""
        if target.tree.read_only:
            # A wedged tree cannot take repairs; restart it first (a
            # healed device clears the wound, a bad one re-wounds).
            self._restart(target)
            if target.tree.read_only:
                target.crash_looping = True
                return
        want = dict(source.tree.scan(_MIN_KEY,
                                     source.tree.entry_count() + 1))
        have = dict(target.tree.scan(_MIN_KEY,
                                     target.tree.entry_count() + 1))
        repaired = 0
        try:
            for key in sorted(want):
                if have.get(key) != want[key]:
                    target.tree.put(key, want[key])
                    repaired += 1
            for key in sorted(set(have) - set(want)):
                target.tree.delete(key)
                repaired += 1
        except (ReadOnlyModeError, PowerCutError):
            if target.powered_off:
                self._observe_failure(target)
            else:
                target.crash_looping = True
            return
        if repaired:
            self.stats.add(REPL_ANTIENTROPY_REPAIRED, repaired)
        target.applied_lsn = self.last_lsn()
        target.diverged = False
        target.crash_looping = False

    # -- maintenance / introspection (facade parity) -------------------

    def flush(self) -> None:
        """Flush every live, writable replica's memtable."""
        self._check_open()
        for replica in self.replicas:
            if replica.alive and not replica.tree.read_only:
                replica.tree.flush()

    def maybe_compact(self) -> None:
        """Run due compactions on every live replica."""
        self._check_open()
        for replica in self.replicas:
            if replica.alive and not replica.tree.read_only:
                replica.tree.maybe_compact()

    def checkpoint(self) -> Dict[str, float]:
        """Checkpoint every live, writable replica; summed summary."""
        self._check_open()
        total: Dict[str, float] = {}
        for replica in self.replicas:
            if replica.alive and not replica.tree.read_only:
                for name, value in replica.tree.checkpoint().items():
                    total[name] = total.get(name, 0.0) + value
        return total

    def scrub(self) -> ScrubReport:
        """Scrub every live replica (merged report; no diff repair)."""
        self._check_open()
        report = ScrubReport()
        for replica in self.replicas:
            if replica.alive:
                report.merge(replica.tree.scrub())
        return report

    def bulk_ingest(self, keys, value_for=None, seed: int = 0) -> None:
        """Identically fill every replica (offline benchmark load)."""
        self._check_open()
        for replica in self.replicas:
            replica.tree.bulk_ingest(keys, value_for=value_for, seed=seed)

    def entry_count(self) -> int:
        """Entries in the serving replica's view (0 when headless)."""
        try:
            return self._serve_read(lambda tree: tree.entry_count())
        except ReplicaUnavailableError:
            return 0

    def memory_breakdown(self) -> Dict[str, int]:
        """Bytes per in-memory component across *all* replicas."""
        total: Dict[str, int] = {}
        for replica in self.replicas:
            for component, nbytes in \
                    replica.tree.memory_breakdown().items():
                total[component] = total.get(component, 0) + nbytes
        return total

    def describe_levels(self) -> List[Dict[str, float]]:
        """Level shape of the serving replica."""
        return self._serve_read(lambda tree: tree.describe_levels())

    def replication_summary(self) -> Dict[str, object]:
        """Compact role/lag view (the gateway's health contribution)."""
        return {
            "primary": self._primary_index,
            "roles": [replica.role for replica in self.replicas],
            "alive": sum(1 for replica in self.replicas if replica.alive),
            "max_lag_frames": max(
                (self.lag_frames(replica) for replica in self.replicas
                 if replica.index != self._primary_index), default=0),
        }

    def health(self) -> Dict[str, object]:
        """Serving-replica health plus per-replica roles and lag."""
        primary = self._primary()
        try:
            base = self._serve_read(lambda tree: tree.health())
        except ReplicaUnavailableError:
            base = {"status": "down",
                    "reason": "every replica dead or out of staleness "
                              "bound",
                    "quarantined_blocks": 0, "quarantined_tables": 0}
        if self.read_only and base["status"] == "ok":
            # A headless-for-writes group is degraded even when the
            # serving replica itself is clean.
            base["status"] = "read_only"
            base["reason"] = self.read_only_reason
        base["replication"] = {
            "primary": self._primary_index,
            "replicas": [{
                "replica": replica.index,
                "role": replica.role,
                "alive": replica.alive,
                "lag_frames": self.lag_frames(replica),
                "diverged": replica.diverged,
            } for replica in self.replicas],
        }
        return base

    def close(self) -> None:
        """Release every replica's tables, mark the group closed.

        A powered-off replica cannot release anything — its device
        rejects every operation — so it is simply abandoned, exactly
        like a machine that never came back.
        """
        if self._closed:
            return
        self._closed = True
        for replica in self.replicas:
            try:
                replica.tree.close()
            except PowerCutError:
                replica.tree._closed = True
