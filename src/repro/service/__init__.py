"""The serving layer: scale-out plumbing above the single LSM-tree.

The paper evaluates learned indexes inside one LSM-tree; this package
adds the system-level tier a production deployment puts on top:

* :class:`~repro.service.sharded.ShardedDB` — hash-partitions the key
  space over N independent :class:`~repro.lsm.db.LSMTree` shards with
  merged cross-shard scans and aggregated stats;
* :class:`~repro.lsm.write_batch.WriteBatch` (re-exported) — multi-key
  updates applied through one WAL group commit per shard;
* the LRU block cache (``Options.cache_bytes`` +
  :class:`~repro.storage.block_cache.CachedBlockDevice`) each shard
  places in front of its device.

Together these open the benchmark scenarios a single tree cannot
express: cache-size sweeps under Zipfian skew, shard scaling curves and
write-batching amortization (``repro-bench service``).
"""

from repro.lsm.write_batch import WriteBatch
from repro.service.router import HashRouter, mix64
from repro.service.sharded import ShardedDB

__all__ = [
    "ShardedDB",
    "HashRouter",
    "WriteBatch",
    "mix64",
]
