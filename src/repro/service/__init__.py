"""The serving layer: scale-out plumbing above the single LSM-tree.

The paper evaluates learned indexes inside one LSM-tree; this package
adds the system-level tier a production deployment puts on top:

* :class:`~repro.service.sharded.ShardedDB` — hash-partitions the key
  space over N independent :class:`~repro.lsm.db.LSMTree` shards with
  merged cross-shard scans and aggregated stats;
* :class:`~repro.service.gateway.Gateway` — overload control in front
  of the shards: open-loop arrivals on a virtual clock, bounded
  per-shard queues with shedding, deadline propagation, per-shard
  circuit breakers and a client retry budget;
* :class:`~repro.service.replication.ReplicaGroup` — per-shard
  replication: primary/follower log shipping with configurable ack
  policy, deterministic heartbeat failover, hinted handoff,
  bounded-staleness follower reads and anti-entropy repair;
* :class:`~repro.lsm.write_batch.WriteBatch` (re-exported) — multi-key
  updates applied through one WAL group commit per shard;
* the LRU block cache (``Options.cache_bytes`` +
  :class:`~repro.storage.block_cache.CachedBlockDevice`) each shard
  places in front of its device.

Together these open the benchmark scenarios a single tree cannot
express: cache-size sweeps under Zipfian skew, shard scaling curves and
write-batching amortization (``repro-bench service``).
"""

from repro.lsm.write_batch import WriteBatch
from repro.service.gateway import (
    CircuitBreaker,
    Gateway,
    GatewayConfig,
    GatewayReport,
    Request,
    RetryBudget,
    VirtualClock,
    requests_from_ycsb,
)
from repro.service.replication import (
    AckPolicy,
    ReplicaGroup,
    ReplicationConfig,
)
from repro.service.router import HashRouter, mix64
from repro.service.sharded import ShardedDB

__all__ = [
    "ShardedDB",
    "HashRouter",
    "WriteBatch",
    "mix64",
    "Gateway",
    "GatewayConfig",
    "GatewayReport",
    "CircuitBreaker",
    "RetryBudget",
    "Request",
    "VirtualClock",
    "requests_from_ycsb",
    "AckPolicy",
    "ReplicaGroup",
    "ReplicationConfig",
]
