"""Key routing: deterministic hash partitioning of the key space.

A shard router decides which of N independent LSM-trees owns a key.
Routing must be (a) deterministic across processes and Python versions
— ``hash()`` is neither stable for ``str`` nor well-mixed for ``int``,
whose hash is the identity — and (b) well-mixed, so sequential or
clustered key spaces (the paper's ``books``/``osm`` CDFs are heavily
clustered) still spread evenly over shards.  We use the splitmix64
finalizer, the same bijective mixer SOSD-style benchmarks use for
shuffling, then reduce modulo the shard count.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import InvalidOptionError
from repro.lsm.record import KIND_TOMBSTONE
from repro.lsm.write_batch import WriteBatch

_MASK = (1 << 64) - 1


def mix64(x: int) -> int:
    """The splitmix64 finalizer: a bijective 64-bit avalanche mixer."""
    x &= _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return x ^ (x >> 31)


class HashRouter:
    """Hash-partitions 64-bit keys over ``num_shards`` buckets."""

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise InvalidOptionError(
                f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards

    def shard_for(self, key: int) -> int:
        """The shard index owning ``key`` (stable across runs)."""
        return mix64(key) % self.num_shards

    def split(self, batch: WriteBatch) -> Dict[int, WriteBatch]:
        """Partition a batch into per-shard sub-batches.

        Application order is preserved within each shard, which is all
        the engine needs: operations on one key always land on one
        shard, so later-supersedes-earlier semantics survive the split.
        """
        parts: Dict[int, WriteBatch] = {}
        for kind, key, value in batch:
            shard = self.shard_for(key)
            part = parts.get(shard)
            if part is None:
                part = parts[shard] = WriteBatch()
            if kind == KIND_TOMBSTONE:
                part.delete(key)
            else:
                part.put(key, value)
        return parts

    def partition_keys(self, keys) -> List[List[int]]:
        """Group ``keys`` by owning shard (bulk-load helper)."""
        parts: List[List[int]] = [[] for _ in range(self.num_shards)]
        for key in keys:
            parts[self.shard_for(key)].append(key)
        return parts
