"""The overload-robust request gateway in front of :class:`ShardedDB`.

The paper drives its trees *closed-loop*, so offered load can never
exceed capacity and every request eventually "succeeds" — arbitrarily
late.  This module adds the serving tier's missing defenses, all in
deterministic simulated time (no wall clock anywhere):

* an **open-loop scheduler** (:meth:`Gateway.run`): arrivals come from
  a :mod:`repro.workloads.arrivals` plan on a :class:`VirtualClock`;
  each shard is a single server draining a **bounded FIFO queue**;
* **admission control**: depth-based shedding (:class:`ShedError`
  when a shard's queue is full) and expired-at-dequeue drop (a request
  whose deadline passed while queued is abandoned before service);
* **deadline propagation**: every request carries an absolute
  simulated-µs deadline; a :class:`~repro.lsm.deadline.DeadlineToken`
  rides into the LSM read path so mid-operation work past the budget
  is abandoned (:class:`DeadlineExceededError`);
* a **per-shard circuit breaker** keyed off recent error rate and
  ``health()`` (open → :class:`CircuitOpenError` in microseconds,
  half-open probes → close);
* a client-side **retry budget** (token bucket) that caps retry
  amplification: transient failures retry only while the budget holds
  tokens, so a fault burst at saturation cannot metastasize into a
  retry storm.

Everything lands in the obs layer: ``overload.*``/``queue.*``/
``breaker.*``/``retry.*`` counters on the gateway's own
:class:`~repro.storage.stats.Stats`, and three histograms —
``gw.queue_delay``, ``gw.service``, ``gw.request`` — that split tail
latency into queueing vs. service, which is the split that shows where
p99 went at saturation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    InvalidOptionError,
    ReadOnlyModeError,
    ReproError,
    RequestRejectedError,
    ShedError,
    TransientIOError,
)
from repro.lsm.deadline import DeadlineToken
from repro.lsm.write_batch import WriteBatch
from repro.obs.registry import MetricsRegistry
from repro.service.replication import VirtualClock
from repro.service.sharded import ShardedDB
from repro.storage.stats import (
    BREAKER_CLOSES,
    BREAKER_HALF_OPENS,
    BREAKER_OPENS,
    BREAKER_REJECTED,
    OVERLOAD_ADMITTED,
    OVERLOAD_COMPLETED,
    OVERLOAD_COMPLETED_LATE,
    OVERLOAD_DEADLINE_EXCEEDED,
    OVERLOAD_EXPIRED_AT_DEQUEUE,
    OVERLOAD_FAILED,
    OVERLOAD_REQUESTS,
    OVERLOAD_SHED,
    QUEUE_DELAY_US,
    QUEUE_ENQUEUES,
    RETRY_BUDGET_DENIED,
    RETRY_BUDGET_SPENT,
    RETRY_CLIENT_RESUBMITS,
    Stats,
)
from repro.workloads.ycsb import Operation, OpKind

#: Histogram names the gateway records into its registry.
QUEUE_DELAY_OP = "gw.queue_delay"
SERVICE_OP = "gw.service"
REQUEST_OP = "gw.request"

#: Terminal outcomes a request can reach (report vocabulary).
OUTCOME_OK = "ok"
OUTCOME_LATE = "late"
OUTCOME_SHED = "shed"
OUTCOME_EXPIRED = "expired"
OUTCOME_DEADLINE = "deadline"
OUTCOME_BREAKER = "breaker"
OUTCOME_FAILED = "failed"


# VirtualClock lives in the replication module now (the failure
# detector shares it); the import above keeps its historical home here
# working for existing callers.


@dataclass
class GatewayConfig:
    """Tuning knobs for admission control, breakers and retry budgets.

    Defaults are sized for the smoke-scale experiment; see
    ``docs/OVERLOAD.md`` for how each knob moves the goodput curve.
    """

    #: Bounded FIFO depth per shard; arrivals beyond it are shed.
    queue_depth: int = 64
    #: Deadline assigned by helpers when a request doesn't carry one.
    default_deadline_us: float = 20_000.0
    #: Fixed per-request dispatch overhead added to engine service
    #: time, so even cache-hit operations occupy the server for a
    #: nonzero interval and shard capacity stays finite.
    service_overhead_us: float = 2.0
    #: Circuit breaker: disable to study pure queueing.
    breaker_enabled: bool = True
    breaker_window: int = 32
    breaker_min_samples: int = 8
    breaker_error_threshold: float = 0.5
    breaker_cooldown_us: float = 100_000.0
    breaker_half_open_probes: int = 2
    #: Retry budget: ``enabled=False`` is the retry-storm control arm
    #: (unlimited client retries, as a naive client would).
    retry_budget_enabled: bool = True
    retry_budget_ratio: float = 0.1
    retry_budget_burst: float = 10.0
    max_client_retries: int = 3

    def validate(self) -> None:
        """Reject inconsistent knobs with :class:`InvalidOptionError`."""
        if self.queue_depth < 1:
            raise InvalidOptionError(
                f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.default_deadline_us <= 0:
            raise InvalidOptionError("default_deadline_us must be > 0")
        if self.service_overhead_us < 0:
            raise InvalidOptionError("service_overhead_us must be >= 0")
        if not 0.0 < self.breaker_error_threshold <= 1.0:
            raise InvalidOptionError(
                "breaker_error_threshold must be in (0, 1]")
        if self.breaker_window < self.breaker_min_samples:
            raise InvalidOptionError(
                "breaker_window must be >= breaker_min_samples")
        if self.breaker_half_open_probes < 1:
            raise InvalidOptionError("breaker_half_open_probes must be >= 1")
        if self.retry_budget_ratio < 0 or self.retry_budget_burst < 0:
            raise InvalidOptionError("retry budget parameters must be >= 0")
        if self.max_client_retries < 0:
            raise InvalidOptionError("max_client_retries must be >= 0")


class RetryBudget:
    """gRPC-style token bucket capping client retry amplification.

    Every admitted first-attempt request earns ``ratio`` tokens (up to
    ``burst``); every retry spends one whole token.  At a 10% ratio the
    fleet-wide retry rate can never exceed ~10% of successful traffic —
    the property that keeps a transient fault burst at saturation from
    amplifying into a metastable retry storm.  Disabled, the budget
    always grants (the experiment's control arm).
    """

    def __init__(self, enabled: bool, ratio: float, burst: float,
                 stats: Stats) -> None:
        self.enabled = enabled
        self.ratio = ratio
        self.burst = burst
        self.tokens = burst
        self.stats = stats

    def on_request(self) -> None:
        """Earn ``ratio`` tokens for one admitted first attempt."""
        self.tokens = min(self.burst, self.tokens + self.ratio)

    def try_spend(self) -> bool:
        """Spend one token for a retry; False when the budget is dry."""
        if not self.enabled:
            self.stats.add(RETRY_BUDGET_SPENT)
            return True
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.stats.add(RETRY_BUDGET_SPENT)
            return True
        self.stats.add(RETRY_BUDGET_DENIED)
        return False


class CircuitBreaker:
    """Per-shard breaker: CLOSED → OPEN → HALF_OPEN → CLOSED.

    Closed, it watches a sliding window of completions; once at least
    ``min_samples`` are in view and the error fraction reaches the
    threshold, it opens and every request fails fast with
    :class:`CircuitOpenError` — microseconds instead of queueing behind
    a sick shard.  After ``cooldown_us`` it goes half-open and admits
    probe requests; ``half_open_probes`` consecutive successes close
    it, any probe failure re-opens it.  A shard whose ``health()``
    degrades to read-only force-opens the breaker for writes-at-fault
    reasons recorded in ``reason``.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, shard: int, config: GatewayConfig,
                 stats: Stats) -> None:
        self.shard = shard
        self.config = config
        self.stats = stats
        self.state = self.CLOSED
        self.window: Deque[bool] = deque(maxlen=config.breaker_window)
        self.opened_at_us = 0.0
        self.reason = ""
        self._probe_successes = 0

    def allow(self, now_us: float) -> bool:
        """May a request pass to this shard right now?"""
        if not self.config.breaker_enabled:
            return True
        if self.state == self.OPEN:
            if now_us - self.opened_at_us >= self.config.breaker_cooldown_us:
                self.state = self.HALF_OPEN
                self._probe_successes = 0
                self.stats.add(BREAKER_HALF_OPENS)
                return True
            return False
        return True

    def record(self, ok: bool, now_us: float) -> None:
        """Feed one completion outcome into the state machine."""
        if not self.config.breaker_enabled:
            return
        if self.state == self.HALF_OPEN:
            if ok:
                self._probe_successes += 1
                if self._probe_successes >= self.config.breaker_half_open_probes:
                    self.state = self.CLOSED
                    self.window.clear()
                    self.reason = ""
                    self.stats.add(BREAKER_CLOSES)
            else:
                self._open(now_us, "half-open probe failed")
            return
        if self.state == self.OPEN:
            # A straggler completing after the breaker opened changes
            # nothing; the cooldown clock is already running.
            return
        self.window.append(ok)
        if len(self.window) >= self.config.breaker_min_samples:
            errors = sum(1 for entry in self.window if not entry)
            if errors / len(self.window) >= self.config.breaker_error_threshold:
                self._open(now_us,
                           f"error rate {errors}/{len(self.window)}")

    def force_open(self, now_us: float, reason: str) -> None:
        """Open immediately (shard ``health()`` says it is sick)."""
        if self.config.breaker_enabled and self.state != self.OPEN:
            self._open(now_us, reason)

    def _open(self, now_us: float, reason: str) -> None:
        self.state = self.OPEN
        self.opened_at_us = now_us
        self.reason = reason
        self.window.clear()
        self.stats.add(BREAKER_OPENS)


class Request:
    """One operation moving through the gateway simulation."""

    __slots__ = ("op", "key", "value", "arrival_us", "deadline_us",
                 "attempt", "seq", "shard", "enqueued_us", "start_us",
                 "finish_us", "outcome", "error", "result")

    def __init__(self, op: str, key: int, arrival_us: float,
                 deadline_us: float, value: bytes = b"",
                 attempt: int = 0) -> None:
        if op not in ("get", "put"):
            raise InvalidOptionError(f"unsupported gateway op: {op!r}")
        self.op = op
        self.key = key
        self.value = value
        self.arrival_us = arrival_us
        self.deadline_us = deadline_us
        self.attempt = attempt
        self.seq = -1
        self.shard = -1
        self.enqueued_us = arrival_us
        self.start_us = -1.0
        self.finish_us = -1.0
        self.outcome: Optional[str] = None
        self.error: Optional[ReproError] = None
        self.result: Optional[bytes] = None


def requests_from_ycsb(ops: Sequence[Operation], times: Sequence[float],
                       deadline_us: float,
                       value: bytes = b"v") -> List[Request]:
    """Pair a YCSB operation stream with an arrival plan.

    Reads map to ``get``; updates/inserts/read-modify-writes map to
    ``put`` (the gateway simulates point ops; scans stay closed-loop).
    """
    if len(ops) != len(times):
        raise InvalidOptionError(
            f"{len(ops)} operations but {len(times)} arrival times")
    out = []
    for op, at_us in zip(ops, times):
        kind = "get" if op.kind in (OpKind.READ, OpKind.SCAN) else "put"
        out.append(Request(kind, op.key, at_us, at_us + deadline_us,
                           value=value))
    return out


class _ShardServer:
    """Single-server queueing state for one shard."""

    __slots__ = ("queue", "busy_until")

    def __init__(self) -> None:
        self.queue: Deque[Request] = deque()
        self.busy_until = -1.0

    def busy(self, now_us: float) -> bool:
        return self.busy_until > now_us


@dataclass
class GatewayReport:
    """Deterministic summary of one open-loop run."""

    horizon_us: float
    counters: Dict[str, float]
    outcomes: Dict[str, int]
    percentiles: Dict[str, Dict[str, float]]
    retry_tokens_left: float = 0.0

    def rate_per_sec(self, outcome: str) -> float:
        """Requests/s reaching ``outcome`` over the run horizon."""
        if self.horizon_us <= 0:
            return 0.0
        return self.outcomes.get(outcome, 0) * 1e6 / self.horizon_us

    @property
    def goodput_per_sec(self) -> float:
        """Completions *within deadline* per second — the honest rate."""
        return self.rate_per_sec(OUTCOME_OK)

    @property
    def requests(self) -> int:
        """First-attempt arrivals (retries are not new requests)."""
        return int(self.counters.get(OVERLOAD_REQUESTS, 0))

    def fraction(self, outcome: str) -> float:
        """Share of first-attempt requests ending in ``outcome``."""
        return (self.outcomes.get(outcome, 0) / self.requests
                if self.requests else 0.0)

    def to_json_dict(self) -> Dict[str, object]:
        """Canonical form: equal runs serialize byte-identically."""
        return {
            "horizon_us": self.horizon_us,
            "counters": dict(sorted(self.counters.items())),
            "outcomes": dict(sorted(self.outcomes.items())),
            "percentiles": {op: dict(sorted(row.items()))
                            for op, row in sorted(self.percentiles.items())},
            "retry_tokens_left": self.retry_tokens_left,
        }


#: Event-kind ordering: completions before arrivals at the same
#: instant, so a server freed at t can absorb the arrival at t;
#: heartbeat ticks come last so the failure detector sees the
#: instant's completed state.
_COMPLETE, _ARRIVAL, _TICK = 0, 1, 2


class Gateway:
    """Overload control in front of one :class:`ShardedDB`.

    One gateway owns its database's admission state: per-shard bounded
    queues, per-shard breakers, one shared retry budget, its own
    :class:`Stats` (``overload.*``/``queue.*``/``breaker.*``/
    ``retry.*`` counters) and its own metrics registry (queue-delay /
    service / end-to-end histograms).  Attaching the gateway registers
    it with the database so ``ShardedDB.health()`` reports breaker and
    queue state per shard.
    """

    def __init__(self, db: ShardedDB,
                 config: Optional[GatewayConfig] = None) -> None:
        self.db = db
        self.config = config if config is not None else GatewayConfig()
        self.config.validate()
        # A replicated database brings its own clock (the replica
        # groups' failure detectors already share it); adopting it puts
        # request scheduling and failover on one timeline.
        db_clock = getattr(db, "clock", None)
        self.clock = db_clock if db_clock is not None else VirtualClock()
        self.stats = Stats()
        self.registry = MetricsRegistry()
        self.breakers = [CircuitBreaker(i, self.config, self.stats)
                         for i in range(db.num_shards)]
        self.budget = RetryBudget(self.config.retry_budget_enabled,
                                  self.config.retry_budget_ratio,
                                  self.config.retry_budget_burst,
                                  self.stats)
        self.servers = [_ShardServer() for _ in range(db.num_shards)]
        self.shard_counters: List[Dict[str, int]] = [
            {"shed": 0, "expired": 0, "deadline": 0}
            for _ in range(db.num_shards)]
        self._seq = 0
        db._gateway = self

    # -- synchronous (closed-loop) API ---------------------------------

    def get(self, key: int,
            deadline_us: Optional[float] = None) -> Optional[bytes]:
        """Point lookup with breaker check and deadline propagation."""
        shard = self.db.shard_for(key)
        self._check_breaker(shard)
        now = self.clock.now_us
        budget = (deadline_us if deadline_us is not None
                  else self.config.default_deadline_us)
        tree = self.db.shards[shard]
        token = DeadlineToken(tree.stats, budget, deadline_us=now + budget)
        tree.deadline = token
        try:
            value = tree.get(key)
            self.breakers[shard].record(True, now)
            return value
        except DeadlineExceededError:
            self.shard_counters[shard]["deadline"] += 1
            self.stats.add(OVERLOAD_DEADLINE_EXCEEDED)
            raise
        except ReproError:
            self.breakers[shard].record(False, now)
            raise
        finally:
            tree.deadline = None

    def multi_get(self, keys: Sequence[int],
                  deadline_us: Optional[float] = None,
                  errors: Optional[Dict[int, ReproError]] = None,
                  ) -> List[Optional[bytes]]:
        """Batched lookup that degrades per key under deadline pressure.

        With an ``errors`` dict, a shard sub-batch that runs out of
        budget (or a shard behind an open breaker) surfaces per-key
        typed errors while every other shard's keys still resolve —
        the existing partial-result protocol extended to overload.
        """
        budget = (deadline_us if deadline_us is not None
                  else self.config.default_deadline_us)
        now = self.clock.now_us
        parts: Dict[int, List[int]] = {}
        for key in keys:
            parts.setdefault(self.db.shard_for(key), []).append(key)
        resolved: Dict[int, Optional[bytes]] = {}
        for shard, part in sorted(parts.items()):
            breaker = self.breakers[shard]
            if not breaker.allow(now):
                self.stats.add(BREAKER_REJECTED, len(part))
                rejected = CircuitOpenError(shard, breaker.reason)
                if errors is None:
                    raise rejected
                for key in part:
                    errors[key] = rejected
                    resolved[key] = None
                continue
            tree = self.db.shards[shard]
            token = DeadlineToken(tree.stats, budget,
                                  deadline_us=now + budget)
            tree.deadline = token
            try:
                values = tree.multi_get(part, errors=errors)
                self.breakers[shard].record(True, now)
            finally:
                tree.deadline = None
            resolved.update(zip(part, values))
            if errors:
                overdue = sum(1 for key in part
                              if isinstance(errors.get(key),
                                            DeadlineExceededError))
                if overdue:
                    self.shard_counters[shard]["deadline"] += 1
        return [resolved[key] for key in keys]

    def write(self, batch: WriteBatch) -> int:
        """Apply ``batch`` only if *every* touched shard will accept it.

        Pre-flight before any group commit: each touched shard's
        breaker must be closed (or half-open) and the shard writable —
        otherwise the whole batch is rejected with nothing applied, so
        an acknowledgment always means the full cross-shard batch
        landed.  Delegates to :meth:`ShardedDB.write`, which re-checks
        writability fleet-wide before committing shard by shard.
        """
        now = self.clock.now_us
        touched = sorted(self.db.router.split(batch))
        for shard in touched:
            self._refresh_breaker_from_health(shard, now)
            self._check_breaker(shard)
        applied = self.db.write(batch)
        for shard in touched:
            self.breakers[shard].record(True, now)
        return applied

    # -- open-loop simulation ------------------------------------------

    def run(self, requests: Sequence[Request]) -> GatewayReport:
        """Drive an open-loop arrival plan to completion.

        Event-driven: a heap orders arrival and completion events by
        ``(time, kind, seq)`` — deterministic for a fixed plan, no
        wall clock.  Each shard is one server; service time is the
        simulated microseconds the engine charges for the operation
        plus ``service_overhead_us``.  Transient engine failures may
        be resubmitted (client retry) while the retry budget and
        ``max_client_retries`` allow.
        """
        heap: List[Tuple[float, int, int, Request]] = []
        for req in requests:
            self._push(heap, req.arrival_us, _ARRIVAL, req)
        tick_every = (self.db.replication.heartbeat_interval_us
                      if self.db.replication is not None else None)
        if tick_every is not None and heap:
            # Replicated fleet: interleave failure-detector ticks with
            # the request schedule, so failovers happen mid-load at
            # deterministic instants.
            self._push(heap, self.clock.now_us + tick_every, _TICK, None)
        outcomes: Dict[str, int] = {}
        horizon = 0.0
        while heap:
            t_us, kind, _, req = heappop(heap)
            self.clock.advance_to(t_us)
            if kind == _TICK:
                self.db.tick(t_us)
                if heap:
                    # Stop ticking once the last request resolved; the
                    # run ends when the workload does.
                    self._push(heap, t_us + tick_every, _TICK, None)
                continue
            horizon = max(horizon, t_us)
            if kind == _ARRIVAL:
                self._arrive(heap, req, t_us, outcomes)
            else:
                self._complete(heap, req, t_us, outcomes)
        return GatewayReport(
            horizon_us=horizon,
            counters=dict(self.stats.counters),
            outcomes=outcomes,
            percentiles={op: self.registry.histograms[op].percentiles()
                         for op in self.registry.ops()},
            retry_tokens_left=self.budget.tokens,
        )

    def _push(self, heap, t_us: float, kind: int, req: Request) -> None:
        self._seq += 1
        heappush(heap, (t_us, kind, self._seq, req))

    def _finish(self, req: Request, outcome: str, now_us: float,
                outcomes: Dict[str, int]) -> None:
        req.outcome = outcome
        req.finish_us = now_us
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
        self.registry.record_op(REQUEST_OP, max(0.0, now_us - req.arrival_us))

    def _arrive(self, heap, req: Request, now_us: float,
                outcomes: Dict[str, int]) -> None:
        shard = self.db.shard_for(req.key)
        req.shard = shard
        if req.attempt == 0:
            self.stats.add(OVERLOAD_REQUESTS)
        self._refresh_breaker_from_health(shard, now_us)
        breaker = self.breakers[shard]
        if not breaker.allow(now_us):
            # Fail fast: a breaker rejection costs microseconds, not a
            # queue slot, and is terminal (retrying an open breaker is
            # exactly the amplification the breaker exists to stop).
            self.stats.add(BREAKER_REJECTED)
            req.error = CircuitOpenError(shard, breaker.reason)
            self._finish(req, OUTCOME_BREAKER, now_us, outcomes)
            return
        server = self.servers[shard]
        if server.busy(now_us) and \
                len(server.queue) >= self.config.queue_depth:
            self.stats.add(OVERLOAD_SHED)
            self.shard_counters[shard]["shed"] += 1
            req.error = ShedError(shard, self.config.queue_depth)
            self._finish(req, OUTCOME_SHED, now_us, outcomes)
            return
        self.stats.add(OVERLOAD_ADMITTED)
        if req.attempt == 0:
            self.budget.on_request()
        req.enqueued_us = now_us
        if server.busy(now_us):
            self.stats.add(QUEUE_ENQUEUES)
            server.queue.append(req)
        else:
            self._start_service(heap, shard, req, now_us, outcomes)

    def _start_service(self, heap, shard: int, req: Request,
                       now_us: float, outcomes: Dict[str, int]) -> None:
        """Put ``req`` on shard's server; assumes the server is idle."""
        delay_us = max(0.0, now_us - req.enqueued_us)
        self.stats.add(QUEUE_DELAY_US, delay_us)
        self.registry.record_op(QUEUE_DELAY_OP, delay_us)
        req.start_us = now_us
        tree = self.db.shards[shard]
        before = tree.stats.total_time()
        budget_us = req.deadline_us - now_us
        token = DeadlineToken(tree.stats, budget_us,
                              deadline_us=req.deadline_us)
        tree.deadline = token
        req.error = None
        try:
            if req.op == "get":
                req.result = tree.get(req.key)
            else:
                tree.put(req.key, req.value)
        except ReproError as exc:
            req.error = exc
        finally:
            tree.deadline = None
        service_us = (tree.stats.total_time() - before
                      + self.config.service_overhead_us)
        self.registry.record_op(SERVICE_OP, service_us)
        self.servers[shard].busy_until = now_us + service_us
        self._push(heap, now_us + service_us, _COMPLETE, req)

    def _complete(self, heap, req: Request, now_us: float,
                  outcomes: Dict[str, int]) -> None:
        shard = req.shard
        breaker = self.breakers[shard]
        error = req.error
        if error is None:
            if now_us <= req.deadline_us:
                self.stats.add(OVERLOAD_COMPLETED)
                self._finish(req, OUTCOME_OK, now_us, outcomes)
            else:
                # The work finished, but after the client stopped
                # waiting — throughput, not goodput.
                self.stats.add(OVERLOAD_COMPLETED_LATE)
                self._finish(req, OUTCOME_LATE, now_us, outcomes)
            breaker.record(True, now_us)
        elif isinstance(error, DeadlineExceededError):
            # Abandoned mid-operation by the engine's checkpoints; the
            # partial service time was already charged to the server.
            self.stats.add(OVERLOAD_DEADLINE_EXCEEDED)
            self.shard_counters[shard]["deadline"] += 1
            self._finish(req, OUTCOME_DEADLINE, now_us, outcomes)
        else:
            breaker.record(False, now_us)
            if isinstance(error, TransientIOError) and \
                    req.attempt < self.config.max_client_retries and \
                    now_us < req.deadline_us and self.budget.try_spend():
                self.stats.add(RETRY_CLIENT_RESUBMITS)
                retry = Request(req.op, req.key, req.arrival_us,
                                req.deadline_us, value=req.value,
                                attempt=req.attempt + 1)
                retry.seq = req.seq
                self._push(heap, now_us, _ARRIVAL, retry)
            else:
                self.stats.add(OVERLOAD_FAILED)
                self._finish(req, OUTCOME_FAILED, now_us, outcomes)
        self._drain(heap, shard, now_us, outcomes)

    def _drain(self, heap, shard: int, now_us: float,
               outcomes: Dict[str, int]) -> None:
        """Pull queued work onto a freed server, dropping the expired."""
        server = self.servers[shard]
        while server.queue and not server.busy(now_us):
            nxt = server.queue.popleft()
            delay_us = max(0.0, now_us - nxt.enqueued_us)
            if now_us > nxt.deadline_us:
                # Expired at dequeue: the deadline passed while the
                # request sat in queue — drop it without charging the
                # server a single microsecond of service.
                self.stats.add(OVERLOAD_EXPIRED_AT_DEQUEUE)
                self.stats.add(QUEUE_DELAY_US, delay_us)
                self.registry.record_op(QUEUE_DELAY_OP, delay_us)
                self.shard_counters[shard]["expired"] += 1
                nxt.error = DeadlineExceededError(
                    nxt.deadline_us, now_us, where="queue")
                self._finish(nxt, OUTCOME_EXPIRED, now_us, outcomes)
                continue
            self._start_service(heap, shard, nxt, now_us, outcomes)

    # -- breaker plumbing ----------------------------------------------

    def _check_breaker(self, shard: int) -> None:
        breaker = self.breakers[shard]
        if not breaker.allow(self.clock.now_us):
            self.stats.add(BREAKER_REJECTED)
            raise CircuitOpenError(shard, breaker.reason)

    def _refresh_breaker_from_health(self, shard: int,
                                     now_us: float) -> None:
        """Force the breaker open when the shard itself reports sick."""
        tree = self.db.shards[shard]
        if tree.read_only:
            self.breakers[shard].force_open(
                now_us, f"shard read-only: {tree.read_only_reason}")

    def shard_health(self, shard: int) -> Dict[str, object]:
        """Overload-side health fields merged into ``ShardedDB.health()``."""
        counters = self.shard_counters[shard]
        out: Dict[str, object] = {
            "breaker": self.breakers[shard].state,
            "queue_depth": len(self.servers[shard].queue),
            "shed": counters["shed"],
            "expired": counters["expired"],
            "deadline_exceeded": counters["deadline"],
        }
        summary = getattr(self.db.shards[shard], "replication_summary", None)
        if summary is not None:
            # Replicated shard: surface roles and lag next to the
            # breaker, the two signals an operator correlates during a
            # failover ("breaker open, primary changed, lag draining").
            repl = summary()
            out["replica_roles"] = repl["roles"]
            out["replicas_alive"] = repl["alive"]
            out["replication_lag"] = repl["max_lag_frames"]
        return out

    def metrics(self) -> MetricsRegistry:
        """The gateway's own registry (queue delay / service / request)."""
        return self.registry
