"""ShardedDB: a scale-out front-end over N independent LSM-trees.

The paper's testbed is one LSM-tree; a serving deployment partitions
the key space over many, because each shard gets its own memtable,
WAL, compaction schedule and (smaller) levels — shallower trees mean
fewer probes per lookup, and independent shards are the unit that
scales across cores or machines.  :class:`ShardedDB` reproduces that
layer in-process: a :class:`~repro.service.router.HashRouter` assigns
every key to one :class:`~repro.lsm.db.LSMTree` shard, point operations
route directly, batches split into one group commit per shard touched,
and range scans merge the per-shard sorted results.

The front-end mirrors the single-tree surface (``put``/``get``/
``delete``/``write``/``scan``/``flush``/``close``), so workload drivers
— :func:`repro.workloads.ycsb.replay` in particular — run unchanged
against either; ``tests/test_service.py`` exploits exactly that to
check ShardedDB against a single-tree oracle.
"""

from __future__ import annotations

import heapq
from operator import itemgetter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import InvalidOptionError, ReproError
from repro.lsm.db import LSMTree
from repro.lsm.record import KIND_VALUE
from repro.lsm.scrub import ScrubReport
from repro.lsm.options import Options
from repro.lsm.write_batch import WriteBatch
from repro.obs.registry import MetricsRegistry, global_registry
from repro.obs.trace import Tracer
from repro.service.replication import (
    ReplicaGroup,
    ReplicationConfig,
    VirtualClock,
)
from repro.service.router import HashRouter
from repro.storage.block_device import BlockDevice
from repro.storage.stats import Stats


class ShardedDB:
    """Hash-partitioned key-value store over ``num_shards`` LSM-trees.

    Every shard is a full :class:`~repro.lsm.db.LSMTree` with its own
    device (fresh :class:`~repro.storage.block_device.MemoryBlockDevice`
    instances unless ``devices`` supplies one per shard) and its own
    :class:`~repro.storage.stats.Stats` registry; :attr:`stats`
    aggregates them on demand.  ``options`` applies uniformly — including
    ``cache_bytes``, which therefore provisions one block cache *per
    shard*.
    """

    def __init__(self, num_shards: int = 4,
                 options: Optional[Options] = None,
                 devices: Optional[Sequence] = None,
                 observe: bool = True,
                 sample_every: int = 0,
                 metrics_sink: Optional[MetricsRegistry] = None,
                 replication: Optional[ReplicationConfig] = None) -> None:
        self.router = HashRouter(num_shards)
        self.options = options if options is not None else Options()
        self.replication = replication
        if devices is not None and len(devices) != num_shards:
            raise InvalidOptionError(
                f"got {len(devices)} devices for {num_shards} shards")
        if replication is not None:
            # Replicated fleet: each shard is a ReplicaGroup of R trees
            # on R devices, all on one shared virtual clock (the
            # failure detector's timeline).  ``devices``, when given,
            # is one sequence of R devices per shard.
            self.clock = VirtualClock()
            self.shards: List = [
                ReplicaGroup(i, self.options, replication,
                             devices=devices[i] if devices is not None
                             else None,
                             clock=self.clock)
                for i in range(num_shards)
            ]
        else:
            self.shards = [
                LSMTree(self.options,
                        device=devices[i] if devices is not None else None)
                for i in range(num_shards)
            ]
        #: Set by :class:`repro.service.gateway.Gateway` when one is
        #: attached; :meth:`health` then reports breaker/queue state.
        self._gateway = None
        self._init_observability(observe, sample_every, metrics_sink)

    def _init_observability(self, observe: bool, sample_every: int,
                            metrics_sink: Optional[MetricsRegistry]) -> None:
        """Attach one tracer (with its own registry) per shard.

        Each shard records latencies into a *private*
        :class:`~repro.obs.registry.MetricsRegistry`, mirroring a
        deployment where every shard exports its own metrics;
        :meth:`metrics` folds them together with the exact histogram
        merge, so fleet-wide percentiles are lossless.  On
        :meth:`close` the merged registry is folded into
        ``metrics_sink`` (the global registry by default) so bench
        reports see sharded runs too.
        """
        self.registries: List[MetricsRegistry] = []
        self.tracers: List[Tracer] = []
        self._metrics_sink = metrics_sink
        self._metrics_flushed = False
        if not observe:
            return
        for shard in self.shards:
            registry = MetricsRegistry()
            tracer = Tracer(sample_every=sample_every, registry=registry)
            shard.stats.attach_tracer(tracer)
            self.registries.append(registry)
            self.tracers.append(tracer)

    @classmethod
    def reopen(cls, num_shards: int, options: Options,
               devices: Sequence[BlockDevice], *,
               use_manifest: Optional[bool] = None,
               observe: bool = True,
               sample_every: int = 0,
               metrics_sink: Optional[MetricsRegistry] = None
               ) -> "ShardedDB":
        """Rebuild every shard from its device (crash recovery).

        Each shard recovers *independently* from its own MANIFEST
        version log (or by directory scan where none survives) plus its
        own WAL — exactly like :meth:`repro.lsm.db.LSMTree.reopen` for
        a single tree.  Because manifests are per-shard, a torn or
        corrupt log on one shard degrades only that shard's recovery;
        the others still restore their persisted models untouched.
        """
        if len(devices) != num_shards:
            raise InvalidOptionError(
                f"got {len(devices)} devices for {num_shards} shards")
        db = cls.__new__(cls)
        db.router = HashRouter(num_shards)
        db.options = options
        db.replication = None
        db._gateway = None
        db.registries = []
        db.tracers = []
        db._metrics_sink = metrics_sink
        db._metrics_flushed = False
        tracers: List[Optional[Tracer]] = [None] * num_shards
        if observe:
            # Tracers exist before the shards recover, so each shard's
            # cold open is recorded as a per-shard "recovery" span.
            for i in range(num_shards):
                registry = MetricsRegistry()
                tracers[i] = Tracer(sample_every=sample_every,
                                    registry=registry)
                db.registries.append(registry)
                db.tracers.append(tracers[i])
        db.shards = [LSMTree.reopen(options, device,
                                    use_manifest=use_manifest,
                                    tracer=tracers[i])
                     for i, device in enumerate(devices)]
        return db

    # -- routing -------------------------------------------------------

    @property
    def num_shards(self) -> int:
        """How many shards the key space is partitioned over."""
        return self.router.num_shards

    def shard_for(self, key: int) -> int:
        """The shard index owning ``key``."""
        return self.router.shard_for(key)

    # -- point operations ----------------------------------------------

    def put(self, key: int, value: bytes) -> None:
        """Insert or overwrite ``key`` on its owning shard."""
        self.shards[self.router.shard_for(key)].put(key, value)

    def get(self, key: int) -> Optional[bytes]:
        """Point lookup; None when absent or deleted."""
        return self.shards[self.router.shard_for(key)].get(key)

    def delete(self, key: int) -> None:
        """Delete ``key`` (writes a tombstone on its owning shard)."""
        self.shards[self.router.shard_for(key)].delete(key)

    def multi_get(self, keys: Sequence[int],
                  coalesce: Optional[bool] = None,
                  errors: Optional[Dict[int, ReproError]] = None,
                  ) -> List[Optional[bytes]]:
        """Batched point lookups; results reassembled in request order.

        The batch is partitioned per owning shard, each shard absorbs
        its sub-batch through one :meth:`~repro.lsm.db.LSMTree.multi_get`
        (amortized level walks, coalesced segment reads), and the
        per-shard results are stitched back into the caller's order —
        duplicates included.  ``errors`` gives per-key fault isolation,
        exactly as on the single tree: a quarantined key lands in the
        dict (and its slot holds the exception) while every other key —
        including the rest of the same shard's sub-batch — resolves.
        """
        parts: Dict[int, List[int]] = {}
        for key in keys:
            parts.setdefault(self.router.shard_for(key), []).append(key)
        resolved: Dict[int, Optional[bytes]] = {}
        for shard, part in sorted(parts.items()):
            values = self.shards[shard].multi_get(part, coalesce=coalesce,
                                                  errors=errors)
            resolved.update(zip(part, values))
        return [resolved[key] for key in keys]

    # -- batched writes ------------------------------------------------

    def write(self, batch: WriteBatch) -> int:
        """Apply ``batch``, split shard-by-shard; returns records applied.

        Each shard touched absorbs its sub-batch through one WAL group
        commit, so a K-record batch over S shards costs exactly
        ``min(S, shards touched)`` commits.  Atomicity is therefore
        per-shard (as in any sharded store without a distributed
        transaction log); per-key semantics are unaffected because a
        key always lives on exactly one shard.

        Rejection is all-or-nothing: *every* touched shard is checked
        (writable, values within capacity) before the *first* group
        commit, so a batch that any shard would refuse raises with no
        shard mutated — an acknowledgment never covers a partial
        cross-shard application.  Mid-commit device faults can still
        degrade a shard after earlier shards committed (that is the
        no-distributed-log trade-off), but a *refusal* the front-end
        can predict never splits a batch.
        """
        split = sorted(self.router.split(batch).items())
        for shard, part in split:
            tree = self.shards[shard]
            tree._check_open()
            tree._check_writable()
            for kind, _, value in part:
                if kind == KIND_VALUE \
                        and len(value) > self.options.value_capacity:
                    raise InvalidOptionError(
                        f"value of {len(value)} bytes exceeds "
                        f"value_capacity {self.options.value_capacity}")
        applied = 0
        for shard, part in split:
            applied += self.shards[shard].write(part)
        return applied

    # -- range lookups -------------------------------------------------

    def scan(self, start_key: int, count: int) -> List[Tuple[int, bytes]]:
        """Global range lookup: ``count`` live entries from ``start_key``.

        Every shard returns its own first ``count`` entries at or above
        ``start_key``; a k-way merge of those sorted, disjoint runs
        yields the global prefix.  Per-shard truncation is safe: an
        entry a shard did *not* return is preceded by ``count`` entries
        of that shard alone, so it can never appear in the merged first
        ``count``.
        """
        runs = [shard.scan(start_key, count) for shard in self.shards]
        merged = heapq.merge(*runs, key=itemgetter(0))
        return [pair for _, pair in zip(range(count), merged)]

    def bulk_ingest(self, keys, value_for=None, seed: int = 0) -> None:
        """Offline leveled fill of every shard (benchmark loading).

        Partitions sorted unique ``keys`` by owning shard and delegates
        to each shard's :meth:`~repro.lsm.db.LSMTree.bulk_ingest`, so a
        sharded benchmark database is built without compaction churn.
        """
        for shard, part in zip(self.shards,
                               self.router.partition_keys(keys)):
            if part:
                shard.bulk_ingest(sorted(part), value_for=value_for,
                                  seed=seed)

    # -- maintenance -----------------------------------------------------

    def flush(self) -> None:
        """Flush every shard's memtable and run due compactions."""
        for shard in self.shards:
            shard.flush()

    def maybe_compact(self) -> None:
        """Run compactions on every shard until capacities are met."""
        for shard in self.shards:
            shard.maybe_compact()

    def tick(self, now_us: float) -> None:
        """Advance every replica group's failure detector to ``now_us``.

        A no-op for unreplicated fleets.  The gateway's open-loop
        scheduler calls this at every heartbeat interval; closed-loop
        drivers call it directly as their simulated clock advances.
        """
        if self.replication is None:
            return
        self.clock.advance_to(now_us)
        for shard in self.shards:
            shard.tick(now_us)

    def anti_entropy(self) -> ScrubReport:
        """Scrub + divergence repair on every replica group.

        Falls back to a plain :meth:`scrub` for unreplicated fleets, so
        operator tooling can call one entry point either way.
        """
        if self.replication is None:
            return self.scrub()
        report = ScrubReport()
        for shard in self.shards:
            report.merge(shard.anti_entropy())
        return report

    def health(self) -> Dict[str, object]:
        """Fleet health: overall status plus one entry per shard.

        ``status`` is ``ok`` only when every shard reports ``ok``; a
        single degraded or read-only shard degrades the fleet summary
        while the per-shard list tells an operator exactly where to
        look.  Keys on healthy shards are unaffected — that isolation
        is the point of sharding.  Replicated shards additionally
        report per-replica roles, liveness and lag (see
        :meth:`ReplicaGroup.health`); a shard with every replica dead
        reports ``down``, the worst fleet status.
        """
        shards = []
        for i, shard in enumerate(self.shards):
            entry: Dict[str, object] = {"shard": i}
            entry.update(shard.health())
            if self._gateway is not None:
                # Overload is a health dimension too: an operator
                # looking at a "healthy" shard shedding half its queue
                # needs to see that here, not only in bench reports.
                entry.update(self._gateway.shard_health(i))
            shards.append(entry)
        worst = "ok"
        for status in ("degraded", "read_only", "down"):
            if any(entry["status"] == status for entry in shards):
                worst = status
        return {"status": worst, "shards": shards}

    def scrub(self) -> ScrubReport:
        """Scrub every shard; returns the merged repair report."""
        report = ScrubReport()
        for shard in self.shards:
            report.merge(shard.scrub())
        return report

    def checkpoint(self) -> Dict[str, float]:
        """Checkpoint every shard; returns aggregated persistence totals.

        Each shard flushes its memtable and compacts its MANIFEST to a
        single snapshot edit, so a subsequent
        :meth:`reopen` replays one record per shard and deserializes
        every persisted model — zero training across the whole fleet.
        """
        total: Dict[str, float] = {}
        for shard in self.shards:
            for name, value in shard.checkpoint().items():
                total[name] = total.get(name, 0.0) + value
        return total

    def close(self) -> None:
        """Release every shard and fold metrics into the sink."""
        for shard in self.shards:
            shard.close()
        self._flush_metrics()

    def _flush_metrics(self) -> None:
        """Merge per-shard registries into the metrics sink, once.

        The sink defaults to the process-wide registry so sharded runs
        show up in bench reports alongside single-tree runs.
        """
        if self._metrics_flushed or not self.registries:
            return
        self._metrics_flushed = True
        sink = (self._metrics_sink if self._metrics_sink is not None
                else global_registry())
        sink.merge(self.metrics())

    # -- aggregated introspection ----------------------------------------

    @property
    def stats(self) -> Stats:
        """A fresh registry holding the sum of every shard's stats."""
        total = Stats()
        for shard in self.shards:
            total.merge(shard.stats)
        return total

    def metrics(self) -> MetricsRegistry:
        """Fleet-wide metrics: every shard's registry, merged exactly.

        Histogram buckets add, so the merged percentiles are identical
        to a single histogram that observed every shard's samples —
        no bucket re-quantization, no percentile-of-percentiles
        approximation (``tests/test_obs.py`` property-tests this).
        """
        merged = MetricsRegistry()
        for registry in self.registries:
            merged.merge(registry)
        for shard in self.shards:
            # Replica groups keep their own registry (the failover-time
            # histogram lives there); fold it in so ``repl.failover``
            # shows up next to request latencies.
            group_registry = getattr(shard, "registry", None)
            if group_registry is not None:
                merged.merge(group_registry)
        return merged

    def entry_count(self) -> int:
        """Total entries across all shards (incl. stale versions)."""
        return sum(shard.entry_count() for shard in self.shards)

    def memory_breakdown(self) -> Dict[str, int]:
        """Bytes per in-memory component, summed over shards."""
        total: Dict[str, int] = {}
        for shard in self.shards:
            for component, nbytes in shard.memory_breakdown().items():
                total[component] = total.get(component, 0) + nbytes
        return total

    def cache_hit_rate(self) -> float:
        """Aggregate block-cache hit fraction across shards."""
        return self.stats.cache_hit_rate()

    def describe_shards(self) -> List[Dict[str, float]]:
        """Shape summary per shard (entries, files, read time)."""
        out = []
        for index, shard in enumerate(self.shards):
            levels = shard.describe_levels()
            out.append({
                "shard": index,
                "entries": shard.entry_count(),
                "files": sum(row["files"] for row in levels),
                "levels": len(levels),
                "read_us": shard.stats.read_time(),
            })
        return out

    def shard_balance(self) -> float:
        """Max/mean entry-count ratio (1.0 = perfectly even spread)."""
        counts = [shard.entry_count() for shard in self.shards]
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 1.0
