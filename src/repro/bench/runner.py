"""Experiment scales and shared run helpers.

The paper runs 6.4 M x ~1 KiB entries with 1 M operations per
experiment on an NVMe testbed.  A Python reproduction keeps every
*ratio* (SSTable/buffer, level fan-out, boundary sweep, ops/keys) while
scaling absolute volume down.  A :class:`Scale` preset bundles the
scaled parameters; ``paper_sstable_bytes`` maps the paper's "8 MiB ..
128 MiB SSTable" axis onto the preset's proportional sizes.

Presets:

* ``smoke`` — seconds-level runs for the pytest-benchmark suite;
* ``small`` — the default for CLI runs (a few minutes for the full
  figure set);
* ``medium`` — closer to paper-shaped entry sizes (1 KiB entries).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.config import BenchConfig
from repro.core.testbed import Testbed
from repro.errors import BenchmarkError
from repro.indexes.registry import IndexKind
from repro.lsm.options import Granularity


@dataclass(frozen=True)
class Scale:
    """One scaled-down rendition of the paper's experimental setup."""

    name: str
    #: Keys loaded before measured phases.
    n_keys: int
    #: Operations per measured phase.
    n_ops: int
    #: Value slot bytes (entry = 20 + this).
    value_capacity: int
    #: Write buffer bytes.
    write_buffer_bytes: int
    #: Bytes standing in for one paper-MiB of SSTable.
    sstable_unit_bytes: int
    #: Default SSTable size (the paper's 64 MiB default, scaled).
    default_sstable_bytes: int
    #: Level size ratio.
    size_ratio: int = 10
    seed: int = 42

    @property
    def entry_bytes(self) -> int:
        """On-disk entry size at this scale."""
        return 20 + self.value_capacity

    def paper_sstable_bytes(self, paper_mib: int) -> int:
        """Scaled SSTable size equivalent to ``paper_mib`` MiB."""
        return paper_mib * self.sstable_unit_bytes

    def config(self, kind: IndexKind, boundary: int,
               granularity: Granularity = Granularity.FILE,
               sstable_bytes: Optional[int] = None,
               dataset: str = "random",
               size_ratio: Optional[int] = None) -> BenchConfig:
        """A BenchConfig at this scale."""
        return BenchConfig(
            index_kind=kind,
            position_boundary=boundary,
            granularity=granularity,
            sstable_bytes=(sstable_bytes if sstable_bytes is not None
                           else self.default_sstable_bytes),
            write_buffer_bytes=self.write_buffer_bytes,
            value_capacity=self.value_capacity,
            size_ratio=size_ratio if size_ratio is not None
            else self.size_ratio,
            dataset=dataset,
            n_keys=self.n_keys,
            seed=self.seed,
        )


SCALES: Dict[str, Scale] = {
    # Data blocks scale with the entry (4 entries/block, the paper's
    # 1 KiB-entry / 4 KiB-block ratio) — see BenchConfig.to_options.
    # entry 128 B -> 512 B blocks.
    "smoke": Scale(name="smoke", n_keys=12_000, n_ops=1_500,
                   value_capacity=108, write_buffer_bytes=32 * 1024,
                   sstable_unit_bytes=2 * 1024,
                   default_sstable_bytes=128 * 1024, size_ratio=6),
    # entry 256 B -> 1 KiB blocks.
    "small": Scale(name="small", n_keys=80_000, n_ops=8_000,
                   value_capacity=236, write_buffer_bytes=256 * 1024,
                   sstable_unit_bytes=16 * 1024,
                   default_sstable_bytes=1024 * 1024, size_ratio=10),
    # entry 1 KiB, the paper's entry size -> the real 4 KiB block.
    "medium": Scale(name="medium", n_keys=200_000, n_ops=15_000,
                    value_capacity=1004, write_buffer_bytes=2 * 1024 * 1024,
                    sstable_unit_bytes=128 * 1024,
                    default_sstable_bytes=8 * 1024 * 1024, size_ratio=10),
}


def get_scale(name_or_scale) -> Scale:
    """Resolve a scale by name (or pass a Scale through)."""
    if isinstance(name_or_scale, Scale):
        return name_or_scale
    try:
        return SCALES[str(name_or_scale)]
    except KeyError:
        valid = ", ".join(sorted(SCALES))
        raise BenchmarkError(
            f"unknown scale {name_or_scale!r}; expected one of: {valid}"
        ) from None


def sample_queries(keys: Sequence[int], n_ops: int,
                   seed: int = 7) -> List[int]:
    """Uniform with-replacement query sample from existing keys."""
    rng = random.Random(seed)
    return [keys[rng.randrange(len(keys))] for _ in range(n_ops)]


def loaded_testbed(config: BenchConfig, keys: Sequence[int],
                   bulk: bool = True, options=None,
                   observe: bool = True, sample_every: int = 0,
                   registry=None) -> Testbed:
    """A testbed with ``keys`` loaded (bulk by default).

    ``options`` overrides the engine options derived from ``config``
    (used by experiments that pin the paper's entry size).
    ``observe``/``sample_every``/``registry`` pass through to
    :class:`~repro.core.testbed.Testbed` (the default feeds the
    process-wide metrics registry).
    """
    bed = Testbed(options if options is not None else config.to_options(),
                  seed=config.seed, observe=observe,
                  sample_every=sample_every, registry=registry)
    if bulk:
        bed.bulk_load(keys)
    else:
        bed.load_keys(keys)
    return bed


def with_paper_entries(scale: Scale, config: BenchConfig):
    """Engine options with the paper's ~1 KiB entries at this scale.

    Entry *counts* per buffer/SSTable stay the scale's, so flush and
    compaction cadence is unchanged; only byte volumes grow.  Needed
    whenever a result depends on the KV-byte-to-CPU ratio (compaction
    training shares, range-scan byte costs).
    """
    entry_scale = max(1, 1024 // scale.entry_bytes)
    return config.to_options().with_changes(
        value_capacity=1004,
        write_buffer_bytes=scale.write_buffer_bytes * entry_scale,
        sstable_bytes=config.sstable_bytes * entry_scale,
        data_block_bytes=4 * 1024)
