"""Table 1 — point-lookup stage times for PLR across SSTable sizes.

The paper's Table 1 details one PLR configuration (position boundary
10) at SSTable sizes 4, 32 and 128 MiB:

* disk I/O ~2.1 us/op dominates and is independent of table size;
* prediction and in-segment binary search sit near 0.15 us each;
* table lookup (finding the SSTable, bloom probes) *shrinks* as tables
  grow — fewer files to search.

This experiment reproduces the same four rows at scaled SSTable sizes.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.bench.report import ExperimentResult, ResultTable
from repro.bench.runner import get_scale, loaded_testbed, sample_queries
from repro.indexes.registry import IndexKind
from repro.storage.stats import Stage
from repro.workloads import datasets as ds

EXPERIMENT_ID = "table1"
TITLE = "Point-lookup stage times, PLR (Table 1)"

_STAGES = (
    ("Table Lookup", Stage.TABLE_LOOKUP),
    ("Prediction", Stage.PREDICTION),
    ("Disk I/O", Stage.IO),
    ("Binary Search", Stage.SEARCH),
)


def run(scale="smoke", dataset: str = "random",
        boundary: int = 10,
        paper_mib_sizes: Sequence[int] = (4, 32, 128)) -> ExperimentResult:
    """Measure the four stages at several SSTable sizes."""
    scale = get_scale(scale)
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    result.note(f"scale={scale.name}, PLR at boundary {boundary}; SSTable "
                "sizes are paper-MiB equivalents")
    keys = ds.generate(dataset, scale.n_keys, seed=scale.seed)
    queries = sample_queries(keys, scale.n_ops, seed=scale.seed + 1)

    per_sst: Dict[int, Dict[Stage, float]] = {}
    for mib in paper_mib_sizes:
        bed = loaded_testbed(
            scale.config(IndexKind.PLR, boundary,
                         sstable_bytes=scale.paper_sstable_bytes(mib),
                         dataset=dataset), keys)
        metrics = bed.run_point_lookups(queries)
        per_sst[mib] = {stage: metrics.stage_avg_us(stage)
                        for _, stage in _STAGES}
        bed.close()

    table = ResultTable(
        columns=["process"] + [f"SST={mib}MiB" for mib in paper_mib_sizes],
        float_digits=3)
    for label, stage in _STAGES:
        table.add_row(label, *[per_sst[mib][stage]
                               for mib in paper_mib_sizes])
    result.add_table("us per op (paper Table 1 reports 2.1/0.15/0.16 us "
                     "for IO/prediction/search)", table)

    smallest, largest = paper_mib_sizes[0], paper_mib_sizes[-1]
    io_vals = [per_sst[mib][Stage.IO] for mib in paper_mib_sizes]
    result.check(
        "disk I/O flat across SSTable sizes",
        (max(io_vals) - min(io_vals)) / max(io_vals) < 0.15,
        f"io={['%.2f' % v for v in io_vals]}")
    result.check(
        "disk I/O dominates every CPU stage (paper: ~10x prediction)",
        all(per_sst[mib][Stage.IO] > 4 * per_sst[mib][Stage.PREDICTION]
            for mib in paper_mib_sizes))
    result.check(
        "table lookup shrinks as SSTables grow (fewer files)",
        per_sst[largest][Stage.TABLE_LOOKUP]
        <= per_sst[smallest][Stage.TABLE_LOOKUP] + 1e-9,
        f"{per_sst[smallest][Stage.TABLE_LOOKUP]:.3f} -> "
        f"{per_sst[largest][Stage.TABLE_LOOKUP]:.3f} us")
    result.check(
        "binary search stable across SSTable sizes (bounded by boundary)",
        (max(per_sst[mib][Stage.SEARCH] for mib in paper_mib_sizes)
         - min(per_sst[mib][Stage.SEARCH] for mib in paper_mib_sizes)) < 0.1)
    return result
