"""Experiment registry: one module per paper figure/table.

``EXPERIMENTS`` maps experiment ids to their ``run`` callables; every
``run(scale=..., **axes)`` returns a
:class:`~repro.bench.report.ExperimentResult` with the tables the
paper's figure plots plus the qualitative shape checks it states.
"""

from typing import Callable, Dict

from repro.bench.experiments import (
    ablations,
    blocks_study,
    fig5_dataset_cdfs,
    fig6_boundary_sweep,
    fig7_breakdown,
    fig8_granularity,
    fig9_compaction,
    fig10_level_overhead,
    fig11_range_lookup,
    fig12_ycsb,
    faults_study,
    hardware_study,
    multiget_study,
    obs_study,
    overload_study,
    recovery_study,
    replication_study,
    service_study,
    table1_stage_times,
    tiering_study,
    unclustered_study,
)

EXPERIMENTS: Dict[str, Callable] = {
    ablations.EXPERIMENT_ID: ablations.run,
    fig5_dataset_cdfs.EXPERIMENT_ID: fig5_dataset_cdfs.run,
    fig6_boundary_sweep.EXPERIMENT_ID: fig6_boundary_sweep.run,
    fig7_breakdown.EXPERIMENT_ID: fig7_breakdown.run,
    fig8_granularity.EXPERIMENT_ID: fig8_granularity.run,
    fig9_compaction.EXPERIMENT_ID: fig9_compaction.run,
    fig10_level_overhead.EXPERIMENT_ID: fig10_level_overhead.run,
    table1_stage_times.EXPERIMENT_ID: table1_stage_times.run,
    fig11_range_lookup.EXPERIMENT_ID: fig11_range_lookup.run,
    fig12_ycsb.EXPERIMENT_ID: fig12_ycsb.run,
    unclustered_study.EXPERIMENT_ID: unclustered_study.run,
    tiering_study.EXPERIMENT_ID: tiering_study.run,
    hardware_study.EXPERIMENT_ID: hardware_study.run,
    service_study.EXPERIMENT_ID: service_study.run,
    multiget_study.EXPERIMENT_ID: multiget_study.run,
    recovery_study.EXPERIMENT_ID: recovery_study.run,
    blocks_study.EXPERIMENT_ID: blocks_study.run,
    faults_study.EXPERIMENT_ID: faults_study.run,
    obs_study.EXPERIMENT_ID: obs_study.run,
    overload_study.EXPERIMENT_ID: overload_study.run,
    replication_study.EXPERIMENT_ID: replication_study.run,
}

TITLES: Dict[str, str] = {
    ablations.EXPERIMENT_ID: ablations.TITLE,
    fig5_dataset_cdfs.EXPERIMENT_ID: fig5_dataset_cdfs.TITLE,
    fig6_boundary_sweep.EXPERIMENT_ID: fig6_boundary_sweep.TITLE,
    fig7_breakdown.EXPERIMENT_ID: fig7_breakdown.TITLE,
    fig8_granularity.EXPERIMENT_ID: fig8_granularity.TITLE,
    fig9_compaction.EXPERIMENT_ID: fig9_compaction.TITLE,
    fig10_level_overhead.EXPERIMENT_ID: fig10_level_overhead.TITLE,
    table1_stage_times.EXPERIMENT_ID: table1_stage_times.TITLE,
    fig11_range_lookup.EXPERIMENT_ID: fig11_range_lookup.TITLE,
    fig12_ycsb.EXPERIMENT_ID: fig12_ycsb.TITLE,
    unclustered_study.EXPERIMENT_ID: unclustered_study.TITLE,
    tiering_study.EXPERIMENT_ID: tiering_study.TITLE,
    hardware_study.EXPERIMENT_ID: hardware_study.TITLE,
    service_study.EXPERIMENT_ID: service_study.TITLE,
    multiget_study.EXPERIMENT_ID: multiget_study.TITLE,
    recovery_study.EXPERIMENT_ID: recovery_study.TITLE,
    blocks_study.EXPERIMENT_ID: blocks_study.TITLE,
    faults_study.EXPERIMENT_ID: faults_study.TITLE,
    obs_study.EXPERIMENT_ID: obs_study.TITLE,
    overload_study.EXPERIMENT_ID: overload_study.TITLE,
    replication_study.EXPERIMENT_ID: replication_study.TITLE,
}

__all__ = ["EXPERIMENTS", "TITLES"]
