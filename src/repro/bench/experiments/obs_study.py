"""Observability study — tracing purity, sampling, and tail shape.

Beyond the paper: it reports per-stage *means*, but learned-index
regressions live in the tail (a mispredicted segment costs extra
blocks on exactly the unlucky keys), and a serving deployment watches
p99, not averages.  This experiment sweeps trace sampling rate x index
granularity over a YCSB-A Zipfian mix and validates the observability
layer's core contracts:

* **Purity** — the tracer observes :class:`~repro.storage.stats.Stats`
  charges, never mutates them: a fully-traced run must produce exactly
  the counters and stage times of an untraced run of the same seed
  (so enabling tracing adds zero simulated time).
* **Tail shape** — p50 <= p99 <= p999 for every op type in every cell
  (histograms are monotone in rank by construction; this catches
  bucket-math regressions).
* **Coverage** — every root operation of the measured phase lands in a
  histogram: get+put sample counts equal the operation count,
  regardless of sampling (sampling affects span *retention* only).
* **Bounded retention** — slowest-span exemplars stay within capacity
  and sorted; 1-in-N sampling keeps monotonically fewer spans as N
  grows, and none when disabled.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.report import ExperimentResult, ResultTable
from repro.bench.runner import get_scale, loaded_testbed
from repro.indexes.registry import IndexKind
from repro.lsm.options import Granularity
from repro.obs.registry import MetricsRegistry, global_registry
from repro.workloads import datasets as ds
from repro.workloads.ycsb import workload

EXPERIMENT_ID = "obs"
TITLE = "Observability: trace sampling x granularity, latency tails"


def run(scale="smoke", dataset: str = "random",
        kind: IndexKind = IndexKind.PGM,
        boundary: int = 32,
        sample_rates: Sequence[int] = (0, 1, 16, 256)) -> ExperimentResult:
    """Sweep sampling rate x granularity on YCSB-A Zipfian."""
    scale = get_scale(scale)
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    keys = ds.generate(dataset, scale.n_keys, seed=scale.seed)
    n_ops = scale.n_ops
    result.note(f"scale={scale.name}: {scale.n_keys} keys, {n_ops} YCSB-A "
                f"Zipfian ops per cell, index={kind}, boundary={boundary}")

    table = ResultTable(columns=["granularity", "sample_every",
                                 "get_p50_us", "get_p99_us", "get_p999_us",
                                 "put_p99_us", "sampled", "exemplars",
                                 "windows"])
    purity_ok = True
    purity_detail = []
    tails_ok = True
    tail_detail = []
    coverage_ok = True
    coverage_detail = []
    retention_ok = True
    retention_detail = []

    for granularity in (Granularity.FILE, Granularity.LEVEL):
        config = scale.config(kind, boundary, granularity=granularity,
                              dataset=dataset)
        # Untraced reference: what the stats registry must equal.
        ref = loaded_testbed(config, keys, observe=False)
        ref.run_ycsb(workload("A", keys, seed=scale.seed + 23), n_ops)
        ref_counters = dict(ref.db.stats.counters)
        ref_stages = dict(ref.db.stats.stage_us)
        ref.close()

        kept_by_rate = {}
        for sample_every in sample_rates:
            registry = MetricsRegistry()
            bed = loaded_testbed(config, keys, observe=True,
                                 sample_every=sample_every,
                                 registry=registry)
            phase = bed.run_ycsb(
                workload("A", keys, seed=scale.seed + 23), n_ops,
                window_ops=max(1, n_ops // 5))

            same = (dict(bed.db.stats.counters) == ref_counters
                    and dict(bed.db.stats.stage_us) == ref_stages)
            purity_ok = purity_ok and same
            if not same:
                purity_detail.append(
                    f"{granularity}/N={sample_every} diverged")

            pct = phase.percentiles or {}
            for op, row in pct.items():
                if not (row["p50"] <= row["p99"] <= row["p999"]):
                    tails_ok = False
                    tail_detail.append(
                        f"{granularity}/N={sample_every} {op}: "
                        f"p50={row['p50']:.2f} p99={row['p99']:.2f} "
                        f"p999={row['p999']:.2f}")

            recorded = sum(int(row["count"]) for op, row in pct.items()
                           if op in ("get", "put"))
            if recorded != n_ops:
                coverage_ok = False
                coverage_detail.append(
                    f"{granularity}/N={sample_every}: "
                    f"{recorded} != {n_ops}")

            exemplars = registry.exemplars()
            bounded = (len(exemplars) <= registry.exemplar_capacity
                       and all(a.total_us >= b.total_us for a, b in
                               zip(exemplars, exemplars[1:])))
            retention_ok = retention_ok and bounded
            if not bounded:
                retention_detail.append(
                    f"{granularity}/N={sample_every}: exemplars unsorted "
                    f"or over capacity ({len(exemplars)})")
            kept_by_rate[sample_every] = len(registry.sampled)

            get_row = pct.get("get", {})
            table.add_row(str(granularity), sample_every,
                          get_row.get("p50", 0.0), get_row.get("p99", 0.0),
                          get_row.get("p999", 0.0),
                          pct.get("put", {}).get("p99", 0.0),
                          len(registry.sampled), len(exemplars),
                          len(registry.windows))
            # Cells measure in private registries (so sampling counts
            # stay per-cell); fold them into the process-wide sink so
            # the CLI's percentile/waterfall sections and exports see
            # this experiment too.
            global_registry().merge(registry)
            bed.close()

        # Sampling keeps fewer spans as N grows; zero when disabled.
        enabled = sorted(rate for rate in kept_by_rate if rate > 0)
        monotone = (kept_by_rate.get(0, 0) == 0
                    and all(kept_by_rate[a] >= kept_by_rate[b] > 0
                            for a, b in zip(enabled, enabled[1:])))
        retention_ok = retention_ok and monotone
        if not monotone:
            retention_detail.append(
                f"{granularity}: kept {kept_by_rate}")

    result.add_table("Observability sweep (YCSB-A Zipfian)", table)
    result.check(
        "tracing is a pure observer: traced stats equal untraced stats",
        purity_ok, "; ".join(purity_detail))
    result.check(
        "p50 <= p99 <= p999 for every op type in every cell",
        tails_ok, "; ".join(tail_detail[:4]))
    result.check(
        "every phase operation lands in a histogram (get+put == ops)",
        coverage_ok, "; ".join(coverage_detail[:4]))
    result.check(
        "span retention is bounded: top-K exemplars, 1-in-N sampling",
        retention_ok, "; ".join(retention_detail[:4]))
    return result
