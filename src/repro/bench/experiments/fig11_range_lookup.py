"""Figure 11 — range lookups across range lengths and boundaries.

Range lookups have two phases: seeking the start key (where learned
indexes help, exactly like a point lookup) and sequentially fetching
the range (where they cannot help).  The paper shows the consequence:
for short ranges the boundary matters and learned indexes keep their
memory-latency edge; as ranges grow, scan cost dominates, latencies
converge across index types and boundaries, and the advantage fades.
"""

from __future__ import annotations

import random
from typing import Dict, Sequence, Tuple

from repro.bench.report import ExperimentResult, ResultTable
from repro.bench.runner import get_scale, loaded_testbed, with_paper_entries
from repro.indexes.registry import ALL_KINDS, IndexKind
from repro.workloads import datasets as ds

EXPERIMENT_ID = "fig11"
TITLE = "Range lookup latency vs boundary and range length (Figure 11)"


def run(scale="smoke", dataset: str = "random",
        kinds: Sequence[IndexKind] = ALL_KINDS,
        boundaries: Sequence[int] = (128, 32, 8),
        range_lengths: Sequence[int] = (2, 128, 512)) -> ExperimentResult:
    """Sweep (kind x boundary x range length) over scan workloads."""
    scale = get_scale(scale)
    n_scans = max(50, scale.n_ops // 10)
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    result.note(f"scale={scale.name}: {n_scans} scans per cell; entries "
                "fixed at the paper's ~1 KiB (scan cost is byte-driven)")
    keys = ds.generate(dataset, scale.n_keys, seed=scale.seed)
    rng = random.Random(scale.seed + 3)
    starts = [keys[rng.randrange(len(keys) - 1)] for _ in range(n_scans)]

    latency: Dict[Tuple[int, IndexKind, int], float] = {}
    memory: Dict[Tuple[IndexKind, int], float] = {}
    for kind in kinds:
        for boundary in boundaries:
            config = scale.config(kind, boundary, dataset=dataset)
            bed = loaded_testbed(config, keys,
                                 options=with_paper_entries(scale, config))
            memory[(kind, boundary)] = float(bed.memory().index_bytes)
            for length in range_lengths:
                metrics = bed.run_range_lookups(starts, length)
                latency[(length, kind, boundary)] = metrics.avg_us
            bed.close()

    for length in range_lengths:
        table = ResultTable(columns=["index", "boundary", "latency_us",
                                     "index_bytes"])
        for kind in kinds:
            for boundary in boundaries:
                table.add_row(kind.value, boundary,
                              latency[(length, kind, boundary)],
                              int(memory[(kind, boundary)]))
        result.add_table(f"range length = {length}", table)

    _shape_checks(result, latency, kinds, boundaries, range_lengths)
    return result


def _shape_checks(result, latency, kinds, boundaries, range_lengths) -> None:
    b_hi, b_lo = max(boundaries), min(boundaries)
    short, long = min(range_lengths), max(range_lengths)
    # The paper's observation is about learned indexes; probe PGM.
    kind = IndexKind.PGM if IndexKind.PGM in kinds else kinds[0]

    short_gain = (latency[(short, kind, b_hi)]
                  / max(1e-9, latency[(short, kind, b_lo)]))
    long_gain = (latency[(long, kind, b_hi)]
                 / max(1e-9, latency[(long, kind, b_lo)]))
    result.check(
        f"short ranges (len {short}) benefit strongly from tighter "
        "boundaries", short_gain > 1.5,
        f"lat({b_hi})/lat({b_lo}) = {short_gain:.2f}")
    result.check(
        f"long ranges (len {long}) barely benefit (scan dominates)",
        long_gain < 1.4 and (short_gain - 1.0) > 2 * (long_gain - 1.0),
        f"lat({b_hi})/lat({b_lo}) = {long_gain:.2f} "
        f"(short gain {short_gain:.2f})")

    # Latencies converge across index types as the range grows.
    def spread(length: int) -> float:
        values = [latency[(length, k, b_lo)] for k in kinds]
        return (max(values) - min(values)) / max(values)

    result.check(
        "index types converge on long ranges",
        spread(long) <= spread(short) + 0.05,
        f"spread short={spread(short):.2%} long={spread(long):.2%}")
