"""Faults study — availability under injected storage faults, and repair.

Beyond the paper: the testbed assumes a perfect device, but the
economics of learned indexes change if corruption makes whole tables
unreadable — a per-table model is embedded in the file it indexes,
while a level model survives the loss of any one file.  This
experiment drives the engine over a
:class:`~repro.storage.faults.FaultyBlockDevice` and measures what the
robustness machinery actually delivers:

* **Bit rot x granularity** — a sweep of rot rates against FILE and
  LEVEL index granularity.  Reads touching a rotted block fail with a
  typed :class:`~repro.errors.QuarantinedBlockError` while every other
  key keeps serving; availability must degrade *proportionally* to the
  fraction of rotted device blocks (never collapse), and a
  ``multi_get`` batch must isolate the poisoned keys instead of
  failing wholesale.  After the medium is "replaced" (rot disabled),
  a bounded number of :meth:`~repro.lsm.db.LSMTree.scrub` passes must
  return the database to full health with zero lost entries.
* **Transient errors** — a flaky bus cured by
  :class:`~repro.storage.retry.RetryPolicy`: every read succeeds, the
  retry counters show the recoveries, nothing escalates.
* **Disk full** — the engine degrades to read-only instead of
  failing reads: writes raise
  :class:`~repro.errors.ReadOnlyModeError`, lookups keep answering.
* **Power cuts** — WAL-acknowledged writes survive a cut at several
  byte budgets: after :meth:`~repro.storage.faults.FaultyBlockDevice.
  revive` and reopen, every acknowledged batch is fully readable and
  no torn batch is partially visible.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.report import ExperimentResult, ResultTable
from repro.bench.runner import get_scale
from repro.errors import (
    PowerCutError,
    QuarantinedBlockError,
    ReadOnlyModeError,
    StorageError,
)
from repro.indexes.registry import IndexKind
from repro.lsm.db import LSMTree
from repro.lsm.options import Granularity
from repro.lsm.write_batch import WriteBatch
from repro.storage.block_device import MemoryBlockDevice
from repro.storage.faults import FaultPlan, FaultyBlockDevice
from repro.storage.stats import (
    FAULTS_INJECTED,
    RETRY_ATTEMPTS,
    RETRY_EXHAUSTED,
    RETRY_SUCCESSES,
)

EXPERIMENT_ID = "faults"
TITLE = "Faults: availability under rot/transients/power cuts + scrub repair"

#: Scrub passes allowed to reach a clean bill of health after repair.
MAX_SCRUB_PASSES = 4


def _value_for(options):
    def value_for(key: int) -> bytes:
        return (b"v%x" % key)[: options.value_capacity]
    return value_for


def _build_faulty(scale, kind, boundary, granularity, plan,
                  **option_changes):
    """An LSMTree over a fresh FaultyBlockDevice(MemoryBlockDevice)."""
    options = scale.config(kind, boundary,
                           granularity=granularity).to_options()
    if option_changes:
        options = options.with_changes(**option_changes)
    inner = MemoryBlockDevice(block_size=options.block_size)
    faulty = FaultyBlockDevice(inner, plan)
    db = LSMTree(options, device=faulty)
    return db, faulty, options


def _rot_block_fraction(db, faulty) -> float:
    """Fraction of the database's device blocks that are rotted."""
    rotted = total = 0
    for name in db.device.list_files():
        if not name.startswith("sst-"):
            continue
        size = db.device.size(name)
        total += (size + db.device.block_size - 1) // db.device.block_size
        rotted += len(faulty.rotted_blocks(name))
    return rotted / total if total else 0.0


def _blocks_per_lookup(options) -> float:
    """Worst-case data blocks one lookup's widened bound can touch."""
    per = max(1, options.data_block_bytes // options.entry_bytes)
    return 2.0 * options.position_boundary / per + 2.0


def _availability(db, keys, expected) -> Dict[str, object]:
    """Probe every key individually; classify the outcomes."""
    failed: List[int] = []
    wrong = 0
    for key in keys:
        try:
            if db.get(key) != expected[key]:
                wrong += 1
        except QuarantinedBlockError:
            failed.append(key)
    return {"failed": failed, "wrong": wrong,
            "availability": 1.0 - len(failed) / len(keys)}


def _run_rot_arm(scale, result, kind, boundary, rot_rates):
    table = ResultTable(columns=[
        "granularity", "rot_rate", "rot_blocks_frac", "availability",
        "scrub_passes", "post_scrub_missing"])
    isolation_ok = True
    bound_ok = True
    zero_rate_perfect = True
    scrub_ok = True
    values_ok = True
    keys = list(range(100_000, 100_000 + scale.n_keys))
    for granularity in (Granularity.FILE, Granularity.LEVEL):
        for rate in rot_rates:
            plan = FaultPlan(seed=scale.seed, bit_rot_rate=rate)
            db, faulty, options = _build_faulty(
                scale, kind, boundary, granularity, plan)
            value_for = _value_for(options)
            db.bulk_ingest(keys, value_for=value_for, seed=scale.seed)
            expected = {key: value_for(key) for key in keys}
            probe = _availability(db, keys, expected)
            failed = set(probe["failed"])
            values_ok = values_ok and probe["wrong"] == 0
            rot_frac = _rot_block_fraction(db, faulty)
            if rate == 0.0:
                zero_rate_perfect = (zero_rate_perfect
                                     and probe["availability"] == 1.0
                                     and db.stats.get(FAULTS_INJECTED) == 0)
            else:
                # Union bound: a lookup fails only when its (block
                # aligned) fetch span touches a corrupted block, so the
                # failed fraction is at most blocks-per-lookup x the
                # rotted-block fraction (x slack for spans crossing
                # device-block edges).  Availability degrades in
                # proportion to the damage — it must never collapse.
                ceiling = min(1.0, rot_frac
                              * (_blocks_per_lookup(options) + 1.0) * 1.5)
                bound_ok = bound_ok and (1.0 - probe["availability"]
                                         <= ceiling)
            # multi_get must isolate exactly the keys that fail alone.
            errors: Dict[int, QuarantinedBlockError] = {}
            batched = db.multi_get(keys, errors=errors)
            isolation_ok = isolation_ok and set(errors) == failed
            for key, value in zip(keys, batched):
                if key in failed:
                    isolation_ok = (isolation_ok and
                                    isinstance(value, QuarantinedBlockError))
                else:
                    isolation_ok = isolation_ok and value == expected[key]
            # "Replace the medium": rot off, then scrub back to health.
            faulty.plan = FaultPlan(seed=scale.seed)
            passes = 0
            report = None
            while passes < MAX_SCRUB_PASSES:
                report = db.scrub()
                passes += 1
                if report.clean:
                    break
            missing = sum(1 for key in keys if db.get(key) != expected[key])
            scrub_ok = (scrub_ok and report is not None and report.clean
                        and missing == 0
                        and db.health()["status"] == "ok")
            table.add_row(str(granularity), rate, rot_frac,
                          probe["availability"], passes, missing)
            db.close()
    result.add_table("Bit rot: availability, then scrub repair", table)
    result.check("zero fault rate leaves availability at 1.0 and injects "
                 "nothing", zero_rate_perfect)
    result.check("healthy keys return correct values under rot", values_ok)
    result.check("multi_get isolates exactly the individually-failing keys",
                 isolation_ok)
    result.check("unavailability stays within the rotted-block union bound",
                 bound_ok)
    result.check(f"scrub restores full health within {MAX_SCRUB_PASSES} "
                 "passes of medium replacement", scrub_ok)


def _run_transient_arm(scale, result, kind, boundary):
    plan = FaultPlan(seed=scale.seed + 1, transient_read_rate=0.1,
                     transient_fail_count=1)
    db, faulty, options = _build_faulty(scale, kind, boundary,
                                        Granularity.FILE, plan)
    value_for = _value_for(options)
    keys = list(range(scale.n_keys))
    db.bulk_ingest(keys, value_for=value_for, seed=scale.seed)
    ok = all(db.get(key) == value_for(key)
             for key in keys[:: max(1, len(keys) // scale.n_ops)])
    attempts = db.stats.get(RETRY_ATTEMPTS)
    successes = db.stats.get(RETRY_SUCCESSES)
    exhausted = db.stats.get(RETRY_EXHAUSTED)
    table = ResultTable(columns=["retry_attempts", "retry_successes",
                                 "retry_exhausted"])
    table.add_row(int(attempts), int(successes), int(exhausted))
    result.add_table("Transient read faults absorbed by the retry policy",
                     table)
    result.check("every read succeeds despite transient faults", ok)
    result.check("the retry policy logged recoveries and no exhaustion",
                 attempts > 0 and successes > 0 and exhausted == 0)
    db.close()


def _run_disk_full_arm(scale, result, kind, boundary):
    plan = FaultPlan(seed=scale.seed + 2, disk_full_after_bytes=8192)
    db, faulty, options = _build_faulty(scale, kind, boundary,
                                        Granularity.FILE, plan)
    n = max(64, options.entries_per_buffer // 2)
    for key in range(n):
        db.put(key, b"x")
    degraded_types = []
    try:
        db.flush()
    except ReadOnlyModeError:
        degraded_types.append("flush")
    reads_ok = all(db.get(key) == b"x" for key in range(n))
    writes_rejected = False
    try:
        db.put(n + 1, b"y")
    except ReadOnlyModeError:
        writes_rejected = True
    health = db.health()
    table = ResultTable(columns=["status", "reason"])
    table.add_row(str(health["status"]), str(health["reason"]))
    result.add_table("Disk full: degraded read-only mode", table)
    result.check("a full disk degrades to read-only instead of failing "
                 "reads", degraded_types == ["flush"] and reads_ok
                 and writes_rejected and health["status"] == "read_only")


def _run_power_cut_arm(scale, result, kind, boundary,
                       cut_budgets: Sequence[int]):
    table = ResultTable(columns=[
        "cut_after_bytes", "acked_batches", "acked_readable",
        "torn_batch_partial"])
    durable_ok = True
    atomic_ok = True
    for budget in cut_budgets:
        plan = FaultPlan(seed=scale.seed + 3, power_cut_after_bytes=budget)
        db, faulty, options = _build_faulty(
            scale, kind, boundary, Granularity.FILE, plan,
            enable_wal=True, enable_manifest=True)
        acked: List[List[int]] = []
        torn: Optional[List[int]] = None
        key = 0
        while torn is None and key < 100_000:
            batch = WriteBatch()
            batch_keys = list(range(key, key + 7))
            for k in batch_keys:
                batch.put(k, b"p%x" % k)
            key += 7
            try:
                db.write(batch)
                acked.append(batch_keys)
            except (ReadOnlyModeError, PowerCutError, StorageError):
                torn = batch_keys
        faulty.revive()
        recovered = LSMTree.reopen(options, db.device)
        acked_keys = [k for batch_keys in acked for k in batch_keys]
        readable = sum(1 for k in acked_keys
                       if recovered.get(k) == b"p%x" % k)
        torn_present = (0 if torn is None else
                        sum(1 for k in torn if recovered.get(k) is not None))
        durable_ok = durable_ok and readable == len(acked_keys)
        # A torn batch may be fully absent (frame never completed) but
        # must never be partially visible.
        atomic_ok = atomic_ok and torn_present in (0, len(torn or ()))
        table.add_row(budget, len(acked), readable, torn_present)
        recovered.close()
    result.add_table("Power cuts: acknowledged writes survive reopen", table)
    result.check("every acknowledged batch is fully readable after a power "
                 "cut", durable_ok)
    result.check("no torn batch is partially visible after replay",
                 atomic_ok)


def run(scale="smoke", kind: IndexKind = IndexKind.PGM, boundary: int = 32,
        rot_rates: Sequence[float] = (0.0, 0.004, 0.02),
        cut_budgets: Sequence[int] = (4096, 65536, 262144),
        ) -> ExperimentResult:
    """Sweep fault modes x index granularity; see module docstring."""
    scale = get_scale(scale)
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    result.note(f"scale={scale.name}: {scale.n_keys} keys, kind={kind}, "
                f"boundary={boundary}, rot rates "
                f"{'/'.join(str(r) for r in rot_rates)}")
    _run_rot_arm(scale, result, kind, boundary, rot_rates)
    _run_transient_arm(scale, result, kind, boundary)
    _run_disk_full_arm(scale, result, kind, boundary)
    _run_power_cut_arm(scale, result, kind, boundary, cut_budgets)
    return result
