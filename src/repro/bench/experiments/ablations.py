"""Ablations: the paper's per-index parameter choices, verified.

The evaluation section fixes several secondary parameters after brief
studies ("Settings of Learned Indexes"):

* PGM's ``EpsilonRecursive`` "has little impact on PGM's performance in
  LSM-tree systems", so the default 4 is kept;
* RadixSpline's ``RadixBits = 1`` "offers the best tradeoff in LSM-tree
  systems, reducing memory usage while maintaining satisfactory
  performance";
* PLEX's self-tuning is its distinguishing feature — it buys a better
  hist-tree at training-time cost (Figure 9's 10-15%).

This experiment reruns those parameter sweeps on the testbed plus one
of our own (RMI's acceptance quantile, which trades memory against the
fraction of keys honouring the boundary target), and asserts the
paper's conclusions.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.report import ExperimentResult, ResultTable
from repro.bench.runner import get_scale, loaded_testbed, sample_queries
from repro.core.config import BenchConfig
from repro.indexes.plex import PLEXIndex
from repro.indexes.registry import IndexKind
from repro.indexes.rmi import RMIIndex
from repro.workloads import datasets as ds

EXPERIMENT_ID = "ablations"
TITLE = "Parameter ablations (Settings of Learned Indexes)"

_BOUNDARY = 32


def run(scale="smoke", dataset: str = "random",
        epsilon_recursive_values: Sequence[int] = (2, 4, 8, 16),
        radix_bits_values: Sequence[int] = (1, 4, 8, 12)) -> ExperimentResult:
    """Sweep the paper's secondary parameters on the live testbed."""
    scale = get_scale(scale)
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    result.note(f"scale={scale.name}, dataset={dataset}, position boundary "
                f"{_BOUNDARY}")
    keys = ds.generate(dataset, scale.n_keys, seed=scale.seed)
    queries = sample_queries(keys, scale.n_ops, seed=scale.seed + 1)

    _pgm_epsilon_recursive(result, scale, dataset, keys, queries,
                           epsilon_recursive_values)
    _rs_radix_bits(result, scale, dataset, keys, queries, radix_bits_values)
    _plex_self_tuning(result, keys)
    _rmi_quantile(result, keys)
    return result


def _config(scale, kind: IndexKind, dataset: str, **index_params) -> BenchConfig:
    base = scale.config(kind, _BOUNDARY, dataset=dataset)
    return BenchConfig(**{**base.__dict__})


def _pgm_epsilon_recursive(result, scale, dataset, keys, queries,
                           values) -> None:
    table = ResultTable(columns=["epsilon_recursive", "latency_us",
                                 "index_bytes"])
    stats = {}
    for eps_rec in values:
        config = scale.config(IndexKind.PGM, _BOUNDARY, dataset=dataset)
        options = config.to_options().with_changes(
            epsilon_recursive=eps_rec)
        bed = loaded_testbed(config, keys, options=options)
        metrics = bed.run_point_lookups(queries)
        memory = bed.memory().index_bytes
        stats[eps_rec] = (metrics.avg_us, memory)
        table.add_row(eps_rec, metrics.avg_us, memory)
        bed.close()
    result.add_table("PGM: EpsilonRecursive sweep", table)
    latencies = [lat for lat, _ in stats.values()]
    spread = (max(latencies) - min(latencies)) / max(latencies)
    result.check(
        "PGM: EpsilonRecursive has little impact on lookup latency "
        "(paper keeps the default 4)", spread < 0.05,
        f"latency spread={spread:.2%}")


def _rs_radix_bits(result, scale, dataset, keys, queries, values) -> None:
    table = ResultTable(columns=["radix_bits", "latency_us", "index_bytes"])
    stats = {}
    for bits in values:
        config = scale.config(IndexKind.RS, _BOUNDARY, dataset=dataset)
        options = config.to_options().with_changes(radix_bits=bits)
        bed = loaded_testbed(config, keys, options=options)
        metrics = bed.run_point_lookups(queries)
        memory = bed.memory().index_bytes
        stats[bits] = (metrics.avg_us, memory)
        table.add_row(bits, metrics.avg_us, memory)
        bed.close()
    result.add_table("RadixSpline: RadixBits sweep", table)
    smallest = min(values)
    largest = max(values)
    result.check(
        "RS: large radix tables cost memory without latency gains "
        "(paper tunes RadixBits=1 for LSM)",
        stats[largest][1] > 2 * stats[smallest][1]
        and stats[largest][0] > stats[smallest][0] * 0.95,
        f"bits={smallest}: {stats[smallest]}, bits={largest}: "
        f"{stats[largest]}")


def _plex_self_tuning(result, keys) -> None:
    """Self-tuned CHT vs each fixed fanout: tuning matches the best."""
    table = ResultTable(columns=["configuration", "cht_bits", "train_visits",
                                 "tree_height"])
    tuned = PLEXIndex(epsilon=_BOUNDARY // 2)
    tuned.build(keys)
    table.add_row("self-tuned", tuned.chosen_bits(), tuned.train_key_visits,
                  tuned.tree_height())
    fixed_heights = {}
    for bits in tuned.candidate_bits:
        fixed = PLEXIndex(epsilon=_BOUNDARY // 2, candidate_bits=(bits,))
        fixed.build(keys)
        fixed_heights[bits] = fixed.tree_height()
        table.add_row(f"fixed bits={bits}", bits, fixed.train_key_visits,
                      fixed.tree_height())
    result.add_table("PLEX: self-tuning vs fixed fanout", table)
    result.check(
        "PLEX: self-tuning costs extra training passes (Figure 9's "
        "overhead) ...",
        tuned.train_key_visits >= 3 * len(keys),
        f"visits={tuned.train_key_visits} over {len(keys)} keys")
    result.check(
        "... and selects a structure as shallow as the best fixed choice",
        tuned.tree_height() <= min(fixed_heights.values()) + 1,
        f"tuned height={tuned.tree_height()}, "
        f"fixed={fixed_heights}")


def _rmi_quantile(result, keys) -> None:
    """RMI acceptance quantile: looser targets need fewer leaves."""
    table = ResultTable(columns=["accept_quantile", "leaf_count",
                                 "index_bytes", "mean_error"])
    leaves = {}
    for quantile in (0.90, 0.99, 1.0):
        index = RMIIndex(boundary_target=_BOUNDARY,
                         accept_quantile=quantile)
        index.build(keys)
        leaves[quantile] = index.leaf_count()
        table.add_row(quantile, index.leaf_count(), index.size_bytes(),
                      index.mean_error())
    result.add_table("RMI: acceptance quantile sweep", table)
    result.check(
        "RMI: stricter quantiles never shrink the second layer",
        leaves[0.90] <= leaves[0.99] <= leaves[1.0],
        str(leaves))
