"""Recovery study — cold-open cost with and without persisted models.

Beyond the paper: Table 1 and Figure 9 establish that (re)training
learned indexes dominates the write-side cost, but the paper's testbed
never *restarts* — so it never pays that bill twice.  A serving
deployment does: every crash or rolling restart of the seed engine
rescanned the device and retrained every level model from a full key
reload, multiplying the training cost by shard count.

This experiment sweeps DB size x index kind x granularity and reports
the simulated cold-open cost of the two recovery paths
:meth:`repro.lsm.db.LSMTree.reopen` offers:

* **scan** — the seed behaviour: list ``sst-*``, open every footer,
  reload every key array and retrain level models (O(data · retrain));
* **manifest** — replay the MANIFEST version log and deserialize the
  persisted ``mdl-*`` models (O(manifest)).

Per-table (FILE granularity) models are embedded in their table files
and never retrain on either path; the win there is skipping the
directory scan.  Level granularity is where persistence pays: the scan
path's key reload + retrain disappears entirely, and the check the
paper's economics imply — *zero* training key visits on a manifest
open — is asserted for every cell.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.report import ExperimentResult, ResultTable
from repro.bench.runner import get_scale
from repro.indexes.registry import IndexKind
from repro.lsm.db import LSMTree
from repro.lsm.options import Granularity
from repro.storage.block_device import MemoryBlockDevice
from repro.storage.stats import TRAIN_KEY_VISITS, Stage
from repro.workloads import datasets as ds

EXPERIMENT_ID = "recovery"
TITLE = "Recovery: manifest + persisted models vs scan + retrain"


def _cold_open(options, device, use_manifest):
    """Reopen on a fresh Stats registry; return (db, open_us, visits)."""
    db = LSMTree.reopen(options, device, use_manifest=use_manifest)
    stats = db.stats
    open_us = stats.total_time()
    train_visits = stats.get(TRAIN_KEY_VISITS)
    train_us = (stats.stage_time(Stage.COMPACT_TRAIN)
                + stats.stage_time(Stage.COMPACT_WRITE_MODEL))
    return db, open_us, train_visits, train_us


def run(scale="smoke", dataset: str = "random",
        kinds: Sequence[IndexKind] = (IndexKind.FP, IndexKind.PGM),
        boundary: int = 32,
        size_fractions: Sequence[float] = (0.25, 1.0)) -> ExperimentResult:
    """Sweep DB size x index kind x granularity over both open paths."""
    scale = get_scale(scale)
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    result.note(f"scale={scale.name}: up to {scale.n_keys} keys, "
                f"boundary={boundary}, kinds="
                f"{'/'.join(str(kind) for kind in kinds)}")

    table = ResultTable(columns=[
        "n_keys", "kind", "granularity", "scan_open_us", "manifest_open_us",
        "scan_train_visits", "manifest_train_visits", "speedup"])
    manifest_zero_train = True
    oracle_ok = True
    level_cells = []
    for fraction in size_fractions:
        n_keys = max(64, int(scale.n_keys * fraction))
        keys = ds.generate(dataset, n_keys, seed=scale.seed)
        for kind in kinds:
            for granularity in (Granularity.FILE, Granularity.LEVEL):
                options = scale.config(
                    kind, boundary,
                    granularity=granularity).to_options()
                device = MemoryBlockDevice(block_size=options.block_size)
                db = LSMTree(options, device=device)
                db.bulk_ingest(keys, seed=scale.seed)
                db.checkpoint()
                expected = {key: db.get(key)
                            for key in keys[:: max(1, len(keys) // 50)]}

                # Neither reopened handle is close()d until the last
                # use: close deletes the backing files both share.
                scan_db, scan_us, scan_visits, _ = _cold_open(
                    options, device, use_manifest=False)
                mani_db, mani_us, mani_visits, mani_train_us = _cold_open(
                    options, device, use_manifest=True)

                manifest_zero_train = (manifest_zero_train
                                       and mani_visits == 0
                                       and mani_train_us == 0.0)
                oracle_ok = oracle_ok and all(
                    mani_db.get(key) == value
                    and scan_db.get(key) == value
                    for key, value in expected.items())
                speedup = scan_us / mani_us if mani_us else float("inf")
                table.add_row(n_keys, str(kind), str(granularity),
                              scan_us, mani_us, int(scan_visits),
                              int(mani_visits), speedup)
                if granularity is Granularity.LEVEL:
                    level_cells.append((scan_us, mani_us))
                mani_db.close()

    result.add_table("Cold-open cost by recovery path", table)

    result.check(
        "manifest-driven reopen performs zero index training",
        manifest_zero_train,
        "TRAIN_KEY_VISITS and train-stage time are 0 in every cell")
    result.check(
        "reopened trees answer lookups identically on both paths",
        oracle_ok)
    result.check(
        "persisted level models cut cold-open cost vs scan+retrain",
        all(mani < scan for scan, mani in level_cells),
        f"{len(level_cells)} level-granularity cells compared")
    scan_col = table.column("scan_train_visits")
    gran_col = table.column("granularity")
    result.check(
        "the scan path really retrains under level granularity "
        "(the cost being avoided is nonzero)",
        all(visits > 0 for visits, gran in zip(scan_col, gran_col)
            if gran == str(Granularity.LEVEL)))
    return result
