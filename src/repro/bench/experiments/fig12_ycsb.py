"""Figure 12 — YCSB mixed workloads A-F.

The paper's final experiment runs the six core YCSB mixes and plots
memory against mean operation latency per index type.  Its takeaways:
the memory-latency trade-off mirrors the read-only results (reads
dominate even in mixed workloads), PGM keeps the best frontier, and
FITing-Tree lags the other learned indexes.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.bench.report import ExperimentResult, ResultTable
from repro.bench.runner import get_scale, loaded_testbed
from repro.indexes.registry import ALL_KINDS, IndexKind
from repro.workloads import datasets as ds
from repro.workloads.ycsb import workload

EXPERIMENT_ID = "fig12"
TITLE = "YCSB workloads A-F: memory vs operation latency (Figure 12)"

_DEFAULT_WORKLOADS = ("A", "B", "C", "D", "E", "F")


def run(scale="smoke", dataset: str = "random",
        kinds: Sequence[IndexKind] = ALL_KINDS,
        boundaries: Sequence[int] = (64, 16),
        workloads: Sequence[str] = _DEFAULT_WORKLOADS) -> ExperimentResult:
    """Run each YCSB mix against each (kind, boundary) configuration."""
    scale = get_scale(scale)
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    n_ops = scale.n_ops
    result.note(f"scale={scale.name}: {n_ops} YCSB ops per cell; scan "
                "lengths < 100 (workload E), latest distribution "
                "(workload D)")
    all_keys = ds.generate(dataset, scale.n_keys + scale.n_keys // 10,
                           seed=scale.seed)
    loaded = all_keys[: scale.n_keys]
    reserve = all_keys[scale.n_keys:]

    latency: Dict[Tuple[str, IndexKind, int], float] = {}
    memory: Dict[Tuple[str, IndexKind, int], float] = {}
    for name in workloads:
        table = ResultTable(columns=["index", "boundary", "avg_op_us",
                                     "index_bytes"])
        for kind in kinds:
            for boundary in boundaries:
                bed = loaded_testbed(scale.config(kind, boundary,
                                                  dataset=dataset), loaded)
                mix = workload(name, loaded, insert_reserve=reserve,
                               seed=scale.seed + 13)
                metrics = bed.run_ycsb(mix, n_ops)
                latency[(name, kind, boundary)] = metrics.avg_us
                memory[(name, kind, boundary)] = float(
                    bed.memory().index_bytes)
                table.add_row(kind.value, boundary, metrics.avg_us,
                              int(memory[(name, kind, boundary)]))
                bed.close()
        result.add_table(f"YCSB-{name}", table)

    _shape_checks(result, latency, memory, kinds, boundaries, workloads)
    return result


def _shape_checks(result, latency, memory, kinds, boundaries,
                  workloads) -> None:
    tight = min(boundaries)
    # Consistency with the point-lookup frontier: PGM should dominate FT
    # (paper: "PGM continues to offer the best tradeoff, while
    # FITing-tree lags behind").
    if IndexKind.PGM in kinds and IndexKind.FT in kinds:
        wins = 0
        for name in workloads:
            pgm_mem = memory[(name, IndexKind.PGM, tight)]
            ft_mem = memory[(name, IndexKind.FT, tight)]
            pgm_lat = latency[(name, IndexKind.PGM, tight)]
            ft_lat = latency[(name, IndexKind.FT, tight)]
            if pgm_mem <= ft_mem and pgm_lat <= ft_lat * 1.10:
                wins += 1
        result.check(
            "PGM dominates FITing-Tree (memory and latency) on most mixes",
            wins >= (2 * len(workloads)) // 3,
            f"PGM dominates on {wins}/{len(workloads)} workloads")
    # Learned indexes beat FP memory at equal boundary on every mix.
    if IndexKind.FP in kinds and IndexKind.PGM in kinds:
        ok = all(memory[(name, IndexKind.PGM, tight)]
                 < memory[(name, IndexKind.FP, tight)]
                 for name in workloads)
        result.check(
            "PGM uses less memory than fence pointers on every workload",
            ok)
    # Read-heavy C should be cheaper per op than scan-heavy E.
    if "C" in workloads and "E" in workloads:
        kind = IndexKind.PGM if IndexKind.PGM in kinds else kinds[0]
        result.check(
            "scan-heavy YCSB-E costs more per op than point-only YCSB-C",
            latency[("E", kind, tight)] > latency[("C", kind, tight)],
            f"E={latency[('E', kind, tight)]:.2f}us "
            f"C={latency[('C', kind, tight)]:.2f}us")
    # The boundary lever still works in mixed settings.
    if len(boundaries) >= 2 and "B" in workloads:
        loose = max(boundaries)
        kind = kinds[0]
        result.check(
            "tighter boundary lowers latency on read-heavy YCSB-B",
            latency[("B", kind, tight)] <= latency[("B", kind, loose)],
            f"b={tight}: {latency[('B', kind, tight)]:.2f}us vs "
            f"b={loose}: {latency[('B', kind, loose)]:.2f}us")
