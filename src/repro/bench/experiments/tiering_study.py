"""Learned indexes across LSM merge policies (Section 6.2 direction).

The paper's second future direction is to carry learned indexes into
the broader LSM design space (Dostoevsky/Wacky/Moose territory), where
the leveling-vs-tiering choice is the primary knob.  This study runs
the same fill + point-lookup workload under both policies:

* tiering must show its classic trade: fewer compaction bytes (each
  entry is rewritten ~once per level instead of ~T/2 times) against
  slower reads (several overlapping runs probed per level);
* the learned-index value proposition must survive the policy change —
  PGM should keep its memory advantage over fence pointers, since
  per-run indexes work identically on tiered runs.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from repro.bench.report import ExperimentResult, ResultTable
from repro.bench.runner import get_scale, sample_queries
from repro.core.testbed import Testbed
from repro.indexes.registry import IndexKind
from repro.lsm.options import CompactionPolicy
from repro.storage.stats import COMPACT_BYTES_IN
from repro.workloads import datasets as ds

EXPERIMENT_ID = "tiering"
TITLE = "Leveling vs tiering with learned indexes (Section 6.2 study)"

_BOUNDARY = 32


def run(scale="smoke", dataset: str = "random",
        kinds=(IndexKind.FP, IndexKind.PGM)) -> ExperimentResult:
    """Fill under each policy, then measure reads, writes and memory."""
    scale = get_scale(scale)
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    result.note(f"scale={scale.name}: fill {scale.n_keys} keys through the "
                f"write path, then {scale.n_ops} point lookups")
    keys = ds.generate(dataset, scale.n_keys, seed=scale.seed)
    write_order = list(keys)
    random.Random(scale.seed + 2).shuffle(write_order)
    queries = sample_queries(keys, scale.n_ops, seed=scale.seed + 3)

    table = ResultTable(columns=[
        "policy", "index", "compact_MB_in", "runs_deepest", "lookup_us",
        "index_bytes"])
    cells: Dict[Tuple[CompactionPolicy, IndexKind], Dict[str, float]] = {}
    for policy in (CompactionPolicy.LEVELING, CompactionPolicy.TIERING):
        for kind in kinds:
            config = scale.config(kind, _BOUNDARY, dataset=dataset)
            options = config.to_options().with_changes(
                compaction_policy=policy)
            bed = Testbed(options, seed=scale.seed)
            bed.run_writes(write_order)
            compact_in = bed.db.stats.get(COMPACT_BYTES_IN)
            deepest = bed.db.version.deepest_nonempty_level()
            runs = bed.db.version.file_count(deepest)
            metrics = bed.run_point_lookups(queries)
            memory = bed.memory().index_bytes
            cells[(policy, kind)] = {
                "compact_in": compact_in,
                "lookup_us": metrics.avg_us,
                "memory": float(memory),
            }
            table.add_row(policy.value, kind.value,
                          compact_in / (1024 * 1024), runs, metrics.avg_us,
                          memory)
            bed.close()
    result.add_table("fill + read under each merge policy", table)

    kind = kinds[-1]
    leveling = cells[(CompactionPolicy.LEVELING, kind)]
    tiering = cells[(CompactionPolicy.TIERING, kind)]
    result.check(
        "tiering moves fewer bytes through compaction (lower write amp)",
        tiering["compact_in"] < leveling["compact_in"],
        f"tiering={tiering['compact_in'] / 1e6:.1f}MB "
        f"leveling={leveling['compact_in'] / 1e6:.1f}MB")
    result.check(
        "tiering pays for it with slower point lookups (more runs probed)",
        tiering["lookup_us"] > leveling["lookup_us"],
        f"tiering={tiering['lookup_us']:.2f}us "
        f"leveling={leveling['lookup_us']:.2f}us")
    if IndexKind.FP in kinds and IndexKind.PGM in kinds:
        for policy in (CompactionPolicy.LEVELING, CompactionPolicy.TIERING):
            fp_mem = cells[(policy, IndexKind.FP)]["memory"]
            pgm_mem = cells[(policy, IndexKind.PGM)]["memory"]
            result.check(
                f"{policy.value}: PGM keeps its memory advantage over FP",
                pgm_mem < fp_mem,
                f"PGM={pgm_mem:.0f}B FP={fp_mem:.0f}B")
    return result
