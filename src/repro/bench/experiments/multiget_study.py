"""MultiGet study — batched reads with segment-coalesced I/O.

Beyond the paper: its ``InternalGet`` is evaluated one key at a time,
but read-heavy YCSB mixes arrive in bursts, and the serving layer
already group-commits the write side.  This experiment measures the
read-side mirror: the same YCSB-C Zipfian key stream drained through
:meth:`~repro.lsm.db.LSMTree.multi_get` at growing batch sizes, with
segment coalescing on and off, under both index granularities.

What batching amortizes (and what it cannot):

* **Seeks** — overlapping/adjacent predicted segments of one table
  coalesce into a single pread charging one seek plus sequential
  blocks; under Zipfian skew hot keys repeat inside a batch, so whole
  lookups collapse onto already-fetched buffers.
* **Level walks** — each level is located once per batch (one
  file-range binary search) instead of once per key, and the memtable
  descent is charged per batch run.
* **Predictions are not amortized** — every key still pays its own
  model evaluation, which is why coalescing (the I/O effect) is swept
  separately from batch size (the control-flow effect).

Every cell returns exactly the per-key path's results (checked against
a ``get``-loop oracle); only the cost changes.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.report import ExperimentResult, ResultTable
from repro.bench.runner import get_scale, loaded_testbed
from repro.indexes.registry import IndexKind
from repro.lsm.options import Granularity
from repro.storage.stats import MULTIGET_COALESCED, MULTIGET_SEEKS_SAVED, SEEKS
from repro.workloads import datasets as ds
from repro.workloads.ycsb import workload

EXPERIMENT_ID = "multiget"
TITLE = "MultiGet: batched point lookups with segment-coalesced I/O"


def run(scale="smoke", dataset: str = "random",
        kind: IndexKind = IndexKind.PGM,
        boundary: int = 32,
        batch_sizes: Sequence[int] = (1, 4, 16, 64)) -> ExperimentResult:
    """Sweep batch size x coalescing x granularity on YCSB-C Zipfian."""
    scale = get_scale(scale)
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    keys = ds.generate(dataset, scale.n_keys, seed=scale.seed)
    # The YCSB-C request stream: 100% reads, Zipfian over loaded keys.
    mix = workload("C", keys, seed=scale.seed + 17)
    query_keys = [op.key for op in mix.operations(scale.n_ops)]
    result.note(f"scale={scale.name}: {scale.n_keys} keys, "
                f"{len(query_keys)} YCSB-C Zipfian lookups per cell, "
                f"index={kind}, boundary={boundary}")

    table = ResultTable(columns=["granularity", "batch", "coalesce",
                                 "seeks", "coalesced", "seeks_saved",
                                 "read_us_per_op"])
    per_key = {}       # granularity -> (seeks, read_us)
    batched_best = {}  # granularity -> (seeks, read_us) at max batch, on
    uncoalesced = {}   # granularity -> seeks at max batch, off
    coalesced_events = {}
    results_equal = True

    for granularity in (Granularity.FILE, Granularity.LEVEL):
        config = scale.config(kind, boundary, granularity=granularity,
                              dataset=dataset)
        bed = loaded_testbed(config, keys)
        # The oracle get-loop *is* the per-key measurement: one pass
        # serves both the equivalence reference and the batch=1 row.
        before = bed.db.stats.snapshot()
        oracle = [bed.db.get(key) for key in query_keys]
        delta = before.delta(bed.db.stats)
        seeks = delta.counter(SEEKS)
        read_us = delta.read_time() / len(query_keys)
        table.add_row(str(granularity), 1, "on", int(seeks), 0, 0, read_us)
        per_key[granularity] = (seeks, read_us)
        for batch in batch_sizes:
            if batch == 1:
                continue
            for coalesce in (True, False):
                before = bed.db.stats.snapshot()
                got = []
                for start in range(0, len(query_keys), batch):
                    got.extend(bed.db.multi_get(
                        query_keys[start:start + batch],
                        coalesce=coalesce))
                results_equal = results_equal and got == oracle
                delta = before.delta(bed.db.stats)
                seeks = delta.counter(SEEKS)
                read_us = delta.read_time() / len(query_keys)
                table.add_row(str(granularity), batch,
                              "on" if coalesce else "off", int(seeks),
                              int(delta.counter(MULTIGET_COALESCED)),
                              int(delta.counter(MULTIGET_SEEKS_SAVED)),
                              read_us)
                if batch == max(batch_sizes) and coalesce:
                    batched_best[granularity] = (seeks, read_us)
                    coalesced_events[granularity] = delta.counter(
                        MULTIGET_COALESCED)
                elif batch == max(batch_sizes) and not coalesce:
                    uncoalesced[granularity] = seeks
        bed.close()
    result.add_table(
        "MultiGet sweep (YCSB-C Zipfian, per-key vs batched)", table)

    result.check(
        "batched MultiGet returns exactly the per-key path's results",
        results_equal)
    result.check(
        "batching charges strictly fewer seeks than the per-key path",
        all(batched_best[g][0] < per_key[g][0] for g in per_key),
        "; ".join(f"{g}: {per_key[g][0]:.0f} -> {batched_best[g][0]:.0f}"
                  for g in per_key))
    result.check(
        "batching lowers total simulated read time",
        all(batched_best[g][1] < per_key[g][1] for g in per_key),
        "; ".join(f"{g}: {per_key[g][1]:.2f} -> {batched_best[g][1]:.2f} "
                  "us/op" for g in per_key))
    result.check(
        "segments coalesce under the level-model configuration",
        coalesced_events.get(Granularity.LEVEL, 0) > 0,
        f"{coalesced_events.get(Granularity.LEVEL, 0):.0f} coalesced reads")
    result.check(
        "disabling coalescing forfeits the seek savings",
        all(uncoalesced[g] >= batched_best[g][0] for g in uncoalesced),
        "; ".join(f"{g}: off={uncoalesced[g]:.0f} on={batched_best[g][0]:.0f}"
                  for g in uncoalesced))
    return result
