"""Block-format study — block size x compression x index granularity.

Beyond the paper: its testbed stores every SSTable as one flat entry
array, so "fetch the predicted segment" costs exactly the predicted
bytes.  Real engines (LevelDB, RocksDB) store block-compressed,
checksummed data blocks, which changes the read path in three ways
this experiment quantifies:

* **Block rounding** — entry-granular predictions widen to whole-block
  fetches, so small position boundaries stop paying off below the
  block size (the effective boundary is ``ceil(width / block)`` blocks).
* **Compression** — zlib-compressed blocks move fewer device bytes per
  fetch (the fixed-slot entry encoding zero-pads values, so blocks
  compress well), at a simulated CPU decompression charge per block.
* **Verification** — every block is CRC-checked on first use; the
  study asserts the clean-path invariants (zero checksum failures,
  every fetched block verified) that the corruption suite probes from
  the other side.

Every cell drains the same Zipfian read stream and a fixed scan set,
and must return byte-identical results — only the cost moves.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.report import ExperimentResult, ResultTable
from repro.bench.runner import get_scale, loaded_testbed
from repro.indexes.registry import IndexKind
from repro.lsm.options import Granularity
from repro.storage.stats import (
    BLOCKS_VERIFIED,
    BYTES_READ,
    CHECKSUM_FAILURES,
    COMPRESS_BYTES_RAW,
    COMPRESS_BYTES_STORED,
    Stats,
)
from repro.workloads import datasets as ds
from repro.workloads.ycsb import workload

EXPERIMENT_ID = "blocks"
TITLE = "Block format: block size x compression x checksum overhead"

#: Data-cache capacity for the cache arm (holds the Zipfian hot set).
_CACHE_ARM_BYTES = 256 * 1024


def _measure(config, keys, query_keys, scan_starts, scan_len,
             **option_changes):
    """One cell: load, drain the read stream, return results + metrics."""
    options = config.to_options().with_changes(**option_changes)
    bed = loaded_testbed(config, keys, options=options)
    before = bed.db.stats.snapshot()
    gets = [bed.db.get(key) for key in query_keys]
    scans = [bed.db.scan(start, scan_len) for start in scan_starts]
    delta = before.delta(bed.db.stats)
    totals: Stats = bed.db.stats
    metrics = {
        "read_us_per_op": delta.read_time() / len(query_keys),
        "bytes_read": delta.counter(BYTES_READ),
        "ratio": totals.compression_ratio(),
        "raw": totals.get(COMPRESS_BYTES_RAW),
        "stored": totals.get(COMPRESS_BYTES_STORED),
        "failures": totals.get(CHECKSUM_FAILURES),
        "verified": totals.get(BLOCKS_VERIFIED),
        "data_cache_hit_rate": totals.data_cache_hit_rate(),
    }
    bed.close()
    return (gets, scans), metrics


def run(scale="smoke", dataset: str = "random",
        kind: IndexKind = IndexKind.PGM,
        boundary: int = 32,
        block_sizes: Sequence[int] = (1024, 4096, 16384),
        codecs: Sequence[str] = ("none", "zlib-1", "zlib-6")) -> ExperimentResult:
    """Sweep block size x codec (+ granularity and data-cache arms)."""
    scale = get_scale(scale)
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    keys = ds.generate(dataset, scale.n_keys, seed=scale.seed)
    mix = workload("C", keys, seed=scale.seed + 23)
    query_keys = [op.key for op in mix.operations(scale.n_ops)]
    scan_starts = keys[:: max(1, len(keys) // 8)][:8]
    scan_len = 64
    result.note(f"scale={scale.name}: {scale.n_keys} keys, "
                f"{len(query_keys)} Zipfian lookups + {len(scan_starts)} "
                f"scans of {scan_len} per cell, index={kind}, "
                f"boundary={boundary}")

    table = ResultTable(columns=["granularity", "block_bytes", "codec",
                                 "data_cache", "ratio", "bytes_read",
                                 "verified", "failures", "read_us_per_op"])
    oracle = None
    results_equal = True
    failures_total = 0.0
    verified_min = float("inf")
    ratios = {}       # (granularity, block, codec) -> ratio
    bytes_read = {}   # (granularity, block, codec) -> device bytes read
    read_us = {}      # (granularity, block, codec) -> read us/op

    def cell(granularity, block, codec, **extra):
        nonlocal oracle, results_equal, failures_total, verified_min
        config = scale.config(kind, boundary, granularity=granularity,
                              dataset=dataset)
        got, metrics = _measure(config, keys, query_keys, scan_starts,
                                scan_len, data_block_bytes=block,
                                block_codec=codec, **extra)
        if oracle is None:
            oracle = got
        results_equal = results_equal and got == oracle
        failures_total += metrics["failures"]
        verified_min = min(verified_min, metrics["verified"])
        table.add_row(str(granularity), block, codec,
                      "on" if extra.get("data_cache_bytes") else "off",
                      round(metrics["ratio"], 3),
                      int(metrics["bytes_read"]),
                      int(metrics["verified"]), int(metrics["failures"]),
                      metrics["read_us_per_op"])
        return metrics

    # Codec sweep under both granularities at the default block size.
    for granularity in (Granularity.FILE, Granularity.LEVEL):
        for codec in codecs:
            key = (granularity, 4096, codec)
            metrics = cell(granularity, 4096, codec)
            ratios[key] = metrics["ratio"]
            bytes_read[key] = metrics["bytes_read"]
            read_us[key] = metrics["read_us_per_op"]

    # Block-size sweep (FILE granularity, cheapest codec).
    for block in block_sizes:
        if block == 4096:
            continue
        key = (Granularity.FILE, block, "zlib-1")
        metrics = cell(Granularity.FILE, block, "zlib-1")
        ratios[key] = metrics["ratio"]
        bytes_read[key] = metrics["bytes_read"]
        read_us[key] = metrics["read_us_per_op"]

    # Data-cache arm: same cell as (FILE, 4096, zlib-1) plus a
    # decompressed-block cache sized for the Zipfian hot set.
    cached = cell(Granularity.FILE, 4096, "zlib-1",
                  data_cache_bytes=_CACHE_ARM_BYTES)
    result.add_table("Block-format sweep (Zipfian reads + scans)", table)

    zlib_cells = [(g, b, c) for (g, b, c) in ratios if c != "none"]
    none_cells = [(g, b, c) for (g, b, c) in ratios if c == "none"]
    result.check(
        "every cell returns byte-identical get and scan results",
        results_equal)
    result.check(
        "zero checksum failures on clean runs, every block verified",
        failures_total == 0 and verified_min > 0,
        f"failures={failures_total:.0f}, min verified/cell="
        f"{verified_min:.0f}")
    result.check(
        "zero-padded entries compress (ratio > 1 on every zlib arm)",
        all(ratios[c] > 1.0 for c in zlib_cells),
        "; ".join(f"{c[2]}@{c[1]}B/{c[0]}: {ratios[c]:.2f}x"
                  for c in sorted(zlib_cells, key=str)))
    result.check(
        "uncompressed arms store blocks verbatim (ratio == 1)",
        all(abs(ratios[c] - 1.0) < 1e-9 for c in none_cells))
    result.check(
        "compression moves fewer device bytes at equal correctness",
        all(bytes_read[(g, 4096, c)] < bytes_read[(g, 4096, "none")]
            for g in (Granularity.FILE, Granularity.LEVEL)
            for c in codecs if c != "none"),
        "; ".join(
            f"{g}: none={bytes_read[(g, 4096, 'none')]:.0f} -> "
            f"zlib-1={bytes_read[(g, 4096, 'zlib-1')]:.0f}"
            for g in (Granularity.FILE, Granularity.LEVEL)))
    uncached_us = read_us[(Granularity.FILE, 4096, "zlib-1")]
    result.check(
        "the data-block cache absorbs the Zipfian hot set",
        cached["data_cache_hit_rate"] > 0
        and cached["read_us_per_op"] < uncached_us,
        f"hit rate {cached['data_cache_hit_rate']:.1%}, "
        f"{uncached_us:.2f} -> {cached['read_us_per_op']:.2f} us/op")
    return result
