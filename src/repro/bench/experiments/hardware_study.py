"""How the paper's insights move with the hardware (profile study).

The paper's conclusions are calibrated to one machine.  This study
reruns the core point-lookup sweep under four hardware profiles
(docs/cost-model.md, `repro.storage.profiles`) and checks the
ratio-dependent versions of the claims:

* the boundary lever tracks *transfer dominance*, not raw device speed:
  tightening the boundary saves transferred blocks, so it pays exactly
  in proportion to the transfer share of a fetch.  On seek/request-
  dominated storage (cloud object: one 15 ms round trip per fetch) the
  boundary stops mattering entirely — the right move there is fewer
  requests (level models, bigger tables), not tighter models;
* on request-dominated storage index types also become fully
  interchangeable on latency while their memory differences remain;
* on near-memory devices the CPU stages surface: prediction cost is no
  longer negligible, which is the regime where RMI's two-eval lookup
  shows an edge.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.bench.report import ExperimentResult, ResultTable
from repro.bench.runner import get_scale, loaded_testbed, sample_queries
from repro.indexes.registry import IndexKind
from repro.storage.profiles import PROFILES, io_cpu_ratio
from repro.workloads import datasets as ds

EXPERIMENT_ID = "hardware"
TITLE = "Hardware-profile sensitivity of the core results"

_KINDS = (IndexKind.FP, IndexKind.RMI, IndexKind.PGM)
_BOUNDARIES = (128, 8)


def run(scale="smoke", dataset: str = "random",
        profiles: Sequence[str] = ("fast-nvme", "paper-nvme", "sata-ssd",
                                   "cloud-object")) -> ExperimentResult:
    """Re-run a mini boundary sweep under each hardware profile."""
    scale = get_scale(scale)
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    result.note(f"scale={scale.name}; profiles ordered by I/O:CPU ratio")
    keys = ds.generate(dataset, scale.n_keys, seed=scale.seed)
    queries = sample_queries(keys, scale.n_ops, seed=scale.seed + 1)

    table = ResultTable(columns=["profile", "io:cpu", "index", "boundary",
                                 "latency_us"])
    cells: Dict[Tuple[str, IndexKind, int], float] = {}
    ratios: Dict[str, float] = {}
    for profile_name in profiles:
        model = PROFILES[profile_name]
        ratios[profile_name] = io_cpu_ratio(model,
                                            entry_bytes=scale.entry_bytes)
        for kind in _KINDS:
            for boundary in _BOUNDARIES:
                config = scale.config(kind, boundary, dataset=dataset)
                options = config.to_options().with_changes(cost_model=model)
                bed = loaded_testbed(config, keys, options=options)
                metrics = bed.run_point_lookups(queries)
                cells[(profile_name, kind, boundary)] = metrics.avg_us
                table.add_row(profile_name, ratios[profile_name],
                              kind.value, boundary, metrics.avg_us)
                bed.close()
    result.add_table("point lookups across hardware profiles", table)

    ordered = sorted(profiles, key=lambda name: ratios[name])
    kind = IndexKind.PGM

    def transfer_share(name: str) -> float:
        model = PROFILES[name]
        nblocks = model.blocks_spanned(
            0, max(_BOUNDARIES) * scale.entry_bytes)
        transfer = nblocks * model.block_read_us
        return transfer / (model.seek_us + transfer)

    gains = {name: cells[(name, kind, max(_BOUNDARIES))]
             / max(1e-9, cells[(name, kind, min(_BOUNDARIES))])
             for name in profiles}
    by_transfer = sorted(profiles, key=transfer_share)
    result.check(
        "the boundary lever tracks transfer dominance (gain ordering "
        "matches the transfer share of a fetch)",
        all(gains[b] >= gains[a] * 0.98
            for a, b in zip(by_transfer, by_transfer[1:])),
        str({name: (round(transfer_share(name), 2), round(gains[name], 2))
             for name in by_transfer}))
    request_bound = min(profiles, key=transfer_share)
    result.check(
        f"on {request_bound} the boundary stops mattering "
        "(request-dominated fetches)",
        gains[request_bound] < 1.05,
        f"loose/tight gain={gains[request_bound]:.3f}")

    slowest = ordered[-1]
    lat = [cells[(slowest, k, min(_BOUNDARIES))] for k in _KINDS]
    spread = (max(lat) - min(lat)) / max(lat)
    result.check(
        f"on {slowest} index types are interchangeable (request-bound)",
        spread < 0.05, f"spread={spread:.2%}")

    fastest = ordered[0]
    fast_lat = {k: cells[(fastest, k, min(_BOUNDARIES))] for k in _KINDS}
    result.check(
        f"on {fastest} CPU stages surface: RMI's flat two-eval lookup is "
        "at least as fast as segment-searching indexes",
        fast_lat[IndexKind.RMI] <= fast_lat[IndexKind.PGM] * 1.02,
        str({k.value: round(v, 3) for k, v in fast_lat.items()}))
    return result
