"""Section 3.3 — why data-unclustered indexes don't fit LSM-trees.

The paper argues (without a dedicated figure) that ALEX and LIPP,
despite excellent in-memory behaviour, are incompatible with the
LSM-tree's contiguous SSTable layout: their data is scattered across
model-addressed nodes, so integrating them would replace sequential
segment reads with pointer chasing — catastrophic for range scans and
for any disk-resident deployment.

This study quantifies that argument on equal terms: build clustered
(PGM) and unclustered (ALEX, LIPP) indexes over the same key-value
set, then compare pointer hops per lookup, scatter jumps per range
scan (a clustered segment scan performs zero — the data is one
contiguous array), and memory per key (gapped/empty slots are not
free).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.bench.report import ExperimentResult, ResultTable
from repro.bench.runner import get_scale
from repro.indexes.alex import ALEXIndex
from repro.indexes.dili import DILIIndex
from repro.indexes.lipp import LIPPIndex
from repro.indexes.nfl import NFLIndex
from repro.indexes.registry import IndexFactory, IndexKind
from repro.workloads import datasets as ds

EXPERIMENT_ID = "unclustered"
TITLE = "Clustered vs unclustered indexes (Section 3.3 study)"


def run(scale="smoke", dataset: str = "random",
        boundary: int = 32, scan_length: int = 256,
        n_scans: int = 64) -> ExperimentResult:
    """Compare PGM vs ALEX vs LIPP over identical key-value data."""
    scale = get_scale(scale)
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    result.note(f"scale={scale.name}: {scale.n_keys} pairs, "
                f"{scale.n_ops} lookups, {n_scans} scans of {scan_length}")
    keys = ds.generate(dataset, scale.n_keys, seed=scale.seed)
    pairs = [(key, (b"v%x" % key)[:16]) for key in keys]
    rng = random.Random(scale.seed + 21)
    queries = [keys[rng.randrange(len(keys))] for _ in range(scale.n_ops)]
    scan_starts = [keys[rng.randrange(len(keys) - 1)]
                   for _ in range(n_scans)]

    table = ResultTable(columns=[
        "index", "layout", "memory_B/key", "hops/lookup",
        "scatter_jumps/scan", "range_correct"])

    # Clustered reference: PGM over the sorted key array.  Lookups do
    # zero pointer hops (flat arrays); a range scan reads one
    # contiguous region: zero scatter jumps.
    pgm = IndexFactory(IndexKind.PGM, boundary).build(keys)
    clustered_mem = pgm.size_bytes() / len(keys)
    table.add_row("PGM", "clustered", clustered_mem, 0.0, 0.0, True)

    rows = {}
    for name, index in (("ALEX", ALEXIndex()), ("LIPP", LIPPIndex()),
                        ("DILI", DILIIndex()), ("NFL", NFLIndex())):
        index.bulk_load(pairs)
        index.counters.reset()
        for key in queries:
            index.get(key)
        hops = index.counters.hops_per_op()
        index.counters.reset()
        correct = True
        for start in scan_starts:
            got = index.range_scan(start, scan_length)
            expected_keys = [k for k in keys if k >= start][:scan_length]
            if [k for k, _ in got] != expected_keys:
                correct = False
        scatter = index.counters.scatter_jumps / max(1, n_scans)
        mem = index.memory_bytes() / len(keys)
        rows[name] = {"hops": hops, "scatter": scatter, "mem": mem,
                      "correct": correct}
        table.add_row(name, "unclustered", mem, hops, scatter, correct)

    result.add_table("traversal and memory comparison", table)

    result.check(
        "unclustered indexes answer correctly (sanity)",
        all(row["correct"] for row in rows.values()))
    result.check(
        "unclustered lookups chase pointers (clustered: none)",
        all(row["hops"] >= 1.0 for row in rows.values()),
        str({name: round(row["hops"], 1) for name, row in rows.items()}))
    result.check(
        "range scans over unclustered layouts jump between scattered "
        "nodes (clustered: contiguous)",
        all(row["scatter"] >= 1.0 for row in rows.values()),
        str({name: round(row["scatter"], 1) for name, row in rows.items()}))
    result.check(
        "unclustered structures pay slot/pointer memory far above a "
        "clustered index",
        all(row["mem"] > 4 * clustered_mem for row in rows.values()),
        f"clustered={clustered_mem:.2f} B/key, "
        + str({name: round(row['mem'], 1) for name, row in rows.items()}))
    return result
