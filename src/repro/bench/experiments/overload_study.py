"""Overload study — goodput vs. offered load under open-loop arrivals.

Beyond the paper: every experiment so far replays workloads
*closed-loop*, so the system is never offered more than it can serve
and queueing is invisible.  This experiment drives the serving tier
(:class:`~repro.service.gateway.Gateway` over a 2-shard
:class:`~repro.service.sharded.ShardedDB`) with deterministic *open
loop* Poisson arrivals and measures what the overload machinery
delivers:

* **Goodput vs. offered load x granularity** — a sweep of offered-load
  multipliers (fractions of the calibrated service capacity) for FILE
  and LEVEL index granularity.  Goodput (completions within deadline)
  must track offered load below the knee and plateau past saturation,
  while the shed fraction rises monotonically — bounded queues turn
  excess load into fast rejections, not unbounded latency.
* **Queueing vs. service tail** — the gateway's ``gw.queue_delay`` and
  ``gw.service`` histograms split p99: at low load service dominates;
  at/past saturation queueing does.  That split is the roadmap's
  queueing-delay-percentile deliverable.
* **Retry budget on/off** — transient read faults (with realistic
  detection *timeouts*, :attr:`FaultPlan.transient_timeout_us`) are
  injected at past-saturation load.  Unbudgeted client retries burn
  server time re-detecting expensive failures and strictly lower
  goodput; the token-bucket budget caps the amplification and keeps
  goodput higher — the metastable-retry-storm defense, quantified.
* **Determinism** — the same seed and arrival plan reproduce the
  byte-identical report; there is no wall clock anywhere in the
  scheduler.
"""

from __future__ import annotations

import json
import random
from typing import List, Optional, Tuple

from repro.bench.report import ExperimentResult, ResultTable
from repro.bench.runner import get_scale
from repro.indexes.registry import IndexKind
from repro.lsm.options import Granularity
from repro.service.gateway import (
    Gateway,
    GatewayConfig,
    GatewayReport,
    OUTCOME_EXPIRED,
    OUTCOME_OK,
    OUTCOME_SHED,
    QUEUE_DELAY_OP,
    Request,
    SERVICE_OP,
)
from repro.service.sharded import ShardedDB
from repro.storage.block_device import MemoryBlockDevice
from repro.storage.faults import FaultPlan, FaultyBlockDevice
from repro.storage.retry import RetryPolicy
from repro.storage.stats import OVERLOAD_REQUESTS
from repro.workloads.arrivals import PoissonArrivals

EXPERIMENT_ID = "overload"
TITLE = "Overload: open-loop goodput, shedding, deadlines, retry budgets"

#: Shards in the simulated fleet (small, so smoke stays fast).
NUM_SHARDS = 2
#: Offered load as multiples of calibrated capacity.
LOAD_MULTIPLIERS = (0.25, 0.6, 1.0, 1.6, 2.4)
#: Bounded FIFO depth per shard during the sweep.
QUEUE_DEPTH = 32
#: Closed-loop probes used to calibrate mean service time.
CALIBRATION_OPS = 256

#: Retry-arm fault injection: flaky reads whose *detection* costs real
#: simulated time, the ingredient that makes unbudgeted retries burn
#: capacity at saturation.
FAULT_READ_RATE = 0.08
FAULT_FAIL_COUNT = 3
FAULT_TIMEOUT_US = 500.0


def _build_db(scale, kind: IndexKind, boundary: int,
              granularity: Granularity,
              plan: Optional[FaultPlan] = None,
              max_attempts: int = 3) -> ShardedDB:
    """A loaded 2-shard fleet with block caches off.

    Caches are disabled so per-operation service time is a stable
    function of the key alone — load points stay comparable and the
    determinism check is not hostage to cross-run cache warmth.
    """
    options = scale.config(kind, boundary,
                           granularity=granularity).to_options()
    options = options.with_changes(
        cache_bytes=0, data_cache_bytes=0,
        retry=RetryPolicy(max_attempts=max_attempts))
    devices = None
    if plan is not None:
        devices = [
            FaultyBlockDevice(MemoryBlockDevice(block_size=options.block_size),
                              FaultPlan(seed=plan.seed + i,
                                        transient_read_rate=plan.transient_read_rate,
                                        transient_fail_count=plan.transient_fail_count,
                                        transient_timeout_us=plan.transient_timeout_us))
            for i in range(NUM_SHARDS)]
    db = ShardedDB(num_shards=NUM_SHARDS, options=options, devices=devices,
                   observe=False)
    keys = list(range(100_000, 100_000 + scale.n_keys))
    db.bulk_ingest(keys, seed=scale.seed)
    return db


def _keys(scale) -> List[int]:
    return list(range(100_000, 100_000 + scale.n_keys))


def _calibrate(scale, kind, boundary, granularity,
               overhead_us: float) -> float:
    """Mean closed-loop service µs per get (a throwaway fleet)."""
    db = _build_db(scale, kind, boundary, granularity)
    keys = _keys(scale)
    rng = random.Random(scale.seed)
    before = db.stats.total_time()
    for _ in range(CALIBRATION_OPS):
        db.get(keys[rng.randrange(len(keys))])
    elapsed = db.stats.total_time() - before
    db.close()
    return elapsed / CALIBRATION_OPS + overhead_us


def _plan(scale, rate_per_sec: float, deadline_us: float,
          count: int) -> List[Request]:
    """A deterministic open-loop request plan: Poisson gets."""
    keys = _keys(scale)
    times = PoissonArrivals(rate_per_sec=rate_per_sec,
                            seed=scale.seed).times(count)
    rng = random.Random(scale.seed + 1)
    return [Request("get", keys[rng.randrange(len(keys))], t,
                    t + deadline_us) for t in times]


def _run_arm(scale, kind, boundary, granularity, rate_per_sec: float,
             deadline_us: float, *, plan: Optional[FaultPlan] = None,
             budget_on: bool = True, max_attempts: int = 3,
             breaker: bool = True) -> GatewayReport:
    """One fresh fleet + gateway driven through one arrival plan."""
    db = _build_db(scale, kind, boundary, granularity, plan=plan,
                   max_attempts=max_attempts)
    config = GatewayConfig(
        queue_depth=QUEUE_DEPTH,
        default_deadline_us=deadline_us,
        retry_budget_enabled=budget_on,
        retry_budget_ratio=0.02,
        retry_budget_burst=3.0,
        max_client_retries=6,
        breaker_enabled=breaker,
    )
    gateway = Gateway(db, config)
    report = gateway.run(_plan(scale, rate_per_sec, deadline_us,
                               scale.n_ops))
    db.close()
    return report


def _sweep(scale, result: ExperimentResult, kind, boundary) -> None:
    table = ResultTable(columns=[
        "granularity", "load_x", "offered_per_sec", "goodput_per_sec",
        "shed_frac", "expired_frac", "deadline_hit_frac", "queue_p99_us",
        "service_p99_us"])
    knee_ok = True
    shed_monotone = True
    queue_split_ok = True
    conserved = True
    for granularity in (Granularity.FILE, Granularity.LEVEL):
        mean_svc = _calibrate(scale, kind, boundary, granularity,
                              GatewayConfig().service_overhead_us)
        capacity = NUM_SHARDS * 1e6 / mean_svc
        # Deadline sized so a near-full queue can expire requests at
        # dequeue (the depth x service product exceeds it), yet ample
        # for unqueued service.
        deadline_us = max(60.0, 20.0 * mean_svc)
        curve: List[Tuple[float, GatewayReport]] = []
        for mult in LOAD_MULTIPLIERS:
            report = _run_arm(scale, kind, boundary, granularity,
                              capacity * mult, deadline_us)
            curve.append((mult, report))
            offered = report.requests * 1e6 / report.horizon_us
            deadline_frac = (report.fraction(OUTCOME_EXPIRED)
                             + report.fraction("deadline")
                             + report.fraction("late"))
            queue_p99 = report.percentiles[QUEUE_DELAY_OP]["p99"]
            service_p99 = report.percentiles[SERVICE_OP]["p99"]
            table.add_row(str(granularity), mult, round(offered, 1),
                          round(report.goodput_per_sec, 1),
                          round(report.fraction(OUTCOME_SHED), 4),
                          round(report.fraction(OUTCOME_EXPIRED), 4),
                          round(deadline_frac, 4),
                          round(queue_p99, 1), round(service_p99, 1))
            conserved = conserved and (
                sum(report.outcomes.values())
                == int(report.counters[OVERLOAD_REQUESTS]))
        # Saturation knee: the curve tracks offered load below the
        # knee and plateaus past it.
        low = curve[0][1]
        mid = curve[2][1]
        top = curve[-1][1]
        low_offered = low.requests * 1e6 / low.horizon_us
        knee_ok = knee_ok and (
            low.goodput_per_sec >= 0.85 * low_offered
            and top.goodput_per_sec <= 1.25 * mid.goodput_per_sec
            and top.fraction(OUTCOME_OK) < low.fraction(OUTCOME_OK))
        sheds = [report.fraction(OUTCOME_SHED) for _, report in curve]
        shed_monotone = shed_monotone and all(
            b >= a - 1e-9 for a, b in zip(sheds, sheds[1:]))
        # Queueing vs. service: negligible queueing below the knee
        # (mean queue delay under mean service), queueing-dominated
        # tail past it (queue p99 above service p99, and grown).
        low_q_mean = low.percentiles[QUEUE_DELAY_OP]["mean"]
        low_s_mean = low.percentiles[SERVICE_OP]["mean"]
        low_q_p99 = low.percentiles[QUEUE_DELAY_OP]["p99"]
        top_q = top.percentiles[QUEUE_DELAY_OP]["p99"]
        top_s = top.percentiles[SERVICE_OP]["p99"]
        queue_split_ok = queue_split_ok and (
            low_q_mean < low_s_mean and top_q > top_s
            and top_q > 3.0 * max(low_q_p99, 1.0))
    result.add_table("Goodput vs. offered load (open-loop Poisson)", table)
    result.check("goodput tracks offered load below the knee and plateaus "
                 "past saturation (both granularities)", knee_ok)
    result.check("shed fraction is monotonically non-decreasing in offered "
                 "load", shed_monotone)
    result.check("queueing is negligible at low load and dominates the "
                 "p99 tail past saturation", queue_split_ok)
    result.check("every request reaches exactly one terminal outcome",
                 conserved)


def _retry_arm(scale, result: ExperimentResult, kind, boundary) -> None:
    granularity = Granularity.FILE
    plan = FaultPlan(seed=scale.seed + 11,
                     transient_read_rate=FAULT_READ_RATE,
                     transient_fail_count=FAULT_FAIL_COUNT,
                     transient_timeout_us=FAULT_TIMEOUT_US)
    # Capacity under faults is far below the healthy calibration (each
    # fault burns its timeout); offering ~1.5x the *healthy* capacity
    # guarantees deep saturation for both arms.
    mean_svc = _calibrate(scale, kind, boundary, granularity,
                          GatewayConfig().service_overhead_us)
    rate = 1.5 * NUM_SHARDS * 1e6 / (mean_svc + FAULT_READ_RATE
                                     * FAULT_TIMEOUT_US)
    deadline_us = max(4_000.0, 40.0 * mean_svc)
    table = ResultTable(columns=[
        "retry_budget", "goodput_per_sec", "ok", "failed", "shed",
        "client_resubmits", "budget_denied"])
    reports = {}
    for budget_on in (True, False):
        report = _run_arm(scale, kind, boundary, granularity, rate,
                          deadline_us, plan=plan, budget_on=budget_on,
                          max_attempts=1, breaker=False)
        reports[budget_on] = report
        table.add_row("on" if budget_on else "off",
                      round(report.goodput_per_sec, 1),
                      report.outcomes.get(OUTCOME_OK, 0),
                      report.outcomes.get("failed", 0),
                      report.outcomes.get(OUTCOME_SHED, 0),
                      int(report.counters.get("retry.client_resubmits", 0)),
                      int(report.counters.get("retry.budget_denied", 0)))
    result.add_table("Retry budget under transient faults at saturation "
                     f"(fault rate {FAULT_READ_RATE}, detection timeout "
                     f"{FAULT_TIMEOUT_US:.0f}us)", table)
    result.check("unbudgeted retries strictly lower goodput at saturation "
                 "(the budget prevents the retry storm)",
                 reports[False].goodput_per_sec
                 < reports[True].goodput_per_sec)
    result.check("the exhausted budget denied resubmits (the cap engaged)",
                 reports[True].counters.get("retry.budget_denied", 0) > 0
                 and reports[False].counters.get("retry.budget_denied",
                                                 0) == 0)


def _determinism_arm(scale, result: ExperimentResult, kind,
                     boundary) -> None:
    granularity = Granularity.FILE
    mean_svc = _calibrate(scale, kind, boundary, granularity,
                          GatewayConfig().service_overhead_us)
    capacity = NUM_SHARDS * 1e6 / mean_svc
    deadline_us = max(60.0, 20.0 * mean_svc)
    dumps = []
    for _ in range(2):
        report = _run_arm(scale, kind, boundary, granularity,
                          capacity * 1.6, deadline_us)
        dumps.append(json.dumps(report.to_json_dict(), sort_keys=True))
    result.check("same seed + same arrival plan => byte-identical report "
                 "(no wall clock in the scheduler)", dumps[0] == dumps[1])


def run(scale="smoke", kind: IndexKind = IndexKind.PGM,
        boundary: int = 32) -> ExperimentResult:
    """Sweep offered load x granularity; see module docstring."""
    scale = get_scale(scale)
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    result.note(f"scale={scale.name}: {scale.n_keys} keys, "
                f"{scale.n_ops} requests/point, {NUM_SHARDS} shards, "
                f"kind={kind}, boundary={boundary}, queue depth "
                f"{QUEUE_DEPTH}")
    _sweep(scale, result, kind, boundary)
    _retry_arm(scale, result, kind, boundary)
    _determinism_arm(scale, result, kind, boundary)
    return result
