"""Replication study — failover, durability and availability under crashes.

Beyond the paper: every prior experiment runs each shard as a single
point of failure.  This experiment replicates each shard
(:class:`~repro.service.replication.ReplicaGroup`) and drives the fleet
through *seeded crash schedules* on the shared virtual clock, measuring
what the replication protocol delivers:

* **Durability x ack policy** — a write stream with a mid-stream
  primary power cut, replayed under :attr:`AckPolicy.ASYNC` and
  :attr:`AckPolicy.QUORUM`.  Under QUORUM no acknowledged write may be
  lost to a single-replica power cut (the frame reached a majority
  before the ack); under ASYNC the unshipped suffix dies with the
  primary and is truncated at promotion (``repl.frames_lost``) — the
  durability gap between the policies, quantified.
* **Availability x replication factor** — a mixed read/write stream
  with a crash-and-revive schedule, swept over R = 1, 2, 3.  Served
  fraction must be monotone in R: R=1 goes fully dark, R=2 keeps
  serving reads (quorum of 2 is 2, so writes stall until the revive),
  R=3 fails over and serves both.
* **Failover time x model granularity** — promotion *reopens* the new
  primary manifest-driven, so the ``repl.failover`` histogram measures
  detection wait plus real recovery work (model reloads included), not
  a zero-cost pointer swap.
* **Writes resume through the gateway** — the per-shard circuit
  breaker force-opens while the shard is headless and closes through
  its half-open probe once promotion restores writability.
* **Determinism** — the same seed and crash schedule reproduce a
  byte-identical report; the failure detector runs on the virtual
  clock, never the wall clock.
"""

from __future__ import annotations

import json
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.report import ExperimentResult, ResultTable
from repro.bench.runner import get_scale
from repro.errors import ReproError
from repro.indexes.registry import IndexKind
from repro.lsm.options import Granularity
from repro.lsm.write_batch import WriteBatch
from repro.service.gateway import Gateway, GatewayConfig
from repro.service.replication import (
    FAILOVER_OP,
    AckPolicy,
    ReplicationConfig,
)
from repro.service.sharded import ShardedDB
from repro.storage.block_device import MemoryBlockDevice
from repro.storage.faults import FaultPlan, FaultyBlockDevice
from repro.storage.stats import (
    REPL_BACKPRESSURE,
    REPL_FRAMES_LOST,
    REPL_PROMOTIONS,
    REPL_WRITES_ACKED,
)

EXPERIMENT_ID = "replication"
TITLE = "Replication: failover, durability x ack policy, availability x R"

#: Shards in the simulated fleet (each one a replica group).
NUM_SHARDS = 2
#: Failure-detector cadence and patience (simulated microseconds).
HEARTBEAT_US = 5_000.0
TIMEOUT_US = 15_000.0
#: Simulated gap between closed-loop client operations.  Not a divisor
#: of the heartbeat interval, so crashes land mid-interval and the
#: ASYNC arm always has an unshipped suffix in flight.
OP_GAP_US = 700.0


def _build_fleet(scale, kind: IndexKind, boundary: int,
                 granularity: Granularity, factor: int, ack: AckPolicy,
                 seed: int) -> Tuple[ShardedDB, List[List[FaultyBlockDevice]]]:
    """A loaded replicated fleet on fault-injectable devices."""
    options = scale.config(kind, boundary,
                           granularity=granularity).to_options()
    options = options.with_changes(cache_bytes=0, data_cache_bytes=0)
    devices = [
        [FaultyBlockDevice(MemoryBlockDevice(block_size=options.block_size),
                           FaultPlan(seed=seed + shard * 97 + r))
         for r in range(factor)]
        for shard in range(NUM_SHARDS)]
    config = ReplicationConfig(
        replication_factor=factor, ack=ack,
        heartbeat_interval_us=HEARTBEAT_US,
        heartbeat_timeout_us=TIMEOUT_US)
    db = ShardedDB(num_shards=NUM_SHARDS, options=options,
                   devices=devices, replication=config, observe=False)
    db.bulk_ingest(list(range(100_000, 100_000 + scale.n_keys)),
                   seed=scale.seed)
    return db, devices


def _cut_primary(db: ShardedDB,
                 devices: Sequence[Sequence[FaultyBlockDevice]],
                 shard: int) -> int:
    """Power-cut ``shard``'s current primary; returns its index."""
    index = db.shards[shard].primary_index
    devices[shard][index].cut_power()
    return index


def _durability_arm(scale, result: ExperimentResult, kind,
                    boundary) -> Dict[str, str]:
    """Write stream + mid-stream primary crash, per ack policy."""
    table = ResultTable(columns=[
        "ack", "acked", "rejected", "backpressured", "lost_acked",
        "frames_lost", "promotions", "resumed"])
    lost_by_policy: Dict[AckPolicy, int] = {}
    resumed_by_policy: Dict[AckPolicy, bool] = {}
    dumps: Dict[str, str] = {}
    n_ops = min(scale.n_ops, 1_200)
    # The cut lands a few operations *past* a detector tick, so the
    # commits since the last async ship are genuinely in flight.
    crash_at = n_ops // 3 + 4
    for ack in (AckPolicy.ASYNC, AckPolicy.QUORUM):
        db, devices = _build_fleet(scale, kind, boundary, Granularity.FILE,
                                   3, ack, scale.seed + 31)
        acked: Dict[int, bytes] = {}
        rejected = 0
        resumed = False
        now = 0.0
        for i in range(n_ops):
            now += OP_GAP_US
            db.tick(now)
            key = 100_000 + i
            value = b"repl-%d" % i
            try:
                db.put(key, value)
            except ReproError:
                rejected += 1
            else:
                acked[key] = value
                if i > crash_at and db.shard_for(key) == 0:
                    # A write on the crashed shard succeeded again:
                    # the follower was promoted and took over the log.
                    resumed = True
            if i == crash_at:
                # Power-cut the primary right after an acknowledged
                # write, mid-heartbeat-interval.
                _cut_primary(db, devices, 0)
        # Drain the detector so the final state is settled.
        for _ in range(8):
            now += HEARTBEAT_US
            db.tick(now)
        lost = sum(1 for key, value in acked.items()
                   if db.get(key) != value)
        stats = db.stats
        frames_lost = int(stats.counters.get(REPL_FRAMES_LOST, 0))
        promotions = int(stats.counters.get(REPL_PROMOTIONS, 0))
        backpressured = int(stats.counters.get(REPL_BACKPRESSURE, 0))
        table.add_row(str(ack), len(acked), rejected, backpressured, lost,
                      frames_lost, promotions, resumed)
        lost_by_policy[ack] = lost
        resumed_by_policy[ack] = resumed
        dumps[str(ack)] = json.dumps(
            {"counters": dict(sorted(stats.counters.items())),
             "acked": len(acked), "rejected": rejected, "lost": lost},
            sort_keys=True)
        db.close()
    result.add_table(
        "Durability under a mid-stream primary power cut (R=3; the dead "
        "replica is never revived, so once its bounded hint queue fills, "
        "further writes are rejected as backpressure)", table)
    result.check("QUORUM loses no acknowledged write to a single-replica "
                 "power cut", lost_by_policy[AckPolicy.QUORUM] == 0)
    result.check("ASYNC loses its acked-but-unshipped suffix at promotion "
                 "(the durability gap QUORUM closes)",
                 lost_by_policy[AckPolicy.ASYNC]
                 > lost_by_policy[AckPolicy.QUORUM])
    result.check("writes resume on the crashed shard after follower "
                 "promotion (both policies)",
                 all(resumed_by_policy.values()))
    return dumps


def _availability_arm(scale, result: ExperimentResult, kind,
                      boundary) -> None:
    """Mixed read/write stream through a crash-and-revive schedule."""
    table = ResultTable(columns=[
        "replication_factor", "served", "refused", "availability",
        "promotions"])
    n_ops = min(scale.n_ops, 1_500)
    crash_at = n_ops // 4
    revive_at = (3 * n_ops) // 4
    availability: List[float] = []
    for factor in (1, 2, 3):
        db, devices = _build_fleet(scale, kind, boundary, Granularity.FILE,
                                   factor, AckPolicy.QUORUM,
                                   scale.seed + 47)
        rng = random.Random(scale.seed + 5)
        keys = list(range(100_000, 100_000 + scale.n_keys))
        served = refused = 0
        cut_index: Optional[int] = None
        now = 0.0
        for i in range(n_ops):
            now += OP_GAP_US
            db.tick(now)
            if i == crash_at:
                cut_index = _cut_primary(db, devices, 0)
            if i == revive_at and cut_index is not None:
                devices[0][cut_index].revive()
            key = keys[rng.randrange(len(keys))]
            try:
                if rng.random() < 0.1:
                    db.put(key, b"avail-%d" % i)
                else:
                    db.get(key)
                served += 1
            except ReproError:
                refused += 1
        fraction = served / n_ops
        availability.append(fraction)
        table.add_row(factor, served, refused, round(fraction, 4),
                      int(db.stats.counters.get(REPL_PROMOTIONS, 0)))
        db.close()
    result.add_table(
        "Availability through a crash-and-revive schedule (QUORUM acks, "
        "10% writes)", table)
    result.check("availability is monotone in the replication factor",
                 all(b >= a - 1e-9
                     for a, b in zip(availability, availability[1:])))
    result.check("R=3 rides through the crash nearly unscathed "
                 "(served fraction > 0.95)", availability[-1] > 0.95)
    result.check("R=1 pays for the whole outage (strictly worse than R=3)",
                 availability[0] < availability[-1])


def _failover_arm(scale, result: ExperimentResult, kind, boundary) -> None:
    """Failover-time histogram per model granularity."""
    table = ResultTable(columns=[
        "granularity", "failovers", "failover_us", "detection_floor_us"])
    ok_floor = True
    recovered_work = True
    for granularity in (Granularity.FILE, Granularity.LEVEL):
        db, devices = _build_fleet(scale, kind, boundary, granularity,
                                   3, AckPolicy.QUORUM, scale.seed + 63)
        db.flush()
        now = 0.0
        for i in range(40):
            now += OP_GAP_US
            db.tick(now)
            db.put(100_000 + i, b"pre-%d" % i)
        _cut_primary(db, devices, 0)
        for _ in range(8):
            now += HEARTBEAT_US
            db.tick(now)
        hist = db.metrics().histograms.get(FAILOVER_OP)
        count = hist.count if hist is not None else 0
        mean_us = (hist.percentiles()["mean"]
                   if hist is not None and count else 0.0)
        table.add_row(str(granularity), count, round(mean_us, 1),
                      TIMEOUT_US)
        # Detection alone takes the heartbeat timeout; the recovery
        # term (manifest replay + model reload on the promoted
        # follower) must push the measured failover strictly past it.
        ok_floor = ok_floor and count == 1 and mean_us >= TIMEOUT_US
        recovered_work = recovered_work and mean_us > TIMEOUT_US
        db.close()
    result.add_table("Failover time (detection wait + measured recovery)",
                     table)
    result.check("each crashed shard records exactly one failover, no "
                 "shorter than the detection timeout", ok_floor)
    result.check("failover time includes the promoted follower's measured "
                 "reopen (model reload is not skipped)", recovered_work)


def _breaker_arm(scale, result: ExperimentResult, kind, boundary) -> None:
    """The gateway breaker opens on the headless shard, then closes."""
    db, devices = _build_fleet(scale, kind, boundary, Granularity.FILE,
                               3, AckPolicy.QUORUM, scale.seed + 71)
    gateway = Gateway(db, GatewayConfig(breaker_cooldown_us=50_000.0))
    # A key owned by shard 0 (the shard the schedule crashes).
    key0 = next(k for k in range(100_000, 100_200)
                if db.shard_for(k) == 0)
    batch = WriteBatch()
    batch.put(key0, b"before")
    gateway.write(batch)
    _cut_primary(db, devices, 0)
    # The first post-cut write *discovers* the dead primary (the error
    # marks the replica dead); the second hits the force-opened
    # breaker and fails fast without touching the shard.
    opened = False
    for _ in range(2):
        try:
            gateway.write(batch)
        except ReproError:
            opened = bool(gateway.breakers[0].state != "closed")
    # Let the detector promote a follower, then wait out the cooldown.
    now = gateway.clock.now_us
    for _ in range(8):
        now += HEARTBEAT_US
        db.tick(now)
    gateway.clock.advance_to(now + 60_000.0)
    landed: Optional[bytes] = None
    for attempt in range(4):
        retry = WriteBatch()
        payload = b"after-%d" % attempt
        retry.put(key0, payload)
        try:
            gateway.write(retry)
            landed = payload
        except ReproError:
            pass
    closed = gateway.breakers[0].state == "closed"
    value = db.get(key0)
    db.close()
    result.check("the breaker force-opens while the crashed shard is "
                 "headless (writes fail fast)", opened)
    result.check("after promotion the breaker closes through its "
                 "half-open probe and writes land", closed
                 and landed is not None and value == landed)


def _determinism_arm(scale, result: ExperimentResult, kind, boundary,
                     first: Dict[str, str]) -> None:
    """The durability arm replayed must reproduce byte-identical state."""
    second = _durability_arm(scale, ExperimentResult("scratch", "scratch"),
                             kind, boundary)
    result.check("same seed + same crash schedule => byte-identical "
                 "counters and outcomes (no wall clock in the failure "
                 "detector)", first == second)


def run(scale="smoke", kind: IndexKind = IndexKind.PGM,
        boundary: int = 32) -> ExperimentResult:
    """Crash-schedule sweep over ack policy, R and granularity."""
    scale = get_scale(scale)
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    result.note(f"scale={scale.name}: {scale.n_keys} keys, "
                f"{NUM_SHARDS} shards, kind={kind}, boundary={boundary}, "
                f"heartbeat {HEARTBEAT_US:.0f}us / timeout "
                f"{TIMEOUT_US:.0f}us")
    dumps = _durability_arm(scale, result, kind, boundary)
    _availability_arm(scale, result, kind, boundary)
    _failover_arm(scale, result, kind, boundary)
    _breaker_arm(scale, result, kind, boundary)
    _determinism_arm(scale, result, kind, boundary, dumps)
    return result
