"""Figure 6 — latency and memory versus position boundary.

The paper's headline experiment: for each index type, sweep the
position boundary from 256 down to 8, run a point-lookup-only workload
and record (a) mean lookup latency and (b) index memory.  Its
observations:

1. smaller boundaries reduce latency for *every* index, at growing
   memory cost (Observation 1);
2. at a fixed boundary all index types have near-identical latency —
   I/O dominates — while memory differs wildly: FP worst, FITing-Tree
   next (B+-tree overhead), PGM/RMI the best frontier;
3. latency gains flatten once segments approach the I/O block size
   (Observation 2, diminishing returns).

This experiment reproduces the full grid and asserts those shapes.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.bench.report import ExperimentResult, ResultTable
from repro.bench.runner import get_scale, loaded_testbed, sample_queries
from repro.core.config import PAPER_BOUNDARIES
from repro.core.cost_analysis import plateau_boundary
from repro.indexes.registry import ALL_KINDS, IndexKind
from repro.workloads import datasets as ds

EXPERIMENT_ID = "fig6"
TITLE = "Latency & memory vs position boundary (Figure 6)"


def run(scale="smoke", datasets: Sequence[str] = ("random",),
        kinds: Sequence[IndexKind] = ALL_KINDS,
        boundaries: Sequence[int] = PAPER_BOUNDARIES) -> ExperimentResult:
    """Sweep (dataset x kind x boundary); measure lookups and memory."""
    scale = get_scale(scale)
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    result.note(f"scale={scale.name}: {scale.n_keys} keys, "
                f"{scale.n_ops} point lookups per cell")

    grid: Dict[Tuple[str, IndexKind, int], Dict[str, float]] = {}
    for dataset in datasets:
        keys = ds.generate(dataset, scale.n_keys, seed=scale.seed)
        queries = sample_queries(keys, scale.n_ops, seed=scale.seed + 1)
        table = ResultTable(columns=[
            "index", "boundary", "latency_us", "index_bytes", "B/key",
            "blocks/op"])
        for kind in kinds:
            for boundary in boundaries:
                bed = loaded_testbed(scale.config(kind, boundary,
                                                  dataset=dataset), keys)
                metrics = bed.run_point_lookups(queries)
                memory = bed.memory()
                bed.close()
                cell = {
                    "latency": metrics.avg_us,
                    "index_bytes": float(memory.index_bytes),
                    "blocks": metrics.blocks_read_per_op(),
                }
                grid[(dataset, kind, boundary)] = cell
                table.add_row(kind.value, boundary, cell["latency"],
                              int(cell["index_bytes"]),
                              cell["index_bytes"] / scale.n_keys,
                              cell["blocks"])
        result.add_table(f"dataset={dataset}", table)

    _shape_checks(result, grid, datasets, kinds, boundaries, scale)
    return result


def _shape_checks(result: ExperimentResult, grid, datasets, kinds,
                  boundaries, scale) -> None:
    b_max, b_min = max(boundaries), min(boundaries)
    mid = sorted(boundaries)[len(boundaries) // 2]
    plateau = plateau_boundary(scale.entry_bytes, 4096)

    for dataset in datasets:
        # Observation 1a: smaller boundary -> lower latency, every index.
        monotone = all(
            grid[(dataset, kind, b_min)]["latency"]
            < grid[(dataset, kind, b_max)]["latency"]
            for kind in kinds)
        result.check(f"{dataset}: latency falls as boundary shrinks "
                     f"({b_max} -> {b_min}) for every index", monotone)

        # Observation 1b: latency nearly identical across kinds at a
        # fixed boundary (I/O dominates).
        lat_mid = [grid[(dataset, kind, mid)]["latency"] for kind in kinds]
        spread = (max(lat_mid) - min(lat_mid)) / max(lat_mid)
        result.check(
            f"{dataset}: latency spread across index types at boundary "
            f"{mid} is small", spread < 0.35, f"spread={spread:.2%}")

        # Observation 1c: FP has the worst memory at tight boundaries.
        if IndexKind.FP in kinds:
            fp_mem = grid[(dataset, IndexKind.FP, b_min)]["index_bytes"]
            learned = [kind for kind in kinds if kind is not IndexKind.FP]
            worst_learned = max(
                grid[(dataset, kind, b_min)]["index_bytes"]
                for kind in learned) if learned else 0.0
            result.check(
                f"{dataset}: fence pointers use the most memory at "
                f"boundary {b_min}", fp_mem >= worst_learned,
                f"FP={fp_mem:.0f}B worst-learned={worst_learned:.0f}B")

        # PGM's optimal segmentation beats greedy PLR on memory where
        # segmentation is actually stressed (the tightest boundary;
        # at loose boundaries both may cover a table with one segment).
        if IndexKind.PGM in kinds and IndexKind.PLR in kinds:
            pgm = grid[(dataset, IndexKind.PGM, b_min)]["index_bytes"]
            plr = grid[(dataset, IndexKind.PLR, b_min)]["index_bytes"]
            result.check(
                f"{dataset}: PGM memory <= PLR memory at boundary {b_min}",
                pgm <= plr * 1.05, f"PGM={pgm:.0f}B PLR={plr:.0f}B")

        # FITing-Tree pays B+-tree overhead over PLR's flat array.
        if IndexKind.FT in kinds and IndexKind.PLR in kinds:
            ft = grid[(dataset, IndexKind.FT, mid)]["index_bytes"]
            plr = grid[(dataset, IndexKind.PLR, mid)]["index_bytes"]
            result.check(
                f"{dataset}: FITing-Tree memory > PLR memory at boundary "
                f"{mid}", ft > plr, f"FT={ft:.0f}B PLR={plr:.0f}B")

        # Observation 2: diminishing returns near the plateau.
        ordered = sorted(boundaries, reverse=True)
        if len(ordered) >= 3:
            kind = kinds[0]
            top_gain = (grid[(dataset, kind, ordered[0])]["latency"]
                        - grid[(dataset, kind, ordered[1])]["latency"])
            bottom_gain = (grid[(dataset, kind, ordered[-2])]["latency"]
                           - grid[(dataset, kind, ordered[-1])]["latency"])
            result.check(
                f"{dataset}: latency gains diminish toward small "
                f"boundaries (plateau ~{plateau})",
                bottom_gain < top_gain,
                f"first-halving gain={top_gain:.2f}us, "
                f"last-halving gain={bottom_gain:.2f}us")
