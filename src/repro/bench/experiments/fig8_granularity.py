"""Figure 8 — impact of index granularity (SSTable size and LevelModel).

The paper varies SSTable size from 8 MiB to 128 MiB and adds Dai et
al.'s level-granularity model ("L"), then measures index memory (at
several boundaries) and lookup latency (at boundary 64).  Findings:

* lookup latency is essentially flat across granularities (a few
  microseconds of spread);
* memory shrinks substantially with coarser granularity — more than
  10x from 8 MiB files to the level model at large boundaries — because
  fewer tables mean fewer inner indexes;
* RMI is the outlier whose memory keeps falling even at tight
  boundaries, since its footprint is dominated by the second-layer
  model array rather than per-segment bookkeeping.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.bench.report import ExperimentResult, ResultTable
from repro.bench.runner import get_scale, loaded_testbed, sample_queries
from repro.core.config import PAPER_SSTABLE_MIB
from repro.indexes.registry import IndexKind
from repro.lsm.options import Granularity
from repro.workloads import datasets as ds

EXPERIMENT_ID = "fig8"
TITLE = "Impact of index granularity (Figure 8)"

#: The paper's Figure 8 excludes the FP baseline.
DEFAULT_KINDS = (IndexKind.FT, IndexKind.PLR, IndexKind.PLEX, IndexKind.RS,
                 IndexKind.RMI, IndexKind.PGM)

_LATENCY_BOUNDARY = 64


def run(scale="smoke", dataset: str = "random",
        kinds: Sequence[IndexKind] = DEFAULT_KINDS,
        boundaries: Sequence[int] = (128, 64, 32),
        paper_mib_sizes: Sequence[int] = PAPER_SSTABLE_MIB) -> ExperimentResult:
    """Sweep granularity x boundary; measure memory, latency at one boundary."""
    scale = get_scale(scale)
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    result.note(f"scale={scale.name}; SSTable sizes are the paper's MiB "
                f"values scaled by {scale.sstable_unit_bytes} B/MiB; "
                f"'L' = level-granularity model")
    keys = ds.generate(dataset, scale.n_keys, seed=scale.seed)
    queries = sample_queries(keys, scale.n_ops, seed=scale.seed + 1)

    grans: list = [("%dM" % mib, Granularity.FILE,
                    scale.paper_sstable_bytes(mib))
                   for mib in paper_mib_sizes]
    grans.append(("L", Granularity.LEVEL, scale.default_sstable_bytes))

    memory: Dict[Tuple[str, IndexKind, int], float] = {}
    latency: Dict[Tuple[str, IndexKind], float] = {}
    for label, granularity, sst_bytes in grans:
        for kind in kinds:
            for boundary in boundaries:
                bed = loaded_testbed(
                    scale.config(kind, boundary, granularity=granularity,
                                 sstable_bytes=sst_bytes, dataset=dataset),
                    keys)
                memory[(label, kind, boundary)] = float(
                    bed.memory().index_bytes)
                if boundary == _LATENCY_BOUNDARY or \
                        (boundary == boundaries[0]
                         and _LATENCY_BOUNDARY not in boundaries):
                    metrics = bed.run_point_lookups(queries)
                    latency[(label, kind)] = metrics.avg_us
                bed.close()

    for boundary in boundaries:
        table = ResultTable(columns=["sst size"]
                            + [kind.value for kind in kinds])
        for label, _, _ in grans:
            table.add_row(label, *[int(memory[(label, kind, boundary)])
                                   for kind in kinds])
        result.add_table(
            f"index memory (B) at position boundary {boundary}", table)

    lat_table = ResultTable(columns=["sst size"]
                            + [kind.value for kind in kinds])
    for label, _, _ in grans:
        lat_table.add_row(label, *[latency[(label, kind)] for kind in kinds])
    result.add_table(
        f"lookup latency (us) at position boundary "
        f"{_LATENCY_BOUNDARY if _LATENCY_BOUNDARY in boundaries else boundaries[0]}",
        lat_table)

    _shape_checks(result, memory, latency, grans, kinds, boundaries)
    return result


def _shape_checks(result, memory, latency, grans, kinds, boundaries) -> None:
    first_label = grans[0][0]
    level_label = grans[-1][0]
    coarse_label = grans[-2][0]
    wide = max(boundaries)

    shrink_ok = all(
        memory[(level_label, kind, wide)]
        <= memory[(first_label, kind, wide)]
        for kind in kinds)
    result.check(
        f"coarser granularity reduces memory at boundary {wide} "
        "for every index", shrink_ok,
        str({kind.value: (int(memory[(first_label, kind, wide)]),
                          int(memory[(level_label, kind, wide)]))
             for kind in kinds}))

    big_drop = [kind for kind in kinds
                if memory[(first_label, kind, wide)]
                >= 4 * max(1.0, memory[(level_label, kind, wide)])]
    result.check(
        "level model gives a large (paper: >10x) memory drop for most "
        "indexes", len(big_drop) >= max(1, len(kinds) // 2),
        f"kinds with >=4x drop: {[kind.value for kind in big_drop]}")

    lat_values = [latency[(label, kind)] for label, _, _ in grans
                  for kind in kinds]
    spread = (max(lat_values) - min(lat_values)) / max(lat_values)
    result.check(
        "lookup latency is largely unaffected by granularity",
        spread < 0.45, f"spread={spread:.2%}")

    if IndexKind.RMI in kinds:
        tight = min(boundaries)
        rmi_monotone = all(
            memory[(grans[i + 1][0], IndexKind.RMI, tight)]
            <= memory[(grans[i][0], IndexKind.RMI, tight)] * 1.10
            for i in range(len(grans) - 1))
        result.check(
            f"RMI memory keeps falling with granularity even at tight "
            f"boundary {tight} (first-stage dominated)", rmi_monotone,
            str([int(memory[(label, IndexKind.RMI, tight)])
                 for label, _, _ in grans]))
    # Level-model latency should stay comparable to the coarsest file
    # granularity (it saves memory, not time).
    lat_level = max(latency[(level_label, kind)] for kind in kinds)
    lat_coarse = max(latency[(coarse_label, kind)] for kind in kinds)
    result.check(
        "level-model latency comparable to coarse file granularity",
        lat_level <= lat_coarse * 1.35,
        f"level={lat_level:.2f}us coarse={lat_coarse:.2f}us")
