"""Serving-layer study — block cache, shard scaling, write batching.

Beyond the paper: its testbed measures one LSM-tree with no cache and
per-key writes, which isolates index quality but hides the serving
knobs that dominate end-to-end latency at scale (LearnedKV and the
pragmatic RocksDB literature both make this point).  This experiment
sweeps the three knobs the ``repro.service`` layer adds:

* **Block cache** — YCSB-C (read-only Zipfian) against increasing
  ``cache_bytes``: the hot block set concentrates under skew, so hit
  rate climbs, device blocks per op fall and mean latency follows.
* **Shard scaling** — the same dataset hash-partitioned over more
  :class:`~repro.service.sharded.ShardedDB` shards: each shard's tree
  is shallower, the per-lookup level walk shortens, and the router
  keeps the spread even.
* **Write batching** — the same stream of puts through growing
  :class:`~repro.lsm.write_batch.WriteBatch` group commits: WAL
  commits fall as ceil(N/K) and per-op write-path time follows.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.bench.report import ExperimentResult, ResultTable, format_bytes
from repro.bench.runner import get_scale, loaded_testbed, sample_queries
from repro.indexes.registry import IndexKind
from repro.lsm.db import LSMTree
from repro.lsm.write_batch import WriteBatch
from repro.service.sharded import ShardedDB
from repro.storage.stats import (
    CACHE_HITS,
    CACHE_MISSES,
    WAL_GROUP_COMMITS,
    WRITE_CALLS,
    Stage,
)
from repro.workloads import datasets as ds
from repro.workloads.ycsb import workload

EXPERIMENT_ID = "service"
TITLE = "Serving layer: block cache, shard scaling, write batching"


def run(scale="smoke", dataset: str = "random",
        kind: IndexKind = IndexKind.PGM,
        boundary: int = 32,
        cache_fractions: Sequence[float] = (0.0, 1 / 16, 1 / 4),
        shard_counts: Sequence[int] = (1, 2, 4),
        batch_sizes: Sequence[int] = (1, 8, 64)) -> ExperimentResult:
    """Sweep cache size, shard count and batch size at one scale."""
    scale = get_scale(scale)
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    keys = ds.generate(dataset, scale.n_keys, seed=scale.seed)
    config = scale.config(kind, boundary, dataset=dataset)
    options = config.to_options()
    data_bytes = scale.n_keys * options.entry_bytes
    result.note(f"scale={scale.name}: {scale.n_keys} keys "
                f"({format_bytes(data_bytes)} of data), {scale.n_ops} ops "
                f"per cell, index={kind}, boundary={boundary}")

    _cache_sweep(result, scale, config, options, keys, data_bytes,
                 cache_fractions)
    _shard_sweep(result, scale, options, keys, shard_counts)
    _batch_sweep(result, scale, options, keys, batch_sizes)
    return result


# -- block cache ---------------------------------------------------------

def _cache_sweep(result, scale, config, options, keys, data_bytes,
                 fractions) -> None:
    table = ResultTable(columns=["cache_bytes", "hit_rate", "blocks_per_op",
                                 "avg_op_us"])
    hit_rates, blocks_per_op, latencies = [], [], []
    for fraction in fractions:
        cache_bytes = int(data_bytes * fraction)
        bed = loaded_testbed(
            config, keys,
            options=options.with_changes(cache_bytes=cache_bytes))
        mix = workload("C", keys, seed=scale.seed + 13)
        metrics = bed.run_ycsb(mix, scale.n_ops)
        hits = metrics.counter(CACHE_HITS)
        misses = metrics.counter(CACHE_MISSES)
        rate = hits / (hits + misses) if hits + misses else 0.0
        hit_rates.append(rate)
        blocks_per_op.append(metrics.blocks_read_per_op())
        latencies.append(metrics.avg_us)
        table.add_row(cache_bytes, rate, metrics.blocks_read_per_op(),
                      metrics.avg_us)
        bed.close()
    result.add_table("Block cache sweep (YCSB-C, read-only Zipfian)", table)

    result.check(
        "block cache shows a nonzero hit rate under Zipfian reads",
        any(rate > 0.0 for fraction, rate in zip(fractions, hit_rates)
            if fraction > 0),
        f"hit rates: {[round(rate, 3) for rate in hit_rates]}")
    result.check(
        "hit rate grows with cache capacity",
        all(later >= earlier - 1e-9
            for earlier, later in zip(hit_rates, hit_rates[1:])),
        f"hit rates: {[round(rate, 3) for rate in hit_rates]}")
    result.check(
        "cache cuts device blocks fetched per operation",
        blocks_per_op[-1] < blocks_per_op[0],
        f"{blocks_per_op[0]:.2f} -> {blocks_per_op[-1]:.2f} blocks/op")
    result.check(
        "cache cuts mean operation latency",
        latencies[-1] < latencies[0],
        f"{latencies[0]:.2f} -> {latencies[-1]:.2f} us/op")


# -- shard scaling -------------------------------------------------------

def _shard_sweep(result, scale, options, keys, shard_counts) -> None:
    def value_for(key: int) -> bytes:
        return (b"v%x" % key)[: options.value_capacity]

    queries = sample_queries(keys, scale.n_ops, seed=scale.seed + 5)
    start = keys[len(keys) // 3]
    expected_scan = [key for key in keys if key >= start][:100]

    table = ResultTable(columns=["shards", "max_level", "balance",
                                 "avg_get_us"])
    get_us, depths = [], []
    scans_ok = True
    for count in shard_counts:
        sdb = ShardedDB(num_shards=count, options=options)
        sdb.bulk_ingest(keys, value_for=value_for, seed=scale.seed)
        before = sdb.stats.snapshot()
        for key in queries:
            sdb.get(key)
        delta = before.delta(sdb.stats)
        avg_us = delta.read_time() / len(queries)
        depth = max(max((row["level"] for row in shard.describe_levels()),
                        default=0) for shard in sdb.shards)
        balance = sdb.shard_balance()
        scans_ok = scans_ok and ([key for key, _ in sdb.scan(start, 100)]
                                 == expected_scan)
        get_us.append(avg_us)
        depths.append(depth)
        table.add_row(count, depth, balance, avg_us)
        sdb.close()
    result.add_table("Shard scaling (constant total data)", table)

    result.check(
        "cross-shard scans return the globally ordered prefix",
        scans_ok)
    result.check(
        "sharding keeps trees at most as deep as the single tree",
        depths[-1] <= depths[0],
        f"max level: {depths[0]} -> {depths[-1]}")
    result.check(
        "per-lookup read time does not grow with shard count",
        get_us[-1] <= get_us[0] * 1.10,
        f"{get_us[0]:.2f} -> {get_us[-1]:.2f} us/get")
    balance = table.column("balance")[-1]
    result.check(
        "hash routing spreads keys evenly at max shard count",
        balance <= 1.35,
        f"max/mean entry ratio {balance:.3f}")


# -- write batching ------------------------------------------------------

def _batch_sweep(result, scale, options, keys, batch_sizes) -> None:
    n_writes = scale.n_ops
    write_keys = keys[:n_writes]
    table = ResultTable(columns=["batch_size", "wal_commits", "write_calls",
                                 "write_us_per_op"])
    commits, per_op_us = [], []
    commits_exact = True
    for size in batch_sizes:
        db = LSMTree(options.with_changes(enable_wal=True))
        before = db.stats.snapshot()
        batch = WriteBatch()
        for key in write_keys:
            batch.put(key, (b"w%x" % key)[: options.value_capacity])
            if len(batch) >= size:
                db.write(batch)
                batch.clear()
        if batch:
            db.write(batch)
            batch.clear()
        delta = before.delta(db.stats)
        wal_commits = delta.counter(WAL_GROUP_COMMITS)
        write_us = delta.stage_time(Stage.WRITE_PATH) / n_writes
        commits.append(wal_commits)
        per_op_us.append(write_us)
        commits_exact = (commits_exact
                         and wal_commits == math.ceil(n_writes / size))
        table.add_row(size, int(wal_commits),
                      int(delta.counter(WRITE_CALLS)), write_us)
        db.close()
    result.add_table("WriteBatch group commit (WAL on)", table)

    result.check(
        "a batch of K records issues exactly ceil(N/K) WAL group commits",
        commits_exact,
        f"commits: {[int(x) for x in commits]}")
    result.check(
        "group commit amortizes per-op write-path time",
        per_op_us[-1] < per_op_us[0],
        f"{per_op_us[0]:.3f} -> {per_op_us[-1]:.3f} us/op")
