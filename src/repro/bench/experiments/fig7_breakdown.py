"""Figure 7 — query time breakdown.

Panel (A) splits a point lookup into I/O vs prediction vs binary
search per index type; panel (B) tracks prediction time as the
boundary shrinks.  The paper's findings: segment-fetch I/O is roughly
an order of magnitude larger than the combined CPU stages, and
prediction grows slightly at tighter boundaries (more segments to
search) without ever threatening the I/O dominance.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.bench.report import ExperimentResult, ResultTable
from repro.bench.runner import get_scale, loaded_testbed, sample_queries
from repro.indexes.registry import ALL_KINDS, IndexKind
from repro.storage.stats import Stage
from repro.workloads import datasets as ds

EXPERIMENT_ID = "fig7"
TITLE = "Query time breakdown (Figure 7)"

_BREAKDOWN_BOUNDARY = 16


def run(scale="smoke", dataset: str = "random",
        kinds: Sequence[IndexKind] = ALL_KINDS,
        boundaries: Sequence[int] = (128, 32, 8)) -> ExperimentResult:
    """Measure per-stage lookup time per kind and per boundary."""
    scale = get_scale(scale)
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    result.note(f"scale={scale.name}, dataset={dataset}; breakdown at "
                f"boundary {_BREAKDOWN_BOUNDARY}, prediction sweep over "
                f"{tuple(boundaries)}")
    keys = ds.generate(dataset, scale.n_keys, seed=scale.seed)
    queries = sample_queries(keys, scale.n_ops, seed=scale.seed + 1)

    # Panel A: stage breakdown per index type at one boundary.
    panel_a = ResultTable(columns=[
        "index", "io_us", "prediction_us", "search_us", "table_lookup_us",
        "io/cpu"])
    io_ratio: Dict[IndexKind, float] = {}
    pred_by_boundary: Dict[Tuple[IndexKind, int], float] = {}
    sweep_kinds = list(kinds)
    for kind in sweep_kinds:
        for boundary in sorted(set(list(boundaries)
                                   + [_BREAKDOWN_BOUNDARY]), reverse=True):
            bed = loaded_testbed(scale.config(kind, boundary,
                                              dataset=dataset), keys)
            metrics = bed.run_point_lookups(queries)
            bed.close()
            io = metrics.stage_avg_us(Stage.IO)
            pred = metrics.stage_avg_us(Stage.PREDICTION)
            search = metrics.stage_avg_us(Stage.SEARCH)
            tlk = metrics.stage_avg_us(Stage.TABLE_LOOKUP)
            pred_by_boundary[(kind, boundary)] = pred
            if boundary == _BREAKDOWN_BOUNDARY:
                cpu = max(1e-9, pred + search)
                io_ratio[kind] = io / cpu
                panel_a.add_row(kind.value, io, pred, search, tlk, io / cpu)
    result.add_table(
        f"(A) stage breakdown at boundary {_BREAKDOWN_BOUNDARY}", panel_a)

    # Panel B: prediction time vs boundary.
    panel_b = ResultTable(columns=["boundary"]
                          + [kind.value for kind in sweep_kinds])
    for boundary in sorted(set(boundaries), reverse=True):
        row = [boundary]
        for kind in sweep_kinds:
            row.append(pred_by_boundary.get((kind, boundary), 0.0))
        panel_b.add_row(*row)
    result.add_table("(B) prediction time (us) vs boundary", panel_b)

    # Checks.
    result.check(
        "I/O dominates prediction + binary search for every index "
        "(paper: ~10x)",
        all(ratio > 3.0 for ratio in io_ratio.values()),
        str({kind.value: round(ratio, 1) for kind, ratio in io_ratio.items()}))
    growers = [kind for kind in sweep_kinds
               if kind in (IndexKind.PLR, IndexKind.FT, IndexKind.RS)]
    if growers and len(boundaries) >= 2:
        b_hi, b_lo = max(boundaries), min(boundaries)
        grew = all(pred_by_boundary[(kind, b_lo)]
                   >= pred_by_boundary[(kind, b_hi)] * 0.95
                   for kind in growers)
        result.check(
            "prediction time does not shrink as boundaries tighten "
            "(segment counts grow)", grew,
            str({kind.value: (round(pred_by_boundary[(kind, b_hi)], 3),
                              round(pred_by_boundary[(kind, b_lo)], 3))
                 for kind in growers}))
    if IndexKind.RMI in io_ratio:
        result.check(
            "RMI prediction is boundary-insensitive (two model evals)",
            abs(pred_by_boundary[(IndexKind.RMI, min(boundaries))]
                - pred_by_boundary[(IndexKind.RMI, max(boundaries))]) < 0.05)
    return result
