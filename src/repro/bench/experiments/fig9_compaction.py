"""Figure 9 — compaction overhead of learned indexes.

A write-only workload fills the tree from empty, so every flush and
compaction trains indexes.  The paper reports (A) total compaction
time as the index budget varies — nearly flat, because reading,
merging and writing key-value data dominates — and (B) a breakdown
showing index training ("Learn") plus model serialisation ("Write
Model") at under 5% of compaction time for every index except PLEX,
whose self-tuning costs 10-15%.
"""

from __future__ import annotations

import random
from typing import Dict, Sequence, Tuple

from repro.bench.report import ExperimentResult, ResultTable
from repro.bench.runner import get_scale, with_paper_entries
from repro.core.testbed import Testbed
from repro.indexes.registry import ALL_KINDS, IndexKind
from repro.storage.stats import Stage
from repro.workloads import datasets as ds

EXPERIMENT_ID = "fig9"
TITLE = "Compaction time and breakdown (Figure 9)"

_BREAKDOWN_BOUNDARY = 32


def run(scale="smoke", dataset: str = "random",
        kinds: Sequence[IndexKind] = ALL_KINDS,
        boundaries: Sequence[int] = (256, 64, 32)) -> ExperimentResult:
    """Fill an empty tree per (kind, boundary); measure compaction stages."""
    scale = get_scale(scale)
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    result.note(f"scale={scale.name}: write-only fill of {scale.n_keys} "
                "keys from empty (every flush/compaction trains indexes); "
                "entries fixed at the paper's ~1 KiB (training shares "
                "depend on the KV-move cost per entry)")
    keys = ds.generate(dataset, scale.n_keys, seed=scale.seed)
    rng = random.Random(scale.seed + 5)
    write_order = list(keys)
    rng.shuffle(write_order)

    totals: Dict[Tuple[IndexKind, int], float] = {}
    breakdown: Dict[IndexKind, Dict[str, float]] = {}
    table_a = ResultTable(columns=["index"] + [f"b={b}" for b in boundaries])
    for kind in kinds:
        row = [kind.value]
        for boundary in boundaries:
            config = scale.config(kind, boundary, dataset=dataset)
            bed = Testbed(with_paper_entries(scale, config),
                          seed=scale.seed)
            metrics = bed.run_writes(write_order)
            stage = metrics.stage_us
            kv_io = (stage.get(Stage.COMPACT_READ.value, 0.0)
                     + stage.get(Stage.COMPACT_MERGE.value, 0.0)
                     + stage.get(Stage.COMPACT_WRITE.value, 0.0))
            learn = stage.get(Stage.COMPACT_TRAIN.value, 0.0)
            model = stage.get(Stage.COMPACT_WRITE_MODEL.value, 0.0)
            total = kv_io + learn + model
            totals[(kind, boundary)] = total
            row.append(total / 1000.0)  # report in ms
            if boundary == _BREAKDOWN_BOUNDARY or \
                    boundary == boundaries[-1]:
                breakdown[kind] = {"kv_io": kv_io, "learn": learn,
                                   "write_model": model, "total": total}
            bed.close()
        table_a.add_row(*row)
    result.add_table("(A) total compaction time (ms) vs boundary", table_a)

    table_b = ResultTable(columns=[
        "index", "kv_io_ms", "learn_ms", "write_model_ms", "learn_pct",
        "model_pct"])
    for kind in kinds:
        b = breakdown[kind]
        table_b.add_row(kind.value, b["kv_io"] / 1000.0, b["learn"] / 1000.0,
                        b["write_model"] / 1000.0,
                        100.0 * b["learn"] / b["total"],
                        100.0 * b["write_model"] / b["total"])
    result.add_table(
        f"(B) compaction breakdown at boundary "
        f"{_BREAKDOWN_BOUNDARY if _BREAKDOWN_BOUNDARY in boundaries else boundaries[-1]}",
        table_b)

    _shape_checks(result, totals, breakdown, kinds, boundaries)
    return result


def _shape_checks(result, totals, breakdown, kinds, boundaries) -> None:
    # Flat across boundaries: compaction is data-movement bound.
    for kind in kinds:
        values = [totals[(kind, boundary)] for boundary in boundaries]
        spread = (max(values) - min(values)) / max(values)
        if spread >= 0.10:
            result.check(
                f"{kind.value}: compaction time flat across index budgets",
                False, f"spread={spread:.2%}")
            break
    else:
        result.check("compaction time flat across index budgets for every "
                     "index (paper: almost unchanged)", True)

    # Training overhead: <~5% for single-pass indexes, 10-15% for PLEX.
    modest = True
    details = {}
    for kind in kinds:
        b = breakdown[kind]
        share = (b["learn"] + b["write_model"]) / b["total"]
        details[kind.value] = round(100 * share, 1)
        if kind is IndexKind.PLEX:
            continue
        if share > 0.08:
            modest = False
    result.check(
        "learn + write-model share < ~5-8% for all non-PLEX indexes",
        modest, f"shares%={details}")
    if IndexKind.PLEX in kinds:
        plex_share = ((breakdown[IndexKind.PLEX]["learn"]
                       + breakdown[IndexKind.PLEX]["write_model"])
                      / breakdown[IndexKind.PLEX]["total"])
        result.check(
            "PLEX training share is the largest (paper: 10-15%)",
            all(plex_share >= (breakdown[kind]["learn"]
                               + breakdown[kind]["write_model"])
                / breakdown[kind]["total"]
                for kind in kinds) and 0.05 <= plex_share <= 0.30,
            f"PLEX share={plex_share:.1%}")
    if IndexKind.FP in kinds:
        fp_total = breakdown[IndexKind.FP]["total"]
        worst = max(breakdown[kind]["total"] for kind in kinds)
        result.check(
            "learned-index compaction time within ~15% of fence pointers",
            worst <= fp_total * 1.18,
            f"FP={fp_total / 1e3:.1f}ms worst={worst / 1e3:.1f}ms")
