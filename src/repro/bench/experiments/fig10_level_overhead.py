"""Figure 10 — read overhead, index size and data share per level.

The LSM-tree's levels grow geometrically, so under *uniform* lookups
the read time spent at each level tracks the level's share of the
data — and a uniform position boundary makes index memory track it
too.  Under a *read-latest* (skewed) workload, shallow levels absorb
far more read time than their size share, revealing the memory/read
imbalance the paper turns into its per-level boundary guideline
(Section 5.4): give hot shallow levels tighter boundaries than cold
deep ones.

Our bulk loader records which level every key landed in, so the
"read-latest" equivalent samples keys with shallow-level bias —
recent writes live in shallow levels by LSM construction.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from repro.bench.report import ExperimentResult, ResultTable
from repro.bench.runner import get_scale, loaded_testbed
from repro.indexes.registry import IndexKind
from repro.workloads import datasets as ds

EXPERIMENT_ID = "fig10"
TITLE = "Per-level read overhead vs index/level size (Figure 10)"

#: Probability mass per level depth for the read-latest equivalent:
#: shallow levels hold the most recent writes.
_LATEST_LEVEL_BIAS = (0.55, 0.30, 0.10, 0.05)


def _level_shares(values: Dict[int, float]) -> Dict[int, float]:
    total = sum(values.values())
    if total <= 0:
        return {level: 0.0 for level in values}
    return {level: value / total for level, value in values.items()}


def run(scale="smoke", dataset: str = "random",
        kind: IndexKind = IndexKind.PGM, boundary: int = 32,
        size_ratio: int = 4) -> ExperimentResult:
    """Measure per-level read time / index size under two query mixes."""
    scale = get_scale(scale)
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    result.note(f"scale={scale.name}, index={kind.value}, boundary="
                f"{boundary}, size ratio {size_ratio} (lowered so the "
                "scaled dataset spans several levels, as in the paper)")
    keys = ds.generate(dataset, scale.n_keys, seed=scale.seed)
    config = scale.config(kind, boundary, dataset=dataset,
                          size_ratio=size_ratio)
    bed = loaded_testbed(config, keys)
    level_keys = bed.level_keys()
    levels = sorted(level_keys)
    rng = random.Random(scale.seed + 9)

    entry_share = _level_shares({level: len(level_keys[level])
                                 for level in levels})
    index_share = _level_shares({
        level: float(bed.db.level_index_memory_bytes(level))
        for level in levels})

    workload_shares: Dict[str, Dict[int, float]] = {}
    for workload_name in ("uniform", "read-latest"):
        bed.db.reset_read_stats()
        queries: List[int] = []
        if workload_name == "uniform":
            flat = keys
            queries = [flat[rng.randrange(len(flat))]
                       for _ in range(scale.n_ops)]
        else:
            weights = [_LATEST_LEVEL_BIAS[min(i, len(_LATEST_LEVEL_BIAS) - 1)]
                       for i in range(len(levels))]
            for _ in range(scale.n_ops):
                level = rng.choices(levels, weights=weights)[0]
                bucket = level_keys[level]
                queries.append(bucket[rng.randrange(len(bucket))])
        bed.run_point_lookups(queries)
        read_us = {level: bed.db.level_read_stats().get(level, (0.0, 0))[0]
                   for level in levels}
        workload_shares[workload_name] = _level_shares(read_us)

        table = ResultTable(columns=[
            "level", "read_share", "index_share", "entry_share"])
        for level in levels:
            table.add_row(f"L{level}",
                          workload_shares[workload_name].get(level, 0.0),
                          index_share.get(level, 0.0),
                          entry_share.get(level, 0.0))
        result.add_table(f"({'A' if workload_name == 'uniform' else 'B'}) "
                         f"{workload_name} query distribution", table)
    bed.close()

    _shape_checks(result, levels, entry_share, index_share, workload_shares)
    return result


def _shape_checks(result, levels: Sequence[int], entry_share, index_share,
                  workload_shares) -> None:
    deepest = max(levels)
    uniform = workload_shares["uniform"]
    latest = workload_shares["read-latest"]

    result.check(
        "several levels populated (multi-level steady state)",
        len(levels) >= 3, f"levels={['L%d' % level for level in levels]}")
    result.check(
        "uniform: read share tracks level size (deepest level dominates)",
        uniform.get(deepest, 0.0) > 0.5
        and all(uniform.get(deepest, 0.0) >= uniform.get(level, 0.0)
                for level in levels),
        str({f"L{level}": round(uniform.get(level, 0.0), 2)
             for level in levels}))
    result.check(
        "index memory share tracks level size under a uniform boundary",
        abs(index_share.get(deepest, 0.0) - entry_share.get(deepest, 0.0))
        < 0.25,
        f"deepest: index={index_share.get(deepest, 0.0):.2f} "
        f"entries={entry_share.get(deepest, 0.0):.2f}")
    shallow = min(levels)
    result.check(
        "read-latest: shallow levels absorb disproportionate read time "
        "(memory/read imbalance)",
        latest.get(shallow, 0.0)
        > 2.0 * max(0.005, entry_share.get(shallow, 0.0)),
        f"L{shallow}: read={latest.get(shallow, 0.0):.2f} "
        f"entries={entry_share.get(shallow, 0.0):.2f}")
