"""Figure 5 — the CDFs of the seven evaluation datasets.

The paper plots cumulative key distributions to show how different the
seven SOSD-derived key sets are: Random is near-linear (trivial for
linear models), Segment is piecewise linear, the geo datasets are
clustered, Books/FB are heavily curved.  This experiment regenerates
the CDF series for our synthetic equivalents, prints them as
sparklines plus quartile rows, and checks that the qualitative
hardness ordering the figure conveys holds.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.bench.report import ExperimentResult, ResultTable, sparkline
from repro.bench.runner import get_scale
from repro.workloads import datasets as ds

EXPERIMENT_ID = "fig5"
TITLE = "Dataset CDFs (Figure 5)"


def _cdf_at(keys, fraction: float) -> float:
    """Fraction of the key *space* consumed by the first ``fraction`` keys."""
    idx = min(len(keys) - 1, int(fraction * len(keys)))
    lo, hi = keys[0], keys[-1]
    return (keys[idx] - lo) / max(1, hi - lo)


def run(scale="smoke", datasets=ds.DATASET_NAMES,
        seed: int = 1) -> ExperimentResult:
    """Generate every dataset and summarise its CDF."""
    scale = get_scale(scale)
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    result.note(f"{scale.n_keys} keys per dataset, seed {seed}")

    table = ResultTable(columns=[
        "dataset", "hardness", "key@p25", "key@p50", "key@p75",
        "cdf sparkline"])
    hardness = {}
    for name in datasets:
        keys = ds.generate(name, scale.n_keys, seed=seed)
        xs, ys = ds.cdf(keys, points=48)
        score = ds.hardness_score(keys)
        hardness[name] = score
        # The sparkline plots y (cdf) sampled over uniform key-space x.
        samples = []
        lo, hi = keys[0], keys[-1]
        for i in range(40):
            probe = lo + (hi - lo) * i // 39
            samples.append(bisect_right(keys, probe) / len(keys))
        table.add_row(name, score, _cdf_at(keys, 0.25), _cdf_at(keys, 0.50),
                      _cdf_at(keys, 0.75), sparkline(samples))
        del xs, ys
    result.add_table("CDF summary per dataset", table)

    if "random" in hardness:
        result.check(
            "random dataset is near-linear",
            hardness["random"] < 0.02,
            f"hardness={hardness['random']:.3f}")
    curved = [name for name in ("books", "fb") if name in hardness]
    for name in curved:
        result.check(
            f"{name} dataset is strongly curved",
            hardness[name] > 0.15,
            f"hardness={hardness[name]:.3f}")
    if "random" in hardness and curved:
        result.check(
            "hardness ordering: random easiest",
            all(hardness["random"] < hardness[name] for name in hardness
                if name != "random"),
            str({k: round(v, 3) for k, v in hardness.items()}))
    return result
