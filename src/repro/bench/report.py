"""Plain-text reporting: result tables, sparklines, shape checks.

Experiments print the same rows/series the paper's figures plot.  A
:class:`ResultTable` is a column-ordered grid with aligned text and CSV
output; a :class:`ShapeCheck` records whether a qualitative expectation
from the paper (who wins, what plateaus) held in this run — the bench
suite asserts on them and EXPERIMENTS.md records them.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

Cell = Union[str, int, float]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def format_bytes(nbytes: float) -> str:
    """Human-readable byte count (powers of 1024)."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            if unit == "B":
                return f"{value:.0f} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    return f"{value:.1f} GiB"  # pragma: no cover - unreachable


def format_cell(value: Cell, float_digits: int = 2) -> str:
    """Render one cell: floats rounded, everything else stringified."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def sparkline(values: Sequence[float]) -> str:
    """A unicode mini-chart of a numeric series."""
    if not values:
        return ""
    lo = min(values)
    hi = max(values)
    span = hi - lo
    if span <= 0:
        return _SPARK_CHARS[0] * len(values)
    out = []
    for value in values:
        idx = int((value - lo) / span * (len(_SPARK_CHARS) - 1))
        out.append(_SPARK_CHARS[idx])
    return "".join(out)


@dataclass
class ResultTable:
    """A fixed-column table of experiment rows."""

    columns: List[str]
    rows: List[List[Cell]] = field(default_factory=list)
    float_digits: int = 2

    def add_row(self, *values: Cell) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns")
        self.rows.append(list(values))

    def column(self, name: str) -> List[Cell]:
        """All values of one column."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def to_text(self) -> str:
        """Aligned fixed-width rendering."""
        rendered = [[format_cell(cell, self.float_digits) for cell in row]
                    for row in self.rows]
        widths = [len(col) for col in self.columns]
        for row in rendered:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        out = io.StringIO()
        header = "  ".join(col.ljust(widths[i])
                           for i, col in enumerate(self.columns))
        out.write(header + "\n")
        out.write("  ".join("-" * width for width in widths) + "\n")
        for row in rendered:
            out.write("  ".join(cell.rjust(widths[i])
                                for i, cell in enumerate(row)) + "\n")
        return out.getvalue()

    def to_csv(self) -> str:
        """Comma-separated rendering (no quoting; cells are simple)."""
        lines = [",".join(self.columns)]
        for row in self.rows:
            lines.append(",".join(format_cell(cell, self.float_digits)
                                  for cell in row))
        return "\n".join(lines) + "\n"

    def filtered(self, column: str, value: Cell) -> "ResultTable":
        """A copy containing only rows where ``column == value``."""
        idx = self.columns.index(column)
        table = ResultTable(columns=list(self.columns),
                            float_digits=self.float_digits)
        table.rows = [list(row) for row in self.rows if row[idx] == value]
        return table

    def to_json_dict(self) -> Dict[str, object]:
        """Machine-readable form: list of column->cell row dicts."""
        return {"columns": list(self.columns),
                "rows": [dict(zip(self.columns, row)) for row in self.rows]}


@dataclass(frozen=True)
class ShapeCheck:
    """One qualitative expectation from the paper, evaluated on this run."""

    name: str
    passed: bool
    detail: str = ""

    def render(self) -> str:
        """Status line for reports."""
        mark = "PASS" if self.passed else "FAIL"
        suffix = f" — {self.detail}" if self.detail else ""
        return f"[{mark}] {self.name}{suffix}"


@dataclass
class ExperimentResult:
    """Everything one experiment produced."""

    experiment_id: str
    title: str
    tables: List[tuple] = field(default_factory=list)  # (caption, ResultTable)
    checks: List[ShapeCheck] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    extras: Dict[str, object] = field(default_factory=dict)
    #: Pre-rendered text blocks appended after the tables (the CLI uses
    #: these for latency percentiles and slowest-op waterfalls).
    sections: List[tuple] = field(default_factory=list)  # (caption, text)

    def add_table(self, caption: str, table: ResultTable) -> None:
        """Attach one captioned table."""
        self.tables.append((caption, table))

    def add_section(self, caption: str, text: str) -> None:
        """Attach one captioned free-text block."""
        self.sections.append((caption, text))

    def check(self, name: str, passed: bool, detail: str = "") -> None:
        """Record one shape check."""
        self.checks.append(ShapeCheck(name, bool(passed), detail))

    def note(self, text: str) -> None:
        """Attach a free-form note."""
        self.notes.append(text)

    @property
    def all_checks_passed(self) -> bool:
        """True when every recorded shape check held."""
        return all(check.passed for check in self.checks)

    def failed_checks(self) -> List[ShapeCheck]:
        """The checks that did not hold."""
        return [check for check in self.checks if not check.passed]

    def render(self) -> str:
        """Full text report (what the CLI prints)."""
        out = io.StringIO()
        out.write(f"=== {self.experiment_id}: {self.title} ===\n")
        for note in self.notes:
            out.write(f"  {note}\n")
        for caption, table in self.tables:
            out.write(f"\n--- {caption} ---\n")
            out.write(table.to_text())
        for caption, text in self.sections:
            out.write(f"\n--- {caption} ---\n")
            out.write(text if text.endswith("\n") else text + "\n")
        if self.checks:
            out.write("\nShape checks (paper expectations):\n")
            for check in self.checks:
                out.write("  " + check.render() + "\n")
        return out.getvalue()

    def to_json_dict(self) -> Dict[str, object]:
        """Machine-readable form of the whole result."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "notes": list(self.notes),
            "tables": [{"caption": caption, **table.to_json_dict()}
                       for caption, table in self.tables],
            "sections": [{"caption": caption, "text": text}
                         for caption, text in self.sections],
            "checks": [{"name": check.name, "passed": check.passed,
                        "detail": check.detail} for check in self.checks],
            "all_checks_passed": self.all_checks_passed,
        }


def percentile_table(registry) -> ResultTable:
    """Latency percentiles per op type, one row per op.

    ``registry`` is a :class:`~repro.obs.registry.MetricsRegistry`;
    the CLI appends this table to every experiment report.
    """
    table = ResultTable(columns=["op", "count", "mean_us", "p50_us",
                                 "p90_us", "p99_us", "p999_us", "max_us"])
    for row in registry.percentile_rows():
        table.add_row(row["op"], int(row["count"]), row["mean"],
                      row["p50"], row["p90"], row["p99"], row["p999"],
                      row["max"])
    return table


def render_waterfall(span, width: int = 32, indent: str = "") -> str:
    """Text waterfall for one traced span: stage bars plus counters.

    Stages are sorted by time spent; bar lengths are proportional to
    the span total.  Child spans (a flush inside a put, a compaction
    inside a flush) render recursively, indented.
    """
    out = io.StringIO()
    detail = f" [{span.detail}]" if span.detail else ""
    out.write(f"{indent}{span.op}{detail}: {span.total_us:.2f} us\n")
    total = span.total_us or 1.0
    for stage, us in sorted(span.stage_us.items(),
                            key=lambda item: (-item[1], item[0])):
        bar = "#" * max(1, int(round(us / total * width)))
        out.write(f"{indent}  {stage:<18} {us:>12.2f} us  {bar}\n")
    if span.counters:
        pairs = "  ".join(f"{name}={value:g}"
                          for name, value in sorted(span.counters.items()))
        out.write(f"{indent}  counters: {pairs}\n")
    for child in span.children:
        out.write(render_waterfall(child, width=width, indent=indent + "    "))
    return out.getvalue()


def require(result: ExperimentResult,
            only: Optional[Sequence[str]] = None) -> None:
    """Raise AssertionError when shape checks failed (bench helper)."""
    failures = [check for check in result.failed_checks()
                if only is None or check.name in only]
    if failures:
        summary = "; ".join(check.render() for check in failures)
        raise AssertionError(
            f"{result.experiment_id}: shape checks failed: {summary}")
