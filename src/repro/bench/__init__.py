"""Benchmark harness: scales, reporting and the experiment registry."""

from repro.bench.experiments import EXPERIMENTS, TITLES
from repro.bench.report import (
    ExperimentResult,
    ResultTable,
    ShapeCheck,
    format_bytes,
    require,
    sparkline,
)
from repro.bench.runner import (
    SCALES,
    Scale,
    get_scale,
    loaded_testbed,
    sample_queries,
)

__all__ = [
    "EXPERIMENTS",
    "TITLES",
    "ExperimentResult",
    "ResultTable",
    "ShapeCheck",
    "require",
    "sparkline",
    "format_bytes",
    "SCALES",
    "Scale",
    "get_scale",
    "sample_queries",
    "loaded_testbed",
]
