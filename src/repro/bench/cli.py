"""Command-line entry point: ``python -m repro.bench`` / ``repro-bench``.

Usage::

    repro-bench list                     # available experiments
    repro-bench fig6 --scale small       # one experiment
    repro-bench all --scale smoke        # the full figure set
    repro-bench fig6 --dataset wiki      # different dataset

Each experiment prints the same rows/series the paper's figure plots,
followed by the qualitative shape checks.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.bench.experiments import EXPERIMENTS, TITLES
from repro.bench.runner import SCALES


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment", nargs="?", default=None,
                        help="experiment id ('list' to enumerate, 'all' "
                             "to run everything)")
    parser.add_argument("--list", action="store_true",
                        dest="list_experiments",
                        help="enumerate experiment ids and exit "
                             "(same as the 'list' positional)")
    parser.add_argument("--scale", default="smoke", choices=sorted(SCALES),
                        help="workload scale preset (default: smoke)")
    parser.add_argument("--dataset", default=None,
                        help="dataset name for single-dataset experiments")
    parser.add_argument("--csv", action="store_true",
                        help="emit tables as CSV instead of aligned text")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="also write each table as a CSV file under DIR")
    return parser


def _export_csv(result, out_dir: str) -> None:
    import os
    import re

    os.makedirs(out_dir, exist_ok=True)
    for caption, table in result.tables:
        slug = re.sub(r"[^a-z0-9]+", "-", caption.lower()).strip("-")[:60]
        path = os.path.join(out_dir, f"{result.experiment_id}__{slug}.csv")
        with open(path, "w") as sink:
            sink.write(table.to_csv())
    checks_path = os.path.join(out_dir, f"{result.experiment_id}__checks.txt")
    with open(checks_path, "w") as sink:
        for check in result.checks:
            sink.write(check.render() + "\n")


def _run_one(experiment_id: str, scale: str, dataset: Optional[str],
             csv: bool, out_dir: Optional[str] = None) -> bool:
    run = EXPERIMENTS[experiment_id]
    kwargs = {}
    if dataset is not None:
        # fig5/fig6 take a datasets tuple; the rest take dataset.
        if experiment_id in ("fig5", "fig6"):
            kwargs["datasets"] = (dataset,)
        else:
            kwargs["dataset"] = dataset
    started = time.time()
    result = run(scale=scale, **kwargs)
    elapsed = time.time() - started
    if csv:
        for caption, table in result.tables:
            print(f"# {result.experiment_id}: {caption}")
            print(table.to_csv())
    else:
        print(result.render())
    if out_dir is not None:
        _export_csv(result, out_dir)
    print(f"({experiment_id} finished in {elapsed:.1f}s wall time)\n")
    return result.all_checks_passed


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_experiments or args.experiment == "list":
        for experiment_id in EXPERIMENTS:
            print(f"{experiment_id:<12s} {TITLES[experiment_id]}")
        return 0
    if args.experiment is None:
        parser.print_usage(sys.stderr)
        print("error: an experiment id (or --list) is required",
              file=sys.stderr)
        return 2
    if args.experiment == "all":
        ok = True
        for experiment_id in EXPERIMENTS:
            ok = _run_one(experiment_id, args.scale, args.dataset,
                          args.csv, args.out) and ok
        return 0 if ok else 1
    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; "
              f"try: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    ok = _run_one(args.experiment, args.scale, args.dataset, args.csv,
                  args.out)
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
