"""Command-line entry point: ``python -m repro.bench`` / ``repro-bench``.

Usage::

    repro-bench list                     # available experiments
    repro-bench fig6 --scale small       # one experiment
    repro-bench all --scale smoke        # the full figure set
    repro-bench fig6 --dataset wiki      # different dataset
    repro-bench obs --json-out results/  # machine-readable BENCH_obs.json
    repro-bench ycsb --metrics-out m.prom --trace-out traces.json

Each experiment prints the same rows/series the paper's figure plots,
followed by latency percentiles per op type (from the process-wide
metrics registry, reset around every experiment), the slowest traced
operation's stage waterfall, and the qualitative shape checks.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from repro.bench.experiments import EXPERIMENTS, TITLES
from repro.bench.report import percentile_table, render_waterfall
from repro.bench.runner import SCALES
from repro.obs.registry import global_registry


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment", nargs="?", default=None,
                        help="experiment id ('list' to enumerate, 'all' "
                             "to run everything)")
    parser.add_argument("--list", action="store_true",
                        dest="list_experiments",
                        help="enumerate experiment ids and exit "
                             "(same as the 'list' positional)")
    parser.add_argument("--scale", default="smoke", choices=sorted(SCALES),
                        help="workload scale preset (default: smoke)")
    parser.add_argument("--dataset", default=None,
                        help="dataset name for single-dataset experiments")
    parser.add_argument("--csv", action="store_true",
                        help="emit tables as CSV instead of aligned text")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="also write each table as a CSV file under DIR")
    parser.add_argument("--json-out", default=None, metavar="DIR",
                        help="write a machine-readable BENCH_<id>.json "
                             "(tables, checks, histograms) under DIR")
    parser.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="write the run's metrics in Prometheus text "
                             "format to FILE ('-' for stdout)")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write kept trace spans (slowest exemplars + "
                             "sampled) as JSON to FILE ('-' for stdout)")
    return parser


def _export_csv(result, out_dir: str) -> None:
    import re

    os.makedirs(out_dir, exist_ok=True)
    for caption, table in result.tables:
        slug = re.sub(r"[^a-z0-9]+", "-", caption.lower()).strip("-")[:60]
        path = os.path.join(out_dir, f"{result.experiment_id}__{slug}.csv")
        with open(path, "w") as sink:
            sink.write(table.to_csv())
    checks_path = os.path.join(out_dir, f"{result.experiment_id}__checks.txt")
    with open(checks_path, "w") as sink:
        for check in result.checks:
            sink.write(check.render() + "\n")


def _export_json(result, registry, out_dir: str) -> str:
    """Write ``BENCH_<id>.json``: the result plus the metrics dump."""
    os.makedirs(out_dir, exist_ok=True)
    doc = result.to_json_dict()
    doc["metrics"] = registry.to_json_dict()
    path = os.path.join(out_dir, f"BENCH_{result.experiment_id}.json")
    with open(path, "w") as sink:
        json.dump(doc, sink, indent=2)
        sink.write("\n")
    return path


def _write_text(path: str, text: str) -> None:
    if path == "-":
        print(text, end="" if text.endswith("\n") else "\n")
    else:
        with open(path, "w") as sink:
            sink.write(text)


def _attach_observability(result, registry) -> None:
    """Append the registry's percentiles and waterfall to a report."""
    if registry.ops():
        result.add_section("Latency percentiles (simulated us, per op)",
                           percentile_table(registry).to_text())
    exemplars = registry.exemplars()
    if exemplars:
        result.add_section("Slowest traced operation (stage waterfall)",
                           render_waterfall(exemplars[0]))


def _run_one(experiment_id: str, scale: str, dataset: Optional[str],
             csv: bool, out_dir: Optional[str] = None,
             json_out: Optional[str] = None,
             metrics_out: Optional[str] = None,
             trace_out: Optional[str] = None) -> bool:
    run = EXPERIMENTS[experiment_id]
    kwargs = {}
    if dataset is not None:
        # fig5/fig6 take a datasets tuple; the rest take dataset.
        if experiment_id in ("fig5", "fig6"):
            kwargs["datasets"] = (dataset,)
        else:
            kwargs["dataset"] = dataset
    registry = global_registry()
    registry.reset()
    started = time.time()
    result = run(scale=scale, **kwargs)
    elapsed = time.time() - started
    _attach_observability(result, registry)
    if csv:
        for caption, table in result.tables:
            print(f"# {result.experiment_id}: {caption}")
            print(table.to_csv())
    else:
        print(result.render())
    if out_dir is not None:
        _export_csv(result, out_dir)
    if json_out is not None:
        path = _export_json(result, registry, json_out)
        print(f"(wrote {path})")
    if metrics_out is not None:
        _write_text(metrics_out, registry.to_prometheus())
    if trace_out is not None:
        spans = {"exemplars": [span.to_dict()
                               for span in registry.exemplars()],
                 "sampled": [span.to_dict() for span in registry.sampled]}
        _write_text(trace_out, json.dumps(spans, indent=2) + "\n")
    print(f"({experiment_id} finished in {elapsed:.1f}s wall time)\n")
    return result.all_checks_passed


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_experiments or args.experiment == "list":
        for experiment_id in EXPERIMENTS:
            print(f"{experiment_id:<12s} {TITLES[experiment_id]}")
        return 0
    if args.experiment is None:
        parser.print_usage(sys.stderr)
        print("error: an experiment id (or --list) is required",
              file=sys.stderr)
        return 2
    if args.experiment == "all":
        ok = True
        for experiment_id in EXPERIMENTS:
            ok = _run_one(experiment_id, args.scale, args.dataset,
                          args.csv, args.out, args.json_out,
                          args.metrics_out, args.trace_out) and ok
        return 0 if ok else 1
    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; "
              f"try: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    ok = _run_one(args.experiment, args.scale, args.dataset, args.csv,
                  args.out, args.json_out, args.metrics_out, args.trace_out)
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
