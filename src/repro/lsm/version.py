"""Level metadata: which tables live where.

A :class:`Version` tracks the file layout: level 0 holds possibly
overlapping tables ordered newest-first (each flush adds one); levels
1+ are single sorted runs partitioned into non-overlapping SSTables
ordered by key.  This mirrors LevelDB's manifest state, minus the
on-disk manifest (the simulated device makes recovery-by-scan cheap
and the benchmarks never need it).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.errors import StorageError
from repro.lsm.sstable import Table


@dataclass
class FileMetaData:
    """One live SSTable and its bookkeeping."""

    number: int
    table: Table

    @property
    def name(self) -> str:
        """Device file name."""
        return self.table.name

    @property
    def min_key(self) -> int:
        """Smallest user key in the file."""
        return self.table.min_key

    @property
    def max_key(self) -> int:
        """Largest user key in the file."""
        return self.table.max_key

    @property
    def entry_count(self) -> int:
        """Entries stored in the file."""
        return self.table.entry_count

    @property
    def data_bytes(self) -> int:
        """Payload bytes (entries only, excluding index/bloom/footer)."""
        return self.table.entry_count * self.table.footer.entry_bytes


@dataclass
class Version:
    """Mutable file layout across levels.

    With ``overlapping_levels`` (tiering), every level behaves like
    level 0: files may overlap and are kept newest-first.  Otherwise
    (leveling) levels >= 1 are single sorted runs and overlap is a
    structural error.
    """

    max_levels: int
    overlapping_levels: bool = False
    levels: List[List[FileMetaData]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.levels:
            self.levels = [[] for _ in range(self.max_levels)]

    def _level_overlaps(self, level: int) -> bool:
        return level == 0 or self.overlapping_levels

    # -- mutation ----------------------------------------------------------

    def add_file(self, level: int, meta: FileMetaData) -> None:
        """Register ``meta`` at ``level`` keeping the level's ordering."""
        self._check_level(level)
        files = self.levels[level]
        if self._level_overlaps(level):
            files.insert(0, meta)  # newest first
            return
        keys = [existing.min_key for existing in files]
        pos = bisect_right(keys, meta.min_key)
        if pos > 0 and files[pos - 1].max_key >= meta.min_key:
            raise StorageError(
                f"overlap adding file {meta.name} to level {level}")
        if pos < len(files) and files[pos].min_key <= meta.max_key:
            raise StorageError(
                f"overlap adding file {meta.name} to level {level}")
        files.insert(pos, meta)

    def remove_files(self, level: int, metas: Iterable[FileMetaData]) -> None:
        """Drop the given files from ``level``."""
        self._check_level(level)
        numbers = {meta.number for meta in metas}
        self.levels[level] = [meta for meta in self.levels[level]
                              if meta.number not in numbers]

    # -- queries -----------------------------------------------------------

    def files_for_key(self, level: int, key: int) -> List[FileMetaData]:
        """Files at ``level`` whose key range may contain ``key``.

        Overlapping levels (level 0, or every level under tiering)
        return every covering file newest-first; sorted-run levels
        return at most one file.
        """
        self._check_level(level)
        files = self.levels[level]
        if self._level_overlaps(level):
            return [meta for meta in files
                    if meta.min_key <= key <= meta.max_key]
        idx = bisect_right([meta.min_key for meta in files], key) - 1
        if idx >= 0 and files[idx].max_key >= key:
            return [files[idx]]
        return []

    def overlapping_files(self, level: int, min_key: int,
                          max_key: int) -> List[FileMetaData]:
        """Files at ``level`` whose range intersects [min_key, max_key]."""
        self._check_level(level)
        return [meta for meta in self.levels[level]
                if meta.max_key >= min_key and meta.min_key <= max_key]

    def level_data_bytes(self, level: int) -> int:
        """Sum of payload bytes at ``level``."""
        self._check_level(level)
        return sum(meta.data_bytes for meta in self.levels[level])

    def level_entry_count(self, level: int) -> int:
        """Sum of entries at ``level``."""
        self._check_level(level)
        return sum(meta.entry_count for meta in self.levels[level])

    def file_count(self, level: Optional[int] = None) -> int:
        """File count at one level, or across all levels."""
        if level is not None:
            self._check_level(level)
            return len(self.levels[level])
        return sum(len(files) for files in self.levels)

    def deepest_nonempty_level(self) -> int:
        """Index of the deepest level holding data (-1 when empty)."""
        for level in range(self.max_levels - 1, -1, -1):
            if self.levels[level]:
                return level
        return -1

    def all_files(self) -> List[Tuple[int, FileMetaData]]:
        """Every (level, file) pair, shallow levels first."""
        out: List[Tuple[int, FileMetaData]] = []
        for level, files in enumerate(self.levels):
            out.extend((level, meta) for meta in files)
        return out

    def key_range_overlaps_below(self, level: int, min_key: int,
                                 max_key: int) -> bool:
        """True when any file deeper than ``level`` intersects the range."""
        for deeper in range(level + 1, self.max_levels):
            if self.overlapping_files(deeper, min_key, max_key):
                return True
        return False

    def _check_level(self, level: int) -> None:
        if not 0 <= level < self.max_levels:
            raise StorageError(
                f"level {level} out of range [0, {self.max_levels})")
