"""SSTables in the paper's ``LearnedIndexTable`` format.

Section 4.2 of the paper replaces LevelDB's block-based table with a
format where "the inner index and data segments are serialized
separately, with their offsets recorded in the file header":

::

    [ entries: entry_count x entry_bytes, sorted by key ]
    [ learned index payload (absent under level granularity) ]
    [ bloom filter payload ]
    [ fixed-size footer: offsets, counts, key range, magic ]

Point lookups follow the paper's ``InternalGet`` exactly: consult the
in-memory learned index for a position bound, ``pread`` that segment,
binary-search it.  Iterators (``NewIter``) seek the same way and then
stream one device block at a time.

All simulated-time charging happens here with the stage labels the
experiments report: PREDICTION for the model, IO for the segment
fetch, SEARCH for the in-segment binary search.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import CorruptionError
from repro.indexes.base import ClusteredIndex, SearchBound
from repro.indexes.registry import IndexFactory, deserialize_index
from repro.lsm.bloom import BloomFilter
from repro.lsm.iterators import KVIterator
from repro.lsm.options import Options
from repro.lsm.record import Record, decode_entry, decode_key, encode_entry
from repro.storage.block_device import BlockDevice
from repro.storage.cost_model import CostModel
from repro.storage.stats import (
    MODEL_BYTES_WRITTEN,
    MULTIGET_COALESCED,
    MULTIGET_SEEKS_SAVED,
    SEEKS,
    SEGMENTS_FETCHED,
    TRAIN_KEY_VISITS,
    Stage,
    Stats,
)

_FOOTER = struct.Struct("<QIQIIQQQQQQIQ")
_MAGIC = 0x4C49545F4C534D31  # "LIT_LSM1"
FOOTER_BYTES = _FOOTER.size


@dataclass(frozen=True)
class TableFooter:
    """Decoded footer of one table file.

    ``level`` and ``max_seq`` make files self-describing, so a database
    can be reopened from the device alone (see ``LSMTree.reopen``).
    """

    entry_count: int
    entry_bytes: int
    value_capacity: int
    index_offset: int
    index_len: int
    bloom_offset: int
    bloom_len: int
    min_key: int
    max_key: int
    level: int = 0
    max_seq: int = 0

    def pack(self) -> bytes:
        return _FOOTER.pack(
            _MAGIC, 1, self.entry_count, self.entry_bytes,
            self.value_capacity, self.index_offset, self.index_len,
            self.bloom_offset, self.bloom_len, self.min_key, self.max_key,
            self.level, self.max_seq)

    @classmethod
    def unpack(cls, data: bytes) -> "TableFooter":
        if len(data) != FOOTER_BYTES:
            raise CorruptionError(
                f"footer must be {FOOTER_BYTES} bytes, got {len(data)}")
        (magic, version, entry_count, entry_bytes, value_capacity,
         index_offset, index_len, bloom_offset, bloom_len,
         min_key, max_key, level, max_seq) = _FOOTER.unpack(data)
        if magic != _MAGIC:
            raise CorruptionError(f"bad table magic: {magic:#x}")
        if version != 1:
            raise CorruptionError(f"unsupported table version: {version}")
        return cls(entry_count, entry_bytes, value_capacity, index_offset,
                   index_len, bloom_offset, bloom_len, min_key, max_key,
                   level, max_seq)


class TableBuilder:
    """Builds one table file from sorted records (the paper's BuildTable).

    Records must arrive in strictly increasing key order (compaction
    outputs satisfy this by construction).  Training cost, data-write
    cost and model-write cost are charged to the compaction stages so
    Figure 9's breakdown can be read straight from the stats registry.
    """

    def __init__(self, device: BlockDevice, name: str, options: Options,
                 index_factory: Optional[IndexFactory], stats: Stats,
                 cost: CostModel, level: int = 0) -> None:
        self.device = device
        self.name = name
        self.options = options
        self.index_factory = index_factory
        self.stats = stats
        self.cost = cost
        self.level = level
        self._keys: List[int] = []
        self._chunks: List[bytes] = []
        self._max_seq = 0
        self._finished = False

    def add(self, record: Record) -> None:
        """Append one record; keys must strictly increase."""
        if self._keys and record.key <= self._keys[-1]:
            raise CorruptionError(
                f"table builder keys must strictly increase: "
                f"{self._keys[-1]} then {record.key}")
        self._keys.append(record.key)
        if record.seq > self._max_seq:
            self._max_seq = record.seq
        self._chunks.append(encode_entry(record, self.options.value_capacity))

    @property
    def entry_count(self) -> int:
        """Records added so far."""
        return len(self._keys)

    @property
    def payload_bytes(self) -> int:
        """Data bytes added so far (used for SSTable size targeting)."""
        return len(self._keys) * self.options.entry_bytes

    def finish(self) -> "Table":
        """Write data, train + serialise the index, write bloom + footer."""
        if self._finished:
            raise CorruptionError("TableBuilder.finish called twice")
        if not self._keys:
            raise CorruptionError("cannot finish an empty table")
        self._finished = True
        device = self.device
        cost = self.cost
        stats = self.stats

        device.create(self.name)
        data = b"".join(self._chunks)
        device.append(self.name, data)
        nblocks = (len(data) + device.block_size - 1) // device.block_size
        stats.charge(Stage.COMPACT_WRITE, cost.write_us(nblocks))

        # Train the per-table index (skipped under level granularity,
        # where the level model is built by the caller).
        index: Optional[ClusteredIndex] = None
        index_payload = b""
        if self.index_factory is not None:
            index = self.index_factory.create()
            index.build(self._keys)
            stats.add(TRAIN_KEY_VISITS, index.train_key_visits)
            stats.charge(Stage.COMPACT_TRAIN,
                         cost.train_us(index.train_key_visits))
            index_payload = index.serialize()
            stats.add(MODEL_BYTES_WRITTEN, len(index_payload))
            stats.charge(Stage.COMPACT_WRITE_MODEL,
                         cost.model_write_us(len(index_payload)))

        bloom = BloomFilter.build(self._keys,
                                  self.options.bloom_bits_for(self.level))
        # Bloom construction costs one cheap hash-insert per key and is
        # identical across index types; charge it with the data write.
        stats.charge(Stage.COMPACT_WRITE,
                     cost.index_compare_us * len(self._keys))
        bloom_payload = bloom.serialize()

        index_offset = len(data)
        bloom_offset = index_offset + len(index_payload)
        footer = TableFooter(
            entry_count=len(self._keys),
            entry_bytes=self.options.entry_bytes,
            value_capacity=self.options.value_capacity,
            index_offset=index_offset,
            index_len=len(index_payload),
            bloom_offset=bloom_offset,
            bloom_len=len(bloom_payload),
            min_key=self._keys[0],
            max_key=self._keys[-1],
            level=self.level,
            max_seq=self._max_seq,
        )
        tail = index_payload + bloom_payload + footer.pack()
        device.append(self.name, tail)
        tail_blocks = (len(tail) + device.block_size - 1) // device.block_size
        stats.charge(Stage.COMPACT_WRITE, cost.write_us(tail_blocks))

        return Table(device=device, name=self.name, options=self.options,
                     stats=stats, cost=cost, footer=footer, index=index,
                     bloom=bloom, keys=self._keys)


class Table:
    """An open, immutable table: the paper's ``LearnedIndexTable``.

    The index and bloom filter live in memory (as LevelDB caches
    them); entry payloads are fetched from the device on demand.
    """

    def __init__(self, device: BlockDevice, name: str, options: Options,
                 stats: Stats, cost: CostModel, footer: TableFooter,
                 index: Optional[ClusteredIndex], bloom: BloomFilter,
                 keys: Optional[List[int]] = None) -> None:
        self.device = device
        self.name = name
        self.options = options
        self.stats = stats
        self.cost = cost
        self.footer = footer
        self.index = index
        self.bloom = bloom
        #: Kept only while needed by level-model rebuilds; dropped via
        #: :meth:`release_keys` otherwise.
        self.cached_keys = keys

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def open(cls, device: BlockDevice, name: str, options: Options,
             stats: Stats, cost: CostModel) -> "Table":
        """Open a table from the device (recovery path).

        The embedded index payload is *deserialized*, never retrained —
        per-table models pay their training cost exactly once, at build
        time.  The footer, index and bloom reads are charged to the
        RECOVERY stage so cold-open experiments can report them.
        """
        size = device.size(name)
        if size < FOOTER_BYTES:
            raise CorruptionError(f"table {name} too small for a footer")
        footer = TableFooter.unpack(
            device.pread(name, size - FOOTER_BYTES, FOOTER_BYTES))
        stats.charge(Stage.RECOVERY, cost.read_us(
            cost.blocks_spanned(size - FOOTER_BYTES, FOOTER_BYTES)))
        index = None
        if footer.index_len:
            payload = device.pread(name, footer.index_offset, footer.index_len)
            index = deserialize_index(payload)
            stats.charge(Stage.RECOVERY, cost.read_us(
                cost.blocks_spanned(footer.index_offset, footer.index_len)))
        bloom = BloomFilter.deserialize(
            device.pread(name, footer.bloom_offset, footer.bloom_len))
        stats.charge(Stage.RECOVERY, cost.read_us(
            cost.blocks_spanned(footer.bloom_offset, footer.bloom_len)))
        return cls(device=device, name=name, options=options, stats=stats,
                   cost=cost, footer=footer, index=index, bloom=bloom)

    def release_keys(self) -> None:
        """Drop the cached build-time key array."""
        self.cached_keys = None

    def load_keys(self) -> List[int]:
        """The sorted key array, read from the device at most once.

        The first call pays one sequential read of the data segment
        (charged as compaction input, since key reloads only happen on
        behalf of level-model rebuilds); the result is cached and every
        later call — the level-model manager, a second rebuild of an
        adjacent level touching the same file — returns the same list
        without touching the device again.  Callers must treat the
        returned list as read-only.
        """
        if self.cached_keys is None:
            data = self.read_entries(0, self.footer.entry_count,
                                     Stage.COMPACT_READ)
            # One strided pass: each entry contributes its leading 8-byte
            # key, the rest of the fixed-size slot is skipped as padding.
            strided = struct.Struct(f"<Q{self.footer.entry_bytes - 8}x")
            self.cached_keys = [key for (key,) in strided.iter_unpack(data)]
        return self.cached_keys

    def close(self) -> None:
        """Delete the backing file (called when the table is obsolete)."""
        if self.device.exists(self.name):
            self.device.delete(self.name)

    # -- metadata ------------------------------------------------------------

    @property
    def entry_count(self) -> int:
        """Entries stored in the table."""
        return self.footer.entry_count

    @property
    def min_key(self) -> int:
        """Smallest user key."""
        return self.footer.min_key

    @property
    def max_key(self) -> int:
        """Largest user key."""
        return self.footer.max_key

    @property
    def file_bytes(self) -> int:
        """Total file size."""
        return self.device.size(self.name)

    def index_bytes(self) -> int:
        """Serialized size of the per-table index (0 under level model)."""
        return self.footer.index_len

    def bloom_bytes(self) -> int:
        """Serialized size of the bloom filter."""
        return self.footer.bloom_len

    def key_range_contains(self, key: int) -> bool:
        """True when ``key`` falls inside [min_key, max_key]."""
        return self.footer.min_key <= key <= self.footer.max_key

    # -- reads -----------------------------------------------------------

    def read_entries(self, lo: int, hi: int, stage: Stage,
                     *, seeks: int = 1) -> bytes:
        """Fetch entries [lo, hi) from the device, charging ``stage``.

        Blocks served by a block cache (when the device is a
        :class:`~repro.storage.block_cache.CachedBlockDevice`) are
        charged at memory-copy cost instead of seek + transfer.
        """
        entry_bytes = self.footer.entry_bytes
        offset = lo * entry_bytes
        length = (hi - lo) * entry_bytes
        data, hit_frac = self.device.pread_cached(self.name, offset, length)
        nblocks = self.cost.blocks_spanned(offset, length)
        if hit_frac > 0.0:
            hit_blocks = nblocks * hit_frac
            miss_blocks = nblocks - hit_blocks
            charged_seeks = seeks if miss_blocks else 0
            us = self.cost.read_us(miss_blocks, seeks=charged_seeks)
            us += hit_blocks * self.cost.cache_block_us
        else:
            charged_seeks = seeks
            us = self.cost.read_us(nblocks, seeks=seeks)
        if charged_seeks:
            self.stats.add(SEEKS, charged_seeks)
        self.stats.charge(stage, us)
        return data

    def _bound_for(self, key: int) -> SearchBound:
        if self.index is None:
            raise CorruptionError(
                f"table {self.name} has no per-table index; lookups must "
                "go through the level model")
        bound = self.index.lookup(key)
        self.stats.charge(Stage.PREDICTION,
                          self.index.expected_lookup_cost_us(self.cost))
        return bound

    def get(self, key: int) -> Optional[Record]:
        """Point lookup via predict -> pread -> binary search."""
        bound = self._bound_for(key)
        return self.get_in_bound(key, bound)

    def get_in_bound(self, key: int, bound: SearchBound) -> Optional[Record]:
        """Point lookup when a bound is already known (level model path)."""
        bound = bound.clamped(self.footer.entry_count)
        if bound.width <= 0:
            return None
        data = self.read_entries(bound.lo, bound.hi, Stage.IO)
        self.stats.add(SEGMENTS_FETCHED)
        idx = self._binary_search(data, bound.width, key)
        self.stats.charge(Stage.SEARCH,
                          self.cost.segment_search_us(bound.width))
        if idx is None:
            return None
        return decode_entry(data, idx * self.footer.entry_bytes,
                            self.footer.value_capacity)

    def _binary_search(self, data: bytes, count: int,
                       key: int) -> Optional[int]:
        return self._binary_search_range(data, 0, count, key)

    def _binary_search_range(self, data: bytes, lo: int, hi: int,
                             key: int) -> Optional[int]:
        """Binary search entries [lo, hi) of a fetched buffer for ``key``."""
        entry_bytes = self.footer.entry_bytes
        while lo < hi:
            mid = (lo + hi) // 2
            probe = decode_key(data, mid * entry_bytes)
            if probe < key:
                lo = mid + 1
            elif probe > key:
                hi = mid
            else:
                return mid
        return None

    # -- batched reads ----------------------------------------------------

    def _coalesce_gap_entries(self) -> int:
        """Largest entry gap worth reading through instead of re-seeking.

        Two predicted segments separated by fewer than this many entries
        are cheaper to fetch as one sequential pread (paying the extra
        transfer blocks) than as two preads (paying a second seek):
        ``gap_blocks * block_read_us < seek_us``.
        """
        blocks = int(self.cost.seek_us // max(self.cost.block_read_us, 1e-9))
        return blocks * (self.device.block_size // self.footer.entry_bytes)

    def multi_get(self, keys: Sequence[int],
                  coalesce: bool = True) -> Dict[int, Record]:
        """Batched point lookups through the per-table index.

        Predicts one bound per key (each key pays its own PREDICTION
        charge — model evaluations do not amortize), then fetches all
        bounds through :meth:`multi_get_in_bounds` so overlapping or
        adjacent segments share one pread.  Returns ``{key: record}``
        for the keys present (values *and* tombstones).
        """
        items = [(key, self._bound_for(key)) for key in keys]
        return self.multi_get_in_bounds(items, coalesce=coalesce)

    def multi_get_in_bounds(self, items: Sequence[Tuple[int, SearchBound]],
                            coalesce: bool = True) -> Dict[int, Record]:
        """Batched lookups when bounds are already known (level-model path).

        ``items`` is a batch of ``(key, bound)`` pairs.  Bounds are
        sorted by position and coalesced into maximal runs: a bound that
        overlaps, adjoins, or sits within a cheaper-than-a-seek gap of
        the current run (see :meth:`_coalesce_gap_entries`) extends it
        instead of opening a new pread.  Each run costs **one seek plus
        its sequential blocks**; every key is then binary-searched inside
        its own bound within the shared buffer.  With ``coalesce=False``
        every bound is its own run (the per-key cost shape, batched only
        in control flow) — the knob the ``multiget`` experiment sweeps.
        """
        n = self.footer.entry_count
        clamped: List[Tuple[int, SearchBound]] = []
        for key, bound in items:
            bound = bound.clamped(n)
            if bound.width > 0:
                clamped.append((key, bound))
        if not clamped:
            return {}
        clamped.sort(key=lambda item: (item[1].lo, item[1].hi))
        gap = self._coalesce_gap_entries()
        runs: List[List] = []  # [run_lo, run_hi, [(key, bound), ...]]
        for key, bound in clamped:
            if coalesce and runs and bound.lo <= runs[-1][1] + gap:
                runs[-1][1] = max(runs[-1][1], bound.hi)
                runs[-1][2].append((key, bound))
            else:
                runs.append([bound.lo, bound.hi, [(key, bound)]])
        found: Dict[int, Record] = {}
        entry_bytes = self.footer.entry_bytes
        value_capacity = self.footer.value_capacity
        for run_lo, run_hi, members in runs:
            seeks_before = self.stats.get(SEEKS)
            data = self.read_entries(run_lo, run_hi, Stage.IO)
            self.stats.add(SEGMENTS_FETCHED)
            if len(members) > 1 and self.stats.get(SEEKS) > seeks_before:
                # Only a run that actually paid a seek saved the others;
                # a cache-served run would have cost no seeks per key
                # either, so claiming savings there would overstate it.
                self.stats.add(MULTIGET_COALESCED)
                self.stats.add(MULTIGET_SEEKS_SAVED, len(members) - 1)
            for key, bound in members:
                idx = self._binary_search_range(
                    data, bound.lo - run_lo, bound.hi - run_lo, key)
                self.stats.charge(Stage.SEARCH,
                                  self.cost.segment_search_us(bound.width))
                if idx is not None:
                    found[key] = decode_entry(data, idx * entry_bytes,
                                              value_capacity)
        return found

    def iterator(self, refill_stage: Stage = Stage.SCAN) -> "TableIterator":
        """Sequential iterator (range lookups, compaction inputs)."""
        return TableIterator(self, refill_stage)


class TableIterator(KVIterator):
    """Iterator over one table, streaming one device block per refill.

    The initial positioning of :meth:`seek` uses the learned index and
    charges the point-lookup stages; subsequent :meth:`advance` calls
    stream forward a block at a time charging ``refill_stage`` (SCAN
    for range queries, COMPACT_READ for compaction inputs), mirroring
    the paper's range-lookup implementation.
    """

    def __init__(self, table: Table, refill_stage: Stage) -> None:
        self.table = table
        self.refill_stage = refill_stage
        self._pos = table.entry_count  # invalid
        self._buf = b""
        self._buf_lo = 0
        self._buf_hi = 0

    # -- buffer management ----------------------------------------------

    def _entries_per_refill(self) -> int:
        entry_bytes = self.table.footer.entry_bytes
        return max(1, self.table.device.block_size // entry_bytes)

    def _fetch(self, lo: int, hi: int, stage: Stage, seeks: int) -> None:
        hi = min(hi, self.table.entry_count)
        self._buf = self.table.read_entries(lo, hi, stage, seeks=seeks)
        self._buf_lo = lo
        self._buf_hi = hi

    def _ensure_buffered(self, pos: int) -> None:
        if self._buf_lo <= pos < self._buf_hi:
            return
        per = self._entries_per_refill()
        # Align refills to device blocks (when entries pack evenly) so
        # sequential scans read each block exactly once regardless of
        # where the initial seek landed.
        entry_bytes = self.table.footer.entry_bytes
        if self.table.device.block_size % entry_bytes == 0:
            lo = pos - (pos % per)
        else:
            lo = pos
        self._fetch(lo, lo + per, self.refill_stage, seeks=0)

    # -- KVIterator ---------------------------------------------------------

    def seek_to_first(self) -> None:
        self._pos = 0
        if self.table.entry_count:
            self._fetch(0, self._entries_per_refill(), self.refill_stage,
                        seeks=1)

    def seek(self, key: int) -> None:
        table = self.table
        if table.index is None:
            # Level-model tables: the caller narrows with seek_to_bound.
            self.seek_to_first()
            self._skip_until(key)
            return
        bound = table.index.lookup(key)
        table.stats.charge(Stage.PREDICTION,
                           table.index.expected_lookup_cost_us(table.cost))
        self.seek_to_bound(key, bound)

    def seek_to_bound(self, key: int, bound: SearchBound) -> None:
        """Seek using an externally supplied position bound."""
        table = self.table
        bound = bound.clamped(table.entry_count)
        if bound.width <= 0:
            self._pos = min(bound.lo, table.entry_count)
            if self._pos < table.entry_count:
                self._ensure_buffered(self._pos)
                self._skip_until(key)
            return
        self._fetch(bound.lo, bound.hi, Stage.IO, seeks=1)
        table.stats.add(SEGMENTS_FETCHED)
        table.stats.charge(Stage.SEARCH,
                           table.cost.segment_search_us(bound.width))
        self._pos = self._buf_lo + self._lower_bound_in_buf(key)
        self._skip_until(key)

    def _lower_bound_in_buf(self, key: int) -> int:
        entry_bytes = self.table.footer.entry_bytes
        lo, hi = 0, self._buf_hi - self._buf_lo
        while lo < hi:
            mid = (lo + hi) // 2
            if decode_key(self._buf, mid * entry_bytes) < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _skip_until(self, key: int) -> None:
        """Safety net: step forward while positioned before ``key``."""
        while self.valid() and self.key() < key:
            self.advance()

    def valid(self) -> bool:
        return 0 <= self._pos < self.table.entry_count

    def key(self) -> int:
        self._ensure_buffered(self._pos)
        offset = (self._pos - self._buf_lo) * self.table.footer.entry_bytes
        return decode_key(self._buf, offset)

    def record(self) -> Record:
        self._ensure_buffered(self._pos)
        offset = (self._pos - self._buf_lo) * self.table.footer.entry_bytes
        return decode_entry(self._buf, offset,
                            self.table.footer.value_capacity)

    def advance(self) -> None:
        self._pos += 1
