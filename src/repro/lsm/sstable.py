"""SSTables: block-based format v2 with a flat-format v1 compatibility path.

Format v1 (the paper's ``LearnedIndexTable``) serialised the sorted
entry array flat, followed by the learned-index payload, the bloom
filter and a fixed footer.  That matches Section 4.2 of the paper but
no production LSM ships it: LevelDB and RocksDB store block-structured
tables with per-block compression and checksums.  Format v2 closes the
gap while keeping the paper's read algorithm intact:

::

    [ header: magic, format version, entry size, CRC32C ]
    [ data block 0: codec(entries) + (codec id, CRC32C) trailer ]
    [ ... data block k ...                                      ]
    [ sparse block index: (first_key, offset, stored, raw) rows ]
    [ learned index payload (absent under level granularity)    ]
    [ bloom filter payload                                      ]
    [ footer v2: counts, region offsets + CRC32Cs, key range,   ]
    [            compression totals, self-CRC32C                ]

Entries are grouped into fixed-target-size blocks of
``entries_per_block = max(1, data_block_bytes // entry_bytes)``
entries; each block is independently compressed (see
:mod:`repro.storage.compression`) and protected by a CRC32C over its
stored payload.  Point lookups still follow the paper's
``InternalGet`` — predict a position bound, fetch, binary-search — but
the bound is first widened to whole blocks (the I/O unit), and fetched
blocks are verified, decoded, and optionally admitted to a
decompressed-block cache keyed by ``(file, block_no)``.

Checksums are verified on a block's *first* fetch by each open table
(memoised per block number), so hot blocks do not pay the verification
cost per read — the same trade RocksDB's ``verify_checksums`` block
cache makes.  Any mismatch raises a typed
:class:`~repro.errors.ChecksumError` naming the file, region and block.

v1 files (written by earlier versions, or by
:func:`write_legacy_table`) are detected by their footer magic and read
through the original flat byte-offset path; compactions rewrite them in
v2, so mixed-version databases converge to the current format.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import (
    ChecksumError,
    CorruptionError,
    QuarantinedBlockError,
)
from repro.indexes.base import ClusteredIndex, SearchBound
from repro.indexes.registry import IndexFactory, deserialize_index
from repro.lsm.bloom import BloomFilter
from repro.lsm.iterators import KVIterator
from repro.lsm.options import Options
from repro.lsm.record import Record, decode_entry, decode_key, encode_entry
from repro.storage.block_cache import DataBlockCache
from repro.storage.block_device import BlockDevice
from repro.storage.checksum import crc32c
from repro.storage.compression import by_name as codec_by_name
from repro.storage.compression import decode_block, encode_block
from repro.storage.cost_model import CostModel
from repro.storage.stats import (
    BLOCKS_VERIFIED,
    CHECKSUM_FAILURES,
    COMPRESS_BYTES_RAW,
    COMPRESS_BYTES_STORED,
    DATA_CACHE_EVICTIONS,
    DATA_CACHE_HITS,
    DATA_CACHE_MISSES,
    DECOMPRESS_BYTES,
    MODEL_BYTES_WRITTEN,
    MULTIGET_COALESCED,
    MULTIGET_SEEKS_SAVED,
    QUARANTINED_BLOCKS,
    SEEKS,
    SEGMENTS_FETCHED,
    TRAIN_KEY_VISITS,
    Stage,
    Stats,
)

#: On-disk format versions (also recorded in Manifest file records).
FORMAT_FLAT = 1
FORMAT_BLOCKED = 2
CURRENT_FORMAT = FORMAT_BLOCKED

_MAGIC_V1 = 0x4C49545F4C534D31  # "LIT_LSM1"
_MAGIC_V2 = 0x4C49545F4C534D32  # "LIT_LSM2"

#: File header: magic, format_version, entry_bytes, CRC32C of the rest.
_HEADER = struct.Struct("<QIII")
HEADER_BYTES = _HEADER.size

#: Per data block trailer: codec id, CRC32C over payload + codec byte.
_BLOCK_TRAILER = struct.Struct("<BI")
BLOCK_TRAILER_BYTES = _BLOCK_TRAILER.size

#: One sparse-index row: first_key, file offset, stored len, raw len.
_BLOCK_INDEX_ENTRY = struct.Struct("<QQII")

_FOOTER_V1 = struct.Struct("<QIQIIQQQQQQIQ")
FOOTER_V1_BYTES = _FOOTER_V1.size

# magic, format_version, entry_count, entry_bytes, value_capacity,
# entries_per_block, block_count, block_index (offset, len, crc),
# learned index (offset, len, crc), bloom (offset, len, crc),
# data_raw_bytes, data_stored_bytes, min_key, max_key, level, max_seq,
# footer self-crc.
_FOOTER_V2 = struct.Struct("<QIQIIIIQQIQQIQQIQQQQIQI")
FOOTER_BYTES = _FOOTER_V2.size


@dataclass(frozen=True)
class TableFooter:
    """Decoded footer of one table file (either format version).

    ``level`` and ``max_seq`` make files self-describing, so a database
    can be reopened from the device alone (see ``LSMTree.reopen``).
    For v1 files the block fields are zero and the compression totals
    degenerate to the flat data-segment size.
    """

    entry_count: int
    entry_bytes: int
    value_capacity: int
    index_offset: int
    index_len: int
    bloom_offset: int
    bloom_len: int
    min_key: int
    max_key: int
    level: int = 0
    max_seq: int = 0
    format_version: int = CURRENT_FORMAT
    entries_per_block: int = 0
    block_count: int = 0
    block_index_offset: int = 0
    block_index_len: int = 0
    block_index_crc: int = 0
    index_crc: int = 0
    bloom_crc: int = 0
    data_raw_bytes: int = 0
    data_stored_bytes: int = 0

    def pack(self) -> bytes:
        """Serialise as a v2 footer (self-checksummed)."""
        head = _FOOTER_V2.pack(
            _MAGIC_V2, self.format_version, self.entry_count,
            self.entry_bytes, self.value_capacity, self.entries_per_block,
            self.block_count, self.block_index_offset, self.block_index_len,
            self.block_index_crc, self.index_offset, self.index_len,
            self.index_crc, self.bloom_offset, self.bloom_len,
            self.bloom_crc, self.data_raw_bytes, self.data_stored_bytes,
            self.min_key, self.max_key, self.level, self.max_seq, 0)[:-4]
        return head + struct.pack("<I", crc32c(head))

    @classmethod
    def unpack(cls, data: bytes, name: str = "?") -> "TableFooter":
        """Decode a v2 footer, verifying magic, version and self-CRC."""
        if len(data) != FOOTER_BYTES:
            raise CorruptionError(
                f"footer must be {FOOTER_BYTES} bytes, got {len(data)}")
        (magic, format_version, entry_count, entry_bytes, value_capacity,
         entries_per_block, block_count, block_index_offset,
         block_index_len, block_index_crc, index_offset, index_len,
         index_crc, bloom_offset, bloom_len, bloom_crc, data_raw_bytes,
         data_stored_bytes, min_key, max_key, level, max_seq,
         footer_crc) = _FOOTER_V2.unpack(data)
        if magic != _MAGIC_V2:
            raise CorruptionError(f"bad table magic: {magic:#x}")
        if crc32c(data[:-4]) != footer_crc:
            raise ChecksumError(name, "footer")
        if format_version != FORMAT_BLOCKED:
            raise CorruptionError(
                f"unsupported table version: {format_version}")
        return cls(entry_count=entry_count, entry_bytes=entry_bytes,
                   value_capacity=value_capacity, index_offset=index_offset,
                   index_len=index_len, bloom_offset=bloom_offset,
                   bloom_len=bloom_len, min_key=min_key, max_key=max_key,
                   level=level, max_seq=max_seq,
                   format_version=format_version,
                   entries_per_block=entries_per_block,
                   block_count=block_count,
                   block_index_offset=block_index_offset,
                   block_index_len=block_index_len,
                   block_index_crc=block_index_crc, index_crc=index_crc,
                   bloom_crc=bloom_crc, data_raw_bytes=data_raw_bytes,
                   data_stored_bytes=data_stored_bytes)

    def pack_v1(self) -> bytes:
        """Serialise as a legacy v1 footer (flat format, no checksums)."""
        return _FOOTER_V1.pack(
            _MAGIC_V1, 1, self.entry_count, self.entry_bytes,
            self.value_capacity, self.index_offset, self.index_len,
            self.bloom_offset, self.bloom_len, self.min_key, self.max_key,
            self.level, self.max_seq)

    @classmethod
    def unpack_v1(cls, data: bytes) -> "TableFooter":
        """Decode a legacy v1 footer."""
        if len(data) != FOOTER_V1_BYTES:
            raise CorruptionError(
                f"v1 footer must be {FOOTER_V1_BYTES} bytes, got {len(data)}")
        (magic, version, entry_count, entry_bytes, value_capacity,
         index_offset, index_len, bloom_offset, bloom_len,
         min_key, max_key, level, max_seq) = _FOOTER_V1.unpack(data)
        if magic != _MAGIC_V1:
            raise CorruptionError(f"bad table magic: {magic:#x}")
        if version != 1:
            raise CorruptionError(f"unsupported table version: {version}")
        size = entry_count * entry_bytes
        return cls(entry_count, entry_bytes, value_capacity, index_offset,
                   index_len, bloom_offset, bloom_len, min_key, max_key,
                   level, max_seq, format_version=FORMAT_FLAT,
                   data_raw_bytes=size, data_stored_bytes=size)


def entries_per_block_for(options: Options) -> int:
    """How many entries one data block of a new table holds."""
    return max(1, options.data_block_bytes // options.entry_bytes)


class TableBuilder:
    """Builds one table file from sorted records (the paper's BuildTable).

    Records must arrive in strictly increasing key order (compaction
    outputs satisfy this by construction).  Training cost, data-write
    cost, compression cost and model-write cost are charged to the
    compaction stages so Figure 9's breakdown can be read straight from
    the stats registry.
    """

    def __init__(self, device: BlockDevice, name: str, options: Options,
                 index_factory: Optional[IndexFactory], stats: Stats,
                 cost: CostModel, level: int = 0,
                 data_cache: Optional[DataBlockCache] = None) -> None:
        self.device = device
        self.name = name
        self.options = options
        self.index_factory = index_factory
        self.stats = stats
        self.cost = cost
        self.level = level
        self.data_cache = data_cache
        self._keys: List[int] = []
        self._chunks: List[bytes] = []
        self._max_seq = 0
        self._finished = False

    def add(self, record: Record) -> None:
        """Append one record; keys must strictly increase."""
        if self._keys and record.key <= self._keys[-1]:
            raise CorruptionError(
                f"table builder keys must strictly increase: "
                f"{self._keys[-1]} then {record.key}")
        self._keys.append(record.key)
        if record.seq > self._max_seq:
            self._max_seq = record.seq
        self._chunks.append(encode_entry(record, self.options.value_capacity))

    @property
    def entry_count(self) -> int:
        """Records added so far."""
        return len(self._keys)

    @property
    def payload_bytes(self) -> int:
        """Raw data bytes added so far (used for SSTable size targeting)."""
        return len(self._keys) * self.options.entry_bytes

    def _encode_data_blocks(self) -> Tuple[List[bytes],
                                           List[Tuple[int, int, int, int]],
                                           int, int]:
        """Chunk entries into blocks; returns (blocks, handles, raw, stored)."""
        cost = self.cost
        stats = self.stats
        codec = codec_by_name(self.options.block_codec)
        per = entries_per_block_for(self.options)
        blocks: List[bytes] = []
        handles: List[Tuple[int, int, int, int]] = []
        offset = HEADER_BYTES
        raw_total = 0
        stored_total = 0
        for start in range(0, len(self._keys), per):
            raw = b"".join(self._chunks[start:start + per])
            codec_id, payload = encode_block(codec, raw)
            if codec.codec_id != 0:
                stats.charge(Stage.COMPACT_COMPRESS, cost.compress_us(len(raw)))
            stored = payload + _BLOCK_TRAILER.pack(
                codec_id, crc32c(payload + bytes([codec_id])))
            blocks.append(stored)
            handles.append((self._keys[start], offset, len(stored), len(raw)))
            offset += len(stored)
            raw_total += len(raw)
            # Codec output only: the per-block trailer is framing, so
            # an uncompressed table reports a ratio of exactly 1.0.
            stored_total += len(payload)
        stats.add(COMPRESS_BYTES_RAW, raw_total)
        stats.add(COMPRESS_BYTES_STORED, stored_total)
        stats.charge(Stage.COMPACT_WRITE, cost.checksum_us(stored_total))
        return blocks, handles, raw_total, stored_total

    def finish(self) -> "Table":
        """Write data blocks, train + serialise the index, bloom, footer."""
        if self._finished:
            raise CorruptionError("TableBuilder.finish called twice")
        if not self._keys:
            raise CorruptionError("cannot finish an empty table")
        self._finished = True
        device = self.device
        cost = self.cost
        stats = self.stats

        blocks, handles, raw_total, stored_total = self._encode_data_blocks()
        header_head = _HEADER.pack(_MAGIC_V2, FORMAT_BLOCKED,
                                   self.options.entry_bytes, 0)[:-4]
        header = header_head + struct.pack("<I", crc32c(header_head))

        device.create(self.name)
        data = header + b"".join(blocks)
        device.append(self.name, data)
        nblocks = (len(data) + device.block_size - 1) // device.block_size
        stats.charge(Stage.COMPACT_WRITE, cost.write_us(nblocks))

        # Train the per-table index (skipped under level granularity,
        # where the level model is built by the caller).
        index: Optional[ClusteredIndex] = None
        index_payload = b""
        if self.index_factory is not None:
            index = self.index_factory.create()
            index.build(self._keys)
            stats.add(TRAIN_KEY_VISITS, index.train_key_visits)
            stats.charge(Stage.COMPACT_TRAIN,
                         cost.train_us(index.train_key_visits))
            index_payload = index.serialize()
            stats.add(MODEL_BYTES_WRITTEN, len(index_payload))
            stats.charge(Stage.COMPACT_WRITE_MODEL,
                         cost.model_write_us(len(index_payload)))

        bloom = BloomFilter.build(self._keys,
                                  self.options.bloom_bits_for(self.level))
        # Bloom construction costs one cheap hash-insert per key and is
        # identical across index types; charge it with the data write.
        stats.charge(Stage.COMPACT_WRITE,
                     cost.index_compare_us * len(self._keys))
        bloom_payload = bloom.serialize()

        block_index_payload = b"".join(
            _BLOCK_INDEX_ENTRY.pack(*handle) for handle in handles)
        block_index_offset = len(data)
        index_offset = block_index_offset + len(block_index_payload)
        bloom_offset = index_offset + len(index_payload)
        footer = TableFooter(
            entry_count=len(self._keys),
            entry_bytes=self.options.entry_bytes,
            value_capacity=self.options.value_capacity,
            index_offset=index_offset,
            index_len=len(index_payload),
            bloom_offset=bloom_offset,
            bloom_len=len(bloom_payload),
            min_key=self._keys[0],
            max_key=self._keys[-1],
            level=self.level,
            max_seq=self._max_seq,
            format_version=FORMAT_BLOCKED,
            entries_per_block=entries_per_block_for(self.options),
            block_count=len(handles),
            block_index_offset=block_index_offset,
            block_index_len=len(block_index_payload),
            block_index_crc=crc32c(block_index_payload),
            index_crc=crc32c(index_payload),
            bloom_crc=crc32c(bloom_payload),
            data_raw_bytes=raw_total,
            data_stored_bytes=stored_total,
        )
        tail = (block_index_payload + index_payload + bloom_payload
                + footer.pack())
        device.append(self.name, tail)
        tail_blocks = (len(tail) + device.block_size - 1) // device.block_size
        stats.charge(Stage.COMPACT_WRITE, cost.write_us(tail_blocks))

        return Table(device=device, name=self.name, options=self.options,
                     stats=stats, cost=cost, footer=footer, index=index,
                     bloom=bloom, keys=self._keys, handles=handles,
                     data_cache=self.data_cache)


def write_legacy_table(device: BlockDevice, name: str, options: Options,
                       records: Sequence[Record],
                       index_factory: Optional[IndexFactory] = None,
                       level: int = 0) -> None:
    """Write a v1 flat-format table file (migration and oracle tests).

    This is the exact pre-block layout: the entry array at offset 0,
    then the index payload, bloom and v1 footer — no headers, no
    checksums.  Production code never writes v1; compactions upgrade
    such files to the current format.
    """
    keys = [record.key for record in records]
    if not keys:
        raise CorruptionError("cannot write an empty table")
    if any(b <= a for a, b in zip(keys, keys[1:])):
        raise CorruptionError("legacy table keys must strictly increase")
    data = b"".join(encode_entry(record, options.value_capacity)
                    for record in records)
    index_payload = b""
    if index_factory is not None:
        index = index_factory.create()
        index.build(keys)
        index_payload = index.serialize()
    bloom_payload = BloomFilter.build(
        keys, options.bloom_bits_for(level)).serialize()
    footer = TableFooter(
        entry_count=len(keys),
        entry_bytes=options.entry_bytes,
        value_capacity=options.value_capacity,
        index_offset=len(data),
        index_len=len(index_payload),
        bloom_offset=len(data) + len(index_payload),
        bloom_len=len(bloom_payload),
        min_key=keys[0],
        max_key=keys[-1],
        level=level,
        max_seq=max(record.seq for record in records),
        format_version=FORMAT_FLAT,
        data_raw_bytes=len(data),
        data_stored_bytes=len(data),
    )
    device.create(name)
    device.append(name, data + index_payload + bloom_payload
                  + footer.pack_v1())


class Table:
    """An open, immutable table: the paper's ``LearnedIndexTable``.

    The sparse block index, learned index and bloom filter live in
    memory (as LevelDB caches them); data blocks are fetched from the
    device on demand, verified on first touch, decoded, and served —
    optionally through the decompressed-block cache.
    """

    def __init__(self, device: BlockDevice, name: str, options: Options,
                 stats: Stats, cost: CostModel, footer: TableFooter,
                 index: Optional[ClusteredIndex], bloom: BloomFilter,
                 keys: Optional[List[int]] = None,
                 handles: Optional[List[Tuple[int, int, int, int]]] = None,
                 data_cache: Optional[DataBlockCache] = None) -> None:
        self.device = device
        self.name = name
        self.options = options
        self.stats = stats
        self.cost = cost
        self.footer = footer
        self.index = index
        self.bloom = bloom
        self.data_cache = data_cache
        #: Sparse block index rows (v2 only): one
        #: ``(first_key, offset, stored_len, raw_len)`` per data block.
        self.handles = handles
        #: Data blocks whose stored checksum has been verified by this
        #: table object; verification is memoised per open table, so a
        #: hot block pays CRC work once.
        self._verified: Set[int] = set()
        #: Data blocks that failed verification: evicted from every
        #: cache tier and never read again — lookups touching one fail
        #: fast with :class:`~repro.errors.QuarantinedBlockError` while
        #: the rest of the table keeps serving.
        self._quarantined: Set[int] = set()
        #: Kept only while needed by level-model rebuilds; dropped via
        #: :meth:`release_keys` otherwise.
        self.cached_keys = keys

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def open(cls, device: BlockDevice, name: str, options: Options,
             stats: Stats, cost: CostModel,
             data_cache: Optional[DataBlockCache] = None,
             expected_format: Optional[int] = None) -> "Table":
        """Open a table from the device (recovery path).

        The footer magic decides the format: v2 footers are
        self-checksummed and followed by header, block-index, index and
        bloom verification; v1 files take the legacy flat path.  When
        the caller knows the format the Manifest recorded,
        ``expected_format`` cross-checks it against the file itself.
        The embedded index payload is *deserialized*, never retrained —
        per-table models pay their training cost exactly once, at build
        time.  All open reads are charged to the RECOVERY stage so
        cold-open experiments can report them.
        """
        size = device.size(name)
        if size < FOOTER_V1_BYTES:
            raise CorruptionError(f"table {name} too small for a footer")
        retry = options.retry

        def pread(offset: int, length: int) -> bytes:
            # Transient device errors during open are retried like any
            # other read; rot is not transient and surfaces below as a
            # region ChecksumError.
            return retry.call(lambda: device.pread(name, offset, length),
                              stats, Stage.RECOVERY)

        footer: Optional[TableFooter] = None
        if size >= FOOTER_BYTES:
            tail = pread(size - FOOTER_BYTES, FOOTER_BYTES)
            if struct.unpack_from("<Q", tail)[0] == _MAGIC_V2:
                footer = TableFooter.unpack(tail, name)
                stats.charge(Stage.RECOVERY, cost.read_us(
                    cost.blocks_spanned(size - FOOTER_BYTES, FOOTER_BYTES)))
        if footer is None:
            tail = pread(size - FOOTER_V1_BYTES, FOOTER_V1_BYTES)
            footer = TableFooter.unpack_v1(tail)
            stats.charge(Stage.RECOVERY, cost.read_us(
                cost.blocks_spanned(size - FOOTER_V1_BYTES, FOOTER_V1_BYTES)))
        if (expected_format is not None
                and footer.format_version != expected_format):
            raise CorruptionError(
                f"table {name}: manifest records format "
                f"{expected_format}, file footer says "
                f"{footer.format_version}")

        handles: Optional[List[Tuple[int, int, int, int]]] = None
        if footer.format_version == FORMAT_BLOCKED:
            header = pread(0, HEADER_BYTES)
            if (len(header) != HEADER_BYTES
                    or crc32c(header[:-4])
                    != struct.unpack("<I", header[-4:])[0]):
                raise ChecksumError(name, "header")
            magic, format_version, entry_bytes, _ = _HEADER.unpack(header)
            if (magic != _MAGIC_V2 or format_version != FORMAT_BLOCKED
                    or entry_bytes != footer.entry_bytes):
                raise ChecksumError(name, "header",
                                    detail="header disagrees with footer")
            payload = pread(footer.block_index_offset,
                           footer.block_index_len)
            if crc32c(payload) != footer.block_index_crc:
                raise ChecksumError(name, "block_index")
            handles = list(_BLOCK_INDEX_ENTRY.iter_unpack(payload))
            if len(handles) != footer.block_count:
                raise ChecksumError(
                    name, "block_index",
                    detail=f"{len(handles)} rows, footer says "
                           f"{footer.block_count}")
            stats.charge(Stage.RECOVERY, cost.read_us(
                cost.blocks_spanned(0, HEADER_BYTES)))
            stats.charge(Stage.RECOVERY, cost.read_us(
                cost.blocks_spanned(footer.block_index_offset,
                                    footer.block_index_len)))

        index = None
        if footer.index_len:
            payload = pread(footer.index_offset, footer.index_len)
            if (footer.format_version == FORMAT_BLOCKED
                    and crc32c(payload) != footer.index_crc):
                raise ChecksumError(name, "index")
            index = deserialize_index(payload)
            stats.charge(Stage.RECOVERY, cost.read_us(
                cost.blocks_spanned(footer.index_offset, footer.index_len)))
        bloom_payload = pread(footer.bloom_offset, footer.bloom_len)
        if (footer.format_version == FORMAT_BLOCKED
                and crc32c(bloom_payload) != footer.bloom_crc):
            raise ChecksumError(name, "bloom")
        bloom = BloomFilter.deserialize(bloom_payload)
        stats.charge(Stage.RECOVERY, cost.read_us(
            cost.blocks_spanned(footer.bloom_offset, footer.bloom_len)))
        return cls(device=device, name=name, options=options, stats=stats,
                   cost=cost, footer=footer, index=index, bloom=bloom,
                   handles=handles, data_cache=data_cache)

    def release_keys(self) -> None:
        """Drop the cached build-time key array."""
        self.cached_keys = None

    def load_keys(self) -> List[int]:
        """The sorted key array, read from the device at most once.

        The first call pays one sequential read of the data blocks
        (charged as compaction input, since key reloads only happen on
        behalf of level-model rebuilds); the result is cached and every
        later call — the level-model manager, a second rebuild of an
        adjacent level touching the same file — returns the same list
        without touching the device again.  Callers must treat the
        returned list as read-only.
        """
        if self.cached_keys is None:
            data = self.read_entries(0, self.footer.entry_count,
                                     Stage.COMPACT_READ)
            # One strided pass: each entry contributes its leading 8-byte
            # key, the rest of the fixed-size slot is skipped as padding.
            strided = struct.Struct(f"<Q{self.footer.entry_bytes - 8}x")
            self.cached_keys = [key for (key,) in strided.iter_unpack(data)]
        return self.cached_keys

    def close(self) -> None:
        """Delete the backing file (called when the table is obsolete)."""
        if self.data_cache is not None:
            self.data_cache.invalidate_file(self.name)
        if self.device.exists(self.name):
            self.device.delete(self.name)

    # -- metadata ------------------------------------------------------------

    @property
    def entry_count(self) -> int:
        """Entries stored in the table."""
        return self.footer.entry_count

    @property
    def format_version(self) -> int:
        """On-disk format of the backing file (1 flat, 2 blocked)."""
        return self.footer.format_version

    @property
    def min_key(self) -> int:
        """Smallest user key."""
        return self.footer.min_key

    @property
    def max_key(self) -> int:
        """Largest user key."""
        return self.footer.max_key

    @property
    def file_bytes(self) -> int:
        """Total file size."""
        return self.device.size(self.name)

    def index_bytes(self) -> int:
        """Serialized size of the per-table index (0 under level model)."""
        return self.footer.index_len

    def bloom_bytes(self) -> int:
        """Serialized size of the bloom filter."""
        return self.footer.bloom_len

    def compression_ratio(self) -> float:
        """Raw-over-stored size of this table's data blocks."""
        if not self.footer.data_stored_bytes:
            return 1.0
        return self.footer.data_raw_bytes / self.footer.data_stored_bytes

    def key_range_contains(self, key: int) -> bool:
        """True when ``key`` falls inside [min_key, max_key]."""
        return self.footer.min_key <= key <= self.footer.max_key

    # -- reads -----------------------------------------------------------

    def block_bound(self, bound: SearchBound) -> SearchBound:
        """Widen an entry bound to whole data blocks (the I/O unit).

        Learned-index predictions are entry-granular; fetches are
        block-granular, so the effective bound is the predicted one
        rounded out to block boundaries.  v1 tables fetch at byte
        offsets and keep the entry-granular bound.
        """
        per = self.footer.entries_per_block
        if not per:
            return bound
        return bound.block_aligned(per, self.footer.entry_count)

    @property
    def quarantined_blocks(self) -> Set[int]:
        """Data-block numbers currently quarantined (read-only view)."""
        return set(self._quarantined)

    def _quarantine_block(self, exc: ChecksumError) -> QuarantinedBlockError:
        """Quarantine the block a :class:`ChecksumError` names.

        Evicts (and permanently bars) the poisoned block from the
        decompressed-block cache and — when the device has a raw cache
        tier — the device blocks its stored bytes span, then returns the
        typed per-key error the caller raises.  Re-reading cannot help:
        the corruption lives on the medium, so the block stays
        quarantined until :meth:`~repro.lsm.db.LSMTree.scrub` rewrites
        or retires the table.
        """
        block_no = max(exc.block, 0)
        if block_no not in self._quarantined:
            self._quarantined.add(block_no)
            self._verified.discard(block_no)
            self.stats.add(QUARANTINED_BLOCKS)
            if self.data_cache is not None:
                self.data_cache.quarantine(self.name, block_no)
            device_quarantine = getattr(self.device, "quarantine", None)
            if (device_quarantine is not None and self.handles is not None
                    and block_no < len(self.handles)):
                _, offset, stored_len, _ = self.handles[block_no]
                block_size = self.device.block_size
                for index in range(offset // block_size,
                                   (offset + stored_len - 1)
                                   // block_size + 1):
                    device_quarantine(self.name, index)
        return QuarantinedBlockError(self.name, block_no)

    def _decode_stored(self, block_no: int, data: bytes, raw_len: int,
                       stage: Stage) -> bytes:
        """Verify + decode one stored data block (trailer included).

        Checksum verification happens on the first fetch by this table
        (memoised per block, successes only); decoded blocks are
        admitted to the data cache when one is attached.
        """
        payload = data[:-BLOCK_TRAILER_BYTES]
        codec_id, stored_crc = _BLOCK_TRAILER.unpack(
            data[-BLOCK_TRAILER_BYTES:])
        if block_no not in self._verified:
            if crc32c(data[:-4]) != stored_crc:
                self.stats.add(CHECKSUM_FAILURES)
                raise ChecksumError(self.name, "data", block=block_no)
            self._verified.add(block_no)
            self.stats.add(BLOCKS_VERIFIED)
            self.stats.charge(stage, self.cost.checksum_us(len(data)))
        if codec_id == 0:
            if len(payload) != raw_len:
                raise ChecksumError(
                    self.name, "data", block=block_no,
                    detail=f"{len(payload)} stored bytes, expected "
                           f"{raw_len} raw")
            raw = payload
        else:
            raw = decode_block(codec_id, payload, raw_len,
                               file=self.name, block=block_no)
            decompress_stage = (Stage.DECOMPRESS
                                if stage in (Stage.IO, Stage.SCAN)
                                else stage)
            self.stats.charge(decompress_stage,
                              self.cost.decompress_us(raw_len))
            self.stats.add(DECOMPRESS_BYTES, raw_len)
        if self.data_cache is not None:
            evicted = self.data_cache.put(self.name, block_no, raw)
            if evicted:
                self.stats.add(DATA_CACHE_EVICTIONS, evicted)
        return raw

    def _fetch_run(self, block_nos: Sequence[int], stage: Stage,
                   *, seeks: int) -> List[bytes]:
        """Fetch a contiguous run of data blocks with ONE pread.

        Data blocks are usually smaller than the device block, so a
        per-data-block pread would charge a device transfer several
        times for the same device block.  Reading the covering byte
        span in one call charges exactly the device blocks the run
        spans — the same transfer volume the flat format's single
        segment fetch pays — then verifies and decodes each data block
        out of the buffer.
        """
        first_no, last_no = block_nos[0], block_nos[-1]
        offset = self.handles[first_no][1]
        _, last_off, last_len, _ = self.handles[last_no]
        length = last_off + last_len - offset
        data, hit_frac = self.options.retry.call(
            lambda: self.device.pread_cached(self.name, offset, length),
            self.stats, stage)
        if len(data) != length:
            raise ChecksumError(
                self.name, "data", block=first_no,
                detail=f"short read: {len(data)} of {length} bytes")
        nblocks = self.cost.blocks_spanned(offset, length)
        if hit_frac > 0.0:
            hit_blocks = nblocks * hit_frac
            miss_blocks = nblocks - hit_blocks
            charged_seeks = seeks if miss_blocks else 0
            us = self.cost.read_us(miss_blocks, seeks=charged_seeks)
            us += hit_blocks * self.cost.cache_block_us
        else:
            charged_seeks = seeks
            us = self.cost.read_us(nblocks, seeks=seeks)
        if charged_seeks:
            self.stats.add(SEEKS, charged_seeks)
        self.stats.charge(stage, us)
        decoded = []
        for block_no in block_nos:
            _, blk_off, stored_len, raw_len = self.handles[block_no]
            stored = data[blk_off - offset:blk_off - offset + stored_len]
            decoded.append(self._decode_stored(block_no, stored, raw_len,
                                               stage))
        return decoded

    def _read_entries_flat(self, lo: int, hi: int, stage: Stage,
                           *, seeks: int) -> bytes:
        """The v1 byte-offset read path (entries live flat at offset 0)."""
        entry_bytes = self.footer.entry_bytes
        offset = lo * entry_bytes
        length = (hi - lo) * entry_bytes
        data, hit_frac = self.options.retry.call(
            lambda: self.device.pread_cached(self.name, offset, length),
            self.stats, stage)
        nblocks = self.cost.blocks_spanned(offset, length)
        if hit_frac > 0.0:
            hit_blocks = nblocks * hit_frac
            miss_blocks = nblocks - hit_blocks
            charged_seeks = seeks if miss_blocks else 0
            us = self.cost.read_us(miss_blocks, seeks=charged_seeks)
            us += hit_blocks * self.cost.cache_block_us
        else:
            charged_seeks = seeks
            us = self.cost.read_us(nblocks, seeks=seeks)
        if charged_seeks:
            self.stats.add(SEEKS, charged_seeks)
        self.stats.charge(stage, us)
        return data

    def read_entries(self, lo: int, hi: int, stage: Stage,
                     *, seeks: int = 1) -> bytes:
        """Fetch entries [lo, hi) from the device, charging ``stage``.

        On v2 tables this resolves to whole data blocks — data cache,
        then device (verify + decode on miss) — and slices the request
        out of the covering span.  At most ``seeks`` seeks are charged
        per call: one pread covers a contiguous block run, exactly like
        the flat format's single segment fetch.  Blocks served by a
        cache tier are charged at memory-copy cost instead of seek +
        transfer.
        """
        if hi <= lo:
            return b""
        if self.footer.format_version == FORMAT_FLAT:
            return self._read_entries_flat(lo, hi, stage, seeks=seeks)
        per = self.footer.entries_per_block
        first = lo // per
        last = (hi - 1) // per
        if self._quarantined:
            # Fail fast before touching the device: a quarantined block
            # is known-poisoned and must never be re-read or re-served.
            for block_no in range(first, last + 1):
                if block_no in self._quarantined:
                    raise QuarantinedBlockError(self.name, block_no)
        payloads: List[Optional[bytes]] = [None] * (last - first + 1)
        cache = self.data_cache
        pending: List[int] = []
        for block_no in range(first, last + 1):
            if cache is not None:
                payload = cache.get(self.name, block_no)
                if payload is not None:
                    self.stats.add(DATA_CACHE_HITS)
                    self.stats.charge(stage, self.cost.cache_block_us * max(
                        1, self.cost.blocks_spanned(0, len(payload))))
                    payloads[block_no - first] = payload
                    continue
                self.stats.add(DATA_CACHE_MISSES)
            pending.append(block_no)
        # Misses coalesce into contiguous runs, one pread (and at most
        # ``seeks`` total seek charges) each.
        seek_budget = seeks
        run: List[int] = []
        for block_no in pending + [-1]:
            if run and block_no != run[-1] + 1:
                try:
                    fetched = self._fetch_run(run, stage, seeks=seek_budget)
                except ChecksumError as exc:
                    raise self._quarantine_block(exc) from exc
                for no, raw in zip(run, fetched):
                    payloads[no - first] = raw
                seek_budget = 0
                run = []
            if block_no >= 0:
                run.append(block_no)
        data = payloads[0] if len(payloads) == 1 else b"".join(payloads)
        entry_bytes = self.footer.entry_bytes
        start = (lo - first * per) * entry_bytes
        return data[start:start + (hi - lo) * entry_bytes]

    def _bound_for(self, key: int) -> SearchBound:
        if self.index is None:
            raise CorruptionError(
                f"table {self.name} has no per-table index; lookups must "
                "go through the level model")
        bound = self.index.lookup(key)
        self.stats.charge(Stage.PREDICTION,
                          self.index.expected_lookup_cost_us(self.cost))
        return bound

    def get(self, key: int) -> Optional[Record]:
        """Point lookup via predict -> pread -> binary search."""
        bound = self._bound_for(key)
        return self.get_in_bound(key, bound)

    def get_in_bound(self, key: int, bound: SearchBound) -> Optional[Record]:
        """Point lookup when a bound is already known (level model path)."""
        bound = bound.clamped(self.footer.entry_count)
        if bound.width <= 0:
            return None
        bound = self.block_bound(bound)
        data = self.read_entries(bound.lo, bound.hi, Stage.IO)
        self.stats.add(SEGMENTS_FETCHED)
        idx = self._binary_search(data, bound.width, key)
        self.stats.charge(Stage.SEARCH,
                          self.cost.segment_search_us(bound.width))
        if idx is None:
            return None
        return decode_entry(data, idx * self.footer.entry_bytes,
                            self.footer.value_capacity)

    def _binary_search(self, data: bytes, count: int,
                       key: int) -> Optional[int]:
        return self._binary_search_range(data, 0, count, key)

    def _binary_search_range(self, data: bytes, lo: int, hi: int,
                             key: int) -> Optional[int]:
        """Binary search entries [lo, hi) of a fetched buffer for ``key``."""
        entry_bytes = self.footer.entry_bytes
        while lo < hi:
            mid = (lo + hi) // 2
            probe = decode_key(data, mid * entry_bytes)
            if probe < key:
                lo = mid + 1
            elif probe > key:
                hi = mid
            else:
                return mid
        return None

    # -- batched reads ----------------------------------------------------

    def _coalesce_gap_entries(self) -> int:
        """Largest entry gap worth reading through instead of re-seeking.

        Two predicted segments separated by fewer than this many entries
        are cheaper to fetch as one sequential pread (paying the extra
        transfer blocks) than as two preads (paying a second seek):
        ``gap_blocks * block_read_us < seek_us``.
        """
        blocks = int(self.cost.seek_us // max(self.cost.block_read_us, 1e-9))
        return blocks * (self.device.block_size // self.footer.entry_bytes)

    def multi_get(self, keys: Sequence[int], coalesce: bool = True,
                  errors: Optional[Dict[int, QuarantinedBlockError]] = None,
                  ) -> Dict[int, Record]:
        """Batched point lookups through the per-table index.

        Predicts one bound per key (each key pays its own PREDICTION
        charge — model evaluations do not amortize), then fetches all
        bounds through :meth:`multi_get_in_bounds` so overlapping or
        adjacent segments share one pread.  Returns ``{key: record}``
        for the keys present (values *and* tombstones).
        """
        items = [(key, self._bound_for(key)) for key in keys]
        return self.multi_get_in_bounds(items, coalesce=coalesce,
                                        errors=errors)

    def multi_get_in_bounds(self, items: Sequence[Tuple[int, SearchBound]],
                            coalesce: bool = True,
                            errors: Optional[
                                Dict[int, QuarantinedBlockError]] = None,
                            ) -> Dict[int, Record]:
        """Batched lookups when bounds are already known (level-model path).

        ``items`` is a batch of ``(key, bound)`` pairs.  Bounds are
        clamped, widened to whole data blocks, sorted by position and
        coalesced into maximal runs: a bound that overlaps, adjoins, or
        sits within a cheaper-than-a-seek gap of the current run (see
        :meth:`_coalesce_gap_entries`) extends it instead of opening a
        new pread — on the block format runs therefore cover whole-block
        spans.  Each run costs **one seek plus its sequential blocks**;
        every key is then binary-searched inside its own bound within
        the shared buffer.  With ``coalesce=False`` every bound is its
        own run (the per-key cost shape, batched only in control flow) —
        the knob the ``multiget`` experiment sweeps.

        Failure isolation is per *key*, not per batch: when a run's
        fetch hits a quarantined block, its members are retried
        individually so only the keys whose own bound covers the poison
        fail — those land in the ``errors`` out-dict when one is given,
        and re-raise otherwise.
        """
        n = self.footer.entry_count
        clamped: List[Tuple[int, SearchBound]] = []
        for key, bound in items:
            bound = bound.clamped(n)
            if bound.width > 0:
                clamped.append((key, self.block_bound(bound)))
        if not clamped:
            return {}
        clamped.sort(key=lambda item: (item[1].lo, item[1].hi))
        gap = self._coalesce_gap_entries()
        runs: List[List] = []  # [run_lo, run_hi, [(key, bound), ...]]
        for key, bound in clamped:
            if coalesce and runs and bound.lo <= runs[-1][1] + gap:
                runs[-1][1] = max(runs[-1][1], bound.hi)
                runs[-1][2].append((key, bound))
            else:
                runs.append([bound.lo, bound.hi, [(key, bound)]])
        found: Dict[int, Record] = {}
        entry_bytes = self.footer.entry_bytes
        value_capacity = self.footer.value_capacity
        for run_lo, run_hi, members in runs:
            seeks_before = self.stats.get(SEEKS)
            try:
                data = self.read_entries(run_lo, run_hi, Stage.IO)
            except QuarantinedBlockError:
                self._multi_get_salvage(members, found, errors)
                continue
            self.stats.add(SEGMENTS_FETCHED)
            if len(members) > 1 and self.stats.get(SEEKS) > seeks_before:
                # Only a run that actually paid a seek saved the others;
                # a cache-served run would have cost no seeks per key
                # either, so claiming savings there would overstate it.
                self.stats.add(MULTIGET_COALESCED)
                self.stats.add(MULTIGET_SEEKS_SAVED, len(members) - 1)
            for key, bound in members:
                idx = self._binary_search_range(
                    data, bound.lo - run_lo, bound.hi - run_lo, key)
                self.stats.charge(Stage.SEARCH,
                                  self.cost.segment_search_us(bound.width))
                if idx is not None:
                    found[key] = decode_entry(data, idx * entry_bytes,
                                              value_capacity)
        return found

    def _multi_get_salvage(self, members: Sequence[Tuple[int, SearchBound]],
                           found: Dict[int, Record],
                           errors: Optional[
                               Dict[int, QuarantinedBlockError]]) -> None:
        """Per-key fallback after a coalesced run hit quarantine.

        Each member re-fetches only its own bound, so keys whose blocks
        are healthy still resolve; keys covering the poisoned block get
        a per-key error instead of sinking the whole batch.
        """
        entry_bytes = self.footer.entry_bytes
        value_capacity = self.footer.value_capacity
        for key, bound in members:
            try:
                data = self.read_entries(bound.lo, bound.hi, Stage.IO)
            except QuarantinedBlockError as exc:
                if errors is None:
                    raise
                errors[key] = exc
                continue
            self.stats.add(SEGMENTS_FETCHED)
            idx = self._binary_search_range(data, 0, bound.width, key)
            self.stats.charge(Stage.SEARCH,
                              self.cost.segment_search_us(bound.width))
            if idx is not None:
                found[key] = decode_entry(data, idx * entry_bytes,
                                          value_capacity)

    def iterator(self, refill_stage: Stage = Stage.SCAN) -> "TableIterator":
        """Sequential iterator (range lookups, compaction inputs)."""
        return TableIterator(self, refill_stage)


class TableIterator(KVIterator):
    """Iterator over one table, streaming one block per refill.

    The initial positioning of :meth:`seek` uses the learned index and
    charges the point-lookup stages; subsequent :meth:`advance` calls
    stream forward one data block (v2) or device block (v1) at a time
    charging ``refill_stage`` (SCAN for range queries, COMPACT_READ for
    compaction inputs), mirroring the paper's range-lookup
    implementation.
    """

    def __init__(self, table: Table, refill_stage: Stage) -> None:
        self.table = table
        self.refill_stage = refill_stage
        self._pos = table.entry_count  # invalid
        self._buf = b""
        self._buf_lo = 0
        self._buf_hi = 0

    # -- buffer management ----------------------------------------------

    def _entries_per_refill(self) -> int:
        per = self.table.footer.entries_per_block
        if per:
            return per
        entry_bytes = self.table.footer.entry_bytes
        return max(1, self.table.device.block_size // entry_bytes)

    def _fetch(self, lo: int, hi: int, stage: Stage, seeks: int) -> None:
        hi = min(hi, self.table.entry_count)
        self._buf = self.table.read_entries(lo, hi, stage, seeks=seeks)
        self._buf_lo = lo
        self._buf_hi = hi

    def _ensure_buffered(self, pos: int) -> None:
        if self._buf_lo <= pos < self._buf_hi:
            return
        per = self._entries_per_refill()
        # Align refills to blocks (data blocks on v2; device blocks on
        # v1 when entries pack evenly) so sequential scans read each
        # block exactly once regardless of where the initial seek landed.
        entry_bytes = self.table.footer.entry_bytes
        if (self.table.footer.entries_per_block
                or self.table.device.block_size % entry_bytes == 0):
            lo = pos - (pos % per)
        else:
            lo = pos
        self._fetch(lo, lo + per, self.refill_stage, seeks=0)

    # -- KVIterator ---------------------------------------------------------

    def seek_to_first(self) -> None:
        self._pos = 0
        if self.table.entry_count:
            self._fetch(0, self._entries_per_refill(), self.refill_stage,
                        seeks=1)

    def seek(self, key: int) -> None:
        table = self.table
        if table.index is None:
            # Level-model tables: the caller narrows with seek_to_bound.
            self.seek_to_first()
            self._skip_until(key)
            return
        bound = table.index.lookup(key)
        table.stats.charge(Stage.PREDICTION,
                           table.index.expected_lookup_cost_us(table.cost))
        self.seek_to_bound(key, bound)

    def seek_to_bound(self, key: int, bound: SearchBound) -> None:
        """Seek using an externally supplied position bound."""
        table = self.table
        bound = bound.clamped(table.entry_count)
        if bound.width <= 0:
            self._pos = min(bound.lo, table.entry_count)
            if self._pos < table.entry_count:
                self._ensure_buffered(self._pos)
                self._skip_until(key)
            return
        bound = table.block_bound(bound)
        self._fetch(bound.lo, bound.hi, Stage.IO, seeks=1)
        table.stats.add(SEGMENTS_FETCHED)
        table.stats.charge(Stage.SEARCH,
                           table.cost.segment_search_us(bound.width))
        self._pos = self._buf_lo + self._lower_bound_in_buf(key)
        self._skip_until(key)

    def _lower_bound_in_buf(self, key: int) -> int:
        entry_bytes = self.table.footer.entry_bytes
        lo, hi = 0, self._buf_hi - self._buf_lo
        while lo < hi:
            mid = (lo + hi) // 2
            if decode_key(self._buf, mid * entry_bytes) < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _skip_until(self, key: int) -> None:
        """Safety net: step forward while positioned before ``key``."""
        while self.valid() and self.key() < key:
            self.advance()

    def valid(self) -> bool:
        return 0 <= self._pos < self.table.entry_count

    def key(self) -> int:
        self._ensure_buffered(self._pos)
        offset = (self._pos - self._buf_lo) * self.table.footer.entry_bytes
        return decode_key(self._buf, offset)

    def record(self) -> Record:
        self._ensure_buffered(self._pos)
        offset = (self._pos - self._buf_lo) * self.table.footer.entry_bytes
        return decode_entry(self._buf, offset,
                            self.table.footer.value_capacity)

    def advance(self) -> None:
        self._pos += 1
