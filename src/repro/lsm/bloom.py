"""LevelDB-style bloom filter with double hashing.

Each SSTable carries one filter over its user keys (the paper's
testbed uses 10 bits per key).  The filter uses the standard
Kirsch-Mitzenmacher construction: two independent 32-bit hashes are
derived from one 64-bit mix of the key, and probe ``k = bits_per_key *
ln 2`` slots.  No false negatives, ever — a property the test suite
checks with hypothesis.
"""

from __future__ import annotations

import math
import struct
from typing import Iterable, Sequence

from repro.errors import CorruptionError

_MASK64 = (1 << 64) - 1


def _splitmix64(value: int) -> int:
    """SplitMix64 finaliser: a fast, well-distributed 64-bit mix."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


class BloomFilter:
    """A fixed-size bloom filter over integer keys."""

    def __init__(self, nbits: int, nprobes: int) -> None:
        if nbits < 8:
            nbits = 8
        if nprobes < 1:
            nprobes = 1
        self.nbits = nbits
        self.nprobes = min(nprobes, 30)
        self._bits = bytearray((nbits + 7) // 8)

    @classmethod
    def build(cls, keys: Sequence[int] | Iterable[int],
              bits_per_key: int) -> "BloomFilter":
        """Size and populate a filter for ``keys``.

        ``bits_per_key == 0`` produces a degenerate always-maybe filter
        (bloom disabled), matching LevelDB's behaviour when the filter
        policy is absent.
        """
        key_list = list(keys)
        if bits_per_key <= 0:
            empty = cls(8, 1)
            empty._bits = bytearray(b"\xff")  # always "maybe"
            return empty
        nbits = max(64, bits_per_key * len(key_list))
        nprobes = max(1, int(round(bits_per_key * math.log(2))))
        bloom = cls(nbits, nprobes)
        for key in key_list:
            bloom.add(key)
        return bloom

    def add(self, key: int) -> None:
        """Insert ``key``."""
        mixed = _splitmix64(key)
        h1 = mixed & 0xFFFFFFFF
        h2 = (mixed >> 32) | 1  # odd increment avoids short cycles
        bits = self._bits
        nbits = self.nbits
        for _ in range(self.nprobes):
            slot = h1 % nbits
            bits[slot >> 3] |= 1 << (slot & 7)
            h1 = (h1 + h2) & 0xFFFFFFFF

    def may_contain(self, key: int) -> bool:
        """False means definitely absent; True means possibly present."""
        mixed = _splitmix64(key)
        h1 = mixed & 0xFFFFFFFF
        h2 = (mixed >> 32) | 1
        bits = self._bits
        nbits = self.nbits
        for _ in range(self.nprobes):
            slot = h1 % nbits
            if not bits[slot >> 3] & (1 << (slot & 7)):
                return False
            h1 = (h1 + h2) & 0xFFFFFFFF
        return True

    def size_bytes(self) -> int:
        """In-memory footprint of the bit array."""
        return len(self._bits)

    # -- serialisation ----------------------------------------------------

    def serialize(self) -> bytes:
        """``nbits, nprobes, bits`` with a fixed 9-byte header."""
        return struct.pack("<IB", self.nbits, self.nprobes) + bytes(self._bits)

    @classmethod
    def deserialize(cls, data: bytes) -> "BloomFilter":
        """Inverse of :meth:`serialize`."""
        if len(data) < 5:
            raise CorruptionError("bloom filter payload too short")
        nbits, nprobes = struct.unpack_from("<IB", data, 0)
        bloom = cls(nbits, nprobes)
        expected = (nbits + 7) // 8
        body = data[5:]
        if len(body) != expected:
            raise CorruptionError(
                f"bloom filter bit array length {len(body)} != {expected}")
        bloom._bits = bytearray(body)
        return bloom

    def false_positive_rate(self, nkeys: int) -> float:
        """Theoretical FPR after inserting ``nkeys`` keys."""
        if nkeys == 0:
            return 0.0
        fill = 1.0 - math.exp(-self.nprobes * nkeys / self.nbits)
        return fill ** self.nprobes
