"""Write-ahead log: CRC-framed record groups on the block device.

Disabled by default (the paper's benchmarks measure the read path and
compaction, not fsync behaviour) but fully functional: every put or
delete appends one frame, and a :class:`~repro.lsm.write_batch.WriteBatch`
appends one frame holding *all* of its records — the group commit the
serving layer relies on to amortize logging.  On reopen,
:meth:`WriteAheadLog.replay` yields the surviving records so the
memtable can be reconstructed.  Torn or corrupt tails are detected via
CRC32 and truncated silently, mirroring LevelDB's recovery semantics;
because the CRC covers the whole frame, a torn group commit drops the
entire batch, never a prefix of it.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Sequence

from repro.errors import CorruptionError
from repro.lsm.record import Record
from repro.storage.framing import frame, parse_frames
from repro.storage.stats import WAL_GROUP_COMMITS, WAL_RECORDS_APPENDED
from repro.storage.block_device import BlockDevice

_PAYLOAD_HEADER = struct.Struct("<QQI")  # key, seq<<8|kind, value length


def _encode_record(record: Record) -> bytes:
    meta = (record.seq << 8) | record.kind
    return _PAYLOAD_HEADER.pack(record.key, meta, len(record.value)) + record.value


def _decode_records(payload: bytes) -> List[Record]:
    """Decode the record sequence of one frame (1 for puts, K for batches)."""
    records: List[Record] = []
    offset = 0
    while offset < len(payload):
        if offset + _PAYLOAD_HEADER.size > len(payload):
            raise CorruptionError("WAL payload shorter than its header")
        key, meta, value_len = _PAYLOAD_HEADER.unpack_from(payload, offset)
        offset += _PAYLOAD_HEADER.size
        value = payload[offset:offset + value_len]
        if len(value) != value_len:
            raise CorruptionError("WAL payload value truncated")
        offset += value_len
        records.append(Record(key=key, seq=meta >> 8, kind=meta & 0xFF,
                              value=bytes(value)))
    return records


class WriteAheadLog:
    """An append-only log of record groups with per-frame CRCs."""

    def __init__(self, device: BlockDevice, name: str = "wal") -> None:
        self.device = device
        self.name = name
        if not device.exists(name):
            device.create(name)

    def append(self, record: Record) -> None:
        """Durably append one record (a group commit of one)."""
        self.append_batch((record,))

    def append_batch(self, records: Sequence[Record]) -> None:
        """Durably append ``records`` as one group commit.

        All records share a single CRC-framed device append, so a batch
        of K costs one write call instead of K and is recovered
        all-or-nothing.  Empty batches are a no-op.
        """
        if not records:
            return
        payload = b"".join(_encode_record(record) for record in records)
        self.device.append(self.name, frame(payload))
        self.device.stats.add(WAL_GROUP_COMMITS)
        self.device.stats.add(WAL_RECORDS_APPENDED, len(records))

    def replay(self) -> Iterator[Record]:
        """Yield every intact record; stop silently at a corrupt tail.

        Reads bypass any block-cache tier: log blocks are replayed
        once and never read again, so admitting them would only evict
        hot table blocks during recovery.
        """
        data = self.device.pread_uncached(self.name, 0,
                                          self.device.size(self.name))
        payloads, _ = parse_frames(data)  # torn tail dropped silently
        for payload in payloads:
            yield from _decode_records(payload)

    def replay_all(self) -> List[Record]:
        """Eager version of :meth:`replay`."""
        return list(self.replay())

    def reset(self) -> None:
        """Truncate the log (called after a successful flush)."""
        self.device.delete(self.name)
        self.device.create(self.name)

    def size_bytes(self) -> int:
        """Current log length."""
        return self.device.size(self.name)
