"""Write-ahead log: CRC-framed records on the block device.

Disabled by default (the paper's benchmarks measure the read path and
compaction, not fsync behaviour) but fully functional: every put or
delete appends one frame; on reopen, :meth:`WriteAheadLog.replay`
yields the surviving records so the memtable can be reconstructed.
Torn or corrupt tails are detected via CRC32 and truncated silently,
mirroring LevelDB's recovery semantics.
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterator, List

from repro.errors import CorruptionError
from repro.lsm.record import Record
from repro.storage.block_device import BlockDevice

_FRAME_HEADER = struct.Struct("<II")  # crc32, payload length
_PAYLOAD_HEADER = struct.Struct("<QQI")  # key, seq<<8|kind, value length


def _encode_payload(record: Record) -> bytes:
    meta = (record.seq << 8) | record.kind
    return _PAYLOAD_HEADER.pack(record.key, meta, len(record.value)) + record.value


def _decode_payload(payload: bytes) -> Record:
    if len(payload) < _PAYLOAD_HEADER.size:
        raise CorruptionError("WAL payload shorter than its header")
    key, meta, value_len = _PAYLOAD_HEADER.unpack_from(payload, 0)
    value = payload[_PAYLOAD_HEADER.size:_PAYLOAD_HEADER.size + value_len]
    if len(value) != value_len:
        raise CorruptionError("WAL payload value truncated")
    return Record(key=key, seq=meta >> 8, kind=meta & 0xFF, value=bytes(value))


class WriteAheadLog:
    """An append-only log of records with per-frame CRCs."""

    def __init__(self, device: BlockDevice, name: str = "wal") -> None:
        self.device = device
        self.name = name
        if not device.exists(name):
            device.create(name)

    def append(self, record: Record) -> None:
        """Durably append one record."""
        payload = _encode_payload(record)
        crc = zlib.crc32(payload)
        self.device.append(self.name, _FRAME_HEADER.pack(crc, len(payload))
                           + payload)

    def replay(self) -> Iterator[Record]:
        """Yield every intact record; stop silently at a corrupt tail."""
        data = self.device.pread(self.name, 0, self.device.size(self.name))
        offset = 0
        while offset + _FRAME_HEADER.size <= len(data):
            crc, length = _FRAME_HEADER.unpack_from(data, offset)
            start = offset + _FRAME_HEADER.size
            end = start + length
            if end > len(data):
                return  # torn tail
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                return  # corrupt tail
            yield _decode_payload(payload)
            offset = end

    def replay_all(self) -> List[Record]:
        """Eager version of :meth:`replay`."""
        return list(self.replay())

    def reset(self) -> None:
        """Truncate the log (called after a successful flush)."""
        self.device.delete(self.name)
        self.device.create(self.name)

    def size_bytes(self) -> int:
        """Current log length."""
        return self.device.size(self.name)
