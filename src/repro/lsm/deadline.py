"""Deadline propagation for the simulated-time read path.

Under overload an operation that has already outlived its deadline is
pure waste: the client stopped waiting, yet the shard keeps burning
simulated service time on it, inflating queueing delay for every
request behind it.  The fix is cooperative cancellation — the engine
checks an attached :class:`DeadlineToken` at cheap, coarse checkpoints
(per level of the read path) and abandons the walk once the budget is
gone.

Time here is *simulated* microseconds: a token captures the tree's
``stats.total_time()`` at creation, and ``elapsed`` is the simulated
work charged since.  That keeps deadline semantics exactly as
deterministic as the rest of the cost model — no wall clock anywhere.

The gateway attaches a token to ``LSMTree.deadline`` for the duration
of one operation (try/finally); a tree with ``deadline is None`` — the
default, and every non-gateway caller — pays one attribute check and
no behaviour change.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import DeadlineExceededError
from repro.storage.stats import OVERLOAD_DEADLINE_EXCEEDED, Stats


class DeadlineToken:
    """A simulated-µs budget for one operation against one tree.

    ``stats`` must be the tree's own :class:`Stats` — the token meters
    the simulated time *that tree* charges, which is the single-server
    service time the queueing model reasons about.
    """

    def __init__(self, stats: Stats, budget_us: float,
                 deadline_us: Optional[float] = None) -> None:
        self.stats = stats
        self.start_us = stats.total_time()
        self.budget_us = budget_us
        #: Absolute simulated deadline on the *gateway* clock, carried
        #: for error messages; the expiry test uses the local budget.
        self.deadline_us = (deadline_us if deadline_us is not None
                            else self.start_us + budget_us)

    def elapsed_us(self) -> float:
        """Simulated work charged to the tree since the token was made."""
        return self.stats.total_time() - self.start_us

    def remaining_us(self) -> float:
        """Budget left; negative once the operation is overdue."""
        return self.budget_us - self.elapsed_us()

    def expired(self) -> bool:
        return self.elapsed_us() > self.budget_us

    def check(self, where: str = "") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent.

        Counts ``overload.deadline_exceeded`` on the tree's stats so
        mid-operation abandonment is visible next to the gateway's
        queue-level drops.
        """
        if self.expired():
            self.stats.add(OVERLOAD_DEADLINE_EXCEEDED)
            raise DeadlineExceededError(
                self.deadline_us,
                self.deadline_us + (self.elapsed_us() - self.budget_us),
                where=where)
