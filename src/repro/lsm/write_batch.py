"""Write batches: multi-key updates applied through one group commit.

A :class:`WriteBatch` buffers puts and deletes in application order and
is applied atomically by :meth:`repro.lsm.db.LSMTree.write` (or fanned
out shard-by-shard by :meth:`repro.service.sharded.ShardedDB.write`).
Batching matters for the serving layer the same way it does in LevelDB
and RocksDB: the write-ahead log absorbs one CRC-framed *group commit*
per batch instead of one frame per key, so durable multi-key updates
amortize both the per-commit WAL overhead and the log's block traffic.

Atomicity is frame-granular: a batch is encoded into a single WAL frame,
so crash recovery replays either every record of the batch or none of
them (a torn frame is discarded whole — see
:meth:`repro.lsm.wal.WriteAheadLog.replay`).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.lsm.record import KIND_TOMBSTONE, KIND_VALUE

#: One staged operation: (kind, key, value).  ``kind`` uses the record
#: kinds (KIND_VALUE / KIND_TOMBSTONE); deletes carry an empty value.
BatchOp = Tuple[int, int, bytes]


class WriteBatch:
    """An ordered collection of puts/deletes applied as one commit.

    Operations are replayed in insertion order, so a later ``put`` (or
    ``delete``) of the same key inside one batch supersedes an earlier
    one, exactly as if the calls had been issued individually.
    """

    def __init__(self) -> None:
        self._ops: List[BatchOp] = []

    # -- staging -------------------------------------------------------

    def put(self, key: int, value: bytes) -> "WriteBatch":
        """Stage an insert/overwrite of ``key``; returns self (chaining)."""
        self._ops.append((KIND_VALUE, key, value))
        return self

    def delete(self, key: int) -> "WriteBatch":
        """Stage a tombstone for ``key``; returns self (chaining)."""
        self._ops.append((KIND_TOMBSTONE, key, b""))
        return self

    def clear(self) -> None:
        """Drop every staged operation (the batch is reusable)."""
        self._ops.clear()

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        return len(self._ops)

    def __bool__(self) -> bool:
        return bool(self._ops)

    def __iter__(self) -> Iterator[BatchOp]:
        """Yield ``(kind, key, value)`` in application order."""
        return iter(self._ops)

    def keys(self) -> List[int]:
        """The staged keys, in application order (with duplicates)."""
        return [key for _, key, _ in self._ops]

    def payload_bytes(self) -> int:
        """Total staged value bytes (a rough batch-size gauge)."""
        return sum(len(value) for _, _, value in self._ops)
