"""The LSM-tree database: LevelDB semantics over the simulated device.

:class:`LSMTree` wires every substrate together: a skip-list memtable
(+ optional WAL), L0 flushes, leveling compaction with partial merges,
bloom filters, and — the point of the paper — pluggable per-table or
per-level learned indexes configured by :class:`~repro.lsm.options.Options`.

The read path follows the paper's Figure 1 (C):

1. memtable probe;
2. level by level: locate the candidate table (TABLE_LOOKUP), probe its
   bloom filter, ask the learned index for a position bound
   (PREDICTION), ``pread`` that segment (IO), binary-search it (SEARCH).

Per-level read time and memory are tracked so Figure 10's level
breakdown is a direct read-out.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import (
    DatabaseClosedError,
    DeadlineExceededError,
    DiskFullError,
    InvalidOptionError,
    PowerCutError,
    QuarantinedBlockError,
    ReadOnlyModeError,
    ReproError,
    StorageError,
)
from repro.lsm.deadline import DeadlineToken
from repro.lsm.compaction import CompactionOutcome, Compactor
from repro.lsm.iterators import (
    DBIterator,
    KVIterator,
    MemTableIterator,
    MergingIterator,
)
from repro.lsm.level_index import LevelModelManager
from repro.lsm.memtable import MemTable
from repro.lsm.options import CompactionPolicy, Granularity, Options
from repro.lsm.record import (
    KIND_VALUE,
    Record,
    make_tombstone,
    make_value,
)
from repro.lsm.sstable import Table, TableBuilder, TableIterator
from repro.lsm.version import FileMetaData, Version
from repro.lsm.wal import WriteAheadLog
from repro.lsm.write_batch import WriteBatch
from repro.errors import CorruptionError
from repro.indexes.registry import deserialize_index
from repro.persist.manifest import (
    MANIFEST_NAME,
    MANIFEST_TMP_NAME,
    Manifest,
    VersionEdit,
)
from repro.obs.trace import OpType
from repro.persist.models import MODEL_FILE_PREFIX, ModelStore
from repro.storage.block_cache import CachedBlockDevice, DataBlockCache
from repro.storage.block_device import BlockDevice, MemoryBlockDevice
from repro.storage.stats import (
    BATCH_WRITES,
    BLOOM_FALSE_POSITIVES,
    BLOOM_NEGATIVES,
    BLOOM_PROBES,
    DEGRADED_ENTRIES,
    DEGRADED_WRITES_REJECTED,
    FLUSHES,
    MULTIGET_BATCHES,
    MULTIGET_KEYS,
    OVERLOAD_DEADLINE_EXCEEDED,
    POINT_LOOKUPS,
    RANGE_LOOKUPS,
    RECOVERY_FILES_GCED,
    RECOVERY_MANIFEST_OPENS,
    RECOVERY_SCANS,
    RECOVERY_TORN_TABLES,
    UPDATES,
    Stage,
    Stats,
)


class LSMTree:
    """A single-threaded, deterministic LevelDB-style key-value store."""

    def __init__(self, options: Optional[Options] = None,
                 device: Optional[BlockDevice] = None,
                 tracer=None, stats: Optional[Stats] = None) -> None:
        self.options = options if options is not None else Options()
        self.options.validate()
        # ``stats`` injection lets a replica group share one registry
        # across R trees, so deadline metering and gateway service-time
        # deltas see a single simulated timeline for the whole group.
        self.stats = stats if stats is not None else Stats()
        if tracer is not None:
            # Attached before any substrate touches the registry, so
            # construction-time work (WAL replay in particular) is
            # already visible to an enclosing recovery span.
            self.stats.attach_tracer(tracer)
        if device is None:
            device = MemoryBlockDevice(block_size=self.options.block_size,
                                       stats=self.stats)
        # ``cache_bytes`` is authoritative: an already-wrapped device
        # (reopen paths hand back the old one) is unwrapped when the
        # capacity changed, so stale cache configurations never survive
        # a reopen; an unchanged capacity keeps the warm cache.
        if (isinstance(device, CachedBlockDevice)
                and device.cache.capacity_bytes != self.options.cache_bytes):
            device = device.inner
        if (self.options.cache_bytes > 0
                and not isinstance(device, CachedBlockDevice)):
            device = CachedBlockDevice(device, self.options.cache_bytes)
        device.stats = self.stats
        self.device = device
        # Second cache tier: decompressed data blocks (block format v2).
        self.data_cache: Optional[DataBlockCache] = (
            DataBlockCache(self.options.data_cache_bytes)
            if self.options.data_cache_bytes > 0 else None)
        self.cost = self.options.cost_model
        self.index_factory = self.options.make_index_factory()
        self.manifest: Optional[Manifest] = None
        self.model_store: Optional[ModelStore] = None
        if self.options.enable_manifest:
            self.manifest = Manifest(self.device, stats=self.stats,
                                     cost=self.cost)
            if self.options.granularity is Granularity.LEVEL:
                self.model_store = ModelStore(self.device, stats=self.stats,
                                              cost=self.cost)
        self.level_models: Optional[LevelModelManager] = None
        if self.options.granularity is Granularity.LEVEL:
            self.level_models = LevelModelManager(
                self.index_factory, self.stats, self.cost,
                model_store=self.model_store)
        self.version = Version(
            max_levels=self.options.max_levels,
            overlapping_levels=(self.options.compaction_policy
                                is CompactionPolicy.TIERING))
        self.memtable = MemTable(self.options.entry_bytes)
        # Counters must exist before WAL replay: _replay_wal advances
        # _seq past the highest surviving record, and that value must
        # not be clobbered afterwards or a post-recovery write could be
        # shadowed by an older WAL record with a higher sequence.
        self._seq = 0
        self._file_counter = 0
        self._closed = False
        #: Degraded mode: None = healthy, else the reason writes are
        #: rejected.  Reads keep working; see :meth:`health`.
        self._read_only_reason: Optional[str] = None
        #: Cooperative cancellation: the gateway attaches a
        #: :class:`~repro.lsm.deadline.DeadlineToken` here around one
        #: operation; the read path checks it per level and abandons
        #: work past the budget.  None (the default) costs nothing.
        self.deadline: Optional[DeadlineToken] = None
        #: Names of tables scrub retired as unsalvageable (renamed to a
        #: ``quar-`` prefix on the device for offline forensics).
        self._quarantined_tables: List[str] = []
        self.wal: Optional[WriteAheadLog] = None
        if self.options.enable_wal:
            self.wal = WriteAheadLog(self.device)
            self._replay_wal()
        self._level_read_us: Dict[int, float] = {}
        self._level_read_ops: Dict[int, int] = {}
        self.compactor = Compactor(
            device=self.device, options=self.options, stats=self.stats,
            cost=self.cost, index_factory=self.index_factory,
            next_file_name=self._next_file_name,
            next_file_number=self._next_file_number,
            level_models=self.level_models,
            manifest=self.manifest,
            data_cache=self.data_cache)

    # -- recovery ----------------------------------------------------------

    @classmethod
    def reopen(cls, options: Options, device: BlockDevice, *,
               use_manifest: Optional[bool] = None,
               tracer=None, stats: Optional[Stats] = None) -> "LSMTree":
        """Rebuild a database from the files on ``device``.

        Two recovery paths:

        * **Manifest-driven** (the default when a manifest is present
          and ``options.enable_manifest``): replay the version-edit log
          — O(manifest), no directory scan — open exactly the files it
          names, restore the sequence/file counters it recorded, and
          deserialize persisted level models from their ``mdl-*``
          sidecars instead of retraining them.  Files a crash left
          unreferenced (compaction outputs whose commit never landed,
          superseded model sidecars) are garbage-collected.
        * **Directory scan** (the seed behaviour; forced with
          ``use_manifest=False`` or when no manifest exists): tables
          are self-describing (their footers record level and max
          sequence number), so every ``sst-*`` file is opened and
          placed back at its level; level models are retrained from
          reloaded keys.  When a manifest is enabled the scan result is
          then snapshotted, migrating the database to manifest-driven
          recovery.

        Either way, when a WAL is enabled its surviving records land
        back in the memtable on construction, completing crash
        recovery.
        """
        span = tracer.begin(OpType.RECOVERY) if tracer is not None else None
        try:
            manifest_present = device.exists(MANIFEST_NAME)
            db = cls(options, device=device, tracer=tracer, stats=stats)
            if (db.manifest is not None and manifest_present
                    and use_manifest is not False):
                db._recover_from_manifest(db.manifest.replay())
                db.stats.add(RECOVERY_MANIFEST_OPENS)
            else:
                db._recover_by_scan()
                db.stats.add(RECOVERY_SCANS)
                if db.manifest is not None:
                    db.manifest.rewrite(db._snapshot_edit("migrate"))
                elif manifest_present:
                    # Persistence opt-out on a device that carries a
                    # manifest: this session will not log edits, so the
                    # log would go stale — and a *later* manifest-enabled
                    # reopen would replay it and garbage-collect every
                    # file written in between.  A missing manifest (clean
                    # scan + migrate next time) is strictly safer than a
                    # stale one; the orphaned sidecars go with it.
                    device.delete(MANIFEST_NAME)
                    for name in list(device.list_files()):
                        if (name.startswith(MODEL_FILE_PREFIX)
                                or name == MANIFEST_TMP_NAME):
                            device.delete(name)
            return db
        finally:
            if tracer is not None:
                tracer.end(span)

    def _recover_from_manifest(self, state) -> None:
        """Materialise the replayed :class:`ManifestState`."""
        # Oldest first so overlapping levels end up newest-first.
        for number in sorted(state.files):
            level, name, format_version = state.files[number]
            if not self.device.exists(name):
                raise CorruptionError(
                    f"manifest references missing file {name} (#{number})")
            table = Table.open(self.device, name, self.options, self.stats,
                               self.cost, data_cache=self.data_cache,
                               expected_format=format_version)
            self.version.add_file(level, FileMetaData(number=number,
                                                      table=table))
        self._seq = max(self._seq, state.last_seq)  # WAL may be ahead
        self._file_counter = max(self._file_counter, state.next_file_number)
        recovered_pointers: Dict[int, str] = {}
        if self.level_models is not None:
            for level in range(1, self.options.max_levels):
                files = self.version.levels[level]
                if not files:
                    continue
                sidecar = state.model_pointers.get(level)
                payload = (self.model_store.load(sidecar)
                           if self.model_store is not None else None)
                if payload is not None:
                    self.level_models.install(
                        level, files, deserialize_index(payload), sidecar)
                else:
                    # Missing/corrupt sidecar: retrain this one level
                    # and re-point the manifest at the fresh model.
                    pointer = self.level_models.rebuild(level, files)
                    if pointer:
                        recovered_pointers[level] = pointer
        if state.torn:
            # Truncate the unreplayable tail *before* anything else is
            # appended: a frame written after torn bytes would be
            # invisible to every future replay, silently losing the
            # commits of this whole session.  The snapshot also folds
            # in any re-pointed models from the fallback retrains.
            self.manifest.rewrite(self._snapshot_edit("repair"))
        elif recovered_pointers:
            edit = VersionEdit(kind="recover")
            for level, pointer in recovered_pointers.items():
                edit.point_model(level, pointer)
            self.manifest.append(edit)
        if self.level_models is not None:
            self.level_models.drop_stale()
        self._collect_garbage(state)

    def _collect_garbage(self, state) -> None:
        """Delete data/model files the manifest does not reference.

        Only runs on the manifest path: a crash between writing new
        files and committing the edit that references them (or between
        a commit and the deletion of the files it obsoleted) leaves
        orphans that must not survive into the recovered database.
        """
        live = state.live_names()
        if self.level_models is not None:
            live.update(name for name in (
                self.level_models.persisted_pointer(level)
                for level in range(self.options.max_levels)) if name)
        for name in self.device.list_files():
            if not (name.startswith("sst-")
                    or name.startswith(MODEL_FILE_PREFIX)
                    or name == MANIFEST_TMP_NAME):
                continue
            if name == MANIFEST_TMP_NAME or name not in live:
                self.device.delete(name)
                self.stats.add(RECOVERY_FILES_GCED)

    def _recover_by_scan(self) -> None:
        """The seed recovery path: open every ``sst-*`` on the device.

        A table that cannot even be opened — torn by a crash mid-flush,
        or with a rotted footer — is quarantined under the ``quar-``
        prefix instead of aborting recovery: the WAL (when enabled)
        already holds every acknowledged record such a file could have
        contained, and a torn file serves nothing either way.
        """
        from repro.lsm.scrub import QUARANTINE_PREFIX

        options = self.options
        names = sorted(name for name in self.device.list_files()
                       if name.startswith("sst-"))
        metas: List[FileMetaData] = []
        max_seq = self._seq  # WAL replay may already have advanced it
        max_number = 0
        for name in names:
            try:
                table = Table.open(self.device, name, options, self.stats,
                                   self.cost, data_cache=self.data_cache)
            except (CorruptionError, StorageError):
                quarantine_name = QUARANTINE_PREFIX + name
                if self.device.exists(quarantine_name):
                    self.device.delete(quarantine_name)
                self.device.rename(name, quarantine_name)
                self._quarantined_tables.append(quarantine_name)
                self.stats.add(RECOVERY_TORN_TABLES)
                continue
            number = int(name.split("-")[1])
            metas.append(FileMetaData(number=number, table=table))
            max_seq = max(max_seq, table.footer.max_seq)
            max_number = max(max_number, number)
        # Oldest first so overlapping levels end up newest-first.
        for meta in sorted(metas, key=lambda m: m.number):
            self.version.add_file(meta.table.footer.level, meta)
        self._seq = max_seq
        self._file_counter = max_number
        if self.level_models is not None:
            for level in range(1, options.max_levels):
                self.level_models.rebuild(level, self.version.levels[level])

    def _snapshot_edit(self, kind: str = "checkpoint") -> VersionEdit:
        """One edit describing the complete current version."""
        edit = VersionEdit(kind=kind, next_file_number=self._file_counter,
                           last_seq=self._seq)
        for level, meta in self.version.all_files():
            # Record the table's *actual* on-disk format — the scan
            # fallback may have opened legacy flat-format files, and a
            # snapshot that assumed the current format would make every
            # future manifest-driven open misread them.
            edit.add_file(level, meta.number, meta.name,
                          meta.table.format_version)
        if self.level_models is not None:
            for level in range(1, self.options.max_levels):
                pointer = self.level_models.persisted_pointer(level)
                if pointer:
                    edit.point_model(level, pointer)
        return edit

    def checkpoint(self) -> Dict[str, float]:
        """Flush, then compact the manifest to a single snapshot edit.

        After a checkpoint the entire recovery input is one memtable's
        worth of WAL (empty), one snapshot record, the table footers
        and the model sidecars — cold open does zero training and zero
        data-block reads.  Returns a summary of what was persisted.
        """
        self._check_open()
        self.flush()
        summary: Dict[str, float] = {
            "files": float(self.version.file_count()),
            "manifest_bytes": 0.0,
            "models_persisted": 0.0,
        }
        if self.manifest is None:
            return summary
        self.manifest.rewrite(self._snapshot_edit())
        self.stats.charge(Stage.WRITE_PATH, self.cost.wal_commit_us)
        summary["manifest_bytes"] = float(self.manifest.size_bytes())
        if self.level_models is not None:
            summary["models_persisted"] = float(sum(
                1 for level in range(1, self.options.max_levels)
                if self.level_models.persisted_pointer(level)))
        return summary

    # -- plumbing ----------------------------------------------------------

    def _next_file_number(self) -> int:
        self._file_counter += 1
        return self._file_counter

    def _next_file_name(self) -> str:
        return f"sst-{self._file_counter + 1:06d}"

    def _check_open(self) -> None:
        if self._closed:
            raise DatabaseClosedError("operation on closed LSMTree")

    # -- degraded mode -----------------------------------------------------

    @property
    def read_only(self) -> bool:
        """True when the database is in read-only degraded mode."""
        return self._read_only_reason is not None

    @property
    def read_only_reason(self) -> Optional[str]:
        """What pushed the database into degraded mode (None = healthy)."""
        return self._read_only_reason

    def _enter_read_only(self, reason: str) -> None:
        """Degrade to read-only: reads keep serving, writes raise.

        Entered on a :class:`DiskFullError` or a WAL-append failure —
        conditions where accepting more writes would either fail anyway
        or break the durability contract.  The mode is sticky for the
        life of this object (an operator fixes the device and reopens);
        only the first entry counts and records the reason.
        """
        if self._read_only_reason is None:
            self._read_only_reason = reason
            self.stats.add(DEGRADED_ENTRIES)

    def _check_writable(self) -> None:
        if self._read_only_reason is not None:
            self.stats.add(DEGRADED_WRITES_REJECTED)
            raise ReadOnlyModeError(self._read_only_reason)

    def health(self) -> Dict[str, object]:
        """A health summary: mode, reason and quarantine totals."""
        quarantined_blocks = sum(
            len(meta.table.quarantined_blocks)
            for _, meta in self.version.all_files())
        status = "read_only" if self.read_only else (
            "degraded" if quarantined_blocks or self._quarantined_tables
            else "ok")
        return {
            "status": status,
            "reason": self._read_only_reason,
            "quarantined_blocks": quarantined_blocks,
            "quarantined_tables": len(self._quarantined_tables),
        }

    def scrub(self) -> "ScrubReport":
        """Verify every table, rewrite the damaged, retire the hopeless.

        See :func:`repro.lsm.scrub.scrub_tree`; allowed (and most
        useful) in degraded mode — repairing media damage is exactly
        how an operator works back toward a clean bill of health.
        """
        self._check_open()
        from repro.lsm.scrub import scrub_tree
        return scrub_tree(self)

    def _replay_wal(self) -> None:
        assert self.wal is not None
        max_seq = self._seq
        for record in self.wal.replay():
            self.memtable.add(record)
            max_seq = max(max_seq, record.seq)
        self._seq = max_seq

    # -- write path ----------------------------------------------------------

    def put(self, key: int, value: bytes) -> None:
        """Insert or overwrite ``key``."""
        self._check_open()
        self._check_writable()
        if len(value) > self.options.value_capacity:
            raise InvalidOptionError(
                f"value of {len(value)} bytes exceeds value_capacity "
                f"{self.options.value_capacity}")
        tracer = self.stats.tracer
        span = (tracer.begin(OpType.PUT, f"key={key}")
                if tracer is not None else None)
        try:
            self._seq += 1
            record = make_value(key, self._seq, value)
            self._apply(record)
        finally:
            if tracer is not None:
                tracer.end(span)

    def delete(self, key: int) -> None:
        """Delete ``key`` (writes a tombstone)."""
        self._check_open()
        self._check_writable()
        tracer = self.stats.tracer
        span = (tracer.begin(OpType.DELETE, f"key={key}")
                if tracer is not None else None)
        try:
            self._seq += 1
            self._apply(make_tombstone(key, self._seq))
        finally:
            if tracer is not None:
                tracer.end(span)

    def _apply(self, record: Record) -> None:
        if self.wal is not None:
            try:
                self.wal.append(record)
            except StorageError as exc:
                # The record never became durable, so it must not be
                # applied; a WAL that can no longer accept appends means
                # no future write can be made durable either.
                self._enter_read_only(f"WAL append failed: {exc}")
                self.stats.add(DEGRADED_WRITES_REJECTED)
                raise ReadOnlyModeError(self._read_only_reason) from exc
            self.stats.charge(Stage.WRITE_PATH, self.cost.wal_commit_us)
        self.memtable.add(record)
        self.stats.add(UPDATES)
        self.stats.charge(Stage.WRITE_PATH, self.cost.write_entry_us)
        if self.memtable.approximate_bytes() >= self.options.write_buffer_bytes:
            self.flush()

    def write(self, batch: WriteBatch) -> int:
        """Apply ``batch`` atomically; returns the records applied.

        All records of the batch share consecutive sequence numbers and
        a single WAL *group commit* (one CRC frame, one device append),
        so a batch of K durable puts pays the per-commit overhead once
        instead of K times.  Validation happens before any mutation:
        an oversized value rejects the whole batch, leaving the
        database untouched.  Within a batch, later operations on a key
        supersede earlier ones, exactly as for individual calls.
        """
        self._check_open()
        self._check_writable()
        ops = list(batch)
        if not ops:
            return 0
        for kind, _, value in ops:
            if kind == KIND_VALUE and len(value) > self.options.value_capacity:
                raise InvalidOptionError(
                    f"value of {len(value)} bytes exceeds value_capacity "
                    f"{self.options.value_capacity}")
        tracer = self.stats.tracer
        span = (tracer.begin(OpType.WRITE_BATCH, f"{len(ops)} ops")
                if tracer is not None else None)
        try:
            return self._write_records(ops)
        finally:
            if tracer is not None:
                tracer.end(span)

    def _write_records(self, ops) -> int:
        records = []
        for kind, key, value in ops:
            self._seq += 1
            records.append(Record(key=key, seq=self._seq, kind=kind,
                                  value=bytes(value)))
        if self.wal is not None:
            try:
                self.wal.append_batch(records)
            except StorageError as exc:
                self._enter_read_only(f"WAL append failed: {exc}")
                self.stats.add(DEGRADED_WRITES_REJECTED)
                raise ReadOnlyModeError(self._read_only_reason) from exc
            self.stats.charge(Stage.WRITE_PATH, self.cost.wal_commit_us)
        for record in records:
            self.memtable.add(record)
        self.stats.add(UPDATES, len(records))
        self.stats.add(BATCH_WRITES)
        self.stats.charge(Stage.WRITE_PATH,
                          self.cost.write_entry_us * len(records))
        if self.memtable.approximate_bytes() >= self.options.write_buffer_bytes:
            self.flush()
        return len(records)

    def flush(self) -> Optional[FileMetaData]:
        """Write the memtable to a new L0 table and run due compactions."""
        self._check_open()
        self._check_writable()
        if self.memtable.is_empty():
            return None
        tracer = self.stats.tracer
        span = (tracer.begin(OpType.FLUSH, f"{len(self.memtable)} entries")
                if tracer is not None else None)
        try:
            return self._do_flush()
        except (DiskFullError, PowerCutError) as exc:
            # The memtable (and, with a WAL, the log) still holds the
            # data; nothing acknowledged is lost.  But the device cannot
            # take a table, so stop accepting writes.
            self._enter_read_only(f"flush failed: {exc}")
            raise ReadOnlyModeError(self._read_only_reason) from exc
        finally:
            if tracer is not None:
                tracer.end(span)

    def _do_flush(self) -> Optional[FileMetaData]:
        builder = TableBuilder(self.device, self._next_file_name(),
                               self.options, self.index_factory, self.stats,
                               self.cost, data_cache=self.data_cache)
        for record in self.memtable.records():
            builder.add(record)
        table = builder.finish()
        meta = FileMetaData(number=self._next_file_number(), table=table)
        if self.level_models is not None:
            self.level_models.register_keys(table.name, table.cached_keys)
        else:
            table.release_keys()
        self.version.add_file(0, meta)
        if self.manifest is not None:
            # Commit the flush before the WAL resets: once the log is
            # truncated, the manifest is the only durable record that
            # this table exists.
            edit = VersionEdit(kind="flush",
                               next_file_number=self._file_counter,
                               last_seq=self._seq)
            edit.add_file(0, meta.number, meta.name, table.format_version)
            self.manifest.append(edit)
            self.stats.charge(Stage.WRITE_PATH, self.cost.wal_commit_us)
        self.memtable = MemTable(self.options.entry_bytes)
        if self.wal is not None:
            self.wal.reset()
        self.stats.add(FLUSHES)
        self.maybe_compact()
        return meta

    def maybe_compact(self) -> List[CompactionOutcome]:
        """Run compactions until every level fits its capacity."""
        outcomes: List[CompactionOutcome] = []
        while True:
            task = self.compactor.pick_task(self.version)
            if task is None:
                return outcomes
            outcomes.append(self.compactor.run(self.version, task))

    def bulk_ingest(self, keys, value_for=None, seed: int = 0) -> None:
        """Offline leveled fill for benchmarks: no compaction churn.

        Distributes sorted unique ``keys`` across levels 1..L in
        steady-state proportions (each level filled proportionally to
        its capacity, so deeper levels hold geometrically more data,
        like a long-running database), builds the SSTables and indexes
        directly, and leaves L0 and the memtable empty.  Key-to-level
        assignment is a seeded shuffle, matching the random interleave
        compaction produces.

        The per-level key sets are recorded in ``last_ingest_levels``
        (level -> sorted keys) for workloads that need level-aware
        query mixes (the paper's Figure 10).
        """
        import random as _random

        self._check_open()
        if self.entry_count():
            raise InvalidOptionError("bulk_ingest requires an empty database")
        n = len(keys)
        if n == 0:
            return
        options = self.options
        capacities: List[int] = []
        depth = 0
        total = 0
        while total < n:
            depth += 1
            if depth >= options.max_levels:
                raise InvalidOptionError(
                    f"{n} keys exceed capacity of {options.max_levels - 1} "
                    "levels; raise max_levels or write_buffer_bytes")
            capacity = options.entries_per_buffer * (
                options.size_ratio ** depth)
            capacities.append(capacity)
            total += capacity
        fill = n / total
        rng = _random.Random(seed)
        order = list(range(n))
        rng.shuffle(order)
        if value_for is None:
            def value_for(key: int) -> bytes:  # noqa: ANN001 - local default
                return (b"v%x" % key)[: options.value_capacity]
        self.last_ingest_levels: Dict[int, List[int]] = {}
        pos = 0
        for level in range(1, depth + 1):
            if level == depth:
                count = n - pos
            else:
                count = min(n - pos, int(round(capacities[level - 1] * fill)))
            if count <= 0:
                continue
            subset = sorted(keys[i] for i in order[pos:pos + count])
            pos += count
            self._ingest_level(level, subset, value_for)
            self.last_ingest_levels[level] = subset

    def _ingest_level(self, level: int, sorted_keys, value_for) -> None:
        per_table = self.options.entries_per_sstable
        per_file_index = (self.level_models is None or level == 0)
        factory = self.index_factory if per_file_index else None
        added: List[FileMetaData] = []
        for start in range(0, len(sorted_keys), per_table):
            chunk = sorted_keys[start:start + per_table]
            builder = TableBuilder(self.device, self._next_file_name(),
                                   self.options, factory, self.stats,
                                   self.cost, level=level,
                                   data_cache=self.data_cache)
            for key in chunk:
                self._seq += 1
                builder.add(make_value(key, self._seq, value_for(key)))
            table = builder.finish()
            meta = FileMetaData(number=self._next_file_number(), table=table)
            if self.level_models is not None:
                self.level_models.register_keys(table.name, table.cached_keys)
            else:
                table.release_keys()
            self.version.add_file(level, meta)
            added.append(meta)
        pointer = None
        if self.level_models is not None and level >= 1:
            pointer = self.level_models.rebuild(level,
                                                self.version.levels[level])
        if self.manifest is not None:
            edit = VersionEdit(kind="ingest",
                               next_file_number=self._file_counter,
                               last_seq=self._seq)
            for meta in added:
                edit.add_file(level, meta.number, meta.name,
                              meta.table.format_version)
            if pointer is not None:
                edit.point_model(level, pointer)
            self.manifest.append(edit)
            self.stats.charge(Stage.WRITE_PATH, self.cost.wal_commit_us)
            if self.level_models is not None:
                self.level_models.drop_stale()

    # -- read path ----------------------------------------------------------

    def get(self, key: int) -> Optional[bytes]:
        """Point lookup; None when absent or deleted."""
        self._check_open()
        tracer = self.stats.tracer
        span = (tracer.begin(OpType.GET, f"key={key}")
                if tracer is not None else None)
        try:
            self.stats.add(POINT_LOOKUPS)
            record = self._get_record(key)
            if record is None or record.is_tombstone:
                return None
            return record.value
        finally:
            if tracer is not None:
                tracer.end(span)

    def multi_get(
        self, keys: Sequence[int],
        coalesce: Optional[bool] = None,
        errors: Optional[Dict[int, ReproError]] = None,
    ) -> List[Union[bytes, ReproError, None]]:
        """Batched point lookups; results in request order.

        Equivalent to ``[self.get(k) for k in keys]`` but the batch
        amortizes every shareable cost along Figure 1(C)'s pipeline:

        * the batch is sorted and deduplicated up front, so duplicate
          keys are looked up once;
        * the memtable is probed per key but the skip-list descent is
          charged once per batch (an ascending probe sequence keeps the
          upper levels hot);
        * each level is walked with the *whole* remaining key set —
          one file-range binary search per level (not per key), one
          bloom pass per ``(table, keys)`` group;
        * overlapping/adjacent predicted segments of one table coalesce
          into a single pread charging one seek plus sequential blocks
          (:meth:`~repro.lsm.sstable.Table.multi_get_in_bounds`).

        ``coalesce`` overrides ``options.multiget_coalesce`` for one
        call (the ``multiget`` experiment's control arm).

        Pass an ``errors`` dict to get per-key fault isolation: a key
        whose lookup hits a quarantined block — or whose turn comes
        after an attached deadline expired — is recorded there (and its
        result slot holds the exception instance) instead of failing
        the whole batch — every healthy key still returns its value.
        Without ``errors`` the first quarantined read raises, matching
        :meth:`get`.
        """
        self._check_open()
        if not keys:
            return []
        if coalesce is None:
            coalesce = self.options.multiget_coalesce
        tracer = self.stats.tracer
        span = (tracer.begin(OpType.MULTI_GET, f"{len(keys)} keys")
                if tracer is not None else None)
        try:
            return self._do_multi_get(keys, coalesce, errors)
        finally:
            if tracer is not None:
                tracer.end(span)

    def _do_multi_get(
        self, keys: Sequence[int], coalesce: bool,
        errors: Optional[Dict[int, ReproError]],
    ) -> List[Union[bytes, ReproError, None]]:
        self.stats.add(POINT_LOOKUPS, len(keys))
        self.stats.add(MULTIGET_BATCHES)
        self.stats.add(MULTIGET_KEYS, len(keys))
        unique = sorted(set(keys))
        resolved: Dict[int, Record] = {}
        if not self.memtable.is_empty():
            # One descent charge per batch run, not per key.
            self.stats.charge(
                Stage.TABLE_LOOKUP,
                self.cost.index_compare_us * self.memtable.comparison_depth())
            resolved.update(self.memtable.get_many(unique))
        remaining = [key for key in unique if key not in resolved]
        for level in range(self.options.max_levels):
            if not remaining:
                break
            if not self.version.levels[level]:
                continue
            if self.deadline is not None and self.deadline.expired():
                if errors is None:
                    self.deadline.check(where=f"multi_get level {level}")
                # Partial degradation: keys resolved so far keep their
                # values; every still-unresolved key surfaces the typed
                # error through the errors={} protocol instead of
                # failing the whole batch.
                self.stats.add(OVERLOAD_DEADLINE_EXCEEDED)
                overdue = DeadlineExceededError(
                    self.deadline.deadline_us,
                    self.deadline.deadline_us - self.deadline.remaining_us(),
                    where=f"multi_get level {level}")
                for key in remaining:
                    errors[key] = overdue
                remaining = []
                break
            before = self.stats.read_time()
            found = self._search_level_batch(level, remaining, coalesce,
                                             errors)
            elapsed = self.stats.read_time() - before
            self._level_read_us[level] = (
                self._level_read_us.get(level, 0.0) + elapsed)
            self._level_read_ops[level] = (
                self._level_read_ops.get(level, 0) + len(remaining))
            if found:
                resolved.update(found)
                remaining = [key for key in remaining if key not in found]
            if errors:
                # An errored key is *resolved*: the poisoned block holds
                # its newest version, and a deeper level could only
                # serve a stale one.  Stop searching, surface the error.
                remaining = [key for key in remaining if key not in errors]
        out: List[Union[bytes, QuarantinedBlockError, None]] = []
        for key in keys:
            if errors and key in errors:
                out.append(errors[key])
                continue
            record = resolved.get(key)
            out.append(None if record is None or record.is_tombstone
                       else record.value)
        return out

    def _search_level_batch(
        self, level: int, keys: List[int], coalesce: bool,
        errors: Optional[Dict[int, QuarantinedBlockError]] = None,
    ) -> Dict[int, Record]:
        """Search one level for a sorted key batch; ``{key: record}``."""
        if self.level_models is not None and level >= 1:
            return self._search_level_model_batch(level, keys, coalesce,
                                                  errors)
        found: Dict[int, Record] = {}
        if self._level_overlapping(level):
            # Newest file first; a key found in a newer file must not be
            # probed in older ones (its newer version wins).  The
            # file-range walk is charged once per batch, not per file.
            if level >= 1:
                self.stats.charge(
                    Stage.TABLE_LOOKUP,
                    self.cost.binary_search_us(
                        max(1, self.version.file_count(level)))
                    + self.cost.index_compare_us * max(0, len(keys) - 1))
            unresolved = keys
            for meta in self.version.levels[level]:
                if not unresolved:
                    break
                candidates = [key for key in unresolved
                              if meta.min_key <= key <= meta.max_key]
                hits = self._probe_table_batch(meta.table, candidates,
                                               coalesce, errors)
                if hits:
                    found.update(hits)
                    unresolved = [key for key in unresolved
                                  if key not in hits]
                if errors:
                    unresolved = [key for key in unresolved
                                  if key not in errors]
            return found
        # Single sorted run: one merge walk assigns every key its file.
        files = self.version.levels[level]
        self.stats.charge(
            Stage.TABLE_LOOKUP,
            self.cost.binary_search_us(max(1, len(files)))
            + self.cost.index_compare_us * max(0, len(keys) - 1))
        file_idx = 0
        grouped: Dict[int, List[int]] = {}
        for key in keys:
            while file_idx < len(files) and files[file_idx].max_key < key:
                file_idx += 1
            if file_idx >= len(files):
                break
            if files[file_idx].min_key <= key:
                grouped.setdefault(file_idx, []).append(key)
        for idx, group in grouped.items():
            found.update(self._probe_table_batch(files[idx].table, group,
                                                 coalesce, errors))
        return found

    def _level_overlapping(self, level: int) -> bool:
        return level == 0 or (self.options.compaction_policy
                              is CompactionPolicy.TIERING)

    def _probe_table_batch(
        self, table: Table, candidates: List[int], coalesce: bool,
        errors: Optional[Dict[int, QuarantinedBlockError]] = None,
    ) -> Dict[int, Record]:
        """One bloom pass then one coalesced multi-read for a table."""
        admitted = [key for key in candidates
                    if self._bloom_admits(table, key)]
        if not admitted:
            return {}
        hits = table.multi_get(admitted, coalesce=coalesce, errors=errors)
        errored = (sum(1 for key in admitted if key in errors)
                   if errors else 0)
        misses = len(admitted) - len(hits) - errored
        if misses > 0:
            self.stats.add(BLOOM_FALSE_POSITIVES, misses)
        return hits

    def _search_level_model_batch(
        self, level: int, keys: List[int], coalesce: bool,
        errors: Optional[Dict[int, QuarantinedBlockError]] = None,
    ) -> Dict[int, Record]:
        assert self.level_models is not None
        found: Dict[int, Record] = {}
        for meta, items in self.level_models.lookup_batch(level, keys):
            admitted = [
                (key, bound) for key, bound in items
                if key not in found
                and (errors is None or key not in errors)
                and meta.table.key_range_contains(key)
                and self._bloom_admits(meta.table, key)]
            if not admitted:
                continue
            hits = meta.table.multi_get_in_bounds(admitted,
                                                  coalesce=coalesce,
                                                  errors=errors)
            errored = (sum(1 for key, _ in admitted if key in errors)
                       if errors else 0)
            misses = len(admitted) - len(hits) - errored
            if misses > 0:
                self.stats.add(BLOOM_FALSE_POSITIVES, misses)
            found.update(hits)
        return found

    def _get_record(self, key: int) -> Optional[Record]:
        # Memtable first (newest data); an empty buffer costs nothing —
        # no probe, no descent charge.
        if not self.memtable.is_empty():
            self.stats.charge(
                Stage.TABLE_LOOKUP,
                self.cost.index_compare_us * self.memtable.comparison_depth())
            hit = self.memtable.get(key)
            if hit is not None:
                return hit
        for level in range(self.options.max_levels):
            if not self.version.levels[level]:
                continue
            # Deadline checkpoint: one attribute test per non-empty
            # level; a request past its budget stops descending here
            # instead of walking the rest of the tree for a dead client.
            if self.deadline is not None:
                self.deadline.check(where=f"get level {level}")
            before = self.stats.read_time()
            record = self._search_level(level, key)
            elapsed = self.stats.read_time() - before
            self._level_read_us[level] = (
                self._level_read_us.get(level, 0.0) + elapsed)
            self._level_read_ops[level] = (
                self._level_read_ops.get(level, 0) + 1)
            if record is not None:
                return record
        return None

    def _search_level(self, level: int, key: int) -> Optional[Record]:
        use_level_model = (self.level_models is not None and level >= 1)
        if use_level_model:
            return self._search_level_model(level, key)
        candidates = self.version.files_for_key(level, key)
        if level >= 1:
            # Charge the binary search over the level's file ranges.
            self.stats.charge(
                Stage.TABLE_LOOKUP,
                self.cost.binary_search_us(
                    max(1, self.version.file_count(level))))
        for meta in candidates:
            if not self._bloom_admits(meta.table, key):
                continue
            record = meta.table.get(key)
            if record is not None:
                return record
            self.stats.add(BLOOM_FALSE_POSITIVES)
        return None

    def _search_level_model(self, level: int, key: int) -> Optional[Record]:
        assert self.level_models is not None
        pairs = self.level_models.lookup(level, key)
        for meta, bound in pairs:
            if not meta.table.key_range_contains(key):
                continue
            if not self._bloom_admits(meta.table, key):
                continue
            record = meta.table.get_in_bound(key, bound)
            if record is not None:
                return record
            self.stats.add(BLOOM_FALSE_POSITIVES)
        return None

    def _bloom_admits(self, table: Table, key: int) -> bool:
        self.stats.add(BLOOM_PROBES)
        self.stats.charge(Stage.TABLE_LOOKUP, self.cost.bloom_probe_us)
        if table.bloom.may_contain(key):
            return True
        self.stats.add(BLOOM_NEGATIVES)
        return False

    # -- range lookups -------------------------------------------------------

    def iterator(self) -> DBIterator:
        """A merged, deduplicated iterator over the whole database."""
        self._check_open()
        children: List[KVIterator] = [MemTableIterator(self.memtable)]
        for meta in self.version.levels[0]:
            children.append(meta.table.iterator())
        tiering = self.options.compaction_policy is CompactionPolicy.TIERING
        for level in range(1, self.options.max_levels):
            files = self.version.levels[level]
            if not files:
                continue
            if tiering:
                # Runs overlap: each is its own merge input.
                children.extend(meta.table.iterator() for meta in files)
            else:
                children.append(LevelIterator(self, level, files))
        return DBIterator(MergingIterator(children))

    def scan(self, start_key: int, count: int) -> List[Tuple[int, bytes]]:
        """Range lookup: up to ``count`` live entries from ``start_key``."""
        self._check_open()
        tracer = self.stats.tracer
        span = (tracer.begin(OpType.SCAN, f"start={start_key} n={count}")
                if tracer is not None else None)
        try:
            self.stats.add(RANGE_LOOKUPS)
            cursor = self.iterator()
            cursor.seek(start_key)
            return cursor.take(count)
        finally:
            if tracer is not None:
                tracer.end(span)

    # -- memory accounting (the paper's memory axis) -------------------------

    def index_memory_bytes(self) -> int:
        """Total bytes of index structures held in memory."""
        total = 0
        for level, meta in self.version.all_files():
            if self.level_models is not None and level >= 1:
                continue  # covered by the level models below
            total += meta.table.index_bytes()
        if self.level_models is not None:
            total += self.level_models.memory_bytes()
        return total

    def level_index_memory_bytes(self, level: int) -> int:
        """Index bytes attributable to one level."""
        if self.level_models is not None and level >= 1:
            return self.level_models.memory_bytes(level)
        return sum(meta.table.index_bytes()
                   for meta in self.version.levels[level])

    def bloom_memory_bytes(self) -> int:
        """Total bloom filter bytes held in memory."""
        return sum(meta.table.bloom_bytes()
                   for _, meta in self.version.all_files())

    def memory_breakdown(self) -> Dict[str, int]:
        """Bytes per in-memory component (index / bloom / buffer)."""
        return {
            "index": self.index_memory_bytes(),
            "bloom": self.bloom_memory_bytes(),
            "buffer": self.options.write_buffer_bytes,
        }

    # -- introspection ------------------------------------------------------

    def entry_count(self) -> int:
        """Total entries across memtable and all levels (incl. stale)."""
        return len(self.memtable) + sum(
            meta.entry_count for _, meta in self.version.all_files())

    def level_read_stats(self) -> Dict[int, Tuple[float, int]]:
        """Per level: (simulated read microseconds, lookups that touched it)."""
        return {level: (self._level_read_us.get(level, 0.0),
                        self._level_read_ops.get(level, 0))
                for level in sorted(set(self._level_read_us)
                                    | set(self._level_read_ops))}

    def reset_read_stats(self) -> None:
        """Zero the per-level read accounting (between experiment phases)."""
        self._level_read_us.clear()
        self._level_read_ops.clear()

    def describe_levels(self) -> List[Dict[str, float]]:
        """Shape summary per non-empty level (files, entries, bytes)."""
        out = []
        for level in range(self.options.max_levels):
            files = self.version.levels[level]
            if not files:
                continue
            out.append({
                "level": level,
                "files": len(files),
                "entries": self.version.level_entry_count(level),
                "data_bytes": self.version.level_data_bytes(level),
                "index_bytes": self.level_index_memory_bytes(level),
            })
        return out

    def close(self) -> None:
        """Flush nothing, release tables, mark closed."""
        if self._closed:
            return
        self._closed = True
        for _, meta in self.version.all_files():
            meta.table.close()


class LevelIterator(KVIterator):
    """Concatenating iterator over one sorted-run level (LevelDB style).

    Seeks use the per-table learned index (or the level model when the
    database runs level granularity) for the initial positioning, then
    stream sequentially, hopping to the next file when one is
    exhausted.
    """

    def __init__(self, db: LSMTree, level: int,
                 files: List[FileMetaData]) -> None:
        self.db = db
        self.level = level
        self.files = files
        self._file_idx = len(files)
        self._iter: Optional[TableIterator] = None

    def _open_file(self, idx: int) -> None:
        self._file_idx = idx
        if 0 <= idx < len(self.files):
            self._iter = self.files[idx].table.iterator()
        else:
            self._iter = None

    def seek_to_first(self) -> None:
        self._open_file(0)
        if self._iter is not None:
            self._iter.seek_to_first()
            self._skip_exhausted()

    def seek(self, key: int) -> None:
        keys = [meta.min_key for meta in self.files]
        idx = bisect_right(keys, key) - 1
        if idx < 0:
            self.seek_to_first()
            return
        if key > self.files[idx].max_key:
            # Key falls in the gap after file idx: start at the next file.
            self._open_file(idx + 1)
            if self._iter is not None:
                self._iter.seek_to_first()
                self._skip_exhausted()
            return
        self._open_file(idx)
        assert self._iter is not None
        if self.db.level_models is not None and self.level >= 1:
            pairs = self.db.level_models.lookup(self.level, key)
            target = next((bound for meta, bound in pairs
                           if meta.number == self.files[idx].number), None)
            if target is not None:
                self._iter.seek_to_bound(key, target)
            else:
                self._iter.seek_to_first()
                self._iter._skip_until(key)
        else:
            self._iter.seek(key)
        self._skip_exhausted()

    def _skip_exhausted(self) -> None:
        while self._iter is not None and not self._iter.valid():
            next_idx = self._file_idx + 1
            if next_idx >= len(self.files):
                self._iter = None
                return
            self._open_file(next_idx)
            self._iter.seek_to_first()

    def valid(self) -> bool:
        return self._iter is not None and self._iter.valid()

    def key(self) -> int:
        assert self._iter is not None
        return self._iter.key()

    def record(self) -> Record:
        assert self._iter is not None
        return self._iter.record()

    def advance(self) -> None:
        assert self._iter is not None
        self._iter.advance()
        self._skip_exhausted()
