"""Leveling compaction with partial merges (LevelDB's policy).

Compactions are picked the way the paper's testbed (LevelDB) picks
them:

* level 0 compacts when it accumulates ``l0_compaction_trigger`` files;
  all L0 files plus the overlapping L1 files merge into L1;
* level L >= 1 compacts when its payload exceeds
  ``write_buffer_bytes * T^L``; one file is chosen round-robin by key
  (LevelDB's compact pointer) and merged with the overlapping files of
  level L+1 — a *partial* compaction, so sorted runs are rewritten a
  few SSTables at a time.

Every stage is charged separately (read, merge, write, train, write
model) so Figure 9's breakdown is a direct read-out of the stats
registry.  Tombstones are dropped when nothing deeper can hold the
key, exactly like LevelDB's ``IsBaseLevelForKey`` test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.lsm.iterators import MergingIterator
from repro.lsm.options import CompactionPolicy, Granularity, Options
from repro.obs.trace import OpType
from repro.lsm.record import Record
from repro.lsm.sstable import TableBuilder
from repro.lsm.version import FileMetaData, Version
from repro.lsm.level_index import LevelModelManager
from repro.indexes.registry import IndexFactory
from repro.persist.manifest import Manifest, VersionEdit
from repro.storage.block_cache import DataBlockCache
from repro.storage.block_device import BlockDevice
from repro.storage.cost_model import CostModel
from repro.storage.stats import (
    COMPACT_BYTES_IN,
    COMPACT_BYTES_OUT,
    COMPACTIONS,
    Stage,
    Stats,
)


@dataclass
class CompactionTask:
    """One unit of compaction work: inputs above, overlaps below."""

    level: int
    inputs: List[FileMetaData]
    overlaps: List[FileMetaData]

    @property
    def target_level(self) -> int:
        """The level the merged output lands in."""
        return self.level + 1

    def all_inputs(self) -> List[FileMetaData]:
        """Every input file, upper level first."""
        return list(self.inputs) + list(self.overlaps)


@dataclass
class CompactionOutcome:
    """What a finished compaction produced."""

    task: CompactionTask
    outputs: List[FileMetaData] = field(default_factory=list)
    entries_in: int = 0
    entries_out: int = 0
    dropped_tombstones: int = 0
    superseded: int = 0


class Compactor:
    """Executes the leveling policy over a :class:`Version`."""

    def __init__(self, device: BlockDevice, options: Options, stats: Stats,
                 cost: CostModel, index_factory: IndexFactory,
                 next_file_name: Callable[[], str],
                 next_file_number: Callable[[], int],
                 level_models: Optional[LevelModelManager] = None,
                 manifest: Optional[Manifest] = None,
                 data_cache: Optional[DataBlockCache] = None) -> None:
        self.device = device
        self.options = options
        self.stats = stats
        self.cost = cost
        self.index_factory = index_factory
        self.next_file_name = next_file_name
        self.next_file_number = next_file_number
        self.level_models = level_models
        self.manifest = manifest
        self.data_cache = data_cache
        #: LevelDB-style compact pointers: last compacted max key per level.
        self._pointers: Dict[int, int] = {}

    @property
    def _tiering(self) -> bool:
        return self.options.compaction_policy is CompactionPolicy.TIERING

    # -- picking -----------------------------------------------------------

    def pick_task(self, version: Version) -> Optional[CompactionTask]:
        """The next compaction to run, or None when all levels fit."""
        if self._tiering:
            return self._pick_tiering(version)
        options = self.options
        if version.file_count(0) >= options.l0_compaction_trigger:
            inputs = list(version.levels[0])
            min_key = min(meta.min_key for meta in inputs)
            max_key = max(meta.max_key for meta in inputs)
            overlaps = version.overlapping_files(1, min_key, max_key)
            return CompactionTask(level=0, inputs=inputs, overlaps=overlaps)
        for level in range(1, options.max_levels - 1):
            if (version.level_data_bytes(level)
                    > options.level_capacity_bytes(level)):
                chosen = self._round_robin_file(version, level)
                overlaps = version.overlapping_files(
                    level + 1, chosen.min_key, chosen.max_key)
                return CompactionTask(level=level, inputs=[chosen],
                                      overlaps=overlaps)
        return None

    def _pick_tiering(self, version: Version) -> Optional[CompactionTask]:
        """Tiering: a full level of runs merges into one run below.

        Nothing at the destination is rewritten (that is tiering's
        write saving), so ``overlaps`` stays empty.
        """
        options = self.options
        if version.file_count(0) >= options.l0_compaction_trigger:
            return CompactionTask(level=0, inputs=list(version.levels[0]),
                                  overlaps=[])
        for level in range(1, options.max_levels - 1):
            if version.file_count(level) >= options.size_ratio:
                return CompactionTask(level=level,
                                      inputs=list(version.levels[level]),
                                      overlaps=[])
        return None

    def _round_robin_file(self, version: Version, level: int) -> FileMetaData:
        files = version.levels[level]
        pointer = self._pointers.get(level)
        if pointer is not None:
            for meta in files:
                if meta.min_key > pointer:
                    return meta
        return files[0]

    # -- execution -----------------------------------------------------------

    def run(self, version: Version,
            task: CompactionTask) -> CompactionOutcome:
        """Merge the task's inputs into ``task.target_level``."""
        tracer = self.stats.tracer
        span = (tracer.begin(OpType.COMPACTION,
                             f"L{task.level}->L{task.target_level} "
                             f"{len(task.all_inputs())} files")
                if tracer is not None else None)
        try:
            return self._do_run(version, task)
        finally:
            if tracer is not None:
                tracer.end(span)

    def _do_run(self, version: Version,
                task: CompactionTask) -> CompactionOutcome:
        outcome = CompactionOutcome(task=task)
        all_inputs = task.all_inputs()
        min_key = min(meta.min_key for meta in all_inputs)
        max_key = max(meta.max_key for meta in all_inputs)
        # Leveling rewrites the target level's overlap (it is part of the
        # inputs), so only deeper levels matter; tiering leaves existing
        # target-level runs untouched, so they count as "below" too.
        overlap_from = task.level if self._tiering else task.target_level
        drop_tombstones = not version.key_range_overlaps_below(
            overlap_from, min_key, max_key)

        merged = MergingIterator([
            meta.table.iterator(refill_stage=Stage.COMPACT_READ)
            for meta in all_inputs])
        merged.seek_to_first()

        outputs: List[FileMetaData] = []
        builder: Optional[TableBuilder] = None
        per_file_index = (self.options.granularity is Granularity.FILE
                          or self.level_models is None)
        factory = self.index_factory if per_file_index else None
        target_level = task.target_level

        last_key: Optional[int] = None
        merge_cost = self.cost.merge_entry_us
        while merged.valid():
            record = merged.record()
            merged.advance()
            outcome.entries_in += 1
            self.stats.charge(Stage.COMPACT_MERGE, merge_cost)
            if record.key == last_key:
                outcome.superseded += 1
                continue  # an older version of a key already emitted
            last_key = record.key
            if record.is_tombstone and drop_tombstones:
                outcome.dropped_tombstones += 1
                continue
            if builder is None:
                builder = self._new_builder(factory, target_level)
            builder.add(record)
            outcome.entries_out += 1
            # Tiering keeps each merge output as one run (one file) so
            # run counting stays trivial; leveling chops at the SSTable
            # size (the granularity axis).
            if (not self._tiering
                    and builder.payload_bytes >= self.options.sstable_bytes):
                outputs.append(self._finish_builder(builder))
                builder = None
        if builder is not None and builder.entry_count:
            outputs.append(self._finish_builder(builder))

        self._install(version, task, outputs)
        outcome.outputs = outputs
        entry_bytes = self.options.entry_bytes
        self.stats.add(COMPACTIONS)
        self.stats.add(COMPACT_BYTES_IN, outcome.entries_in * entry_bytes)
        self.stats.add(COMPACT_BYTES_OUT, outcome.entries_out * entry_bytes)
        return outcome

    def _new_builder(self, factory: Optional[IndexFactory],
                     level: int) -> TableBuilder:
        return TableBuilder(self.device, self.next_file_name(), self.options,
                            factory, self.stats, self.cost, level=level,
                            data_cache=self.data_cache)

    def _finish_builder(self, builder: TableBuilder) -> FileMetaData:
        table = builder.finish()
        meta = FileMetaData(number=self.next_file_number(), table=table)
        if self.level_models is not None:
            self.level_models.register_keys(table.name, table.cached_keys)
        else:
            table.release_keys()
        return meta

    def _install(self, version: Version, task: CompactionTask,
                 outputs: List[FileMetaData]) -> None:
        """Swap inputs for outputs and commit the result durably.

        Crash-safe ordering: the output tables (and any retrained model
        sidecars) are already on the device when the version edit is
        appended, and the obsolete input files are deleted only *after*
        the edit is durable.  A crash before the append recovers to the
        pre-compaction version (the orphaned outputs are GCed); a crash
        after it recovers to the post-compaction version (the undeleted
        inputs are GCed).
        """
        version.remove_files(task.level, task.inputs)
        version.remove_files(task.target_level, task.overlaps)
        for meta in outputs:
            version.add_file(task.target_level, meta)
        if task.inputs:
            self._pointers[task.level] = max(
                meta.max_key for meta in task.inputs)
        if self.level_models is not None:
            for meta in task.all_inputs():
                self.level_models.forget_keys(meta.name)
        pointers: Dict[int, str] = {}
        if self.level_models is not None:
            for level in {task.target_level, task.level} - {0}:
                pointer = self.level_models.rebuild(level,
                                                    version.levels[level])
                if pointer is not None:
                    pointers[level] = pointer
        if self.manifest is not None:
            edit = VersionEdit(kind="compaction")
            for meta in task.inputs:
                edit.delete_file(task.level, meta.number, meta.name)
            for meta in task.overlaps:
                edit.delete_file(task.target_level, meta.number, meta.name)
            for meta in outputs:
                edit.add_file(task.target_level, meta.number, meta.name,
                              meta.table.format_version)
            for level, pointer in pointers.items():
                edit.point_model(level, pointer)
            if outputs:
                edit.next_file_number = max(meta.number for meta in outputs)
            self.manifest.append(edit)
            self.stats.charge(Stage.COMPACT_WRITE, self.cost.wal_commit_us)
        for meta in task.all_inputs():
            meta.table.close()
        if self.level_models is not None:
            self.level_models.drop_stale()
