"""Iterator protocol and the merging machinery for reads and compaction.

LSM reads are iterator compositions (the paper's ``NewIter``):

* each memtable / SSTable / level exposes a :class:`KVIterator` over
  its records in ascending user-key order;
* :class:`MergingIterator` heap-merges several of them, surfacing
  records ordered by (key, newest-first);
* :class:`DBIterator` collapses versions: per user key only the newest
  record survives, and tombstones hide older values.

Compaction reuses exactly the same stack (with a different I/O stage
label), which is how the paper's testbed implements ``BuildTable``'s
sort-merge input.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from typing import Iterator, List, Optional, Tuple

from repro.lsm.record import Record


class KVIterator(ABC):
    """A forward iterator over records sorted by (key asc, seq desc)."""

    @abstractmethod
    def seek_to_first(self) -> None:
        """Position on the first record."""

    @abstractmethod
    def seek(self, key: int) -> None:
        """Position on the first record with user key >= ``key``."""

    @abstractmethod
    def valid(self) -> bool:
        """True while positioned on a record."""

    @abstractmethod
    def key(self) -> int:
        """User key at the current position (requires ``valid()``)."""

    @abstractmethod
    def record(self) -> Record:
        """Record at the current position (requires ``valid()``)."""

    @abstractmethod
    def advance(self) -> None:
        """Move to the next record."""

    def drain(self) -> Iterator[Record]:
        """Yield every remaining record (testing convenience)."""
        while self.valid():
            yield self.record()
            self.advance()


class ListIterator(KVIterator):
    """Iterator over an in-memory, pre-sorted record list."""

    def __init__(self, records: List[Record]) -> None:
        self._records = records
        self._pos = len(records)

    def seek_to_first(self) -> None:
        self._pos = 0

    def seek(self, key: int) -> None:
        lo, hi = 0, len(self._records)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._records[mid].key < key:
                lo = mid + 1
            else:
                hi = mid
        self._pos = lo

    def valid(self) -> bool:
        return 0 <= self._pos < len(self._records)

    def key(self) -> int:
        return self._records[self._pos].key

    def record(self) -> Record:
        return self._records[self._pos]

    def advance(self) -> None:
        self._pos += 1


class MemTableIterator(KVIterator):
    """Iterator over the live memtable (snapshot-free, single threaded)."""

    def __init__(self, memtable) -> None:
        self._memtable = memtable
        self._iter: Optional[Iterator[Record]] = None
        self._current: Optional[Record] = None

    def seek_to_first(self) -> None:
        self._iter = self._memtable.records()
        self._step()

    def seek(self, key: int) -> None:
        self._iter = self._memtable.records_from(key)
        self._step()

    def _step(self) -> None:
        assert self._iter is not None
        self._current = next(self._iter, None)

    def valid(self) -> bool:
        return self._current is not None

    def key(self) -> int:
        return self._current.key

    def record(self) -> Record:
        return self._current

    def advance(self) -> None:
        self._step()


class MergingIterator(KVIterator):
    """Heap-merge of child iterators ordered by (key, seq desc, rank).

    ``rank`` breaks ties between sources holding the same (key, seq):
    lower rank (newer source) wins, mirroring LevelDB's source priority
    memtable > L0-newest > ... > deepest level.
    """

    def __init__(self, children: List[KVIterator]) -> None:
        self._children = children
        self._heap: List[Tuple[int, int, int]] = []

    def _push(self, rank: int) -> None:
        child = self._children[rank]
        if child.valid():
            record = child.record()
            heapq.heappush(self._heap, (record.key, -record.seq, rank))

    def _rebuild(self) -> None:
        self._heap = []
        for rank in range(len(self._children)):
            self._push(rank)

    def seek_to_first(self) -> None:
        for child in self._children:
            child.seek_to_first()
        self._rebuild()

    def seek(self, key: int) -> None:
        for child in self._children:
            child.seek(key)
        self._rebuild()

    def valid(self) -> bool:
        return bool(self._heap)

    def key(self) -> int:
        return self._heap[0][0]

    def record(self) -> Record:
        rank = self._heap[0][2]
        return self._children[rank].record()

    def advance(self) -> None:
        _, _, rank = heapq.heappop(self._heap)
        self._children[rank].advance()
        self._push(rank)


class DBIterator:
    """User-visible iterator: newest visible value per key, no tombstones."""

    def __init__(self, merged: KVIterator) -> None:
        self._merged = merged
        self._key: Optional[int] = None
        self._value: Optional[bytes] = None

    def seek_to_first(self) -> None:
        self._merged.seek_to_first()
        self._settle()

    def seek(self, key: int) -> None:
        self._merged.seek(key)
        self._settle()

    def _settle(self) -> None:
        """Advance until positioned on a live (non-deleted) newest version."""
        self._key = None
        self._value = None
        while self._merged.valid():
            record = self._merged.record()
            key = record.key
            # The first record for a key is its newest version.
            if record.is_tombstone:
                self._skip_key(key)
                continue
            self._key = key
            self._value = record.value
            return

    def _skip_key(self, key: int) -> None:
        while self._merged.valid() and self._merged.key() == key:
            self._merged.advance()

    def valid(self) -> bool:
        """True while positioned on a live entry."""
        return self._key is not None

    def key(self) -> int:
        """Current user key."""
        assert self._key is not None
        return self._key

    def value(self) -> bytes:
        """Current value."""
        assert self._value is not None
        return self._value

    def advance(self) -> None:
        """Move to the next live user key."""
        assert self._key is not None
        self._skip_key(self._key)
        self._settle()

    def take(self, count: int) -> List[Tuple[int, bytes]]:
        """Collect up to ``count`` (key, value) pairs from the cursor."""
        out: List[Tuple[int, bytes]] = []
        while self.valid() and len(out) < count:
            out.append((self.key(), self.value()))
            self.advance()
        return out
