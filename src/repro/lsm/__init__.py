"""The LSM-tree engine: a LevelDB-style store with pluggable indexes.

Public surface:

* :class:`~repro.lsm.db.LSMTree` — the database (put/get/delete/scan).
* :class:`~repro.lsm.options.Options` / :class:`~repro.lsm.options.Granularity`
  — configuration, including the paper's three tuning axes.
* :class:`~repro.lsm.sstable.Table` / :class:`~repro.lsm.sstable.TableBuilder`
  — the ``LearnedIndexTable`` file format.
* Substrate pieces (memtable, bloom, WAL, compaction, iterators) for
  users composing their own pipelines.
"""

from repro.lsm.bloom import BloomFilter
from repro.lsm.compaction import CompactionOutcome, CompactionTask, Compactor
from repro.lsm.db import LevelIterator, LSMTree
from repro.lsm.iterators import (
    DBIterator,
    KVIterator,
    ListIterator,
    MemTableIterator,
    MergingIterator,
)
from repro.lsm.level_index import LevelModel, LevelModelManager
from repro.lsm.memtable import MemTable
from repro.lsm.options import Granularity, Options, small_test_options
from repro.lsm.record import (
    KIND_TOMBSTONE,
    KIND_VALUE,
    Record,
    decode_entry,
    encode_entry,
    entry_size,
    make_tombstone,
    make_value,
)
from repro.lsm.scrub import ScrubReport, TableScrubResult
from repro.lsm.sstable import Table, TableBuilder, TableIterator
from repro.lsm.version import FileMetaData, Version
from repro.lsm.wal import WriteAheadLog
from repro.lsm.write_batch import WriteBatch

__all__ = [
    "LSMTree",
    "Options",
    "Granularity",
    "small_test_options",
    "Record",
    "make_value",
    "make_tombstone",
    "encode_entry",
    "decode_entry",
    "entry_size",
    "KIND_VALUE",
    "KIND_TOMBSTONE",
    "MemTable",
    "BloomFilter",
    "WriteAheadLog",
    "WriteBatch",
    "ScrubReport",
    "TableScrubResult",
    "Table",
    "TableBuilder",
    "TableIterator",
    "FileMetaData",
    "Version",
    "Compactor",
    "CompactionTask",
    "CompactionOutcome",
    "LevelModel",
    "LevelModelManager",
    "KVIterator",
    "ListIterator",
    "MemTableIterator",
    "MergingIterator",
    "DBIterator",
    "LevelIterator",
]
