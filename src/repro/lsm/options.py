"""Database options: the paper's configuration space plus engine knobs.

The three axes of the paper's Section 4 map onto:

* ``index_kind`` — which of the seven index types tables are built with;
* ``position_boundary`` — the final search range the table fetches from
  disk (2x the error bound of the learned models);
* ``granularity`` + ``sstable_bytes`` — whether indexes are built per
  SSTable (and how large SSTables are) or per level (Dai et al.'s
  LevelModel).

The remaining fields configure the LevelDB-style engine itself: the
paper's defaults are a size ratio of 10, 4 KiB blocks, 10-bit bloom
filters and ~1 KiB fixed-size entries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.errors import InvalidOptionError
from repro.indexes.pgm import DEFAULT_EPSILON_RECURSIVE
from repro.indexes.registry import IndexFactory, IndexKind
from repro.lsm.record import entry_size
from repro.storage.cost_model import DEFAULT_COST_MODEL, CostModel
from repro.storage.retry import RetryPolicy


class Granularity(str, enum.Enum):
    """Index granularity: one model per SSTable or per level."""

    FILE = "file"
    LEVEL = "level"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class CompactionPolicy(str, enum.Enum):
    """Merge policy: leveling (the paper's testbed) or tiering.

    Tiering is the Section 6.2 extension point ("incorporating learned
    indexes into the broader optimization of the LSM-tree design
    space"): each level accumulates up to ``size_ratio`` sorted runs
    before they all merge into one new run at the next level — fewer
    write passes, more runs to probe per read.
    """

    LEVELING = "leveling"
    TIERING = "tiering"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Options:
    """Immutable configuration for one :class:`~repro.lsm.db.LSMTree`."""

    # -- configuration-space axes (Section 4.1) ------------------------
    #: Index type built for every table.
    index_kind: IndexKind = IndexKind.FP
    #: Final on-disk search range in entries (2x the model error bound).
    position_boundary: int = 32
    #: Per-file or per-level (LevelModel) index construction.
    granularity: Granularity = Granularity.FILE
    #: Target SSTable payload size in bytes (the granularity axis).
    sstable_bytes: int = 2 * 1024 * 1024
    #: Merge policy: leveling (default, the paper's testbed) or tiering.
    compaction_policy: CompactionPolicy = CompactionPolicy.LEVELING

    # -- engine shape ----------------------------------------------------
    #: Level capacity multiplier (the paper uses T = 10).
    size_ratio: int = 10
    #: Write buffer (memtable) capacity in bytes.
    write_buffer_bytes: int = 512 * 1024
    #: Value slot size; entries are fixed at 20 + value_capacity bytes.
    value_capacity: int = 1004
    #: Device/IO block size (4 KiB, like the paper's testbed).
    block_size: int = 4096
    #: Target *uncompressed* size of one SSTable data block.  Entries
    #: are grouped into blocks of ``max(1, data_block_bytes //
    #: entry_bytes)`` entries; each block is independently compressed
    #: and checksummed (format v2).
    data_block_bytes: int = 4096
    #: Per-block codec by name (``none``, ``zlib-1``, ``zlib-6``,
    #: ``zlib-9`` — see :mod:`repro.storage.compression`).  Advisory:
    #: blocks a codec cannot shrink are stored raw.
    block_codec: str = "none"
    #: Decompressed-data-block cache capacity in bytes (0 disables the
    #: second cache tier).  Keyed by ``(file, block_no)``; sits above
    #: the raw device cache (``cache_bytes``), so hot blocks skip both
    #: the simulated I/O and the decompress + verify work.
    data_cache_bytes: int = 0
    #: Bloom filter bits per key (the paper uses 10).
    bloom_bits_per_key: int = 10
    #: Optional per-level override (Monkey-style allocation, the
    #: per-level memory insight the paper's Section 5.4 cites): index i
    #: holds the bits/key for level i; levels past the end fall back to
    #: ``bloom_bits_per_key``.
    bloom_bits_per_level: Optional[Tuple[int, ...]] = None
    #: Number of L0 files that triggers an L0 -> L1 compaction.
    l0_compaction_trigger: int = 4
    #: Hard cap on level count.
    max_levels: int = 7
    #: Write-ahead logging (off by default: benchmarks measure the
    #: paper's pipeline, which does not fsync a WAL per write).
    enable_wal: bool = False
    #: Maintain the MANIFEST version-edit log (see :mod:`repro.persist`).
    #: On: every flush/compaction/ingest commits an atomic version edit,
    #: level-granularity models persist to ``mdl-*`` sidecars, and
    #: ``reopen`` replays the manifest instead of scanning the device —
    #: zero index training on restart.  Off: the seed behaviour (recover
    #: by directory scan, retrain level models).
    enable_manifest: bool = True
    #: LRU block-cache capacity in bytes (0 disables caching).  When
    #: positive the database wraps its device in a
    #: :class:`~repro.storage.block_cache.CachedBlockDevice`, so hot
    #: segment blocks are served from memory instead of simulated disk;
    #: hit/miss counters land in :class:`~repro.storage.stats.Stats`.
    cache_bytes: int = 0
    #: Coalesce overlapping/adjacent predicted segments of one table
    #: into a single pread during :meth:`~repro.lsm.db.LSMTree.multi_get`
    #: (one seek + sequential blocks instead of one seek per key).  Off,
    #: batched lookups keep per-key reads — the control arm of the
    #: ``multiget`` experiment.
    multiget_coalesce: bool = True

    # -- index parameters -------------------------------------------------
    #: PGM internal error bound (the paper keeps the default 4).
    epsilon_recursive: int = DEFAULT_EPSILON_RECURSIVE
    #: RadixSpline radix table bits (the paper tunes 1 for LSM use).
    radix_bits: int = 1
    #: FITing-Tree B+-tree order.
    btree_order: int = 16

    #: Simulated hardware profile.
    cost_model: CostModel = field(default_factory=lambda: DEFAULT_COST_MODEL)

    #: Bounded-retry policy for transient read faults (see
    #: :mod:`repro.storage.retry`); backoff is charged to the cost model.
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    # -- derived -----------------------------------------------------------

    @property
    def entry_bytes(self) -> int:
        """On-disk bytes per entry."""
        return entry_size(self.value_capacity)

    @property
    def entries_per_sstable(self) -> int:
        """How many entries a full SSTable holds."""
        return max(1, self.sstable_bytes // self.entry_bytes)

    @property
    def entries_per_buffer(self) -> int:
        """How many entries fill the write buffer."""
        return max(1, self.write_buffer_bytes // self.entry_bytes)

    def level_capacity_bytes(self, level: int) -> int:
        """Byte capacity of ``level`` (level 0 is governed by file count)."""
        if level <= 0:
            return self.l0_compaction_trigger * self.write_buffer_bytes
        return self.write_buffer_bytes * (self.size_ratio ** level)

    def bloom_bits_for(self, level: int) -> int:
        """Bloom bits/key for ``level`` (per-level override, else global)."""
        if (self.bloom_bits_per_level is not None
                and 0 <= level < len(self.bloom_bits_per_level)):
            return self.bloom_bits_per_level[level]
        return self.bloom_bits_per_key

    def make_index_factory(self) -> IndexFactory:
        """The shared per-database index factory for this configuration."""
        return IndexFactory(
            self.index_kind,
            self.position_boundary,
            epsilon_recursive=self.epsilon_recursive,
            radix_bits=self.radix_bits,
            btree_order=self.btree_order,
        )

    def validate(self) -> None:
        """Raise :class:`InvalidOptionError` on inconsistent settings."""
        if self.position_boundary < 2:
            raise InvalidOptionError(
                f"position_boundary must be >= 2, got {self.position_boundary}")
        if self.size_ratio < 2:
            raise InvalidOptionError(
                f"size_ratio must be >= 2, got {self.size_ratio}")
        if self.value_capacity < 0:
            raise InvalidOptionError(
                f"value_capacity must be >= 0, got {self.value_capacity}")
        if self.block_size < 64:
            raise InvalidOptionError(
                f"block_size must be >= 64, got {self.block_size}")
        if self.sstable_bytes < self.entry_bytes:
            raise InvalidOptionError(
                "sstable_bytes must hold at least one entry "
                f"({self.entry_bytes} bytes)")
        if self.write_buffer_bytes < self.entry_bytes:
            raise InvalidOptionError(
                "write_buffer_bytes must hold at least one entry "
                f"({self.entry_bytes} bytes)")
        if self.bloom_bits_per_key < 0:
            raise InvalidOptionError(
                f"bloom_bits_per_key must be >= 0, got "
                f"{self.bloom_bits_per_key}")
        if self.bloom_bits_per_level is not None and any(
                bits < 0 for bits in self.bloom_bits_per_level):
            raise InvalidOptionError(
                "bloom_bits_per_level entries must be >= 0, got "
                f"{self.bloom_bits_per_level}")
        if self.max_levels < 2:
            raise InvalidOptionError(
                f"max_levels must be >= 2, got {self.max_levels}")
        if self.l0_compaction_trigger < 1:
            raise InvalidOptionError(
                f"l0_compaction_trigger must be >= 1, got "
                f"{self.l0_compaction_trigger}")
        if self.cache_bytes < 0:
            raise InvalidOptionError(
                f"cache_bytes must be >= 0, got {self.cache_bytes}")
        if self.data_cache_bytes < 0:
            raise InvalidOptionError(
                f"data_cache_bytes must be >= 0, got {self.data_cache_bytes}")
        if self.data_block_bytes < 1:
            raise InvalidOptionError(
                f"data_block_bytes must be >= 1, got {self.data_block_bytes}")
        from repro.storage.compression import codec_names
        if self.block_codec not in codec_names():
            raise InvalidOptionError(
                f"unknown block_codec {self.block_codec!r}; "
                f"registered: {codec_names()}")
        self.retry.validate()
        if (self.compaction_policy is CompactionPolicy.TIERING
                and self.granularity is Granularity.LEVEL):
            raise InvalidOptionError(
                "level-granularity models require a single sorted run per "
                "level; tiering keeps several — use FILE granularity")

    def with_changes(self, **changes) -> "Options":
        """A copy with the given fields replaced (dataclasses.replace)."""
        return replace(self, **changes)


def small_test_options(index_kind: IndexKind = IndexKind.FP,
                       position_boundary: int = 8,
                       value_capacity: int = 44,
                       granularity: Granularity = Granularity.FILE,
                       **overrides) -> Options:
    """Compact options for unit tests: tiny buffers, small values.

    Entry size is 64 bytes, a buffer holds 64 entries and an SSTable 128,
    so a few hundred puts exercise flushes and multi-level compactions
    in milliseconds.
    """
    defaults = dict(
        index_kind=index_kind,
        position_boundary=position_boundary,
        granularity=granularity,
        value_capacity=value_capacity,
        write_buffer_bytes=64 * entry_size(value_capacity),
        sstable_bytes=128 * entry_size(value_capacity),
        size_ratio=4,
        block_size=256,
        data_block_bytes=256,
        l0_compaction_trigger=2,
    )
    defaults.update(overrides)
    options = Options(**defaults)
    options.validate()
    return options
