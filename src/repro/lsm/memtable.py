"""The write buffer: a skip list keyed by user key.

LevelDB's memtable is a skip list over internal keys; ours is a skip
list over user keys holding the *newest* record per key (older
in-buffer versions are superseded in place, which is equivalent for
every externally observable behaviour and keeps flushed tables free of
intra-table duplicates — a requirement for the strictly-increasing key
arrays learned indexes are trained on).

The implementation is a classic probabilistic skip list with a
deterministic RNG so tests and benchmarks replay identically.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Iterator, List, Optional

from repro.lsm.record import Record

_MAX_HEIGHT = 12
_BRANCHING = 4


class _SkipNode:
    __slots__ = ("key", "record", "forward")

    def __init__(self, key: int, record: Optional[Record], height: int) -> None:
        self.key = key
        self.record = record
        self.forward: List[Optional["_SkipNode"]] = [None] * height


class MemTable:
    """Skip-list write buffer tracking its approximate on-disk size."""

    def __init__(self, entry_bytes: int, seed: int = 0x5EED) -> None:
        self._entry_bytes = entry_bytes
        self._head = _SkipNode(-1, None, _MAX_HEIGHT)
        self._height = 1
        self._count = 0
        self._rng = random.Random(seed)

    def _random_height(self) -> int:
        height = 1
        while height < _MAX_HEIGHT and self._rng.randrange(_BRANCHING) == 0:
            height += 1
        return height

    def _find_greater_or_equal(
            self, key: int,
            prev: Optional[List[_SkipNode]] = None) -> Optional[_SkipNode]:
        node = self._head
        for level in range(self._height - 1, -1, -1):
            nxt = node.forward[level]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.forward[level]
            if prev is not None:
                prev[level] = node
        return node.forward[0]

    # -- mutation ----------------------------------------------------------

    def add(self, record: Record) -> None:
        """Insert ``record``; an existing entry for the key is superseded."""
        prev: List[_SkipNode] = [self._head] * _MAX_HEIGHT
        node = self._find_greater_or_equal(record.key, prev)
        if node is not None and node.key == record.key:
            if record.seq >= node.record.seq:
                node.record = record
            return
        height = self._random_height()
        if height > self._height:
            self._height = height
        new_node = _SkipNode(record.key, record, height)
        for level in range(height):
            new_node.forward[level] = prev[level].forward[level]
            prev[level].forward[level] = new_node
        self._count += 1

    # -- queries -----------------------------------------------------------

    def get(self, key: int) -> Optional[Record]:
        """Newest record for ``key`` in the buffer, or None."""
        node = self._find_greater_or_equal(key)
        if node is not None and node.key == key:
            return node.record
        return None

    def get_many(self, sorted_keys: Iterable[int]) -> Dict[int, Record]:
        """Records for every present key of an ascending batch.

        Probes descend per key, but callers charge the descent cost once
        per batch (see :meth:`repro.lsm.db.LSMTree.multi_get`): the hot
        upper skip-list levels stay cache-resident across an ascending
        probe sequence, so only the first descent pays full depth.
        """
        found: Dict[int, Record] = {}
        for key in sorted_keys:
            node = self._find_greater_or_equal(key)
            if node is not None and node.key == key:
                found[key] = node.record
        return found

    def __len__(self) -> int:
        return self._count

    def approximate_bytes(self) -> int:
        """Flushed size estimate (entries x fixed entry size)."""
        return self._count * self._entry_bytes

    def is_empty(self) -> bool:
        """True when no records are buffered."""
        return self._count == 0

    def records(self) -> Iterator[Record]:
        """All records in ascending key order."""
        node = self._head.forward[0]
        while node is not None:
            yield node.record
            node = node.forward[0]

    def records_from(self, key: int) -> Iterator[Record]:
        """Records with key >= ``key`` in ascending key order."""
        node = self._find_greater_or_equal(key)
        while node is not None:
            yield node.record
            node = node.forward[0]

    def comparison_depth(self) -> int:
        """Approximate comparisons for one lookup (for cost charging)."""
        # A skip list behaves like a balanced structure of height
        # log_b(n); each level costs ~b/2 comparisons.
        count = max(2, self._count)
        depth = 1
        while _BRANCHING ** depth < count and depth < _MAX_HEIGHT:
            depth += 1
        return depth * (_BRANCHING // 2 + 1)
