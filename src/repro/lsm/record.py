"""Internal record encoding for the LSM-tree.

Every entry in the system is a :class:`Record`: a 64-bit user key, a
monotonically increasing sequence number (newer wins), a kind (value or
tombstone) and a byte-string value.

On disk, entries are *fixed size*: ``8 (key) + 8 (seq<<8 | kind) +
4 (value length) + value_capacity`` bytes.  Fixed-size entries are what
make learned indexes directly usable as file indexes — a predicted
position converts to an exact byte offset with one multiplication,
exactly like the paper's 24-byte-key / 1000-byte-value workloads.  The
codec zero-pads short values and rejects oversized ones.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

from repro.errors import CorruptionError, InvalidOptionError

#: Record kinds.
KIND_VALUE = 0
KIND_TOMBSTONE = 1

#: Fixed per-entry overhead: key (8) + packed seq/kind (8) + value len (4).
ENTRY_HEADER_BYTES = 20

_HEADER = struct.Struct("<QQI")

#: Maximum encodable user key (64-bit unsigned).
MAX_KEY = (1 << 64) - 1

#: Maximum sequence number (56 bits — the top byte packs the kind).
MAX_SEQ = (1 << 56) - 1


@dataclass(frozen=True)
class Record:
    """One versioned key-value entry."""

    key: int
    seq: int
    kind: int
    value: bytes

    @property
    def is_tombstone(self) -> bool:
        """True when this record deletes its key."""
        return self.kind == KIND_TOMBSTONE

    def newer_than(self, other: "Record") -> bool:
        """True when this record supersedes ``other`` for the same key."""
        return self.seq > other.seq


def make_value(key: int, seq: int, value: bytes) -> Record:
    """A put record."""
    return Record(key, seq, KIND_VALUE, value)


def make_tombstone(key: int, seq: int) -> Record:
    """A delete record."""
    return Record(key, seq, KIND_TOMBSTONE, b"")


def entry_size(value_capacity: int) -> int:
    """On-disk bytes per entry for a given value capacity."""
    return ENTRY_HEADER_BYTES + value_capacity


def encode_entry(record: Record, value_capacity: int) -> bytes:
    """Fixed-size encoding of ``record``; zero-pads the value slot."""
    if not 0 <= record.key <= MAX_KEY:
        raise InvalidOptionError(f"key out of range: {record.key}")
    if not 0 <= record.seq <= MAX_SEQ:
        raise InvalidOptionError(f"sequence out of range: {record.seq}")
    if len(record.value) > value_capacity:
        raise InvalidOptionError(
            f"value of {len(record.value)} bytes exceeds capacity "
            f"{value_capacity}")
    meta = (record.seq << 8) | record.kind
    header = _HEADER.pack(record.key, meta, len(record.value))
    padding = b"\x00" * (value_capacity - len(record.value))
    return header + record.value + padding


def decode_entry(buf: bytes, offset: int, value_capacity: int) -> Record:
    """Decode the fixed-size entry starting at ``offset`` in ``buf``."""
    end = offset + ENTRY_HEADER_BYTES
    if end > len(buf):
        raise CorruptionError(
            f"truncated entry header at offset {offset} (buffer "
            f"{len(buf)} bytes)")
    key, meta, value_len = _HEADER.unpack_from(buf, offset)
    if value_len > value_capacity:
        raise CorruptionError(
            f"entry at offset {offset} claims value of {value_len} bytes, "
            f"capacity is {value_capacity}")
    value_end = end + value_len
    if value_end > len(buf):
        raise CorruptionError(f"truncated entry value at offset {offset}")
    return Record(key=key, seq=meta >> 8, kind=meta & 0xFF,
                  value=bytes(buf[end:value_end]))


def decode_key(buf: bytes, offset: int) -> int:
    """Decode only the user key of the entry at ``offset`` (cheap probe)."""
    if offset + 8 > len(buf):
        raise CorruptionError(f"truncated entry key at offset {offset}")
    return struct.unpack_from("<Q", buf, offset)[0]


def compare_versions(a: Record, b: Record) -> int:
    """Ordering for two records: by key, then newest (highest seq) first.

    Returns negative when ``a`` sorts before ``b``.
    """
    if a.key != b.key:
        return -1 if a.key < b.key else 1
    if a.seq != b.seq:
        return -1 if a.seq > b.seq else 1
    return 0


def split_meta(meta: int) -> Tuple[int, int]:
    """Unpack a ``seq<<8 | kind`` word."""
    return meta >> 8, meta & 0xFF
