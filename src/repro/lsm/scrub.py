"""Scrub and repair: verify every table region, rewrite what survives.

A scrub is the operator's answer to media damage.  It walks every live
table, re-reads every byte region straight from the device (bypassing
both cache tiers — rot lives on the medium, not in memory), verifies
every checksum, and then repairs:

* a fully clean table is left alone;
* a damaged table with surviving data blocks is **rewritten**: the good
  blocks are decoded and rebuilt into a fresh table through the same
  builder + manifest-commit path compaction uses (retraining level
  models where configured), and the damaged original is deleted;
* a table with nothing salvageable is **quarantined**: renamed to a
  ``quar-`` prefix (outside the manifest GC's ``sst-``/``mdl-``
  namespaces, so it survives reopens for offline forensics) and dropped
  from the version.

Entries stored in damaged blocks are gone — scrub makes the loss
explicit (``entries_lost``) instead of leaving it to surface as
checksum errors at read time.  Scrub never clears read-only degraded
mode: that is an operator decision made after the device itself is
trusted again.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Set

from repro.errors import StorageError, TransientIOError
from repro.lsm.record import Record, decode_entry
from repro.lsm.sstable import (
    BLOCK_TRAILER_BYTES,
    FOOTER_BYTES,
    HEADER_BYTES,
    FORMAT_BLOCKED,
    Table,
    TableBuilder,
)
from repro.lsm.version import FileMetaData
from repro.persist.manifest import VersionEdit
from repro.storage.checksum import crc32c
from repro.storage.compression import decode_block
from repro.storage.stats import (
    SCRUB_BLOCKS_BAD,
    SCRUB_BLOCKS_CHECKED,
    SCRUB_ENTRIES_LOST,
    SCRUB_TABLES_CHECKED,
    SCRUB_TABLES_QUARANTINED,
    SCRUB_TABLES_REWRITTEN,
    Stage,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lsm.db import LSMTree

#: Device-name prefix for tables scrub retired as unsalvageable.  The
#: manifest garbage collector only touches ``sst-*`` / ``mdl-*`` files,
#: so quarantined originals survive reopens until an operator removes
#: them.
QUARANTINE_PREFIX = "quar-"


@dataclass
class TableScrubResult:
    """What scrub found (and did) for one table."""

    name: str
    level: int
    blocks_checked: int = 0
    blocks_bad: int = 0
    entries_recovered: int = 0
    entries_lost: int = 0
    #: ``clean`` | ``rewritten`` | ``quarantined``
    action: str = "clean"
    #: Regions (``header``, ``block_index``, ...) that failed their CRC.
    bad_regions: List[str] = field(default_factory=list)
    #: Replacement file name when the table was rewritten.
    rewritten_as: Optional[str] = None

    @property
    def damaged(self) -> bool:
        """True when verification failed or a repair action was taken."""
        return bool(self.blocks_bad or self.bad_regions
                    or self.action != "clean")


@dataclass
class ScrubReport:
    """Aggregate outcome of one :meth:`LSMTree.scrub` pass."""

    tables: List[TableScrubResult] = field(default_factory=list)

    @property
    def tables_checked(self) -> int:
        return len(self.tables)

    @property
    def tables_rewritten(self) -> int:
        return sum(1 for t in self.tables if t.action == "rewritten")

    @property
    def tables_quarantined(self) -> int:
        return sum(1 for t in self.tables if t.action == "quarantined")

    @property
    def blocks_checked(self) -> int:
        return sum(t.blocks_checked for t in self.tables)

    @property
    def blocks_bad(self) -> int:
        return sum(t.blocks_bad for t in self.tables)

    @property
    def entries_recovered(self) -> int:
        return sum(t.entries_recovered for t in self.tables)

    @property
    def entries_lost(self) -> int:
        return sum(t.entries_lost for t in self.tables)

    @property
    def clean(self) -> bool:
        """True when every table verified clean (nothing to repair)."""
        return all(not t.damaged for t in self.tables)

    def merge(self, other: "ScrubReport") -> None:
        """Fold another report's tables into this one (sharded scrub)."""
        self.tables.extend(other.tables)


def _scrub_read(db: "LSMTree", name: str, offset: int,
                length: int) -> bytes:
    """An uncached, retried, cost-charged read of one file region."""
    data = db.options.retry.call(
        lambda: db.device.pread_uncached(name, offset, length),
        db.stats, Stage.RECOVERY)
    db.stats.charge(Stage.RECOVERY, db.cost.read_us(
        db.cost.blocks_spanned(offset, length)))
    return data


def _verify_regions(db: "LSMTree", table: Table,
                    result: TableScrubResult) -> None:
    """CRC-check every non-data region against the in-memory footer.

    The footer held in memory was verified at open time; what scrub
    checks is whether the *on-device* copies still match it.
    """
    name = table.name
    footer = table.footer
    header = _scrub_read(db, name, 0, HEADER_BYTES)
    if (len(header) != HEADER_BYTES
            or crc32c(header[:-4]) != struct.unpack("<I", header[-4:])[0]):
        result.bad_regions.append("header")
    payload = _scrub_read(db, name, footer.block_index_offset,
                          footer.block_index_len)
    if crc32c(payload) != footer.block_index_crc:
        result.bad_regions.append("block_index")
    if footer.index_len:
        payload = _scrub_read(db, name, footer.index_offset,
                              footer.index_len)
        if crc32c(payload) != footer.index_crc:
            result.bad_regions.append("index")
    payload = _scrub_read(db, name, footer.bloom_offset, footer.bloom_len)
    if crc32c(payload) != footer.bloom_crc:
        result.bad_regions.append("bloom")
    size = db.device.size(name)
    tail = _scrub_read(db, name, size - FOOTER_BYTES, FOOTER_BYTES)
    if crc32c(tail[:-4]) != struct.unpack("<I", tail[-4:])[0]:
        result.bad_regions.append("footer")


def _verify_blocks(db: "LSMTree", table: Table,
                   result: TableScrubResult) -> Set[int]:
    """CRC-check every data block; returns the bad block numbers."""
    bad: Set[int] = set()
    for block_no, (_first_key, offset, stored_len, _raw) in \
            enumerate(table.handles):
        db.stats.add(SCRUB_BLOCKS_CHECKED)
        result.blocks_checked += 1
        try:
            stored = _scrub_read(db, table.name, offset, stored_len)
        except (TransientIOError, StorageError):
            bad.add(block_no)
            continue
        if (len(stored) != stored_len
                or stored_len <= BLOCK_TRAILER_BYTES
                or crc32c(stored[:-4])
                != struct.unpack("<I", stored[-4:])[0]):
            bad.add(block_no)
    return bad


def _salvage_records(db: "LSMTree", table: Table,
                     bad: Set[int]) -> List[Record]:
    """Decode every entry stored in the table's *good* data blocks."""
    footer = table.footer
    records: List[Record] = []
    for block_no, (_first_key, offset, stored_len, raw_len) in \
            enumerate(table.handles):
        if block_no in bad:
            continue
        stored = _scrub_read(db, table.name, offset, stored_len)
        payload = stored[:-BLOCK_TRAILER_BYTES]
        codec_id = stored[-BLOCK_TRAILER_BYTES]
        raw = (payload if codec_id == 0
               else decode_block(codec_id, payload, raw_len,
                                 file=table.name, block=block_no))
        for entry_offset in range(0, len(raw), footer.entry_bytes):
            records.append(decode_entry(raw, entry_offset,
                                        footer.value_capacity))
    return records


def _rewrite_table(db: "LSMTree", level: int, meta: FileMetaData,
                   records: List[Record]) -> FileMetaData:
    """Rebuild the salvaged records as a fresh table at ``level``."""
    # L0 is never covered by level models, so its tables always embed a
    # per-file index — the same rule the ingest and flush paths follow.
    per_file_index = db.level_models is None or level == 0
    factory = db.index_factory if per_file_index else None
    builder = TableBuilder(db.device, db._next_file_name(), db.options,
                           factory, db.stats, db.cost, level=level,
                           data_cache=db.data_cache)
    for record in records:
        builder.add(record)
    new_table = builder.finish()
    new_meta = FileMetaData(number=db._next_file_number(), table=new_table)
    if db.level_models is not None:
        db.level_models.register_keys(new_table.name, new_table.cached_keys)
    else:
        new_table.release_keys()
    return new_meta


def _commit_replacement(db: "LSMTree", level: int, meta: FileMetaData,
                        replacement: Optional[FileMetaData]) -> None:
    """Swap ``meta`` for ``replacement`` (or drop it) durably.

    Same crash-safe ordering as compaction: the replacement file is on
    the device before the manifest edit is appended, and the damaged
    original goes away only after the edit is durable.

    The replacement takes the original's *slot* in the level list, not
    a fresh newest-first insert: an L0 file rewritten by scrub holds
    old data, and promoting it above newer overlapping L0 files would
    let stale versions shadow fresh ones.
    """
    files = db.version.levels[level]
    slot = files.index(meta)
    if replacement is not None:
        files[slot] = replacement
    else:
        del files[slot]
    if db.level_models is not None:
        db.level_models.forget_keys(meta.name)
    pointer = None
    if db.level_models is not None and level >= 1:
        pointer = db.level_models.rebuild(level, db.version.levels[level])
    if db.manifest is not None:
        edit = VersionEdit(kind="scrub")
        edit.delete_file(level, meta.number, meta.name)
        if replacement is not None:
            edit.add_file(level, replacement.number, replacement.name,
                          replacement.table.format_version)
            edit.next_file_number = replacement.number
        if pointer is not None:
            edit.point_model(level, pointer)
        db.manifest.append(edit)
        db.stats.charge(Stage.COMPACT_WRITE, db.cost.wal_commit_us)
    if db.level_models is not None:
        db.level_models.drop_stale()


def _scrub_table(db: "LSMTree", level: int,
                 meta: FileMetaData) -> TableScrubResult:
    table = meta.table
    result = TableScrubResult(name=table.name, level=level)
    db.stats.add(SCRUB_TABLES_CHECKED)
    if table.format_version != FORMAT_BLOCKED:
        # Legacy flat tables carry no checksums; nothing to verify.
        return result
    _verify_regions(db, table, result)
    bad = _verify_blocks(db, table, result)
    result.blocks_bad = len(bad)
    if bad:
        db.stats.add(SCRUB_BLOCKS_BAD, len(bad))
    # Quarantined blocks that now verify clean (the medium was
    # replaced, or the damage was in a cache tier) are *salvageable* —
    # but the table is still rewritten, because the quarantine on the
    # old file is sticky by design.
    stale_quarantine = {b for b in table.quarantined_blocks
                        if b < len(table.handles)} - bad
    if not bad and not result.bad_regions and not stale_quarantine:
        return result
    records = _salvage_records(db, table, bad)
    result.entries_recovered = len(records)
    result.entries_lost = table.entry_count - len(records)
    if result.entries_lost > 0:
        db.stats.add(SCRUB_ENTRIES_LOST, result.entries_lost)
    if records:
        replacement = _rewrite_table(db, level, meta, records)
        _commit_replacement(db, level, meta, replacement)
        table.close()  # deletes the damaged original
        db.stats.add(SCRUB_TABLES_REWRITTEN)
        result.action = "rewritten"
        result.rewritten_as = replacement.name
    else:
        quarantine_name = QUARANTINE_PREFIX + table.name
        if db.device.exists(quarantine_name):
            db.device.delete(quarantine_name)
        db.device.rename(table.name, quarantine_name)
        _commit_replacement(db, level, meta, None)
        table.close()  # file already renamed away; this just drops caches
        db.stats.add(SCRUB_TABLES_QUARANTINED)
        db._quarantined_tables.append(quarantine_name)
        result.action = "quarantined"
    return result


def scrub_tree(db: "LSMTree") -> ScrubReport:
    """Verify and repair every live table of ``db``; see module docs."""
    report = ScrubReport()
    # Snapshot the file list first: repairs mutate the version in place.
    for level, meta in list(db.version.all_files()):
        report.tables.append(_scrub_table(db, level, meta))
    return report
