"""Level-granularity learned indexes (Dai et al.'s *LevelModel*).

The paper's third configuration axis is index granularity: instead of
one model per SSTable, a single model can cover an entire level's
sorted run.  Fewer, larger models mean less inner-index overhead —
Figure 8 shows a >10x memory drop from 8 MiB-file models to level
models — at the cost of retraining the level model whenever a
compaction rewrites part of the level.

A :class:`LevelModel` concatenates the key arrays of the level's files
(non-overlapping, sorted) into one virtual array, trains the configured
index over it, and translates the resulting *global* position bounds
back into per-file bounds.  Because levels >= 1 are single sorted
runs, the translation is exact arithmetic over the files' cumulative
entry counts.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import IndexBuildError
from repro.indexes.base import ClusteredIndex, SearchBound
from repro.indexes.registry import IndexFactory
from repro.lsm.version import FileMetaData
from repro.storage.cost_model import CostModel
from repro.storage.stats import TRAIN_KEY_VISITS, Stage, Stats


class LevelModel:
    """One learned index spanning every file of one level."""

    def __init__(self, files: List[FileMetaData],
                 index: ClusteredIndex) -> None:
        self.files = files
        self.index = index
        self.starts: List[int] = []
        total = 0
        for meta in files:
            self.starts.append(total)
            total += meta.entry_count
        self.total_entries = total

    def lookup(self, key: int) -> List[Tuple[FileMetaData, SearchBound]]:
        """Per-file bounds covering the global predicted range for ``key``."""
        bound = self.index.lookup(key)
        out: List[Tuple[FileMetaData, SearchBound]] = []
        first = max(0, bisect_right(self.starts, bound.lo) - 1)
        for i in range(first, len(self.files)):
            file_lo = self.starts[i]
            file_hi = file_lo + self.files[i].entry_count
            lo = max(bound.lo, file_lo)
            hi = min(bound.hi, file_hi)
            if lo < hi:
                out.append((self.files[i],
                            SearchBound(lo - file_lo, hi - file_lo)))
            if file_hi >= bound.hi:
                break
        return out

    def size_bytes(self) -> int:
        """Serialized model footprint."""
        return self.index.size_bytes()


class LevelModelManager:
    """Builds and caches one :class:`LevelModel` per level.

    Table builders hand over their in-memory key arrays at build time
    (`register_keys`); a level rebuild concatenates the arrays of the
    level's current files, so retraining never re-reads the device.
    Training cost is still charged through the normal stages, making
    level-model retraining visible in Figure 9's breakdown.
    """

    def __init__(self, factory: IndexFactory, stats: Stats,
                 cost: CostModel) -> None:
        self.factory = factory
        self.stats = stats
        self.cost = cost
        self._models: Dict[int, LevelModel] = {}
        self._keys: Dict[str, Sequence[int]] = {}

    # -- key bookkeeping ---------------------------------------------------

    def register_keys(self, file_name: str, keys: Sequence[int]) -> None:
        """Remember the sorted key array of a newly built table."""
        self._keys[file_name] = keys

    def forget_keys(self, file_name: str) -> None:
        """Drop the key array of a deleted table."""
        self._keys.pop(file_name, None)

    # -- model lifecycle -----------------------------------------------------

    def rebuild(self, level: int, files: List[FileMetaData]) -> None:
        """Retrain the model for ``level`` over its current files."""
        if not files:
            self._models.pop(level, None)
            return
        ordered = sorted(files, key=lambda meta: meta.min_key)
        merged: List[int] = []
        for meta in ordered:
            keys = self._keys.get(meta.name)
            if keys is None:
                raise IndexBuildError(
                    f"no cached keys for {meta.name}; level model rebuilds "
                    "require key registration at build time")
            merged.extend(keys)
        index = self.factory.create()
        index.build(merged)
        self.stats.add(TRAIN_KEY_VISITS, index.train_key_visits)
        self.stats.charge(Stage.COMPACT_TRAIN,
                          self.cost.train_us(index.train_key_visits))
        payload_len = len(index.serialize())
        self.stats.charge(Stage.COMPACT_WRITE_MODEL,
                          self.cost.model_write_us(payload_len))
        self._models[level] = LevelModel(ordered, index)

    def model_for(self, level: int) -> Optional[LevelModel]:
        """The current model of ``level`` (None when level is empty)."""
        return self._models.get(level)

    def lookup(self, level: int,
               key: int) -> List[Tuple[FileMetaData, SearchBound]]:
        """Per-file bounds for ``key`` at ``level``; charges prediction."""
        model = self._models.get(level)
        if model is None:
            return []
        self.stats.charge(Stage.PREDICTION,
                          model.index.expected_lookup_cost_us(self.cost))
        return model.lookup(key)

    def memory_bytes(self, level: Optional[int] = None) -> int:
        """Model memory for one level or all levels."""
        if level is not None:
            model = self._models.get(level)
            return model.size_bytes() if model else 0
        return sum(model.size_bytes() for model in self._models.values())
