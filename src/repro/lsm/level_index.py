"""Level-granularity learned indexes (Dai et al.'s *LevelModel*).

The paper's third configuration axis is index granularity: instead of
one model per SSTable, a single model can cover an entire level's
sorted run.  Fewer, larger models mean less inner-index overhead —
Figure 8 shows a >10x memory drop from 8 MiB-file models to level
models — at the cost of retraining the level model whenever a
compaction rewrites part of the level.

A :class:`LevelModel` concatenates the key arrays of the level's files
(non-overlapping, sorted) into one virtual array, trains the configured
index over it, and translates the resulting *global* position bounds
back into per-file bounds.  Because levels >= 1 are single sorted
runs, the translation is exact arithmetic over the files' cumulative
entry counts.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from repro.indexes.base import ClusteredIndex, SearchBound
from repro.indexes.registry import IndexFactory
from repro.lsm.version import FileMetaData
from repro.persist.models import ModelStore
from repro.storage.cost_model import CostModel
from repro.storage.stats import TRAIN_KEY_VISITS, Stage, Stats


class LevelModel:
    """One learned index spanning every file of one level."""

    def __init__(self, files: List[FileMetaData],
                 index: ClusteredIndex) -> None:
        self.files = files
        self.index = index
        self.starts: List[int] = []
        total = 0
        for meta in files:
            self.starts.append(total)
            total += meta.entry_count
        self.total_entries = total

    def _split_bound(self, key: int) -> List[Tuple[int, SearchBound]]:
        """Translate ``key``'s global predicted bound into per-file bounds.

        Yields ``(file_index, file-local bound)`` pairs; a bound that
        straddles a file boundary produces one pair per file touched.
        Both the single-key and batched lookups share this translation,
        so they cannot diverge.
        """
        bound = self.index.lookup(key)
        out: List[Tuple[int, SearchBound]] = []
        first = max(0, bisect_right(self.starts, bound.lo) - 1)
        for i in range(first, len(self.files)):
            file_lo = self.starts[i]
            file_hi = file_lo + self.files[i].entry_count
            lo = max(bound.lo, file_lo)
            hi = min(bound.hi, file_hi)
            if lo < hi:
                out.append((i, SearchBound(lo - file_lo, hi - file_lo)))
            if file_hi >= bound.hi:
                break
        return out

    def lookup(self, key: int) -> List[Tuple[FileMetaData, SearchBound]]:
        """Per-file bounds covering the global predicted range for ``key``."""
        return [(self.files[i], bound)
                for i, bound in self._split_bound(key)]

    def lookup_batch(
            self, keys: Sequence[int],
    ) -> List[Tuple[FileMetaData, List[Tuple[int, SearchBound]]]]:
        """Per-file ``(key, bound)`` groups for a sorted key batch.

        Every key pays its own model evaluation, but the resulting
        per-file bounds are grouped so the caller can issue one bloom
        pass and one coalesced read per table instead of one per key.
        Groups are returned in file order; a key whose global bound
        straddles a file boundary appears in both files' groups.
        """
        groups: Dict[int, List[Tuple[int, SearchBound]]] = {}
        for key in keys:
            for i, bound in self._split_bound(key):
                groups.setdefault(i, []).append((key, bound))
        return [(self.files[i], groups[i]) for i in sorted(groups)]

    def size_bytes(self) -> int:
        """Serialized model footprint."""
        return self.index.size_bytes()


class LevelModelManager:
    """Builds, persists and caches one :class:`LevelModel` per level.

    Table builders hand over their in-memory key arrays at build time
    (`register_keys`); a level rebuild concatenates the arrays of the
    level's current files, so retraining never re-reads the device.
    Files opened by recovery have no registered array — their keys are
    pulled lazily through :meth:`Table.load_keys` (one device read per
    table, cached) only if a post-recovery rebuild actually needs them.
    Training cost is still charged through the normal stages, making
    level-model retraining visible in Figure 9's breakdown.

    With a :class:`~repro.persist.models.ModelStore`, every freshly
    trained model is also serialized to an ``mdl-*`` sidecar; the
    returned sidecar name goes into the manifest edit that commits the
    retrain, and the superseded sidecar is retired only after that edit
    is durable (:meth:`drop_stale`), keeping every replayable manifest
    prefix pointed at an existing file.
    """

    def __init__(self, factory: IndexFactory, stats: Stats,
                 cost: CostModel,
                 model_store: Optional[ModelStore] = None) -> None:
        self.factory = factory
        self.stats = stats
        self.cost = cost
        self.model_store = model_store
        self._models: Dict[int, LevelModel] = {}
        self._keys: Dict[str, Sequence[int]] = {}
        #: level -> live sidecar name (only with a model store).
        self._persisted: Dict[int, str] = {}
        #: superseded sidecars awaiting deletion after the next commit.
        self._stale: List[str] = []

    # -- key bookkeeping ---------------------------------------------------

    def register_keys(self, file_name: str, keys: Sequence[int]) -> None:
        """Remember the sorted key array of a newly built table."""
        self._keys[file_name] = keys

    def forget_keys(self, file_name: str) -> None:
        """Drop the key array of a deleted table."""
        self._keys.pop(file_name, None)

    def _keys_for(self, meta: FileMetaData) -> Sequence[int]:
        keys = self._keys.get(meta.name)
        if keys is None:
            keys = meta.table.load_keys()
            self._keys[meta.name] = keys
        return keys

    # -- model lifecycle -----------------------------------------------------

    def rebuild(self, level: int,
                files: List[FileMetaData]) -> Optional[str]:
        """Retrain the model for ``level`` over its current files.

        Returns the manifest model-pointer value for the level: the new
        sidecar's name, ``""`` when the level emptied (invalidating any
        persisted model), or ``None`` when no model store is attached
        (nothing to record).
        """
        if not files:
            self._models.pop(level, None)
            if self.model_store is None:
                return None
            self._retire(level)
            return ""
        ordered = sorted(files, key=lambda meta: meta.min_key)
        merged: List[int] = []
        for meta in ordered:
            merged.extend(self._keys_for(meta))
        index = self.factory.create()
        index.build(merged)
        self.stats.add(TRAIN_KEY_VISITS, index.train_key_visits)
        self.stats.charge(Stage.COMPACT_TRAIN,
                          self.cost.train_us(index.train_key_visits))
        payload = index.serialize()
        self.stats.charge(Stage.COMPACT_WRITE_MODEL,
                          self.cost.model_write_us(len(payload)))
        self._models[level] = LevelModel(ordered, index)
        if self.model_store is None:
            return None
        self._retire(level)
        name = self.model_store.save(level, payload)
        self._persisted[level] = name
        return name

    def install(self, level: int, files: List[FileMetaData],
                index: ClusteredIndex,
                sidecar: Optional[str] = None) -> None:
        """Adopt a deserialized model for ``level`` without training.

        The recovery path: ``index`` came out of a persisted sidecar
        that the manifest declared current for exactly this file set,
        so the concatenated key order it was trained over is the one
        ``files`` (sorted by key) spans.
        """
        ordered = sorted(files, key=lambda meta: meta.min_key)
        self._models[level] = LevelModel(ordered, index)
        if sidecar is not None:
            self._persisted[level] = sidecar

    def _retire(self, level: int) -> None:
        old = self._persisted.pop(level, None)
        if old is not None:
            self._stale.append(old)

    def drop_stale(self) -> None:
        """Delete superseded sidecars (call after the edit committed)."""
        if self.model_store is None:
            self._stale.clear()
            return
        for name in self._stale:
            self.model_store.delete(name)
        self._stale.clear()

    def persisted_pointer(self, level: int) -> Optional[str]:
        """The live sidecar name for ``level`` (None when not persisted)."""
        return self._persisted.get(level)

    def model_for(self, level: int) -> Optional[LevelModel]:
        """The current model of ``level`` (None when level is empty)."""
        return self._models.get(level)

    def lookup(self, level: int,
               key: int) -> List[Tuple[FileMetaData, SearchBound]]:
        """Per-file bounds for ``key`` at ``level``; charges prediction."""
        model = self._models.get(level)
        if model is None:
            return []
        self.stats.charge(Stage.PREDICTION,
                          model.index.expected_lookup_cost_us(self.cost))
        return model.lookup(key)

    def lookup_batch(
            self, level: int, keys: Sequence[int],
    ) -> List[Tuple[FileMetaData, List[Tuple[int, SearchBound]]]]:
        """Per-file ``(key, bound)`` groups for a sorted batch at ``level``.

        Charges one prediction per key (model evaluations do not
        amortize across a batch) and returns
        :meth:`LevelModel.lookup_batch`'s file-grouped bounds.
        """
        model = self._models.get(level)
        if model is None:
            return []
        self.stats.charge(
            Stage.PREDICTION,
            model.index.expected_lookup_cost_us(self.cost) * len(keys))
        return model.lookup_batch(keys)

    def memory_bytes(self, level: Optional[int] = None) -> int:
        """Model memory for one level or all levels."""
        if level is not None:
            model = self._models.get(level)
            return model.size_bytes() if model else 0
        return sum(model.size_bytes() for model in self._models.values())
