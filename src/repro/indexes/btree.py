"""An in-memory B+-tree over integer keys.

FITing-Tree (Figure 2 B of the paper) indexes its segments with a
B+-tree rather than a flat array — faster segment lookup, more memory.
This module provides that tree: bulk loading from sorted pairs,
point/floor search, ordered iteration, and single-key insertion (used
by tests and by downstream users who want a classic index).

Keys are arbitrary Python ints; values are non-negative ints (segment
ids, positions).  Nodes hold up to ``order`` keys.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import IndexBuildError
from repro.indexes import codec

DEFAULT_ORDER = 16


class _Node:
    """One B+-tree node.

    Leaf nodes keep parallel ``keys``/``values`` lists plus a ``next``
    link for range scans.  Internal nodes keep ``keys`` as separators
    with ``children[i]`` covering keys < ``keys[i]`` (children has one
    more element than keys).
    """

    __slots__ = ("keys", "values", "children", "next", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.keys: List[int] = []
        self.values: List[int] = []
        self.children: List["_Node"] = []
        self.next: Optional["_Node"] = None


class BPlusTree:
    """A B+-tree mapping int keys to int values."""

    def __init__(self, order: int = DEFAULT_ORDER) -> None:
        if order < 3:
            raise IndexBuildError(f"B+-tree order must be >= 3, got {order}")
        self.order = order
        self._root: _Node = _Node(is_leaf=True)
        self._size = 0
        self._height = 1

    # -- bulk loading ----------------------------------------------------

    @classmethod
    def bulk_load(cls, pairs: Sequence[Tuple[int, int]],
                  order: int = DEFAULT_ORDER) -> "BPlusTree":
        """Build bottom-up from sorted, unique ``(key, value)`` pairs."""
        tree = cls(order)
        if not pairs:
            return tree
        # Fill leaves at ~ 2/3 occupancy so subsequent inserts do not
        # split immediately.
        per_leaf = max(2, (2 * order) // 3)
        leaves: List[_Node] = []
        for i in range(0, len(pairs), per_leaf):
            chunk = pairs[i:i + per_leaf]
            leaf = _Node(is_leaf=True)
            leaf.keys = [key for key, _ in chunk]
            leaf.values = [value for _, value in chunk]
            leaves.append(leaf)
        for left, right in zip(leaves, leaves[1:]):
            left.next = right
        level: List[_Node] = leaves
        height = 1
        while len(level) > 1:
            parents: List[_Node] = []
            per_inner = max(2, (2 * order) // 3)
            for i in range(0, len(level), per_inner):
                chunk = level[i:i + per_inner]
                parent = _Node(is_leaf=False)
                parent.children = list(chunk)
                parent.keys = [_smallest_key(child) for child in chunk[1:]]
                parents.append(parent)
            level = parents
            height += 1
        tree._root = level[0]
        tree._size = len(pairs)
        tree._height = height
        return tree

    # -- queries -----------------------------------------------------------

    def _descend(self, key: int) -> _Node:
        node = self._root
        while not node.is_leaf:
            idx = bisect_right(node.keys, key)
            node = node.children[idx]
        return node

    def get(self, key: int) -> Optional[int]:
        """Value for ``key``, or None when absent."""
        leaf = self._descend(key)
        idx = bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        return None

    def floor(self, key: int) -> Optional[Tuple[int, int]]:
        """The ``(key, value)`` pair with the greatest key <= ``key``."""
        leaf = self._descend(key)
        idx = bisect_right(leaf.keys, key) - 1
        if idx >= 0:
            return leaf.keys[idx], leaf.values[idx]
        # Key is smaller than everything in this leaf; since internal
        # separators route by smallest key, there is no predecessor.
        return None

    def items(self) -> Iterator[Tuple[int, int]]:
        """All pairs in key order (follows the leaf chain)."""
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        while node is not None:
            yield from zip(node.keys, node.values)
            node = node.next

    def range_items(self, lo: int, hi: int) -> Iterator[Tuple[int, int]]:
        """All pairs with ``lo <= key < hi`` in key order."""
        leaf = self._descend(lo)
        idx = bisect_left(leaf.keys, lo)
        while leaf is not None:
            while idx < len(leaf.keys):
                if leaf.keys[idx] >= hi:
                    return
                yield leaf.keys[idx], leaf.values[idx]
                idx += 1
            leaf = leaf.next
            idx = 0

    # -- mutation -----------------------------------------------------------

    def insert(self, key: int, value: int) -> None:
        """Insert or overwrite ``key``."""
        split = self._insert_into(self._root, key, value)
        if split is not None:
            separator, right = split
            new_root = _Node(is_leaf=False)
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1

    def _insert_into(self, node: _Node, key: int,
                     value: int) -> Optional[Tuple[int, _Node]]:
        if node.is_leaf:
            idx = bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                node.values[idx] = value
                return None
            node.keys.insert(idx, key)
            node.values.insert(idx, value)
            self._size += 1
            if len(node.keys) <= self.order:
                return None
            return self._split_leaf(node)
        idx = bisect_right(node.keys, key)
        split = self._insert_into(node.children[idx], key, value)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(idx, separator)
        node.children.insert(idx + 1, right)
        if len(node.keys) <= self.order:
            return None
        return self._split_inner(node)

    def _split_leaf(self, node: _Node) -> Tuple[int, _Node]:
        mid = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next = node.next
        node.next = right
        return right.keys[0], right

    def _split_inner(self, node: _Node) -> Tuple[int, _Node]:
        mid = len(node.keys) // 2
        separator = node.keys[mid]
        right = _Node(is_leaf=False)
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        return separator, right

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Levels from root to leaves (1 for a lone leaf)."""
        return self._height

    def node_count(self) -> int:
        """Total node count (for memory accounting)."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(node.children)
        return count

    # -- serialisation --------------------------------------------------------

    def serialize_into(self, writer: codec.Writer) -> None:
        """Flatten the tree (pre-order) into ``writer``.

        Nodes are written as ``is_leaf, keys[]`` plus either values
        (leaves) or child indices (internal), giving a byte size that
        matches what the pointer structure would occupy natively.
        """
        nodes: List[_Node] = []
        index_of = {}
        stack = [self._root]
        while stack:
            node = stack.pop()
            index_of[id(node)] = len(nodes)
            nodes.append(node)
            if not node.is_leaf:
                stack.extend(reversed(node.children))
        writer.put_u32(self.order)
        writer.put_u32(len(nodes))
        writer.put_u32(self._size)
        writer.put_u32(self._height)
        for node in nodes:
            writer.put_u8(1 if node.is_leaf else 0)
            writer.put_u64_array(node.keys)
            if node.is_leaf:
                writer.put_u32_array(node.values)
            else:
                writer.put_u32_array([index_of[id(child)]
                                      for child in node.children])

    @classmethod
    def deserialize_from(cls, reader: codec.Reader) -> "BPlusTree":
        """Inverse of :meth:`serialize_into`."""
        order = reader.get_u32()
        node_count = reader.get_u32()
        size = reader.get_u32()
        height = reader.get_u32()
        tree = cls(order)
        nodes: List[_Node] = []
        child_refs: List[List[int]] = []
        for _ in range(node_count):
            is_leaf = reader.get_u8() == 1
            node = _Node(is_leaf=is_leaf)
            node.keys = reader.get_u64_array()
            if is_leaf:
                node.values = reader.get_u32_array()
                child_refs.append([])
            else:
                child_refs.append(reader.get_u32_array())
            nodes.append(node)
        for node, refs in zip(nodes, child_refs):
            if not node.is_leaf:
                node.children = [nodes[ref] for ref in refs]
        # Restore the leaf chain in key order.
        leaves = [node for node in nodes if node.is_leaf]
        leaves.sort(key=lambda leaf: leaf.keys[0] if leaf.keys else 0)
        for left, right in zip(leaves, leaves[1:]):
            left.next = right
        if nodes:
            tree._root = nodes[0]
        tree._size = size
        tree._height = height
        return tree


def _smallest_key(node: _Node) -> int:
    while not node.is_leaf:
        node = node.children[0]
    return node.keys[0]
