"""The unified learned-index interface (the paper's Section 4 contract).

Every LSM-compatible ("data-clustered") index implements
:class:`ClusteredIndex`: it is built once over the sorted key array of
an immutable SSTable segment and afterwards answers
``lookup(key) -> SearchBound`` where the bound is guaranteed to contain
the key's true position if the key is present.  The bound's width is
the paper's **position boundary** — the number of entries the table
must fetch from disk and binary-search.

The interface also exposes the two quantities the benchmark sweeps
charge for:

* ``train_key_visits`` — how many key visits the build performed (one
  visit = touching one key during one training pass).  Single-pass
  algorithms (PLR, PGM, RadixSpline, FITing-Tree) report ~n; RMI's
  error-recording second pass reports ~2n; PLEX's self-tuning reports
  several n.  Figure 9's compaction-overhead breakdown falls straight
  out of these counts.
* ``expected_lookup_cost_us(cost_model)`` — the simulated CPU cost of
  one inner-index access plus model evaluation ("Prediction" in the
  paper's Table 1), derived from the structure (tree heights, segment
  counts), not wall clock.
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import ClassVar, List, Optional, Sequence

from repro.errors import IndexBuildError, IndexLookupError
from repro.storage.cost_model import CostModel


@dataclass(frozen=True)
class SearchBound:
    """A half-open position range ``[lo, hi)`` guaranteed to hold the key."""

    lo: int
    hi: int

    @property
    def width(self) -> int:
        """Number of candidate positions in the bound."""
        return self.hi - self.lo

    def contains(self, position: int) -> bool:
        """True when ``position`` falls inside the bound."""
        return self.lo <= position < self.hi

    def clamped(self, n: int) -> "SearchBound":
        """The bound intersected with the valid position range ``[0, n)``."""
        lo = max(0, min(self.lo, n))
        hi = max(lo, min(self.hi, n))
        return SearchBound(lo, hi)

    def block_aligned(self, entries_per_block: int, n: int) -> "SearchBound":
        """The bound widened outward to whole-block boundaries.

        Learned-index predictions are entry-granular, but block-format
        tables fetch whole blocks of ``entries_per_block`` entries, so
        the effective search range is the predicted one rounded out to
        block edges (and re-clamped to the ``n`` valid positions).
        """
        lo = (self.lo // entries_per_block) * entries_per_block
        hi = -(-self.hi // entries_per_block) * entries_per_block
        return SearchBound(lo, min(hi, n))


class ClusteredIndex(ABC):
    """Base class for all data-clustered learned indexes (and fence pointers).

    Subclasses implement ``_fit`` (training over a strictly-increasing
    key array) and ``_predict`` (raw bound for a key); this base class
    handles validation, clamping, and the bookkeeping shared by every
    index type.
    """

    #: Short name used in reports ("PGM", "PLR", ...). Set by subclasses.
    kind: ClassVar[str] = "?"

    def __init__(self) -> None:
        self._n = 0
        self._built = False
        self._train_key_visits = 0
        self._size_cache: Optional[int] = None

    # -- construction ----------------------------------------------------

    def build(self, keys: Sequence[int]) -> None:
        """Train the index over a strictly-increasing key array."""
        if len(keys) == 0:
            raise IndexBuildError(f"{self.kind}: cannot build over zero keys")
        self._n = len(keys)
        self._train_key_visits = 0
        self._size_cache = None
        self._fit(keys)
        self._built = True

    @abstractmethod
    def _fit(self, keys: Sequence[int]) -> None:
        """Subclass hook: train over ``keys`` (len >= 1, strictly increasing)."""

    def _record_visits(self, count: int) -> None:
        """Account ``count`` training key visits (used for Figure 9)."""
        self._train_key_visits += count

    # -- lookup ------------------------------------------------------------

    def lookup(self, key: int) -> SearchBound:
        """Bound on the position of ``key`` within the indexed array."""
        if not self._built:
            raise IndexLookupError(f"{self.kind}: lookup before build")
        return self._predict(key).clamped(self._n)

    @abstractmethod
    def _predict(self, key: int) -> SearchBound:
        """Subclass hook: raw (possibly out-of-range) bound for ``key``."""

    # -- introspection -----------------------------------------------------

    @property
    def n(self) -> int:
        """Number of keys the index was built over."""
        return self._n

    @property
    def is_built(self) -> bool:
        """True once :meth:`build` has completed."""
        return self._built

    @property
    def train_key_visits(self) -> int:
        """Key visits performed by the last :meth:`build`."""
        return self._train_key_visits

    def size_bytes(self) -> int:
        """Memory footprint: the length of the compact serialised form."""
        if self._size_cache is None:
            self._size_cache = len(self.serialize())
        return self._size_cache

    @abstractmethod
    def serialize(self) -> bytes:
        """Compact binary encoding (includes the registry type tag)."""

    @abstractmethod
    def expected_lookup_cost_us(self, cost: CostModel) -> float:
        """Simulated CPU microseconds for one inner lookup + prediction."""

    def configured_boundary(self) -> int:
        """The position boundary this index was configured for."""
        raise NotImplementedError

    def describe(self) -> dict:
        """Structural summary for reports and debugging.

        Subclasses extend the base dict with their own fields (segment
        counts, tree heights, leaf counts, ...).
        """
        return {
            "kind": self.kind,
            "n": self._n,
            "size_bytes": self.size_bytes() if self._built else 0,
            "boundary": self.configured_boundary(),
            "train_key_visits": self._train_key_visits,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"n={self._n}" if self._built else "unbuilt"
        return f"<{type(self).__name__} {self.kind} {state}>"


def floor_index(sorted_keys: Sequence[int], key: int) -> int:
    """Index of the greatest element <= ``key`` (clamped to 0).

    The shared "which segment holds this key" primitive: segment arrays
    store each segment's first key, so the floor entry is the segment
    the key belongs to.
    """
    idx = bisect.bisect_right(sorted_keys, key) - 1
    return 0 if idx < 0 else idx


def validate_strictly_increasing(keys: Sequence[int]) -> None:
    """Raise :class:`IndexBuildError` unless keys strictly increase."""
    previous = None
    for key in keys:
        if previous is not None and key <= previous:
            raise IndexBuildError(
                f"keys must be strictly increasing; saw {previous} then {key}")
        previous = key


@dataclass
class Segment:
    """One linear segment: ``first_key`` plus its model and start position.

    ``start``/``length`` describe the slice of the key array the segment
    covers.  The model is evaluated on the key's *offset from
    first_key* — the offset is an exact integer difference, so
    predictions stay precise even when 64-bit keys meet steep slopes
    (absolute-coordinate evaluation loses whole positions to float
    cancellation there).  ``intercept`` is therefore the predicted
    position *at* ``first_key``.
    """

    first_key: int
    slope: float
    intercept: float
    start: int
    length: int

    def predict(self, key: int) -> float:
        """Global position estimate for ``key``."""
        return self.slope * (key - self.first_key) + self.intercept


def segments_to_bound(segment: Segment, key: int, epsilon: int) -> SearchBound:
    """Turn a segment prediction into the paper's ±epsilon search bound."""
    predicted = int(segment.predict(key))
    lo = max(segment.start, predicted - epsilon)
    hi = min(segment.start + segment.length, predicted + epsilon + 1)
    if hi <= lo:  # prediction drifted outside the segment: clamp to edge
        if predicted < segment.start:
            lo, hi = segment.start, min(segment.start + segment.length,
                                        segment.start + 2 * epsilon + 1)
        else:
            hi = segment.start + segment.length
            lo = max(segment.start, hi - 2 * epsilon - 1)
    return SearchBound(lo, hi)


def first_keys(segments: List[Segment]) -> List[int]:
    """The per-segment first-key array used by inner indexes."""
    return [segment.first_key for segment in segments]
