"""FITing-Tree: greedy segments indexed by a B+-tree (Figure 2 B).

FITing-Tree uses the same shrinking-cone greedy segmentation as PLR —
each segment's feasible slope cone narrows point by point and the
segment closes when the cone empties — but replaces PLR's flat
first-key array with a B+-tree over segment first-keys.  The tree
makes the segment lookup O(log_B s) node hops instead of a log2(s)
binary search, at the price of node overhead.  The paper's Figure 6
shows exactly that trade: FITing-Tree's lookup is never faster in an
LSM (I/O dominates) while its memory curve is the steepest of the
learned indexes.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.errors import IndexBuildError
from repro.indexes import codec
from repro.indexes.base import ClusteredIndex, SearchBound, Segment, segments_to_bound
from repro.indexes.btree import DEFAULT_ORDER, BPlusTree
from repro.indexes.plr import deserialize_segments, serialize_segments
from repro.indexes.segmentation import greedy_corridor_segments
from repro.storage.cost_model import CostModel

FITING_TAG = 3


class FITingTreeIndex(ClusteredIndex):
    """Shrinking-cone segmentation with a B+-tree inner index."""

    kind = "FT"

    def __init__(self, epsilon: int, order: int = DEFAULT_ORDER) -> None:
        super().__init__()
        if epsilon < 1:
            raise IndexBuildError(f"FT epsilon must be >= 1, got {epsilon}")
        self.epsilon = epsilon
        self.order = order
        self._segments: List[Segment] = []
        self._tree = BPlusTree(order)

    def _fit(self, keys: Sequence[int]) -> None:
        self._segments, visits = greedy_corridor_segments(keys, self.epsilon)
        self._tree = BPlusTree.bulk_load(
            [(segment.first_key, i) for i, segment in enumerate(self._segments)],
            order=self.order)
        self._record_visits(visits)

    def _predict(self, key: int) -> SearchBound:
        hit = self._tree.floor(key)
        seg_id = hit[1] if hit is not None else 0
        segment = self._segments[seg_id]
        return segments_to_bound(segment, key, self.epsilon)

    def configured_boundary(self) -> int:
        return 2 * self.epsilon

    def segment_count(self) -> int:
        """Number of linear segments produced by the greedy pass."""
        return len(self._segments)

    def tree_height(self) -> int:
        """Height of the inner B+-tree."""
        return self._tree.height

    def expected_lookup_cost_us(self, cost: CostModel) -> float:
        # Each level performs a within-node binary search over up to
        # ``order`` separators, plus one model evaluation at the leaf.
        per_node = cost.index_compare_us * (math.log2(self.order) + 1.0)
        return self._tree.height * per_node + cost.model_eval_us

    def describe(self) -> dict:
        """Base summary plus segments and B+-tree shape."""
        info = super().describe()
        info["segments"] = len(self._segments)
        info["tree_height"] = self._tree.height
        info["tree_nodes"] = self._tree.node_count()
        return info

    def serialize(self) -> bytes:
        writer = codec.Writer()
        writer.put_u8(FITING_TAG)
        writer.put_u32(self.epsilon)
        writer.put_u64(self._n)
        serialize_segments(writer, self._segments)
        self._tree.serialize_into(writer)
        return writer.getvalue()

    @classmethod
    def deserialize(cls, reader: codec.Reader) -> "FITingTreeIndex":
        """Rebuild from a :class:`codec.Reader` positioned after the tag."""
        epsilon = reader.get_u32()
        n = reader.get_u64()
        index = cls(epsilon)
        index._segments = deserialize_segments(reader, n)
        index._tree = BPlusTree.deserialize_from(reader)
        index.order = index._tree.order
        index._n = n
        index._built = True
        return index
